#!/usr/bin/env python3
"""Fig. 17's scalability experiment at example scale.

Runs the same latent calling pattern against two peer populations (the
full one and a 1/4.434 subsample, the paper's ratio) and reports each
method's population-normalized quality paths.  A scalable method keeps
per-capita quality paths stable; fixed-probe methods do not.

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro import small_scenario
from repro.evaluation.report import render_kv_table
from repro.evaluation.scalability import PAPER_POPULATION_RATIO, run_scalability


def main() -> None:
    print("building scenario (~3 s) ...")
    scenario = small_scenario(seed=1)
    print("running both population scales ...")
    result = run_scalability(
        scenario,
        ratio=PAPER_POPULATION_RATIO,
        session_count=1500,
        latent_target=40,
        max_latent_sessions=40,
        seed=1,
    )

    print(
        render_kv_table(
            "\npopulations:",
            [
                ("large (hosts)", result.large_population),
                ("small (hosts)", result.small_population),
                ("ratio", result.ratio),
            ],
        )
    )

    print("\nmethod     qp_med(small)   qp_med(large)/ratio   scalability error")
    for method in ("DEDI", "RAND", "MIX", "ASAP"):
        small_med = float(np.median(result.small.series(method, "one_hop_quality_paths")))
        large_norm = float(np.median(result.normalized_large_series(method)))
        err = result.scalability_error(method)
        print(f"{method:>6}     {small_med:>12.1f}   {large_norm:>18.1f}   {err:>16.3f}")

    print(
        "\nreading: ASAP's error stays near 0 (quality paths grow with the"
        "\npopulation), while DEDI/RAND/MIX keep finding the same fixed-size"
        "\ncandidate sets — the paper's Fig. 17 conclusion."
    )


if __name__ == "__main__":
    main()
