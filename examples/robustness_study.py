#!/usr/bin/env python3
"""Robustness study: do the headline results survive seeds and families?

Reruns the reproduction's headline numbers across three scenario seeds
and across three topology families (tiered Internet-like,
Barabási–Albert, Waxman).  The ASAP-beats-baselines and ASAP≈OPT
orderings hold everywhere; the one-hop rescue rate exposes *why* the
paper's result works — it needs routing-induced latency pathology,
which random-geometric (Waxman) worlds lack.

Run:  python examples/robustness_study.py
"""

from repro.evaluation.report import render_kv_table
from repro.evaluation.robustness import family_study, seed_study, summarize_across
from repro.scenario import ScenarioConfig
from repro.topology import PopulationConfig, TopologyConfig


def main() -> None:
    config = ScenarioConfig(
        topology=TopologyConfig(tier1_count=5, tier2_count=40, tier3_count=250),
        population=PopulationConfig(host_count=2000),
    )

    print("=== headline metrics across seeds (3 worlds) ===")
    results = seed_study(config, seeds=(0, 1, 2), session_count=1200, latent_target=30)
    for metrics in results:
        print("  " + metrics.row())
    print(render_kv_table("\naggregate (mean ± std):", summarize_across(results)))

    print("\n=== headline metrics across topology families ===")
    families = family_study(config, as_count=300, session_count=1200, latent_target=30)
    for metrics in families:
        print("  " + metrics.row())

    print(
        "\nreading: rescue rates collapse on Waxman because its latency is"
        "\ndistance-induced (no routing shortcut exists to exploit); on"
        "\nInternet-like families — where policy routing, congestion and"
        "\nmulti-homing create the detours — relays rescue essentially"
        "\neverything, as the paper measured on the real Internet."
    )


if __name__ == "__main__":
    main()
