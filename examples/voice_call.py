#!/usr/bin/env python3
"""Packet-level voice call over ASAP relays, with switching + diversity.

Builds a world, finds a latent session, lets ASAP select relay paths,
then runs a packet-level call (jitter buffer and all) while paths churn
through congestion — comparing a static path, path switching [20], and
path diversity [15], the techniques the paper names as ASAP-compatible.

Run:  python examples/voice_call.py
"""

import numpy as np

from repro import small_scenario
from repro.core import ASAPConfig, ASAPSystem
from repro.core.config import derive_k_hops
from repro.evaluation.sessions import generate_workload
from repro.voip.call import CallConfig, VoiceCall, call_paths_from_selection


def main() -> None:
    print("building scenario (~3 s) ...")
    scenario = small_scenario(seed=1)
    system = ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices)))

    workload = generate_workload(scenario, 1500, seed=2, latent_target=10)
    session = None
    for candidate in workload.latent():
        call = system.call(candidate.caller, candidate.callee)
        if call.selection is not None and len(call.selection.one_hop) >= 2:
            session, asap_call = candidate, call
            break
    if session is None:
        print("no latent session with multiple relay candidates — try another seed")
        return

    print(f"\nsession {session.caller} → {session.callee}")
    print(f"  direct RTT {session.direct_rtt_ms:.0f} ms; "
          f"{asap_call.selection.one_hop_ips} one-hop relay IPs found")

    paths = call_paths_from_selection(
        asap_call.selection,
        scenario.matrices,
        session.caller_cluster,
        session.callee_cluster,
        seed=7,
    )
    print(f"  candidate paths for the call: {len(paths)}")

    variants = {
        "static best path": CallConfig(windows=25, use_switching=False, seed=11),
        "path switching": CallConfig(windows=25, use_switching=True, seed=11),
        "path diversity": CallConfig(
            windows=25, use_switching=False, use_diversity=True, seed=11
        ),
    }
    print(f"\n{'transport':>18} | {'mean MOS':>8} | {'min MOS':>8} | {'satisfied':>9} | switches")
    for name, config in variants.items():
        # Fresh path processes per variant so dynamics are identical.
        fresh = call_paths_from_selection(
            asap_call.selection,
            scenario.matrices,
            session.caller_cluster,
            session.callee_cluster,
            seed=7,
        )
        outcome = VoiceCall(fresh, config).run()
        print(
            f"{name:>18} | {outcome.mean_mos:8.2f} | {outcome.min_mos:8.2f} | "
            f"{outcome.satisfied_fraction:9.2f} | {outcome.switches}"
        )

    print("\nwindow-by-window (path switching variant):")
    fresh = call_paths_from_selection(
        asap_call.selection, scenario.matrices,
        session.caller_cluster, session.callee_cluster, seed=7,
    )
    outcome = VoiceCall(fresh, variants["path switching"]).run()
    for w in outcome.windows[:12]:
        flag = "  << switched" if w.switched else ""
        print(
            f"  window {w.window:>2}  path {w.active_path}  MOS {w.mos:4.2f}  "
            f"loss {w.effective_loss:5.3f}{flag}"
        )


if __name__ == "__main__":
    main()
