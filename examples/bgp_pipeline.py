#!/usr/bin/env python3
"""The BGP data pipeline on its own: dumps → tables → inference → routing.

Demonstrates the substrate the whole reproduction stands on, exactly in
the order of the paper's Fig. 1 pipeline:

1. generate a topology and export RIB dumps from vantage ASes;
2. parse the dumps (text round-trip) and replay a BGP update stream;
3. build the prefix→origin-AS table and longest-match host IPs;
4. infer AS relationships with Gao's algorithm and compare against the
   generator's ground truth;
5. compute policy routes and show a case where the selected route is
   longer than the shortest valley-free path (why relays win).

Run:  python examples/bgp_pipeline.py
"""

from repro.bgp import (
    PolicyRouter,
    PrefixOriginTable,
    RoutingTable,
    apply_updates,
    format_rib_dump,
    infer_relationships,
    parse_rib_dump,
)
from repro.bgp.relationships import inference_accuracy
from repro.topology import (
    TopologyConfig,
    allocate_prefixes,
    generate_rib_entries,
    generate_topology,
    generate_update_stream,
)


def main() -> None:
    config = TopologyConfig(tier1_count=5, tier2_count=30, tier3_count=150, seed=3)
    topology = generate_topology(config)
    allocation = allocate_prefixes(topology, seed=3)
    print(
        f"topology: {len(topology.graph)} ASes, {topology.graph.edge_count()} links, "
        f"{len(allocation)} announced prefixes"
    )

    # 1-2: export, serialize, re-parse, replay updates.
    entries = generate_rib_entries(topology, allocation, vantage_count=8, seed=3)
    dump = format_rib_dump(entries)
    print(f"RIB dump: {len(entries)} routes, {len(dump) // 1024} KiB of text")
    parsed = list(parse_rib_dump(dump.splitlines()))
    table = RoutingTable.from_entries(parsed)
    updates = generate_update_stream(topology, allocation, churn_fraction=0.05, seed=3)
    applied = apply_updates(table, updates)
    print(f"update replay: {applied} updates applied, table holds {len(table)} routes")

    # 3: prefix → origin AS.
    prefix_table = PrefixOriginTable.from_routing_table(table)
    sample_prefix = allocation.prefixes_of[topology.stub_ases()[0]][0]
    sample_ip = sample_prefix.nth_address(1)
    print(
        f"prefix table: {len(prefix_table)} prefixes; "
        f"{sample_ip} → AS {prefix_table.origin_of(sample_ip)}"
    )

    # 4: Gao inference vs ground truth.
    inferred = infer_relationships(table.entries())
    score = inference_accuracy(topology.graph, inferred)
    print(
        f"Gao inference: {inferred.edge_count()} edges annotated, "
        f"{100 * score:.0f}% of ground-truth edges matched exactly"
    )

    # 5: policy routing vs shortest valley-free path.
    router = PolicyRouter(topology.graph)
    stubs = topology.stub_ases()
    shown = 0
    for src in stubs:
        for dst in reversed(stubs):
            if src == dst:
                continue
            route = router.route(src, dst)
            if route is None:
                continue
            shortest = topology.graph.valley_free_distance(src, dst)
            if shortest is not None and route.hops > shortest:
                print(
                    f"policy detour: AS {src} → AS {dst} selected "
                    f"{route.hops} hops {route.as_path}, "
                    f"but the shortest valley-free path has {shortest} — "
                    "the gap an overlay relay can exploit"
                )
                shown += 1
                break
        if shown:
            break
    if not shown:
        print("no policy detour found in this sample (rare) — try another seed")


if __name__ == "__main__":
    main()
