#!/usr/bin/env python3
"""Quickstart: build a simulated Internet and place one ASAP-relayed call.

Walks the whole pipeline in miniature:

1. build a scenario (topology → BGP feed → prefix table → peer
   population → latency ground truth);
2. stand up the ASAP system (bootstraps, surrogates);
3. join two end hosts and find the worst direct path between clusters;
4. place the call and inspect what select-close-relay found.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import small_scenario
from repro.core import ASAPConfig, ASAPSystem
from repro.core.config import derive_k_hops
from repro.voip.quality import mos_of_path


def main() -> None:
    print("building scenario (~3 s) ...")
    scenario = small_scenario(seed=1)
    matrices = scenario.matrices
    print(
        f"  world: {len(scenario.topology.graph)} ASes, "
        f"{len(scenario.population)} online hosts, "
        f"{len(scenario.clusters)} prefix clusters"
    )

    k = derive_k_hops(matrices)
    system = ASAPSystem(scenario, ASAPConfig(k_hops=k))
    print(f"  ASAP up: {len(scenario.clusters)} surrogates, k = {k}")

    # Pick the worst-direct-RTT cluster pair with hosts on both sides.
    rtt = matrices.rtt_ms.copy()
    rtt[~np.isfinite(rtt)] = -1.0
    a, b = np.unravel_index(int(np.argmax(rtt)), rtt.shape)
    clusters = scenario.clusters.all_clusters()
    caller = clusters[a].hosts[0]
    callee = clusters[b].hosts[0]

    print(f"\ncaller {caller.ip} (AS {caller.asn})  →  callee {callee.ip} (AS {callee.asn})")

    # End hosts join through a bootstrap (prefix → ASN + surrogate).
    joined = system.join(caller.ip)
    print(
        f"  join: prefix {joined.join_info.prefix}, "
        f"surrogate {joined.join_info.surrogate_ip}"
    )

    session = system.call(caller.ip, callee.ip)
    print(f"  direct RTT: {session.direct_rtt_ms:.0f} ms "
          f"(MOS {mos_of_path(session.direct_rtt_ms):.2f})")

    if not session.relay_needed:
        print("  direct path already meets the 300 ms requirement — no relay needed")
        return

    selection = session.selection
    print(f"  relay selection: {selection.messages} protocol messages")
    print(f"    one-hop relay IPs:   {selection.one_hop_ips}")
    print(f"    two-hop relay pairs: {selection.two_hop_pairs}")
    best = session.best_relay_rtt_ms
    if best is None:
        print("    no quality relay found")
        return
    print(f"    best relay path RTT: {best:.0f} ms (MOS {mos_of_path(best):.2f})")
    improvement = (session.direct_rtt_ms - best) / session.direct_rtt_ms
    print(f"    improvement over direct: {100 * improvement:.0f}%")

    top = sorted(selection.one_hop, key=lambda c: c.relay_rtt_ms)[:5]
    print("    best one-hop relay clusters:")
    for cand in top:
        prefix = matrices.prefixes[cand.cluster]
        print(
            f"      {str(prefix):>18}  relay-path RTT {cand.relay_rtt_ms:6.0f} ms  "
            f"({cand.member_ips} relay IPs)"
        )


if __name__ == "__main__":
    main()
