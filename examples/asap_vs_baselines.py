#!/usr/bin/env python3
"""Section 7 head-to-head: ASAP vs DEDI / RAND / MIX / OPT.

Generates a random-session workload, takes the latent subset (direct
RTT > 300 ms), runs all five relay selection methods and prints the
paper's three metrics: quality paths, shortest RTT / highest MOS, and
message overhead.

Run:  python examples/asap_vs_baselines.py
"""

from repro import small_scenario
from repro.evaluation.report import render_method_table, render_series
from repro.evaluation.section7 import run_section7


def main() -> None:
    print("building scenario (~3 s) ...")
    scenario = small_scenario(seed=1)
    print("evaluating methods on latent sessions ...")
    result = run_section7(
        scenario, session_count=2000, latent_target=80, max_latent_sessions=80, seed=1
    )
    print(f"\nlatent sessions evaluated: {len(result.latent_sessions)}\n")

    print(render_method_table(result.summaries()))

    print()
    print(
        render_series(
            "quality paths per session (Figs. 11-12):",
            [(m, result.series(m, "quality_paths")) for m in ("DEDI", "RAND", "MIX", "ASAP")],
        )
    )
    print()
    print(
        render_series(
            "shortest relay RTT per session, ms (Figs. 13-14):",
            [(m, result.series(m, "best_rtt_ms")) for m in ("DEDI", "RAND", "MIX", "ASAP", "OPT")],
        )
    )
    print()
    print(
        render_series(
            "protocol messages per session (Fig. 18):",
            [(m, result.series(m, "messages")) for m in ("DEDI", "RAND", "MIX", "ASAP")],
        )
    )


if __name__ == "__main__":
    main()
