#!/usr/bin/env python3
"""The Section 5 measurement study: 14 Skype-like sessions, analyzed.

Reproduces the paper's Skype limits from simulated packet traces:
Limit 1 (suboptimal major paths), Limit 2 (same-AS probes, Table 2),
Limit 3 (stabilization time / relay bounce, Fig. 7a) and Limit 4
(probe overhead, Figs. 7b-c).

Run:  python examples/skype_study.py
"""

from repro import small_scenario
from repro.evaluation.section5 import run_section5


def main() -> None:
    print("building scenario (~3 s) ...")
    scenario = small_scenario(seed=1)
    print("running 14 Skype-like sessions ...")
    study = run_section5(scenario, seed=1)

    print("\n=== Table 1 — session plan (site numbers) ===")
    print("  session:", "  ".join(f"{i + 1:>5d}" for i in range(14)))
    print("  sites:  ", "  ".join(f"{c}-{d:<3d}" for c, d in study.sessions))

    print("\n=== Fig. 7(a) — stabilization time per session (s) ===")
    for sid, (stab, analysis) in enumerate(
        zip(study.stabilization_seconds(), study.analyses), start=1
    ):
        bounce = analysis.forward.relay_switches + analysis.backward.relay_switches
        print(f"  session {sid:>2}: {stab:7.1f} s   relay switches: {bounce}")

    print("\n=== Fig. 7(b) — relay nodes probed per session ===")
    probed = study.probed_counts()
    print("  ", "  ".join(f"{p:>3d}" for p in probed))
    print(f"  max {max(probed)}, min {min(probed)} "
          f"(paper saw up to 59 probes in one session)")

    print("\n=== Fig. 7(c) — nodes probed after stabilization ===")
    after = study.probed_after_stabilization()
    print("  ", "  ".join(f"{p:>3d}" for p in after))

    print("\n=== Table 2 — relay nodes probed inside one AS (Limit 2) ===")
    rows = study.same_as_table()
    if not rows:
        print("  (none in this run)")
    for session_id, asn, ips in rows[:8]:
        listed = ", ".join(str(ip) for ip in ips[:4])
        print(f"  session {session_id:>2}  AS {asn:>5}  relays: {listed}")

    print("\n=== major path usage (Limit 1 / asymmetric sessions) ===")
    for analysis in study.analyses:
        fwd = analysis.forward
        kind = "relay" if fwd.uses_relay else "direct"
        marker = "  (asymmetric)" if analysis.asymmetric else ""
        print(
            f"  session {analysis.session_id:>2}: forward major={kind:<6} "
            f"share={fwd.major_share:4.2f}{marker}"
        )


if __name__ == "__main__":
    main()
