"""Unit tests for RIB entries, the dump format, and the routing table."""

import pytest

from repro.errors import BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp import RIBEntry, RoutingTable, format_rib_dump, parse_rib_dump
from repro.bgp.rib import parse_rib_line


def entry(prefix="192.0.2.0/24", path=(7018, 3356, 64512), peer="10.0.0.1", ts=1, origin="IGP"):
    return RIBEntry(
        timestamp=ts,
        peer=IPv4Address.from_string(peer),
        prefix=IPv4Prefix.from_string(prefix),
        as_path=tuple(path),
        origin=origin,
    )


class TestRIBEntry:
    def test_origin_as_is_last_path_element(self):
        assert entry(path=(1, 2, 3)).origin_as == 3

    def test_empty_path_rejected(self):
        with pytest.raises(BGPParseError):
            entry(path=())

    def test_invalid_origin_attribute_rejected(self):
        with pytest.raises(BGPParseError):
            entry(origin="BOGUS")

    def test_non_positive_asn_rejected(self):
        with pytest.raises(BGPParseError):
            entry(path=(1, 0, 3))

    def test_without_prepending_collapses_runs(self):
        e = entry(path=(1, 2, 2, 2, 3, 3))
        assert e.without_prepending() == (1, 2, 3)

    def test_without_prepending_keeps_nonadjacent_repeats(self):
        e = entry(path=(1, 2, 1))
        assert e.without_prepending() == (1, 2, 1)


class TestDumpFormat:
    def test_line_round_trip(self):
        e = entry()
        assert parse_rib_line(e.to_line()) == e

    def test_dump_round_trip(self):
        entries = [entry(), entry(prefix="198.51.100.0/24", path=(65000, 65001))]
        parsed = list(parse_rib_dump(format_rib_dump(entries).splitlines()))
        assert parsed == entries

    def test_parser_skips_comments_and_blanks(self):
        text = "# comment\n\n" + entry().to_line() + "\n"
        assert len(list(parse_rib_dump(text.splitlines()))) == 1

    def test_parser_reports_line_numbers(self):
        text = entry().to_line() + "\nRIB|broken\n"
        with pytest.raises(BGPParseError, match="line 2"):
            list(parse_rib_dump(text.splitlines()))

    @pytest.mark.parametrize(
        "bad",
        [
            "RIB|x|10.0.0.1|192.0.2.0/24|1 2|IGP",      # bad timestamp
            "RIB|1|10.0.0.1|192.0.2.0|1 2|IGP",         # bad prefix
            "RIB|1|10.0.0.1|192.0.2.0/24|one two|IGP",  # bad path
            "RIB|1|10.0.0.1|192.0.2.0/24|1 2",          # missing field
            "FOO|1|10.0.0.1|192.0.2.0/24|1 2|IGP",      # wrong tag
            "RIB|1|10.0.0.1|192.0.2.0/24||IGP",         # empty path
        ],
    )
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(BGPParseError):
            parse_rib_line(bad)


class TestRoutingTable:
    def test_install_and_len(self):
        table = RoutingTable.from_entries([entry(), entry(peer="10.0.0.2")])
        assert len(table) == 2

    def test_install_replaces_same_peer_prefix(self):
        table = RoutingTable()
        table.install(entry(path=(1, 2)))
        table.install(entry(path=(3, 4)))
        assert len(table) == 1
        assert table.best_route(entry().prefix).as_path == (3, 4)

    def test_withdraw(self):
        table = RoutingTable.from_entries([entry()])
        e = entry()
        assert table.withdraw(e.peer, e.prefix)
        assert not table.withdraw(e.peer, e.prefix)
        assert len(table) == 0

    def test_prefixes_distinct(self):
        table = RoutingTable.from_entries(
            [entry(), entry(peer="10.0.0.2"), entry(prefix="198.51.100.0/24")]
        )
        assert len(table.prefixes()) == 2

    def test_best_route_prefers_shortest_path(self):
        table = RoutingTable.from_entries(
            [entry(peer="10.0.0.1", path=(1, 2, 3)), entry(peer="10.0.0.2", path=(9, 3))]
        )
        assert table.best_route(entry().prefix).as_path == (9, 3)

    def test_best_route_tie_break_deterministic(self):
        table = RoutingTable.from_entries(
            [entry(peer="10.0.0.2", path=(1, 3)), entry(peer="10.0.0.1", path=(2, 3))]
        )
        best = table.best_route(entry().prefix)
        assert best.peer == IPv4Address.from_string("10.0.0.1")

    def test_best_route_missing_prefix(self):
        assert RoutingTable().best_route(entry().prefix) is None
