"""Gilbert–Elliott bursty-loss channel and path-diversity merge edge
cases for :mod:`repro.voip.stream`."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.media.jitterbuf import AdaptiveJitterBuffer
from repro.media.frames import ReceivedFrame, ReceivedTrace
from repro.voip.stream import (
    GilbertElliottConfig,
    PacketArrival,
    StreamConfig,
    merge_diverse_arrivals,
    sample_gilbert_elliott,
    simulate_stream,
)


class TestGilbertElliottConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig(p_good_to_bad=1.5, p_bad_to_good=0.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig(p_good_to_bad=0.1, p_bad_to_good=0.0)
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig(p_good_to_bad=0.1, p_bad_to_good=0.5, loss_bad=-0.1)

    def test_stationary_loss(self):
        config = GilbertElliottConfig(p_good_to_bad=0.02, p_bad_to_good=0.25)
        assert config.stationary_bad == pytest.approx(0.02 / 0.27)
        assert config.stationary_loss == pytest.approx(config.stationary_bad)

    def test_from_loss_and_burst(self):
        config = GilbertElliottConfig.from_loss_and_burst(0.05, mean_burst=4.0)
        assert config.p_bad_to_good == pytest.approx(0.25)
        assert config.stationary_loss == pytest.approx(0.05)
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig.from_loss_and_burst(0.0)
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig.from_loss_and_burst(0.05, mean_burst=0.5)

    def test_from_loss_and_burst_clamps_transition(self):
        # Extreme loss with short bursts would need p > 1: clamped.
        config = GilbertElliottConfig.from_loss_and_burst(0.95, mean_burst=1.0)
        assert config.p_good_to_bad == 1.0


class TestSampleGilbertElliott:
    def test_deterministic_per_seed(self):
        config = GilbertElliottConfig.from_loss_and_burst(0.10)
        a = sample_gilbert_elliott(np.random.default_rng(7), 2000, config)
        b = sample_gilbert_elliott(np.random.default_rng(7), 2000, config)
        assert np.array_equal(a, b)
        c = sample_gilbert_elliott(np.random.default_rng(8), 2000, config)
        assert not np.array_equal(a, c)

    def test_matches_stationary_loss(self):
        config = GilbertElliottConfig.from_loss_and_burst(0.10, mean_burst=4.0)
        lost = sample_gilbert_elliott(np.random.default_rng(0), 50_000, config)
        assert lost.mean() == pytest.approx(0.10, abs=0.02)

    def test_losses_are_bursty(self):
        """Mean run length of consecutive losses tracks the configured
        burst length — the point of the two-state channel."""
        config = GilbertElliottConfig.from_loss_and_burst(0.10, mean_burst=4.0)
        lost = sample_gilbert_elliott(np.random.default_rng(0), 50_000, config)
        runs = []
        current = 0
        for flag in lost:
            if flag:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert np.mean(runs) == pytest.approx(4.0, rel=0.25)

    def test_consumes_fixed_draw_budget(self):
        """Exactly two uniforms per packet, regardless of channel state —
        the determinism contract downstream code relies on."""
        config = GilbertElliottConfig.from_loss_and_burst(0.10)
        rng = np.random.default_rng(3)
        sample_gilbert_elliott(rng, 100, config)
        probe_after = np.random.default_rng(3)
        probe_after.random(200)  # the 2·count draws
        assert rng.random() == probe_after.random()


class TestStreamConfigGE:
    def test_ge_none_is_bit_identical_to_iid_contract(self):
        """The default (``ge=None``) consumes draws exactly as the
        pre-bursty code did: one uniform per packet, then the jitter
        exponentials."""
        config = StreamConfig(duration_ms=2_000.0, seed=5)
        arrivals = simulate_stream(40.0, 0.1, config)
        rng = np.random.default_rng(5)
        expect_lost = rng.random(config.packet_count) < 0.1
        jitter = rng.exponential(config.jitter_mean_ms, size=config.packet_count)
        for seq, packet in enumerate(arrivals):
            if expect_lost[seq]:
                assert packet.lost
            else:
                assert packet.arrival_ms == pytest.approx(
                    packet.sent_ms + 40.0 + jitter[seq]
                )

    def test_ge_mode_deterministic_and_bursty(self):
        ge = GilbertElliottConfig.from_loss_and_burst(0.30, mean_burst=6.0)
        config = StreamConfig(duration_ms=60_000.0, seed=2, ge=ge)
        a = simulate_stream(40.0, 0.0, config)
        b = simulate_stream(40.0, 0.0, config)
        assert a == b
        loss = sum(1 for p in a if p.lost) / len(a)
        assert loss == pytest.approx(0.30, abs=0.05)

    def test_ge_mode_ignores_loss_rate_argument(self):
        ge = GilbertElliottConfig.from_loss_and_burst(0.10)
        config = StreamConfig(duration_ms=5_000.0, seed=2, ge=ge)
        a = simulate_stream(40.0, 0.0, config)
        b = simulate_stream(40.0, 0.9, config)
        assert a == b


class TestMergeDiverseArrivals:
    def test_empty_streams(self):
        assert merge_diverse_arrivals([], []) == []

    def test_length_mismatch_rejected(self):
        one = [PacketArrival(0, 0.0, 50.0)]
        with pytest.raises(ConfigurationError):
            merge_diverse_arrivals(one, [])
        with pytest.raises(ConfigurationError):
            merge_diverse_arrivals([], one)

    def test_sequence_mismatch_rejected(self):
        a = [PacketArrival(0, 0.0, 50.0)]
        b = [PacketArrival(1, 0.0, 50.0)]
        with pytest.raises(ConfigurationError):
            merge_diverse_arrivals(a, b)

    def test_fully_disjoint_loss_merges_to_zero_loss(self):
        """Primary loses even packets, secondary loses odd ones: the
        merged stream hears everything."""
        primary = [
            PacketArrival(i, i * 20.0, None if i % 2 == 0 else i * 20.0 + 50.0)
            for i in range(20)
        ]
        secondary = [
            PacketArrival(i, i * 20.0, None if i % 2 == 1 else i * 20.0 + 70.0)
            for i in range(20)
        ]
        merged = merge_diverse_arrivals(primary, secondary)
        assert all(not p.lost for p in merged)
        # Each packet keeps its single surviving copy's timestamp.
        assert merged[0].arrival_ms == 70.0 and merged[1].arrival_ms == 70.0

    def test_duplicate_timestamps_keep_single_copy(self):
        """Both copies arriving at the same instant collapse to one
        arrival at that timestamp (min of equals)."""
        primary = [PacketArrival(0, 0.0, 55.0)]
        secondary = [PacketArrival(0, 0.0, 55.0)]
        merged = merge_diverse_arrivals(primary, secondary)
        assert merged == [PacketArrival(0, 0.0, 55.0)]

    def test_earlier_copy_wins(self):
        primary = [PacketArrival(0, 0.0, 90.0)]
        secondary = [PacketArrival(0, 0.0, 60.0)]
        assert merge_diverse_arrivals(primary, secondary)[0].arrival_ms == 60.0

    def test_both_lost_stays_lost(self):
        primary = [PacketArrival(0, 0.0, None)]
        secondary = [PacketArrival(0, 0.0, None)]
        assert merge_diverse_arrivals(primary, secondary)[0].lost


class TestJitterBufferReclassificationDeterminism:
    def test_late_frame_reclassification_is_deterministic(self):
        """Replaying the identical trace through fresh buffers yields the
        identical played/late/lost classification, frame for frame."""
        rng = np.random.default_rng(4)
        arrivals = []
        for i in range(500):
            if rng.random() < 0.03:
                arrivals.append(None)
            else:
                arrivals.append(i * 20.0 + 60.0 + float(rng.exponential(15.0)))
        trace = ReceivedTrace(
            call_id=1,
            frames=tuple(
                ReceivedFrame(i, i * 20.0, a, "G.729A+VAD")
                for i, a in enumerate(arrivals)
            ),
        )
        a = AdaptiveJitterBuffer().play(trace)
        b = AdaptiveJitterBuffer().play(trace)
        assert a.frames == b.frames
        assert a.late > 0  # the jitter actually produced late frames
        assert [f.status for f in a.frames] == [f.status for f in b.frames]
