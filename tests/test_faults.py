"""Tests for the fault-injection layer: configs, schedules, network faults."""

import pytest

from repro.core import ASAPConfig
from repro.core.runtime import ASAPRuntime
from repro.errors import ConfigurationError
from repro.faults import (
    BootstrapOutage,
    ChurnWave,
    FaultInjector,
    FaultScheduleConfig,
    LossBurst,
    compile_schedule,
)
from repro.scenario import tiny_scenario
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


class TestFaultConfig:
    def test_defaults_are_zero(self):
        assert FaultScheduleConfig().is_zero
        assert FaultScheduleConfig.zeroed().is_zero

    def test_nonzero_detection(self):
        assert not FaultScheduleConfig(host_churn_rate_per_min=1.0).is_zero
        assert not FaultScheduleConfig(message_loss_rate=0.1).is_zero
        assert not FaultScheduleConfig(
            churn_waves=(ChurnWave(at_ms=10.0, fraction=0.5),)
        ).is_zero

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultScheduleConfig(duration_ms=0)
        with pytest.raises(ConfigurationError):
            FaultScheduleConfig(surrogate_crash_rate_per_min=-1)
        with pytest.raises(ConfigurationError):
            FaultScheduleConfig(message_loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            ChurnWave(at_ms=0.0, fraction=0.0)
        with pytest.raises(ConfigurationError):
            LossBurst(start_ms=0.0, duration_ms=0.0, loss_rate=0.5)
        with pytest.raises(ConfigurationError):
            BootstrapOutage(index=-1, start_ms=0.0, duration_ms=1.0)

    def test_scaled(self):
        config = FaultScheduleConfig(
            surrogate_crash_rate_per_min=2.0,
            host_churn_rate_per_min=4.0,
            message_loss_rate=0.01,
        )
        doubled = config.scaled(2.0)
        assert doubled.surrogate_crash_rate_per_min == 4.0
        assert doubled.host_churn_rate_per_min == 8.0
        assert doubled.message_loss_rate == 0.02
        assert config.scaled(0.0).is_zero


class TestCompileSchedule:
    def test_zero_config_compiles_empty(self, scenario):
        schedule = compile_schedule(FaultScheduleConfig.zeroed(), scenario)
        assert len(schedule) == 0

    def test_deterministic(self, scenario):
        config = FaultScheduleConfig(
            seed=7,
            duration_ms=20_000,
            surrogate_crash_rate_per_min=6.0,
            host_churn_rate_per_min=30.0,
            random_as_outages=2,
            message_loss_rate=0.01,
        )
        a = compile_schedule(config, scenario)
        b = compile_schedule(config, scenario)
        assert a.lines() == b.lines()
        assert len(a) > 0

    def test_seed_changes_schedule(self, scenario):
        base = dict(duration_ms=20_000, host_churn_rate_per_min=30.0)
        a = compile_schedule(FaultScheduleConfig(seed=1, **base), scenario)
        b = compile_schedule(FaultScheduleConfig(seed=2, **base), scenario)
        assert a.lines() != b.lines()

    def test_events_sorted_and_paired(self, scenario):
        config = FaultScheduleConfig(
            bootstrap_outages=(BootstrapOutage(index=0, start_ms=100.0, duration_ms=500.0),),
            loss_bursts=(LossBurst(start_ms=50.0, duration_ms=200.0, loss_rate=0.3),),
        )
        schedule = compile_schedule(config, scenario)
        times = [e.at_ms for e in schedule.events]
        assert times == sorted(times)
        kinds = [e.kind for e in schedule.events]
        assert kinds.count("bootstrap-down") == kinds.count("bootstrap-up") == 1
        assert kinds.count("loss-burst-start") == kinds.count("loss-burst-end") == 1

    def test_churn_wave_picks_fraction(self, scenario):
        config = FaultScheduleConfig(churn_waves=(ChurnWave(at_ms=10.0, fraction=0.25),))
        schedule = compile_schedule(config, scenario)
        leaves = [e for e in schedule.events if e.kind == "host-leave"]
        expected = max(1, round(0.25 * len(scenario.population.hosts)))
        assert len(leaves) == expected
        assert all(e.at_ms == 10.0 for e in leaves)


class TestNetworkFaults:
    def _pair(self, scenario):
        hosts = scenario.population.hosts
        for a in hosts:
            for b in hosts:
                if a.ip != b.ip and scenario.latency.host_rtt_ms(a, b) is not None:
                    return a, b
        pytest.skip("no reachable host pair")

    def _net(self, scenario):
        sim = Simulator()
        net = SimNetwork(sim, scenario.latency)
        return sim, net

    def test_down_host_drops(self, scenario):
        a, b = self._pair(scenario)
        sim, net = self._net(scenario)
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        net.set_host_down(b.ip)
        assert not net.send(a, b.ip, "ping")
        assert net.dropped_by_reason["host-down"] == 1
        net.set_host_up(b.ip)
        assert net.send(a, b.ip, "ping")

    def test_down_as_drops_both_directions(self, scenario):
        a, b = self._pair(scenario)
        sim, net = self._net(scenario)
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        net.set_as_down(b.asn)
        assert not net.send(a, b.ip, "ping")
        assert not net.send(b, a.ip, "ping")
        assert net.dropped_by_reason["as-down"] == 2
        net.set_as_up(b.asn)
        assert net.send(a, b.ip, "ping")

    def test_request_response_timing(self, scenario):
        a, b = self._pair(scenario)
        sim, net = self._net(scenario)
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        rtt = scenario.latency.host_rtt_ms(a, b)
        seen = []
        ok = net.request(
            a, b.ip, "ping", timeout_ms=10_000,
            on_response=lambda: seen.append(sim.now_ms),
        )
        assert ok
        sim.run()
        assert seen == [pytest.approx(rtt)]
        assert net.total_timeouts == 0

    def test_request_timeout_on_down_host(self, scenario):
        a, b = self._pair(scenario)
        sim, net = self._net(scenario)
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        net.set_host_down(b.ip)
        fired = []
        ok = net.request(
            a, b.ip, "ping", timeout_ms=500.0,
            on_response=lambda: fired.append("response"),
            on_timeout=lambda: fired.append(sim.now_ms),
        )
        assert not ok
        sim.run()
        assert fired == [500.0]
        assert net.timeouts_by_category["ping"] == 1
        assert net.total_timeouts == 1

    def test_loss_burst_full_rate_drops_everything(self, scenario):
        a, b = self._pair(scenario)
        sim, net = self._net(scenario)
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        net.push_loss(1.0)
        assert not net.send(a, b.ip, "ping")
        assert net.dropped_by_reason["loss"] == 1
        net.pop_loss(1.0)
        assert net.send(a, b.ip, "ping")

    def test_loss_sampling_is_seeded(self, scenario):
        a, b = self._pair(scenario)
        outcomes = []
        for _ in range(2):
            sim, net = self._net(scenario)
            net.register(a, lambda m: None)
            net.register(b, lambda m: None)
            net.reseed_loss(42)
            net.set_background_loss(0.5)
            outcomes.append([net.send(a, b.ip, "ping") for _ in range(50)])
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]

    def test_as_scoped_loss_only_hits_that_as(self, scenario):
        hosts = scenario.population.hosts
        a = hosts[0]
        b = next((h for h in hosts if h.asn != a.asn), None)
        if b is None:
            pytest.skip("single-AS population")
        sim, net = self._net(scenario)
        net.push_loss(1.0, asn=b.asn)
        assert net.loss_rate_between(a, b) == 1.0
        other = next(
            (h for h in hosts if h.asn not in (a.asn, b.asn)), None
        )
        if other is not None:
            assert net.loss_rate_between(a, other) == 0.0


class TestInjector:
    def test_injector_log_is_deterministic(self, scenario):
        config = FaultScheduleConfig(
            seed=5,
            duration_ms=10_000,
            host_churn_rate_per_min=60.0,
            bootstrap_outages=(BootstrapOutage(index=0, start_ms=10.0, duration_ms=100.0),),
        )
        logs = []
        for _ in range(2):
            runtime = ASAPRuntime(scenario, ASAPConfig())
            schedule = compile_schedule(config, scenario)
            injector = FaultInjector(runtime, schedule)
            installed = injector.install()
            assert installed == len(schedule)
            runtime.run()
            logs.append(injector.log_lines())
        assert logs[0] == logs[1]
        assert len(logs[0]) == installed

    def test_bootstrap_outage_takes_host_down_and_up(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        config = FaultScheduleConfig(
            bootstrap_outages=(BootstrapOutage(index=0, start_ms=10.0, duration_ms=100.0),),
        )
        injector = FaultInjector(runtime, compile_schedule(config, scenario))
        injector.install()
        ip = runtime.bootstrap_hosts[0].ip
        runtime.run(until_ms=50.0)
        assert runtime.network.is_host_down(ip)
        runtime.run()
        assert not runtime.network.is_host_down(ip)

    def test_double_install_rejected(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        injector = FaultInjector(
            runtime, compile_schedule(FaultScheduleConfig.zeroed(), scenario)
        )
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_surrogate_crash_promotes(self, scenario):
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 2:
            pytest.skip("no multi-host cluster")
        runtime = ASAPRuntime(scenario, ASAPConfig())
        idx = scenario.matrices.index_of[big.prefix]
        before = runtime.system.surrogate(idx).ip
        from repro.faults.schedule import FaultEvent, FaultSchedule

        schedule = FaultSchedule(
            seed=0,
            duration_ms=1_000.0,
            events=(
                FaultEvent(at_ms=5.0, kind="surrogate-crash", target=f"cluster:{idx}"),
            ),
        )
        injector = FaultInjector(runtime, schedule)
        injector.install()
        runtime.run()
        after = runtime.system.surrogate(idx).ip
        assert after != before
        assert runtime.network.is_host_down(before)
        assert injector.log[0].outcome == "applied"
