"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bogus"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["section3", "--scale", "huge"])


class TestCommands:
    def test_generate_writes_artifacts(self, tmp_path, capsys):
        rc = main(["generate", "--scale", "tiny", "--seed", "2",
                   "--output", str(tmp_path / "out")])
        assert rc == 0
        out_dir = tmp_path / "out"
        assert (out_dir / "rib.dump").exists()
        assert (out_dir / "updates.log").exists()
        assert (out_dir / "matrices.npz").exists()
        assert "wrote" in capsys.readouterr().out

    def test_generated_artifacts_load_back(self, tmp_path):
        main(["generate", "--scale", "tiny", "--seed", "2",
              "--output", str(tmp_path)])
        from repro.storage import load_matrices, read_rib_file

        entries = read_rib_file(tmp_path / "rib.dump")
        matrices = load_matrices(tmp_path / "matrices.npz")
        assert entries
        assert matrices.count > 0

    def test_section3(self, capsys):
        rc = main(["section3", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "direct" in out and "latent" in out

    def test_section7_with_records(self, tmp_path, capsys):
        records = tmp_path / "records.csv"
        rc = main(["section7", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300", "--latent", "8",
                   "--records", str(records)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ASAP" in out and "OPT" in out
        assert records.exists()
        from repro.storage import load_records_csv

        assert load_records_csv(records)

    def test_call(self, capsys):
        rc = main(["call", "--scale", "tiny", "--seed", "11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "direct RTT" in out

    def test_scalability(self, capsys):
        rc = main(["scalability", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300", "--latent", "6"])
        assert rc == 0
        assert "scalability error" in capsys.readouterr().out


class TestExtendedCommands:
    def test_limits(self, capsys):
        rc = main(["limits", "--scale", "tiny", "--seed", "11", "--sessions", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "detected Skype limits" in out

    def test_robustness(self, capsys):
        rc = main(["robustness", "--seed", "11", "--worlds", "1",
                   "--sessions", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out

    def test_chaos_writes_fault_log_and_summary(self, tmp_path, capsys):
        rc = main([
            "chaos", "--scale", "tiny", "--seed", "11",
            "--sessions", "10", "--joins", "10",
            "--duration-ms", "15000", "--media-ms", "4000",
            "--churn-rate", "30", "--crash-rate", "4", "--loss-rate", "0.02",
            "--fault-log", str(tmp_path / "faults.jsonl"),
            "--json", str(tmp_path / "chaos.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos run:" in out
        assert "calls" in out
        import json

        log_lines = (tmp_path / "faults.jsonl").read_text().strip().splitlines()
        assert log_lines
        for line in log_lines:
            assert json.loads(line)["kind"]
        summary = json.loads((tmp_path / "chaos.json").read_text())
        assert sum(summary["calls"].values()) == 10

    def test_chaos_sweep(self, capsys):
        rc = main([
            "chaos", "--scale", "tiny", "--seed", "11",
            "--sessions", "8", "--joins", "8",
            "--duration-ms", "10000", "--churn-rate", "20",
            "--sweep", "0,1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "intensity 0:" in out
        assert "intensity 1:" in out
