"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


#: The uniform interface every subcommand must accept (wired once in
#: ``_subcommand``; this test file is the drift alarm).
COMMON_FLAGS = (
    "--scale", "--seed", "--workers", "--cache-dir",
    "--obs-dir", "--log-level", "--trace",
)


def _subparsers(parser):
    import argparse

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("no subparsers registered")


class TestUniformFlags:
    def test_every_subcommand_accepts_the_common_flags(self):
        choices = _subparsers(make_parser())
        assert choices  # at least one subcommand registered
        for name, subparser in choices.items():
            options = set(subparser._option_string_actions)
            missing = [flag for flag in COMMON_FLAGS if flag not in options]
            assert not missing, (
                f"subcommand {name!r} drifted from the uniform interface: "
                f"missing {missing} (register it via _subcommand)"
            )

    def test_common_flags_parse_on_every_subcommand(self):
        parser = make_parser()
        for name, subparser in _subparsers(parser).items():
            argv = [name, "--scale", "tiny", "--seed", "7",
                    "--obs-dir", "obs", "--log-level", "debug", "--trace"]
            # Satisfy per-command required options generically.
            for option, action in subparser._option_string_actions.items():
                if action.required and option not in argv:
                    argv += [option, "out"]
            args = parser.parse_args(argv)
            assert args.seed == 7
            assert args.obs_dir == "obs"
            assert args.log_level == "debug"
            assert args.trace is True

    def test_trace_without_obs_dir_is_an_error(self, capsys):
        rc = main(["section3", "--scale", "tiny", "--trace"])
        assert rc == 2
        assert "--trace requires --obs-dir" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bogus"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["section3", "--scale", "huge"])


class TestCommands:
    def test_generate_writes_artifacts(self, tmp_path, capsys):
        rc = main(["generate", "--scale", "tiny", "--seed", "2",
                   "--output", str(tmp_path / "out")])
        assert rc == 0
        out_dir = tmp_path / "out"
        assert (out_dir / "rib.dump").exists()
        assert (out_dir / "updates.log").exists()
        assert (out_dir / "matrices.npz").exists()
        assert "wrote" in capsys.readouterr().out

    def test_generated_artifacts_load_back(self, tmp_path):
        main(["generate", "--scale", "tiny", "--seed", "2",
              "--output", str(tmp_path)])
        from repro.storage import load_matrices, read_rib_file

        entries = read_rib_file(tmp_path / "rib.dump")
        matrices = load_matrices(tmp_path / "matrices.npz")
        assert entries
        assert matrices.count > 0

    def test_section3(self, capsys):
        rc = main(["section3", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "direct" in out and "latent" in out

    def test_section7_with_records(self, tmp_path, capsys):
        records = tmp_path / "records.csv"
        rc = main(["section7", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300", "--latent", "8",
                   "--records", str(records)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ASAP" in out and "OPT" in out
        assert records.exists()
        from repro.storage import load_records_csv

        assert load_records_csv(records)

    def test_call(self, capsys):
        rc = main(["call", "--scale", "tiny", "--seed", "11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "direct RTT" in out

    def test_call_with_explicit_pair(self, capsys):
        rc = main(["call", "--scale", "tiny", "--seed", "11",
                   "--src", "0", "--dst", "5"])
        assert rc == 0
        assert "direct RTT" in capsys.readouterr().out

    def test_call_src_without_dst_is_an_error(self, capsys):
        rc = main(["call", "--scale", "tiny", "--seed", "11", "--src", "0"])
        assert rc == 2
        assert "--src and --dst" in capsys.readouterr().err

    def test_call_host_index_out_of_range(self, capsys):
        rc = main(["call", "--scale", "tiny", "--seed", "11",
                   "--src", "0", "--dst", "10000000"])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err

    def test_version_reports_package_and_schema_versions(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert "codec schema" in out
        assert "manifest schema" in out

    def test_scalability(self, capsys):
        rc = main(["scalability", "--scale", "tiny", "--seed", "11",
                   "--sessions", "300", "--latent", "6"])
        assert rc == 0
        assert "scalability error" in capsys.readouterr().out


class TestExtendedCommands:
    def test_limits(self, capsys):
        rc = main(["limits", "--scale", "tiny", "--seed", "11", "--sessions", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "detected Skype limits" in out

    def test_robustness(self, capsys):
        rc = main(["robustness", "--seed", "11", "--worlds", "1",
                   "--sessions", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out

    def test_chaos_writes_fault_log_and_summary(self, tmp_path, capsys):
        rc = main([
            "chaos", "--scale", "tiny", "--seed", "11",
            "--sessions", "10", "--joins", "10",
            "--duration-ms", "15000", "--media-ms", "4000",
            "--churn-rate", "30", "--crash-rate", "4", "--loss-rate", "0.02",
            "--fault-log", str(tmp_path / "faults.jsonl"),
            "--json", str(tmp_path / "chaos.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos run:" in out
        assert "calls" in out
        import json

        log_lines = (tmp_path / "faults.jsonl").read_text().strip().splitlines()
        assert log_lines
        for line in log_lines:
            assert json.loads(line)["kind"]
        summary = json.loads((tmp_path / "chaos.json").read_text())
        assert sum(summary["calls"].values()) == 10

    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "trace"
        rc = main([
            "trace", "--scale", "tiny", "--seed", "11",
            "--sessions", "4", "--joins", "4", "--skype-sessions", "2",
            "--duration-ms", "15000", "--media-ms", "4000",
            "--skype-ms", "30000", "--timelines", "2",
            "--output", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        # The aggregate report covers all four limits...
        assert "Skype limits" in printed
        for needle in ("L1 relay-RTT gap", "L2 same-AS duplicate probes",
                       "L3 stabilization", "L4 probe messages"):
            assert needle in printed
        # ...and per-call timelines were rendered.
        assert "setup.ping" in printed
        # traces.jsonl exists beside the manifest and validates.
        from repro import obs

        records = obs.load_trace_file(out / obs.TRACES_FILENAME)
        assert records
        manifest = obs.load_manifest(out / obs.MANIFEST_FILENAME)
        assert manifest["traces_file"] == obs.TRACES_FILENAME
        assert manifest["traces_written"] == len(records)

    def test_chaos_with_trace_writes_trace_file(self, tmp_path, capsys):
        rc = main([
            "chaos", "--scale", "tiny", "--seed", "11",
            "--sessions", "6", "--joins", "6", "--latent", "6",
            "--duration-ms", "10000", "--media-ms", "4000",
            "--churn-rate", "60", "--crash-rate", "10",
            "--obs-dir", str(tmp_path), "--trace",
        ])
        assert rc == 0
        assert "chaos run:" in capsys.readouterr().out
        from repro import obs
        from repro.obs import trace_analysis as ta

        records = obs.load_trace_file(tmp_path / obs.TRACES_FILENAME)
        trees = ta.build_trees(records)
        assert any(
            t.root is not None and t.root.name == "call" for t in trees.values()
        )
        assert any(
            t.root is not None and t.root.name == "fault" for t in trees.values()
        )

    def test_demo_loopback(self, capsys):
        rc = main(["demo", "--scale", "tiny", "--seed", "0",
                   "--media-ms", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loopback demo" in out
        assert "MOS" in out
        assert "setup critical path" in out

    def test_demo_records_versions_in_manifest(self, tmp_path):
        rc = main(["demo", "--scale", "tiny", "--seed", "0",
                   "--media-ms", "600", "--obs-dir", str(tmp_path)])
        assert rc == 0
        from repro import __version__, obs
        from repro.net.codec import CODEC_SCHEMA_VERSION

        manifest = obs.load_manifest(tmp_path / obs.MANIFEST_FILENAME)
        assert manifest["annotations"]["package_version"] == __version__
        assert manifest["annotations"]["codec_schema"] == CODEC_SCHEMA_VERSION

    def test_chaos_sweep(self, capsys):
        rc = main([
            "chaos", "--scale", "tiny", "--seed", "11",
            "--sessions", "8", "--joins", "8",
            "--duration-ms", "10000", "--churn-rate", "20",
            "--sweep", "0,1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "intensity 0:" in out
        assert "intensity 1:" in out
