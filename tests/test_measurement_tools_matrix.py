"""Tests for measurement tools (ping/traceroute/King) and delegate matrices."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement import (
    KingEstimator,
    Ping,
    Traceroute,
    apply_king_noise,
    compute_delegate_matrices,
)
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=3)


@pytest.fixture(scope="module")
def matrices(scenario):
    return scenario.matrices


class TestPing:
    def test_noise_is_additive_positive(self, scenario):
        ping = Ping(scenario.latency, seed=1, noise_ms=2.0)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        truth = scenario.latency.host_rtt_ms(a, b)
        result = ping.measure(a, b)
        assert result.responded
        assert result.rtt_ms >= truth

    def test_min_of_probes_tightens(self, scenario):
        ping = Ping(scenario.latency, seed=1, noise_ms=5.0)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        single = ping.measure(a, b).rtt_ms
        best = ping.measure_min_of(a, b, probes=10).rtt_ms
        assert best <= single + 5.0  # min over probes can't be much worse

    def test_rejects_bad_params(self, scenario):
        with pytest.raises(MeasurementError):
            Ping(scenario.latency, noise_ms=-1.0)
        ping = Ping(scenario.latency)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        with pytest.raises(MeasurementError):
            ping.measure_min_of(a, b, probes=0)


class TestTraceroute:
    def test_path_endpoints(self, scenario):
        tr = Traceroute(scenario.latency)
        a, b = scenario.population.hosts[0], scenario.population.hosts[-1]
        path = tr.as_path(a, b)
        if path is None:
            pytest.skip("unreachable")
        assert path[0] == a.asn and path[-1] == b.asn

    def test_same_as_single_hop(self, scenario):
        tr = Traceroute(scenario.latency)
        hosts = scenario.population.hosts
        same = None
        for x in hosts:
            for y in hosts:
                if x.ip != y.ip and x.asn == y.asn:
                    same = (x, y)
                    break
            if same:
                break
        if same is None:
            pytest.skip("no same-AS host pair")
        assert tr.as_path(*same) == (same[0].asn,)


class TestKing:
    def test_non_response_deterministic_per_pair(self, scenario):
        king = KingEstimator(scenario.latency, seed=2, non_response_rate=0.5)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        results = {king.estimate(a, b) is None for _ in range(5)}
        assert len(results) == 1  # always responds or never responds

    def test_symmetric_pair_key(self, scenario):
        king = KingEstimator(scenario.latency, seed=2, non_response_rate=0.5)
        a, b = scenario.population.hosts[2], scenario.population.hosts[3]
        assert (king.estimate(a, b) is None) == (king.estimate(b, a) is None)

    def test_error_bounded(self, scenario):
        king = KingEstimator(scenario.latency, seed=2, error_sigma=0.05, non_response_rate=0.0)
        errors = []
        hosts = scenario.population.hosts
        for i in range(0, 40, 2):
            a, b = hosts[i], hosts[i + 1]
            truth = scenario.latency.host_rtt_ms(a, b)
            est = king.estimate(a, b)
            if truth and est:
                errors.append(abs(est - truth) / truth)
        assert np.median(errors) < 0.2

    def test_rejects_bad_params(self, scenario):
        with pytest.raises(MeasurementError):
            KingEstimator(scenario.latency, non_response_rate=1.0)
        with pytest.raises(MeasurementError):
            KingEstimator(scenario.latency, error_sigma=-0.1)

    def test_estimate_many(self, scenario):
        king = KingEstimator(scenario.latency, seed=2)
        hosts = scenario.population.hosts
        pairs = [(hosts[0], hosts[1]), (hosts[2], hosts[3])]
        assert len(king.estimate_many(pairs)) == 2


class TestDelegateMatrices:
    def test_shapes_consistent(self, matrices):
        n = matrices.count
        assert matrices.rtt_ms.shape == (n, n)
        assert matrices.loss.shape == (n, n)
        assert matrices.as_hops.shape == (n, n)
        assert matrices.sizes.shape == (n,)
        assert len(matrices.prefixes) == n

    def test_matrix_matches_direct_model(self, scenario, matrices):
        # Matrix entries must agree exactly with the latency model
        # applied to the delegates.
        clusters = scenario.clusters.all_clusters()
        model = scenario.latency
        for i in range(0, matrices.count, 7):
            for j in range(0, matrices.count, 11):
                if i == j:
                    continue
                truth = model.host_rtt_ms(clusters[i].delegate, clusters[j].delegate)
                got = matrices.rtt_ms[i, j]
                if truth is None:
                    assert not np.isfinite(got)
                else:
                    assert got == pytest.approx(truth, rel=1e-9)

    def test_hops_match_policy_paths(self, scenario, matrices):
        model = scenario.latency
        for i in range(0, matrices.count, 9):
            for j in range(0, matrices.count, 13):
                if i == j:
                    continue
                path = model.as_path(int(matrices.asn_of[i]), int(matrices.asn_of[j]))
                if path is None:
                    assert matrices.as_hops[i, j] == -1
                else:
                    assert matrices.as_hops[i, j] == len(path) - 1

    def test_diagonal_small(self, matrices):
        diag = np.diag(matrices.rtt_ms)
        assert np.all(np.isfinite(diag))
        assert np.all(diag < 100.0)

    def test_hop_latency_correlation(self, matrices):
        # Paper property (3): longer AS paths are likelier to be slower.
        finite = np.isfinite(matrices.rtt_ms) & (matrices.as_hops > 0)
        hops = matrices.as_hops[finite].astype(float)
        rtts = matrices.rtt_ms[finite]
        if len(set(hops)) < 2:
            pytest.skip("degenerate hop distribution")
        corr = np.corrcoef(hops, rtts)[0, 1]
        assert corr > 0.2

    def test_one_hop_rtt_helper(self, matrices):
        a, r, b = 0, 1, 2
        expected = matrices.rtt_ms[a, r] + matrices.rtt_ms[r, b] + 40.0
        assert matrices.one_hop_rtt(a, r, b) == pytest.approx(expected)

    def test_two_hop_rtt_helper(self, matrices):
        a, r1, r2, b = 0, 1, 2, 3
        expected = (
            matrices.rtt_ms[a, r1]
            + matrices.rtt_ms[r1, r2]
            + matrices.rtt_ms[r2, b]
            + 80.0
        )
        assert matrices.two_hop_rtt(a, r1, r2, b) == pytest.approx(expected)

    def test_one_hop_path_loss(self, matrices):
        a, r, b = 0, 1, 2
        loss = matrices.one_hop_path_loss(a, r, b)
        assert 0.0 <= loss <= 1.0
        assert loss >= max(matrices.loss[a, r], matrices.loss[r, b]) - 1e-12

    def test_estimate_host_rtt(self, scenario, matrices):
        hosts = scenario.population.hosts
        a, b = hosts[0], hosts[-1]
        est = matrices.estimate_host_rtt(scenario.clusters, a, b)
        ia = matrices.index_of_host(scenario.clusters, a)
        ib = matrices.index_of_host(scenario.clusters, b)
        assert est == matrices.rtt_ms[ia, ib]


class TestKingNoiseMatrix:
    def test_noise_preserves_shape_and_diag(self, matrices):
        noisy = apply_king_noise(matrices, seed=1, non_response_rate=0.2)
        assert noisy.rtt_ms.shape == matrices.rtt_ms.shape
        assert np.allclose(np.diag(noisy.rtt_ms), np.diag(matrices.rtt_ms))

    def test_non_response_fraction(self, matrices):
        noisy = apply_king_noise(matrices, seed=1, non_response_rate=0.3)
        off_diag = ~np.eye(matrices.count, dtype=bool)
        was_finite = np.isfinite(matrices.rtt_ms) & off_diag
        now_inf = was_finite & ~np.isfinite(noisy.rtt_ms)
        frac = now_inf.sum() / max(was_finite.sum(), 1)
        assert 0.15 < frac < 0.45

    def test_non_response_symmetric(self, matrices):
        noisy = apply_king_noise(matrices, seed=1, non_response_rate=0.3)
        inf_mask = ~np.isfinite(noisy.rtt_ms)
        assert np.array_equal(inf_mask, inf_mask.T)

    def test_rejects_bad_rate(self, matrices):
        with pytest.raises(MeasurementError):
            apply_king_noise(matrices, non_response_rate=1.0)
