"""Tests for the deterministic time-series telemetry layer.

The contract under test (see ``repro/obs/timeseries.py``):

- sample buffers sort deterministically and write canonical JSONL, so
  identical sample streams produce byte-identical ``telemetry.jsonl``;
- :class:`WindowSampler` emits on an exact cadence grid driven by a
  virtual clock, never by host speed;
- histogram raw-sample retention is bounded by a deterministic
  reservoir, surfaced as the ``telemetry.samples_dropped`` counter;
- forked workers' timeline samples merge back into the parent run;
- trace context carried over the wire (two tracers, two files) merges
  into one connected causal tree;
- ``repro report`` renders timelines, a self-time profile and a
  critical path from a run directory.
"""

import json

import pytest

from repro import obs
from repro.obs.manifest import load_manifest, validate_manifest
from repro.obs.registry import RESERVOIR_SIZE, MetricsRegistry
from repro.obs.report import (
    critical_path,
    flame_document,
    load_run,
    render_report,
    self_time_profile,
    series_by_subsystem,
    sparkline,
    write_flame,
)
from repro.obs.timeseries import (
    DEFAULT_CADENCE_MS,
    NULL_TIMELINE,
    TELEMETRY_FILENAME,
    TELEMETRY_SCHEMA_VERSION,
    TimeSeries,
    WindowSampler,
    load_telemetry_file,
    validate_telemetry_records,
)
from repro.obs.trace import Tracer, load_trace_files
from repro.obs.trace_analysis import build_trees
from repro.util.parallel import chunked, fork_available, run_forked


@pytest.fixture(autouse=True)
def no_leaked_run():
    yield
    if obs.enabled():
        obs.finish_run()


def _fill(timeline):
    """A fixed sample stream exercising tags, ties and wall samples."""
    timeline.sample("net.sent", 2000.0, 7, category="control")
    timeline.sample("net.sent", 1000.0, 3, category="media")
    timeline.sample("net.sent", 1000.0, 5, category="control")
    timeline.sample("control.alive_hosts", 1000.0, 42)
    timeline.sample("engine.stage_seconds", 1500.0, 0.25, wall=True, stage="sweep")


class TestTimeSeries:
    def test_snapshot_sorts_by_time_series_tags(self):
        timeline = TimeSeries()
        _fill(timeline)
        keys = [
            (r["t_ms"], r["series"], r.get("tags", {}))
            for r in timeline.snapshot()
        ]
        assert keys == sorted(
            keys, key=lambda k: (k[0], k[1], json.dumps(k[2], sort_keys=True))
        )
        assert keys[0] == (1000.0, "control.alive_hosts", {})

    def test_insertion_order_breaks_exact_ties(self):
        timeline = TimeSeries()
        timeline.sample("s", 5.0, 1)
        timeline.sample("s", 5.0, 2)
        assert [r["value"] for r in timeline.snapshot()] == [1, 2]

    def test_values_canonicalised(self):
        timeline = TimeSeries()
        timeline.sample("s", 1.0, 0.1 + 0.2)
        timeline.sample("s", 2.0, float("nan"))
        timeline.sample("s", 3.0, float("inf"))
        timeline.sample("s", 4.0000004, True)
        records = timeline.snapshot()
        assert records[0]["value"] == 0.3
        assert records[1]["value"] is None
        assert records[2]["value"] is None
        assert records[3]["value"] is True and records[3]["t_ms"] == 4.0

    def test_tags_coerced_to_sorted_strings(self):
        timeline = TimeSeries()
        timeline.sample("s", 1.0, 1, shard=2, zone="b")
        assert timeline.snapshot()[0]["tags"] == {"shard": "2", "zone": "b"}

    def test_write_load_round_trip(self, tmp_path):
        timeline = TimeSeries(cadence_ms=250.0)
        _fill(timeline)
        path, count = timeline.write(tmp_path / TELEMETRY_FILENAME)
        assert count == timeline.sample_count == 5
        records = load_telemetry_file(path)
        assert records[0] == {
            "kind": "header",
            "schema": TELEMETRY_SCHEMA_VERSION,
            "cadence_ms": 250.0,
        }
        assert len(records) == 6
        assert validate_telemetry_records(records) == []

    def test_identical_streams_write_identical_bytes(self, tmp_path):
        a, b = TimeSeries(), TimeSeries()
        _fill(a)
        _fill(b)
        a.write(tmp_path / "a.jsonl")
        b.write(tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()

    def test_merge_samples_reproduces_direct_emission(self):
        direct, child, parent = TimeSeries(), TimeSeries(), TimeSeries()
        _fill(direct)
        _fill(child)
        parent.merge_samples(child.snapshot())
        assert parent.snapshot() == direct.snapshot()
        assert parent.series_names() == direct.series_names()

    def test_merge_ignores_foreign_record_kinds(self):
        parent = TimeSeries()
        parent.merge_samples([{"kind": "header", "schema": 99}])
        assert parent.sample_count == 0

    def test_null_timeline_is_falsy_and_inert(self):
        assert not NULL_TIMELINE
        NULL_TIMELINE.sample("s", 1.0, 2, tag="x")  # must not raise
        assert bool(TimeSeries())

    def test_validator_flags_malformed_files(self):
        assert validate_telemetry_records([]) != []
        bad_header = [{"kind": "sample", "series": "s", "t_ms": 0, "value": 1}]
        assert "header" in validate_telemetry_records(bad_header)[0]
        wrong_schema = [{"kind": "header", "schema": 99, "cadence_ms": 1000.0}]
        assert "schema" in validate_telemetry_records(wrong_schema)[0]
        header = {"kind": "header", "schema": TELEMETRY_SCHEMA_VERSION}
        out_of_order = [
            header,
            {"kind": "sample", "series": "s", "t_ms": 5.0, "value": 1},
            {"kind": "sample", "series": "s", "t_ms": 1.0, "value": 2},
        ]
        assert any("order" in p for p in validate_telemetry_records(out_of_order))
        unknown_kind = [header, {"kind": "blob"}]
        assert any("kind" in p for p in validate_telemetry_records(unknown_kind))
        extra_field = [
            header,
            {"kind": "sample", "series": "s", "t_ms": 1.0, "value": 1, "oops": 2},
        ]
        assert any("oops" in p for p in validate_telemetry_records(extra_field))

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        path.write_text('{"kind":"blob"}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            load_telemetry_file(path)


class TestWindowSampler:
    def test_counter_watch_emits_per_window_deltas(self):
        timeline = TimeSeries()
        registry = MetricsRegistry()
        counter = registry.counter("msgs")
        counter.inc(10)  # pre-registration counts are the baseline
        sampler = WindowSampler(timeline, cadence_ms=1000.0)
        sampler.watch_counter("rate.msgs", counter, category="all")
        counter.inc(3)
        sampler.advance(1000.0)
        counter.inc(5)
        sampler.advance(2000.0)
        sampler.advance(3000.0)
        records = timeline.snapshot()
        assert [(r["t_ms"], r["value"]) for r in records] == [
            (1000.0, 3),
            (2000.0, 5),
            (3000.0, 0),
        ]
        assert all(r["tags"] == {"category": "all"} for r in records)

    def test_irregular_advance_still_fills_the_grid(self):
        timeline = TimeSeries()
        sampler = WindowSampler(timeline, cadence_ms=500.0)
        sampler.watch("g", lambda: 1.0)
        assert sampler.advance(499.9) == 0
        assert sampler.advance(2600.0) == 5  # 500..2500 all emitted at once
        assert [r["t_ms"] for r in timeline.snapshot()] == [
            500.0, 1000.0, 1500.0, 2000.0, 2500.0,
        ]

    def test_gauge_histogram_and_callable_watches(self):
        timeline = TimeSeries()
        registry = MetricsRegistry()
        gauge = registry.gauge("pool.open")
        histogram = registry.histogram("rtt")
        sampler = WindowSampler(timeline, cadence_ms=1000.0)
        sampler.watch_gauge("pool", gauge)
        sampler.watch_histogram("rtt.p95", histogram, q=0.95)
        values = iter([None, 7.0])
        sampler.watch("fn", lambda: next(values))
        sampler.advance(1000.0)  # gauge unset, histogram empty, fn None
        assert timeline.sample_count == 0
        gauge.set(4)
        histogram.observe(120.0)
        sampler.advance(2000.0)
        emitted = {r["series"]: r["value"] for r in timeline.snapshot()}
        assert emitted["pool"] == 4
        assert emitted["fn"] == 7.0
        assert emitted["rtt.p95"] is not None

    def test_rejects_non_positive_cadence(self):
        with pytest.raises(ValueError):
            WindowSampler(TimeSeries(), cadence_ms=0)

    def test_start_offset_shifts_the_grid(self):
        timeline = TimeSeries()
        sampler = WindowSampler(timeline, cadence_ms=1000.0, start_ms=250.0)
        sampler.watch("g", lambda: 1.0)
        sampler.advance(2300.0)
        assert [r["t_ms"] for r in timeline.snapshot()] == [1250.0, 2250.0]


class TestHistogramReservoir:
    def test_raw_samples_bounded_and_drops_counted(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rtt")
        total = RESERVOIR_SIZE * 4
        for i in range(total):
            histogram.observe(float(i % 350))
        assert len(histogram.samples) == RESERVOIR_SIZE
        assert histogram.count == total
        assert histogram.dropped == total - RESERVOIR_SIZE
        assert registry.counter_value("telemetry.samples_dropped") == histogram.dropped
        # bucket-backed quantiles are unaffected by reservoir eviction
        assert histogram.min == 0.0 and histogram.max == 349.0
        q50 = histogram.quantile(0.5)
        assert q50 is not None and 100.0 <= q50 <= 250.0

    def test_reservoir_is_deterministic(self):
        def run():
            registry = MetricsRegistry()
            histogram = registry.histogram("h")
            for i in range(RESERVOIR_SIZE * 3):
                histogram.observe(float(i))
            return list(histogram.samples)

        assert run() == run()

    def test_small_histograms_keep_every_sample(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for i in range(10):
            histogram.observe(float(i))
        assert histogram.samples == [float(i) for i in range(10)]
        assert histogram.dropped == 0
        assert registry.counter_value("telemetry.samples_dropped") == 0

    def test_merge_snapshot_keeps_the_bound(self):
        child = MetricsRegistry()
        h = child.histogram("h")
        for i in range(RESERVOIR_SIZE):
            h.observe(float(i))
        parent = MetricsRegistry()
        g = parent.histogram("h")
        for i in range(RESERVOIR_SIZE):
            g.observe(float(i + 1000))
        parent.merge_snapshot(child.snapshot())
        merged = parent.histogram("h")
        assert len(merged.samples) == RESERVOIR_SIZE
        assert merged.count == 2 * RESERVOIR_SIZE
        assert merged.dropped >= RESERVOIR_SIZE


def _timeline_worker(chunk):
    """Emit one deterministic timeline sample per item (fork target)."""
    for item in chunk:
        obs.timeline().sample("fork.item", float(item), item, worker="pool")
    return len(chunk)


class TestForkedTimeline:
    def test_child_samples_merge_into_parent(self):
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        items = list(range(24))
        with obs.observe(command="unit") as run:
            run.timeline.sample("parent.marker", 0.0, 1)
            results = run_forked(_timeline_worker, chunked(items, 6), processes=2)
            assert sum(results) == len(items)
            records = run.timeline.snapshot()
        fork_records = [r for r in records if r["series"] == "fork.item"]
        assert [r["value"] for r in fork_records] == items
        assert all(r["tags"] == {"worker": "pool"} for r in fork_records)
        assert sum(r["series"] == "parent.marker" for r in records) == 1

    def test_fork_merge_is_deterministic(self):
        if not fork_available():
            pytest.skip("no fork start method on this platform")

        def one_run():
            items = list(range(18))
            with obs.observe(command="unit") as run:
                run_forked(_timeline_worker, chunked(items, 5), processes=2)
                return run.timeline.snapshot()

        assert one_run() == one_run()


class TestTelemetryFileAndManifest:
    def test_run_writes_telemetry_and_manifest_block(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, command="unit") as run:
            _fill(run.timeline)
        records = load_telemetry_file(tmp_path / TELEMETRY_FILENAME)
        assert len(records) == 6
        manifest = load_manifest(tmp_path / "run_manifest.json")
        assert validate_manifest(manifest) == []
        block = manifest["telemetry"]
        assert block["file"] == TELEMETRY_FILENAME
        assert block["samples"] == 5
        assert block["series"] == 3
        assert block["cadence_ms"] == DEFAULT_CADENCE_MS
        assert block["samples_dropped"] == 0

    def test_identical_runs_emit_identical_telemetry_bytes(self, tmp_path):
        def one_run(where):
            with obs.observe(obs_dir=where, command="unit") as run:
                _fill(run.timeline)
            return (where / TELEMETRY_FILENAME).read_bytes()

        assert one_run(tmp_path / "a") == one_run(tmp_path / "b")


class TestCrossProcessTraces:
    def _two_process_trace(self, tmp_path):
        """Simulate dial/serve tracers joined by wire-carried context."""
        dial = Tracer(tmp_path / "dial" / "traces.jsonl")
        dial.set_node("d")
        serve = Tracer(tmp_path / "serve" / "traces.jsonl")
        serve.set_node("s")
        call = dial.begin("call", at_ms=0.0, callee="10.0.0.2")
        request = call.child("net.request", at_ms=1.0)
        # ... the (trace_id, span_id) pair rides the codec extension ...
        handler = serve.continue_trace(
            request.trace_id, request.span_id, "serve.CallSetup", at_ms=2.0
        )
        handler.end(at_ms=5.0)
        request.end(at_ms=6.0)
        call.end(at_ms=7.0)
        dial.close()
        serve.close()
        return dial.path, serve.path

    def test_merged_files_build_one_connected_tree(self, tmp_path):
        dial_path, serve_path = self._two_process_trace(tmp_path)
        records = load_trace_files([dial_path, serve_path])
        trees = build_trees(records)
        assert len(trees) == 1
        tree = next(iter(trees.values()))
        assert tree.root.name == "call"
        assert not tree.orphans
        serve_span = tree.root.first("serve.CallSetup")
        assert serve_span is not None
        request_span = tree.root.first("net.request")
        assert serve_span in request_span.children

    def test_node_prefixes_keep_ids_disjoint(self, tmp_path):
        dial_path, serve_path = self._two_process_trace(tmp_path)
        records = load_trace_files([dial_path, serve_path])
        span_ids = [r["span"] for r in records if r.get("kind") == "span"]
        assert len(span_ids) == len(set(span_ids))
        assert {i.split("-")[0] for i in span_ids} == {"d", "s"}

    def test_single_file_alone_still_validates(self, tmp_path):
        # remote continuation spans must not demand their foreign parent
        _, serve_path = self._two_process_trace(tmp_path)
        records = load_trace_files([serve_path])
        assert any(r.get("remote") for r in records if r.get("kind") == "span")


class TestReport:
    def _run_dir(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, command="unit", trace=True) as run:
            tracer = obs.tracer()
            root = tracer.begin("call", at_ms=0.0)
            inner = root.child("net.request", at_ms=1.0)
            inner.end(at_ms=4.0)
            root.end(at_ms=5.0)
            for t in range(5):
                run.timeline.sample("control.alive_hosts", t * 1000.0, 40 + t)
                run.timeline.sample("net.sent", t * 1000.0, t * 3, category="media")
                run.timeline.sample("engine.rows", t * 1000.0, t * t, wall=True)
        return tmp_path

    def test_load_run_and_render(self, tmp_path):
        artifacts = load_run(self._run_dir(tmp_path))
        assert artifacts.manifest is not None
        assert artifacts.telemetry and artifacts.traces
        text = "\n".join(render_report(artifacts, width=32))
        for expected in ("control", "net", "engine", "critical path", "call"):
            assert expected in text

    def test_subsystem_grouping_and_sparkline(self, tmp_path):
        artifacts = load_run(self._run_dir(tmp_path))
        groups = series_by_subsystem(artifacts.telemetry)
        assert set(groups) == {"control", "net", "engine"}
        assert "net.sent{category=media}" in groups["net"]
        line = sparkline(groups["control"]["control.alive_hosts"], width=8)
        assert len(line) == 8 and line[0] != line[-1]

    def test_profile_critical_path_and_flame(self, tmp_path):
        artifacts = load_run(self._run_dir(tmp_path))
        trees = build_trees(artifacts.traces)
        profile = {row["name"]: row for row in self_time_profile(trees)}
        assert profile["call"]["self_ms"] == pytest.approx(2.0)  # 5 - 3
        assert profile["net.request"]["total_ms"] == pytest.approx(3.0)
        path = critical_path(next(iter(trees.values())))
        assert [hop["name"] for hop in path] == ["call", "net.request"]
        flame = flame_document(trees)
        assert flame["name"] == "run" and flame["children"][0]["name"] == "call"
        out, frames = write_flame(artifacts, tmp_path / "flame.json")
        assert frames >= 2
        assert json.loads(out.read_text(encoding="utf-8"))["name"] == "run"

    def test_load_run_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path / "nope")
