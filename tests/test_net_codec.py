"""Property-style tests for the wire codec.

Random messages of every registered type must round-trip bit-exactly,
and no amount of truncation or corruption may raise anything outside
the :class:`repro.errors.WireError` family (or hang): the decoder is
total over arbitrary bytes.
"""

import random
import string

import pytest

from repro.errors import CodecError, FrameError, WireError
from repro.net.codec import (
    CODEC_SCHEMA_VERSION,
    ERROR,
    TRACE_EXT_VERSION,
    TRACE_FLAG,
    MAX_PAYLOAD_BYTES,
    MESSAGE_TYPES,
    ONEWAY,
    REQUEST,
    RESPONSE,
    CloseSetReply,
    ErrorFrame,
    Frame,
    FrameDecoder,
    Join,
    Media,
    Ping,
    decode_frame,
    encode_frame,
)
from repro.netaddr import IPv4Address

_FLAGS = (ONEWAY, REQUEST, RESPONSE, ERROR)


def _random_value(kind: str, rng: random.Random):
    if kind == "u8":
        return rng.randrange(1 << 8)
    if kind == "u16":
        return rng.randrange(1 << 16)
    if kind == "u32":
        return rng.randrange(1 << 32)
    if kind == "u64":
        return rng.randrange(1 << 64)
    if kind == "i32":
        return rng.randrange(-(1 << 31), 1 << 31)
    if kind == "f64":
        return rng.choice([0.0, -1.5, rng.uniform(-1e9, 1e9), float(rng.randrange(10**6))])
    if kind == "ip":
        return IPv4Address(rng.randrange(1 << 32))
    if kind == "str":
        alphabet = string.ascii_letters + string.digits + " .:-/§µ"
        return "".join(rng.choice(alphabet) for _ in range(rng.randrange(40)))
    if kind == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
    if kind == "pairs":
        return tuple(
            (rng.randrange(1 << 32), rng.uniform(0.0, 5000.0))
            for _ in range(rng.randrange(8))
        )
    raise AssertionError(f"unknown field kind {kind!r}")


def _random_message(cls, rng: random.Random):
    return cls(**{name: _random_value(kind, rng) for name, kind in cls.FIELDS})


class TestRoundTrip:
    @pytest.mark.parametrize("msg_type", sorted(MESSAGE_TYPES))
    def test_random_messages_round_trip(self, msg_type):
        cls = MESSAGE_TYPES[msg_type]
        rng = random.Random(msg_type)
        for _ in range(50):
            message = _random_message(cls, rng)
            flags = rng.choice(_FLAGS)
            request_id = rng.randrange(1 << 32)
            frame = decode_frame(encode_frame(message, flags, request_id))
            assert frame == Frame(message=message, flags=flags, request_id=request_id)

    def test_encoding_is_deterministic(self):
        rng = random.Random(7)
        for msg_type, cls in sorted(MESSAGE_TYPES.items()):
            message = _random_message(cls, rng)
            assert encode_frame(message, REQUEST, 9) == encode_frame(message, REQUEST, 9)

    def test_every_protocol_message_is_registered(self):
        # 19 messages: the full §6 vocabulary, the error frame, and the
        # best-effort Leave deregistration.
        assert len(MESSAGE_TYPES) == 20
        names = {cls.__name__ for cls in MESSAGE_TYPES.values()}
        assert {"Join", "Leave", "CloseSetQuery", "CallSetup", "RelaySetup",
                "Media", "Keepalive", "Bye", "ErrorFrame"} <= names


class TestRejection:
    def test_every_truncation_raises_frame_error(self):
        data = encode_frame(
            Join(ip=IPv4Address(1), role=0, cluster=-1, wire_addr="127.0.0.1:9"),
            REQUEST,
            3,
        )
        for cut in range(len(data)):
            with pytest.raises(FrameError):
                decode_frame(data[:cut])

    def test_trailing_bytes_raise(self):
        data = encode_frame(Ping(token=5))
        with pytest.raises(FrameError):
            decode_frame(data + b"\x00")

    def test_single_byte_corruption_never_escapes_wire_errors(self):
        rng = random.Random(13)
        data = encode_frame(
            CloseSetReply(owner=4, entries=[(1, 10.0), (9, 250.5)]), RESPONSE, 77
        )
        for index in range(len(data)):
            for _ in range(4):
                corrupt = bytearray(data)
                corrupt[index] ^= rng.randrange(1, 256)
                try:
                    decode_frame(bytes(corrupt))
                except WireError:
                    pass  # FrameError or CodecError: both acceptable
        # any non-WireError exception (or hang) fails the test

    def test_random_garbage_never_escapes_wire_errors(self):
        rng = random.Random(17)
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(120)))
            try:
                decode_frame(blob)
            except WireError:
                pass

    def test_wrong_schema_version_rejected(self):
        data = bytearray(encode_frame(Ping(token=1)))
        data[2] = CODEC_SCHEMA_VERSION + 1
        with pytest.raises(FrameError, match="schema"):
            decode_frame(bytes(data))

    def test_declared_payload_over_cap_rejected(self):
        import struct

        header = struct.pack("!2sBBBII", b"AS", CODEC_SCHEMA_VERSION, 0x05,
                             ONEWAY, 0, MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(FrameError, match="cap"):
            decode_frame(header)

    def test_encode_rejects_bad_flags_and_request_id(self):
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1), flags=9)
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1), request_id=1 << 32)

    def test_encode_rejects_out_of_range_field(self):
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1 << 32))
        with pytest.raises(CodecError):
            encode_frame(Media(call_id=1, seq=2, payload="not-bytes"))


class TestFrameDecoder:
    def test_byte_by_byte_reassembly_in_order(self):
        messages = [Ping(token=1), ErrorFrame(code=2, detail="x"), Ping(token=3)]
        stream = b"".join(
            encode_frame(m, REQUEST, i + 1) for i, m in enumerate(messages)
        )
        decoder = FrameDecoder()
        frames = []
        for index in range(len(stream)):
            frames.extend(decoder.feed(stream[index:index + 1]))
        assert [f.message for f in frames] == messages
        assert [f.request_id for f in frames] == [1, 2, 3]
        assert decoder.pending_bytes == 0

    def test_partial_frame_is_buffered_not_an_error(self):
        data = encode_frame(Ping(token=9))
        decoder = FrameDecoder()
        assert decoder.feed(data[:5]) == []
        assert decoder.pending_bytes == 5
        assert [f.message for f in decoder.feed(data[5:])] == [Ping(token=9)]

    def test_corrupt_header_poisons_the_decoder(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(b"XX" + bytes(11))
        with pytest.raises(FrameError, match="poisoned"):
            decoder.feed(encode_frame(Ping(token=1)))

    def test_random_chunking_is_equivalent_to_whole_stream(self):
        rng = random.Random(23)
        messages = [
            _random_message(MESSAGE_TYPES[t], rng) for t in sorted(MESSAGE_TYPES)
        ]
        stream = b"".join(encode_frame(m, ONEWAY, 0) for m in messages)
        for trial in range(10):
            chunk_rng = random.Random(trial)
            decoder = FrameDecoder()
            frames, offset = [], 0
            while offset < len(stream):
                step = chunk_rng.randrange(1, 40)
                frames.extend(decoder.feed(stream[offset:offset + step]))
                offset += step
            assert [f.message for f in frames] == messages


def _split_traced(message, trace, flags=REQUEST, request_id=7):
    """Encode a traced frame and return (header, ext_with_len, payload)."""
    raw = encode_frame(message, flags, request_id, trace=trace)
    payload = message.pack_payload()
    header_size = len(encode_frame(message, flags, request_id)) - len(payload)
    body_start = header_size + 1 + raw[header_size]
    return raw[:header_size], raw[header_size:body_start], raw[body_start:]


class TestTraceExtension:
    def test_round_trip_with_and_without_parent_span(self):
        for trace in (("d-0001.2a", "d-000001"), ("solo-trace", None)):
            data = encode_frame(Ping(token=9), REQUEST, 7, trace=trace)
            frame = decode_frame(data)
            assert (frame.trace_id, frame.parent_span) == trace
            assert frame.message == Ping(token=9)
            assert frame.flags == REQUEST and frame.request_id == 7

    def test_untraced_encoding_is_byte_identical_to_old_wire(self):
        # trace=None must not perturb a single bit: old decoders keep
        # working, and old frames decode with no trace context.
        plain = encode_frame(Ping(token=1), REQUEST, 3)
        assert encode_frame(Ping(token=1), REQUEST, 3, trace=None) == plain
        frame = decode_frame(plain)
        assert frame.trace_id is None and frame.parent_span is None

    def test_trace_rides_only_the_flag_bit(self):
        header, ext, payload = _split_traced(Ping(token=1), ("t-01.0", "t-000001"))
        plain = encode_frame(Ping(token=1), REQUEST, 7)
        # Stripping the extension and clearing the bit reproduces the
        # pre-extension frame exactly.
        unflagged = bytearray(header + payload)
        unflagged[4] &= ~TRACE_FLAG & 0xFF
        assert bytes(unflagged) == plain
        assert ext[1] == TRACE_EXT_VERSION

    def test_encode_rejects_bad_trace_context(self):
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1), trace=("", None))
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1), trace=(1234, None))
        with pytest.raises(CodecError):
            encode_frame(Ping(token=1), trace=("x" * 300, None))

    def test_every_extension_truncation_raises(self):
        header, ext, payload = _split_traced(Ping(token=5), ("tr-99", "sp-11"))
        for cut in range(len(ext)):
            with pytest.raises(FrameError):
                decode_frame(header + ext[:cut] + payload)

    def test_unknown_extension_version_rejected(self):
        header, ext, payload = _split_traced(Ping(token=5), ("tr-99", "sp-11"))
        mutated = bytearray(ext)
        mutated[1] = TRACE_EXT_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(header + bytes(mutated) + payload)

    def test_empty_trace_id_on_the_wire_rejected(self):
        header, _, payload = _split_traced(Ping(token=5), ("tr", None))
        ext = bytes((TRACE_EXT_VERSION, 0, 0))
        with pytest.raises(FrameError, match="empty trace id"):
            decode_frame(header + bytes((len(ext),)) + ext + payload)

    def test_non_utf8_trace_id_rejected(self):
        header, _, payload = _split_traced(Ping(token=5), ("tr", None))
        ext = bytes((TRACE_EXT_VERSION, 2, 0xFF, 0xFE, 0))
        with pytest.raises(FrameError, match="UTF-8"):
            decode_frame(header + bytes((len(ext),)) + ext + payload)

    def test_stream_decoder_reassembles_mixed_traced_streams(self):
        frames = [
            (Ping(token=1), None),
            (Ping(token=2), ("d-0001.0", "d-000001")),
            (Ping(token=3), None),
            (Ping(token=4), ("s-0002.3e8", None)),
        ]
        stream = b"".join(
            encode_frame(m, REQUEST, i + 1, trace=t)
            for i, (m, t) in enumerate(frames)
        )
        for step in (1, 3, len(stream)):
            decoder = FrameDecoder()
            out = []
            for offset in range(0, len(stream), step):
                out.extend(decoder.feed(stream[offset:offset + step]))
            assert [(f.message, f.trace_id and (f.trace_id, f.parent_span))
                    for f in out] == [(m, t and t) for m, t in frames]
            assert [f.parent_span for f in out] == [None, "d-000001", None, None]

    def test_stream_decoder_buffers_partial_extension(self):
        raw = encode_frame(Ping(token=7), REQUEST, 2, trace=("tr-abc", "sp-def"))
        decoder = FrameDecoder()
        header_size = len(encode_frame(Ping(token=7), REQUEST, 2)) - len(
            Ping(token=7).pack_payload()
        )
        # stop inside the extension: nothing emitted, nothing rejected
        assert decoder.feed(raw[:header_size + 3]) == []
        assert decoder.pending_bytes == header_size + 3
        frames = decoder.feed(raw[header_size + 3:])
        assert [f.trace_id for f in frames] == ["tr-abc"]
