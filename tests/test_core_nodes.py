"""Unit tests for Bootstrap, Surrogate and EndHost node classes."""

import pytest

from repro.bgp import ASGraph, PrefixOriginTable
from repro.core.bootstrap import Bootstrap
from repro.core.config import ASAPConfig
from repro.core.endhost import EndHost
from repro.core.surrogate import Surrogate
from repro.errors import ProtocolError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.topology.population import Host, NodalInfo


PFX = IPv4Prefix.from_string("10.0.0.0/24")
SURR_IP = IPv4Address.from_string("10.0.0.5")


def make_host(ip="10.0.0.9", asn=7, bandwidth=500.0):
    return Host(
        ip=IPv4Address.from_string(ip),
        asn=asn,
        prefix=PFX,
        access_delay_ms=3.0,
        info=NodalInfo(bandwidth_kbps=bandwidth, uptime_hours=10.0, cpu_score=2.0),
    )


def make_bootstrap(with_surrogate=True):
    table = PrefixOriginTable()
    table.add(PFX, 7)
    graph = ASGraph()
    graph.add_as(7)
    surrogates = {PFX: SURR_IP} if with_surrogate else {}
    return Bootstrap(name="b0", prefix_table=table, graph=graph, surrogate_of=surrogates)


class TestBootstrap:
    def test_join_resolves_prefix_and_surrogate(self):
        bootstrap = make_bootstrap()
        info = bootstrap.join(IPv4Address.from_string("10.0.0.77"))
        assert info.asn == 7
        assert info.prefix == PFX
        assert info.surrogate_ip == SURR_IP
        assert bootstrap.join_requests == 1
        assert bootstrap.messages == 2

    def test_join_unrouted_ip_rejected(self):
        bootstrap = make_bootstrap()
        with pytest.raises(ProtocolError):
            bootstrap.join(IPv4Address.from_string("203.0.113.1"))

    def test_join_without_surrogate_rejected(self):
        bootstrap = make_bootstrap(with_surrogate=False)
        with pytest.raises(ProtocolError):
            bootstrap.join(IPv4Address.from_string("10.0.0.77"))

    def test_register_surrogate(self):
        bootstrap = make_bootstrap(with_surrogate=False)
        bootstrap.register_surrogate(PFX, SURR_IP)
        assert bootstrap.surrogate_for(PFX) == SURR_IP

    def test_disseminate_graph_counts_message(self):
        bootstrap = make_bootstrap()
        graph = bootstrap.disseminate_graph()
        assert 7 in graph
        assert bootstrap.messages == 1


def make_surrogate(host=None):
    graph = ASGraph()
    graph.add_as(7)
    return Surrogate(
        cluster=0,
        asn=7,
        host=host or make_host("10.0.0.5"),
        graph=graph,
        clusters_in_as=lambda asn: [0] if asn == 7 else [],
        lat=lambda a, b: 10.0,
        loss=lambda a, b: 0.0,
        config=ASAPConfig(k_hops=1),
    )


class TestSurrogate:
    def test_close_set_cached(self):
        surrogate = make_surrogate()
        assert surrogate.close_set() is surrogate.close_set()

    def test_serve_counts_requests(self):
        surrogate = make_surrogate()
        surrogate.serve_close_set()
        surrogate.serve_close_set()
        assert surrogate.close_set_requests == 2

    def test_refresh_rebuilds(self):
        surrogate = make_surrogate()
        first = surrogate.close_set()
        assert surrogate.refresh() is not first

    def test_nodal_info_and_handoff(self):
        surrogate = make_surrogate(host=make_host("10.0.0.5", bandwidth=100.0))
        weak = make_host("10.0.0.10", bandwidth=10.0)
        strong = make_host("10.0.0.11", bandwidth=10_000.0)
        surrogate.accept_nodal_info(weak.ip, weak.info)
        assert surrogate.recommend_handoff() is None or surrogate.recommend_handoff() != weak.ip
        surrogate.accept_nodal_info(strong.ip, strong.info)
        assert surrogate.recommend_handoff() == strong.ip

    def test_no_handoff_when_strongest(self):
        surrogate = make_surrogate(host=make_host("10.0.0.5", bandwidth=10**6))
        weak = make_host("10.0.0.10", bandwidth=1.0)
        surrogate.accept_nodal_info(weak.ip, weak.info)
        assert surrogate.recommend_handoff() is None

    def test_maintenance_messages_zero_before_build(self):
        surrogate = make_surrogate()
        assert surrogate.maintenance_messages == 0
        surrogate.close_set()
        assert surrogate.maintenance_messages >= 0


class TestEndHost:
    def test_join_picks_bootstrap_by_ip_hash(self):
        bootstraps = [make_bootstrap(), make_bootstrap()]
        endhost = EndHost(host=make_host("10.0.0.9"))
        info = endhost.join(bootstraps)
        assert info.prefix == PFX
        assert endhost.joined
        assert endhost.messages == 2
        assert sum(b.join_requests for b in bootstraps) == 1

    def test_join_falls_through_failing_bootstraps(self):
        broken = make_bootstrap(with_surrogate=False)
        working = make_bootstrap()
        endhost = EndHost(host=make_host("10.0.0.8"))  # .8 % 2 picks index 0
        info = endhost.join([broken, working])
        assert info.surrogate_ip == SURR_IP
        assert endhost.messages == 2 * 2  # two attempts

    def test_join_no_bootstraps(self):
        endhost = EndHost(host=make_host())
        with pytest.raises(ProtocolError):
            endhost.join([])

    def test_join_all_fail(self):
        endhost = EndHost(host=make_host())
        with pytest.raises(ProtocolError):
            endhost.join([make_bootstrap(with_surrogate=False)])

    def test_publish_requires_join(self):
        endhost = EndHost(host=make_host())
        with pytest.raises(ProtocolError):
            endhost.publish_nodal_info(make_surrogate())

    def test_publish_after_join(self):
        endhost = EndHost(host=make_host("10.0.0.9"))
        endhost.join([make_bootstrap()])
        surrogate = make_surrogate()
        endhost.publish_nodal_info(surrogate)
        assert endhost.ip in surrogate.published_info
