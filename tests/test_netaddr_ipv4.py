"""Unit tests for IPv4 address and prefix value types."""

import pytest

from repro.errors import AddressError
from repro.netaddr import IPv4Address, IPv4Prefix, parse_address, parse_prefix


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address.from_string("192.0.2.1").value == 0xC0000201

    def test_round_trip_string(self):
        for text in ("0.0.0.0", "255.255.255.255", "10.1.2.3"):
            assert str(IPv4Address.from_string(text)) == text

    def test_octets(self):
        assert IPv4Address.from_string("1.2.3.4").octets() == (1, 2, 3, 4)

    def test_ordering_matches_integer_order(self):
        a = IPv4Address.from_string("10.0.0.1")
        b = IPv4Address.from_string("10.0.0.2")
        assert a < b

    def test_bit_indexing_msb_first(self):
        addr = IPv4Address.from_string("128.0.0.1")
        assert addr.bit(0) == 1
        assert addr.bit(31) == 1
        assert addr.bit(1) == 0

    def test_bit_index_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(0).bit(32)

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "01.2.3.4", "a.b.c.d", "1..2.3"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.from_string(bad)

    def test_rejects_out_of_range_integer(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_parse_address_helper(self):
        assert parse_address("10.0.0.1") == IPv4Address.from_string("10.0.0.1")


class TestIPv4Prefix:
    def test_parse_cidr(self):
        p = IPv4Prefix.from_string("10.1.0.0/16")
        assert p.length == 16
        assert str(p) == "10.1.0.0/16"

    def test_canonicalizes_host_bits(self):
        p = IPv4Prefix(IPv4Address.from_string("10.0.0.255").value, 8)
        assert str(p) == "10.0.0.0/8"

    def test_equal_networks_compare_equal(self):
        a = IPv4Prefix.from_string("10.0.0.0/8")
        b = IPv4Prefix(IPv4Address.from_string("10.255.255.255").value, 8)
        assert a == b

    def test_contains_address(self):
        p = IPv4Prefix.from_string("192.168.0.0/24")
        assert p.contains(IPv4Address.from_string("192.168.0.17"))
        assert not p.contains(IPv4Address.from_string("192.168.1.17"))

    def test_contains_prefix(self):
        outer = IPv4Prefix.from_string("10.0.0.0/8")
        inner = IPv4Prefix.from_string("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_size_and_bounds(self):
        p = IPv4Prefix.from_string("10.0.0.0/30")
        assert p.size() == 4
        assert str(p.first_address()) == "10.0.0.0"
        assert str(p.last_address()) == "10.0.0.3"

    def test_nth_address(self):
        p = IPv4Prefix.from_string("10.0.0.0/30")
        assert str(p.nth_address(2)) == "10.0.0.2"
        with pytest.raises(AddressError):
            p.nth_address(4)

    def test_hosts_iteration(self):
        p = IPv4Prefix.from_string("10.0.0.0/31")
        assert [str(a) for a in p.hosts()] == ["10.0.0.0", "10.0.0.1"]

    def test_subnets(self):
        p = IPv4Prefix.from_string("10.0.0.0/8")
        left, right = p.subnets()
        assert str(left) == "10.0.0.0/9"
        assert str(right) == "10.128.0.0/9"

    def test_subnet_of_host_route_fails(self):
        with pytest.raises(AddressError):
            IPv4Prefix.from_string("10.0.0.1/32").subnets()

    def test_zero_length_prefix_contains_everything(self):
        p = IPv4Prefix.from_string("0.0.0.0/0")
        assert p.contains(IPv4Address.from_string("255.1.2.3"))
        assert p.netmask_int() == 0

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/8"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Prefix.from_string(bad)

    def test_parse_prefix_helper(self):
        assert parse_prefix("10.0.0.0/8") == IPv4Prefix.from_string("10.0.0.0/8")
