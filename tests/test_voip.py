"""Tests for codecs, the E-model, and quality predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.voip import (
    EModel,
    EModelConfig,
    G711,
    G723_1,
    G729,
    G729A_VAD,
    MOS_THRESHOLD,
    RTT_THRESHOLD_MS,
    is_quality_mos,
    is_quality_rtt,
    mos_of_path,
)
from repro.voip.codecs import ALL_CODECS
from repro.voip.emodel import r_to_mos


class TestCodecs:
    def test_codec_table_values(self):
        assert G711.ie == 0.0
        assert G729A_VAD.ie == 11.0
        assert G723_1.bpl == pytest.approx(16.1)

    def test_codec_delay_positive(self):
        for codec in ALL_CODECS:
            assert codec.codec_delay_ms() > 0
            assert codec.packet_interval_ms() > 0
            assert codec.packets_per_second() > 0

    def test_g711_higher_quality_floor_than_g723(self):
        e711 = EModel(EModelConfig(codec=G711))
        e723 = EModel(EModelConfig(codec=G723_1))
        assert e711.mos(50.0, 0.0) > e723.mos(50.0, 0.0)


class TestRToMos:
    def test_clamps(self):
        assert r_to_mos(-10) == 1.0
        assert r_to_mos(0) == 1.0
        assert r_to_mos(100) == 4.5
        assert r_to_mos(150) == 4.5

    def test_monotone_increasing(self):
        values = [r_to_mos(r) for r in range(0, 101, 5)]
        assert values == sorted(values)

    def test_reference_point(self):
        # R = 70 → MOS ≈ 3.60 (standard E-model anchor).
        assert r_to_mos(70) == pytest.approx(3.60, abs=0.03)


class TestEModel:
    def test_delay_impairment_knee(self):
        model = EModel()
        below = model.delay_impairment(150.0)
        above = model.delay_impairment(250.0)
        assert below == pytest.approx(0.024 * 150.0)
        assert above == pytest.approx(0.024 * 250.0 + 0.11 * (250.0 - 177.3))

    def test_loss_impairment_zero_loss(self):
        model = EModel()
        assert model.loss_impairment(0.0) == pytest.approx(G729A_VAD.ie)

    def test_loss_impairment_increases(self):
        model = EModel()
        assert model.loss_impairment(0.05) > model.loss_impairment(0.01)

    def test_loss_impairment_bounds(self):
        model = EModel()
        with pytest.raises(ConfigurationError):
            model.loss_impairment(1.5)

    def test_mos_from_rtt_halves_delay(self):
        model = EModel()
        assert model.mos_from_rtt(200.0, 0.005) == pytest.approx(
            model.mos(100.0, 0.005)
        )

    def test_paper_anchor_low_rtt_high_mos(self):
        # Paper Fig. 15-16: ASAP/OPT sessions (shortest RTT ≤ 115 ms,
        # 0.5% loss) all have MOS above 3.85.
        model = EModel()
        assert model.mos_from_rtt(115.0, 0.005) > 3.85

    def test_paper_anchor_high_rtt_low_mos(self):
        # Paper: ~3% of baseline sessions (RTT > 1 s) fall below MOS 2.9.
        model = EModel()
        assert model.mos_from_rtt(1000.0, 0.005) < 2.9

    def test_threshold_anchor_at_300ms(self):
        # The 300 ms RTT bound should sit near the 3.6 MOS bound.
        model = EModel()
        assert model.mos_from_rtt(300.0, 0.005) == pytest.approx(3.6, abs=0.2)

    def test_loss_drops_mos_substantially(self):
        # Paper §2 (Nortel data): ~1 MOS unit per 1% loss without
        # concealment; the E-model's Bpl term (with concealment) is
        # gentler but must still show a clear drop.
        model = EModel()
        assert model.mos_from_rtt(100.0, 0.0) - model.mos_from_rtt(100.0, 0.02) > 0.25
        assert model.mos_from_rtt(100.0, 0.0) - model.mos_from_rtt(100.0, 0.05) > 0.7

    def test_invalid_inputs(self):
        model = EModel()
        with pytest.raises(ConfigurationError):
            model.mos_from_rtt(-1.0, 0.0)
        with pytest.raises(ConfigurationError):
            model.mos(-5.0, 0.0)
        with pytest.raises(ConfigurationError):
            EModelConfig(jitter_buffer_ms=-1.0)

    @given(
        st.floats(min_value=0.0, max_value=2000.0),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_mos_always_in_range(self, rtt, loss):
        mos = EModel().mos_from_rtt(rtt, loss)
        assert 1.0 <= mos <= 4.5

    @given(st.floats(min_value=0.0, max_value=1500.0))
    @settings(max_examples=100, deadline=None)
    def test_mos_monotone_in_delay(self, rtt):
        model = EModel()
        assert model.mos_from_rtt(rtt, 0.005) >= model.mos_from_rtt(rtt + 50.0, 0.005)

    @given(st.floats(min_value=0.0, max_value=0.4))
    @settings(max_examples=100, deadline=None)
    def test_mos_monotone_in_loss(self, loss):
        model = EModel()
        assert model.mos_from_rtt(100.0, loss) >= model.mos_from_rtt(100.0, loss + 0.05)


class TestQualityPredicates:
    def test_rtt_threshold(self):
        assert is_quality_rtt(299.9)
        assert not is_quality_rtt(300.0)
        assert not is_quality_rtt(None)
        assert not is_quality_rtt(float("inf"))

    def test_mos_threshold(self):
        assert is_quality_mos(3.61)
        assert not is_quality_mos(3.6)

    def test_constants(self):
        assert RTT_THRESHOLD_MS == 300.0
        assert MOS_THRESHOLD == 3.6

    def test_mos_of_path_default_loss(self):
        assert mos_of_path(115.0) > 3.85
