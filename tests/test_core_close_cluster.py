"""Tests for construct-close-cluster-set (paper Fig. 9)."""

import pytest

from repro.bgp import ASGraph
from repro.core import ASAPConfig, construct_close_cluster_set
from repro.core.close_cluster import CloseClusterSet
from repro.errors import ProtocolError


def diamond():
    """1-peer-2 core; 3, 4 customers; 5 multihomed below both."""
    g = ASGraph()
    g.add_peer(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    return g


def make_world(lat_map, clusters_map):
    """lat_map[(own, other)] = rtt; clusters_map[asn] = [cluster indices]."""

    def lat(own, other):
        return lat_map.get((own, other), lat_map.get((other, own)))

    def loss(own, other):
        return 0.0 if lat(own, other) is not None else None

    def clusters_in_as(asn):
        return clusters_map.get(asn, [])

    return lat, loss, clusters_in_as


class TestConstructCloseClusterSet:
    def test_own_cluster_always_included_at_zero(self):
        lat, loss, cin = make_world({}, {5: [0]})
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert 0 in result
        assert result.entries[0].rtt_ms == 0.0
        assert result.entries[0].as_hops == 0

    def test_within_threshold_included(self):
        lat, loss, cin = make_world({(0, 1): 100.0}, {5: [0], 3: [1]})
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert 1 in result
        assert result.entries[1].rtt_ms == 100.0
        assert result.entries[1].as_hops == 1

    def test_beyond_lat_threshold_excluded(self):
        lat, loss, cin = make_world({(0, 1): 400.0}, {5: [0], 3: [1]})
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert 1 not in result

    def test_loss_threshold_excludes(self):
        def lat(own, other):
            return 50.0

        def lossy(own, other):
            return 0.5

        cin = lambda asn: {5: [0], 3: [1]}.get(asn, [])
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, lossy)
        assert 1 not in result

    def test_expansion_pruned_at_failing_cluster(self):
        # Cluster in AS 3 fails the threshold → BFS must not expand
        # through AS 3 to reach AS 1's cluster.
        lat_map = {(0, 1): 500.0, (0, 2): 50.0}
        lat, loss, cin = make_world(lat_map, {5: [0], 3: [1], 1: [2]})
        result = construct_close_cluster_set(
            0, 5, diamond(), cin, lat, loss, ASAPConfig(k_hops=4)
        )
        assert 1 not in result
        # AS 1 is reachable ONLY via AS 3 or AS 4 — AS 4 has no clusters
        # so expansion continues there: 5 → 4 → ... but 4's phase is UP;
        # 4 → 1 climbs? 4's provider is 2, and 2 peers 1.  5-4-2-1 is
        # valley-free, 3 hops, so AS 1's cluster is still found via the
        # transit side.
        assert 2 in result

    def test_k_zero_only_own_as(self):
        lat, loss, cin = make_world({(0, 1): 10.0}, {5: [0], 3: [1]})
        result = construct_close_cluster_set(
            0, 5, diamond(), cin, lat, loss, ASAPConfig(k_hops=0)
        )
        assert 1 not in result
        assert 0 in result

    def test_colocated_cluster_measured_at_depth_zero(self):
        lat, loss, cin = make_world({(0, 7): 5.0}, {5: [0, 7]})
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert 7 in result
        assert result.entries[7].as_hops == 0

    def test_probe_messages_counted(self):
        lat, loss, cin = make_world(
            {(0, 1): 10.0, (0, 2): 10.0}, {5: [0], 3: [1], 1: [2]}
        )
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        # Two clusters probed → 4 messages (2 each).
        assert result.probe_messages == 4

    def test_unanswered_probe_skipped(self):
        lat, loss, cin = make_world({}, {5: [0], 3: [1]})  # no lat data → None
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert 1 not in result

    def test_unknown_own_as_gives_empty_set(self):
        lat, loss, cin = make_world({}, {})
        result = construct_close_cluster_set(0, 99, diamond(), cin, lat, loss)
        assert len(result) == 0

    def test_valley_free_constraint_limits_reach(self):
        # From AS 3 (customer of 1): valley-free forbids 3→5→4 (valley).
        # With the constraint off, AS 4's cluster becomes reachable in 2.
        lat_map = {(0, 1): 10.0, (0, 2): 10.0, (0, 3): 10.0}
        clusters = {3: [0], 5: [1], 4: [2], 1: [3]}
        lat, loss, cin = make_world(lat_map, clusters)
        constrained = construct_close_cluster_set(
            0, 3, diamond(), cin, lat, loss, ASAPConfig(k_hops=2)
        )
        unconstrained = construct_close_cluster_set(
            0, 3, diamond(), cin, lat, loss, ASAPConfig(k_hops=2, valley_free=False)
        )
        assert 2 not in constrained
        assert 2 in unconstrained

    def test_rtt_to_missing_raises(self):
        cs = CloseClusterSet(owner=0)
        with pytest.raises(ProtocolError):
            cs.rtt_to(3)

    def test_clusters_sorted(self):
        lat, loss, cin = make_world(
            {(0, 1): 10.0, (0, 2): 10.0}, {5: [0], 3: [2], 1: [1]}
        )
        result = construct_close_cluster_set(0, 5, diamond(), cin, lat, loss)
        assert result.clusters() == sorted(result.clusters())
