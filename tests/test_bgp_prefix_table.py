"""Unit tests for the prefix → origin-AS mapping table."""

import pytest

from repro.errors import BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp import PrefixOriginTable, RIBEntry, RoutingTable


def entry(prefix, origin_as, peer="10.0.0.1"):
    return RIBEntry(
        timestamp=1,
        peer=IPv4Address.from_string(peer),
        prefix=IPv4Prefix.from_string(prefix),
        as_path=(100, origin_as),
    )


class TestPrefixOriginTable:
    def test_lookup_longest_match(self):
        table = PrefixOriginTable()
        table.add(IPv4Prefix.from_string("10.0.0.0/8"), 1)
        table.add(IPv4Prefix.from_string("10.1.0.0/16"), 2)
        assert table.origin_of(IPv4Address.from_string("10.1.2.3")) == 2
        assert table.origin_of(IPv4Address.from_string("10.2.2.3")) == 1
        assert table.origin_of(IPv4Address.from_string("11.0.0.1")) is None

    def test_matched_prefix(self):
        table = PrefixOriginTable()
        p = IPv4Prefix.from_string("10.1.0.0/16")
        table.add(p, 2)
        assert table.matched_prefix(IPv4Address.from_string("10.1.2.3")) == p

    def test_rejects_bad_origin(self):
        table = PrefixOriginTable()
        with pytest.raises(BGPParseError):
            table.add(IPv4Prefix.from_string("10.0.0.0/8"), 0)

    def test_from_entries(self):
        table = PrefixOriginTable.from_entries(
            [entry("10.0.0.0/8", 5), entry("192.168.0.0/16", 6)]
        )
        assert len(table) == 2
        assert table.origin_of(IPv4Address.from_string("10.9.9.9")) == 5

    def test_moas_conflict_majority_wins(self):
        entries = [
            entry("10.0.0.0/8", 5, peer="10.0.0.1"),
            entry("10.0.0.0/8", 5, peer="10.0.0.2"),
            entry("10.0.0.0/8", 7, peer="10.0.0.3"),
        ]
        table = PrefixOriginTable.from_routing_table(RoutingTable.from_entries(entries))
        assert table.origin_of(IPv4Address.from_string("10.0.0.9")) == 5

    def test_moas_tie_breaks_to_lowest_asn(self):
        entries = [
            entry("10.0.0.0/8", 9, peer="10.0.0.1"),
            entry("10.0.0.0/8", 4, peer="10.0.0.2"),
        ]
        table = PrefixOriginTable.from_routing_table(RoutingTable.from_entries(entries))
        assert table.origin_of(IPv4Address.from_string("10.0.0.9")) == 4

    def test_prefixes_of_and_ases(self):
        table = PrefixOriginTable()
        p1 = IPv4Prefix.from_string("10.0.0.0/16")
        p2 = IPv4Prefix.from_string("10.1.0.0/16")
        table.add(p1, 5)
        table.add(p2, 5)
        assert table.prefixes_of(5) == sorted([p1, p2])
        assert table.ases() == [5]
        assert table.prefixes_of(99) == []

    def test_add_overwrite_moves_prefix_between_ases(self):
        table = PrefixOriginTable()
        p = IPv4Prefix.from_string("10.0.0.0/16")
        table.add(p, 5)
        table.add(p, 6)
        assert table.prefixes_of(5) == []
        assert table.prefixes_of(6) == [p]
        assert len(table) == 1

    def test_contains(self):
        table = PrefixOriginTable()
        p = IPv4Prefix.from_string("10.0.0.0/16")
        table.add(p, 5)
        assert p in table
        assert IPv4Prefix.from_string("10.0.0.0/17") not in table
