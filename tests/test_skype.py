"""Tests for the Skype-like simulator and trace analyzer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.measurement.tools import KingEstimator
from repro.netaddr import IPv4Address
from repro.scenario import tiny_scenario
from repro.sim.trace import PacketRecord, SessionTrace
from repro.skype import (
    SkypeConfig,
    SupernodeOverlay,
    TraceAnalyzer,
    run_skype_session,
)
from repro.skype.analyzer import _carrier_switches, _stabilization_time
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=8)


@pytest.fixture(scope="module")
def overlay(scenario):
    return SupernodeOverlay(scenario.population)


def pick_pair(scenario, min_rtt=250.0):
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    pairs = np.argwhere(np.isfinite(m.rtt_ms) & (m.rtt_ms > min_rtt))
    for a, b in pairs:
        ca, cb = clusters[int(a)], clusters[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no suitable pair")


class TestSkypeConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkypeConfig(supernode_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SkypeConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            SkypeConfig(switch_margin=-0.1)
        with pytest.raises(ConfigurationError):
            SkypeConfig(batch_interval_ms=0)


class TestSupernodeOverlay:
    def test_supernodes_are_most_capable(self, scenario, overlay):
        ranked = sorted(
            scenario.population.hosts,
            key=lambda h: (-h.info.capability(), h.ip),
        )
        expected = {h.ip for h in ranked[: len(overlay)]}
        assert {h.ip for h in overlay.supernodes} == expected

    def test_discover_respects_exclusions(self, scenario, overlay):
        rng = derive_rng(0, "t")
        exclude = {h.ip for h in overlay.supernodes[:5]}
        found = overlay.discover(rng, 10, exclude)
        assert all(h.ip not in exclude for h in found)

    def test_discover_no_duplicates(self, scenario, overlay):
        rng = derive_rng(1, "t")
        found = overlay.discover(rng, 20)
        ips = [h.ip for h in found]
        assert len(ips) == len(set(ips))

    def test_popularity_bias_concentrates(self, scenario):
        biased = SupernodeOverlay(scenario.population, SkypeConfig(popularity_bias=5.0))
        rng = derive_rng(2, "t")
        draws = []
        for _ in range(40):
            draws.extend(h.ip for h in biased.discover(rng, 3))
        top = max(set(draws), key=draws.count)
        assert draws.count(top) >= 5


class TestSkypeSession:
    def test_deterministic(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        a = run_skype_session(scenario, caller, callee, overlay, session_id=3)
        b = run_skype_session(scenario, caller, callee, overlay, session_id=3)
        assert [p.dst_ip for p in a.trace.caller_packets] == [
            p.dst_ip for p in b.trace.caller_packets
        ]

    def test_intervals_cover_duration(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        duration = 120_000.0
        res = run_skype_session(
            scenario, caller, callee, overlay, duration_ms=duration, session_id=1
        )
        for intervals in (res.forward_intervals, res.backward_intervals):
            assert intervals[0].start_ms == 0.0
            assert intervals[-1].end_ms == duration
            for prev, nxt in zip(intervals, intervals[1:]):
                assert prev.end_ms == nxt.start_ms

    def test_probe_budget_respected(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        config = SkypeConfig(max_probes=10, max_background_probes=2)
        res = run_skype_session(
            scenario, caller, callee, overlay, config=config, session_id=2
        )
        assert len(res.forward_probes) <= 12
        assert len(res.backward_probes) <= 12

    def test_switches_only_improve(self, scenario, overlay):
        # With noiseless probes, every switch strictly improves the
        # true path RTT (noisy probes may keep believed-better paths).
        caller, callee = pick_pair(scenario)
        res = run_skype_session(
            scenario,
            caller,
            callee,
            overlay,
            config=SkypeConfig(probe_noise_sigma=0.0),
            session_id=4,
        )
        model = scenario.latency
        a = scenario.population.by_ip(caller)
        b = scenario.population.by_ip(callee)

        def path_rtt(interval):
            if interval.relay_ip is None:
                return model.host_rtt_ms(a, b)
            relay = scenario.population.by_ip(interval.relay_ip)
            return model.one_hop_relay_rtt_ms(a, relay, b)

        rtts = [path_rtt(iv) for iv in res.forward_intervals]
        for earlier, later in zip(rtts, rtts[1:]):
            assert later < earlier

    def test_voice_packets_point_at_carrier(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=5)
        final_carrier = res.forward_intervals[-1].relay_ip or callee
        late_voice = [
            p
            for p in res.trace.packets_sent_by(caller)
            if p.size_bytes >= 100 and p.time_ms > res.forward_intervals[-1].start_ms
        ]
        assert late_voice
        assert all(p.dst_ip == final_carrier for p in late_voice)


class TestAnalyzerPrimitives:
    def _mk(self, times_dsts):
        return [
            PacketRecord(
                time_ms=t,
                src_ip=IPv4Address.from_string("10.0.0.1"),
                src_port=1,
                dst_ip=IPv4Address.from_string(dst),
                dst_port=1,
                size_bytes=160,
                kind="voice",
            )
            for t, dst in times_dsts
        ]

    def test_stabilization_zero_when_stable(self):
        major = IPv4Address.from_string("10.0.0.9")
        voice = self._mk([(0.0, "10.0.0.9"), (10.0, "10.0.0.9")])
        assert _stabilization_time(voice, major) == 0.0

    def test_stabilization_after_last_switch(self):
        major = IPv4Address.from_string("10.0.0.9")
        voice = self._mk(
            [(0.0, "10.0.0.5"), (10.0, "10.0.0.9"), (20.0, "10.0.0.5"), (30.0, "10.0.0.9")]
        )
        assert _stabilization_time(voice, major) == 30.0

    def test_carrier_switches(self):
        voice = self._mk(
            [(0.0, "10.0.0.5"), (1.0, "10.0.0.5"), (2.0, "10.0.0.9"), (3.0, "10.0.0.5")]
        )
        assert _carrier_switches(voice) == 2


class TestAnalyzerOnSimulatedSessions:
    def test_major_matches_ground_truth(self, scenario, overlay):
        # The major carrier is defined by voice-packet share (as in the
        # paper), i.e. the carrier of the longest total interval time.
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=6)
        analyzer = TraceAnalyzer(scenario.prefix_table)
        analysis = analyzer.analyze(res.trace)

        def dominant(intervals):
            totals = {}
            for iv in intervals:
                totals[iv.relay_ip] = totals.get(iv.relay_ip, 0.0) + (
                    iv.end_ms - iv.start_ms
                )
            return max(totals.items(), key=lambda kv: kv[1])[0]

        assert analysis.forward.major_carrier == dominant(res.forward_intervals)
        assert analysis.backward.major_carrier == dominant(res.backward_intervals)

    def test_major_share_dominates(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=6)
        analysis = TraceAnalyzer(scenario.prefix_table).analyze(res.trace)
        assert analysis.forward.major_share > 0.5

    def test_probed_counts_match_simulation(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=7)
        analysis = TraceAnalyzer(scenario.prefix_table).analyze(res.trace)
        assert analysis.forward.total_probed == len(
            {ip for _, ip in res.forward_probes}
        )

    def test_same_as_groups_are_real(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=8)
        analysis = TraceAnalyzer(scenario.prefix_table).analyze(res.trace)
        for asn, ips in analysis.same_as_probes.items():
            assert len(ips) > 1
            for ip in ips:
                assert scenario.prefix_table.origin_of(ip) == asn

    def test_time_series_estimates(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=9)
        analyzer = TraceAnalyzer(
            scenario.prefix_table,
            king=KingEstimator(scenario.latency, seed=1, non_response_rate=0.0),
            population=scenario.population,
        )
        series = analyzer.relay_time_series(res.trace, caller, callee)
        assert len(series) == len(res.forward_probes)
        estimated = [e for _, _, e in series if e is not None]
        assert estimated
        assert all(e > 40.0 for e in estimated)  # includes relay delay

    def test_time_series_requires_king(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        res = run_skype_session(scenario, caller, callee, overlay, session_id=9)
        with pytest.raises(ValueError):
            TraceAnalyzer(scenario.prefix_table).relay_time_series(
                res.trace, caller, callee
            )


class TestRelayMidCallFailure:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SkypeConfig(relay_mean_lifetime_ms=0.0)

    def _run(self, scenario, overlay, lifetime):
        caller, callee = pick_pair(scenario)
        config = SkypeConfig(
            relay_mean_lifetime_ms=lifetime,
            target_rtt_ms=10**9,  # never satisfied: keeps machine probing
            max_probes=16,
        )
        return run_skype_session(
            scenario, caller, callee, overlay,
            config=config, duration_ms=200_000.0, session_id=21,
        )

    def test_dying_relays_force_fallback(self, scenario, overlay):
        res = self._run(scenario, overlay, lifetime=5_000.0)
        # After a relay interval, a direct (None) fallback interval must
        # appear somewhere — unless no relay was ever adopted.
        kinds = [iv.relay_ip for iv in res.forward_intervals]
        relay_positions = [i for i, k in enumerate(kinds) if k is not None]
        if not relay_positions:
            pytest.skip("no relay adopted in this run")
        first_relay = relay_positions[0]
        assert any(k is None for k in kinds[first_relay + 1:]) or len(kinds) > first_relay + 1

    def test_dead_relay_never_readopted(self, scenario, overlay):
        res = self._run(scenario, overlay, lifetime=3_000.0)
        kinds = [iv.relay_ip for iv in res.forward_intervals]
        # A relay that died (followed later by a direct interval) must
        # not carry again afterwards.
        for i, ip in enumerate(kinds):
            if ip is None:
                continue
            ended_by_death = (
                i + 1 < len(kinds) and kinds[i + 1] is None
            )
            if ended_by_death:
                assert ip not in kinds[i + 1:]

    def test_no_lifetime_means_no_fallback_intervals(self, scenario, overlay):
        caller, callee = pick_pair(scenario)
        config = SkypeConfig(relay_mean_lifetime_ms=None)
        res = run_skype_session(
            scenario, caller, callee, overlay,
            config=config, duration_ms=120_000.0, session_id=22,
        )
        kinds = [iv.relay_ip for iv in res.forward_intervals]
        # Once on a relay, the machine never falls back to direct when
        # relays are immortal (switches only go relay→relay).
        seen_relay = False
        for k in kinds:
            if k is not None:
                seen_relay = True
            elif seen_relay:
                pytest.fail("direct fallback without relay death")
