"""Conformance tests: fast implementations vs slow reference oracles.

Each test re-implements a core algorithm in the most obviously-correct
(and slow) way and checks the production code agrees on real scenarios.
"""

import numpy as np
import pytest

from repro.bgp.asgraph import ASGraph
from repro.core import ASAPConfig, ASAPSystem, construct_close_cluster_set
from repro.core.relay_selection import select_close_relay
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


@pytest.fixture(scope="module")
def system(scenario):
    return ASAPSystem(scenario, ASAPConfig(k_hops=4))


def reference_close_set(system, scenario, cluster_index, config):
    """Oracle: membership criterion applied over the valley-free ball.

    A cluster belongs to the close set iff it lies in some AS reachable
    from the owner's AS by a valley-free walk of ≤ k hops *that only
    passes through "expandable" ASes* — where a populated AS is
    expandable iff at least one of its clusters passes the thresholds.
    Implemented as a BFS that re-checks the criterion with no shared
    state with the production code.
    """
    matrices = scenario.matrices
    graph = scenario.protocol_graph
    own_as = int(matrices.asn_of[cluster_index])
    if own_as not in graph:
        return {cluster_index} if False else set()

    def clusters_in(asn):
        return [i for i in range(matrices.count) if int(matrices.asn_of[i]) == asn]

    def passes(other):
        rtt = matrices.rtt_ms[cluster_index, other]
        loss = matrices.loss[cluster_index, other]
        return (
            np.isfinite(rtt)
            and rtt < config.lat_threshold_ms
            and loss < config.loss_threshold
        )

    def expandable(asn):
        members = clusters_in(asn)
        if not members:
            return True
        return any(passes(m) for m in members)

    # BFS over (asn, phase) with expansion gating, mirroring Fig. 9 from
    # scratch (phases: 0 = may climb, 1 = descend only).
    members = set()
    for cluster in clusters_in(own_as):
        if cluster == cluster_index or passes(cluster):
            members.add(cluster)
    visited = {(own_as, 0)}
    frontier = [(own_as, 0)]
    for _ in range(config.k_hops):
        next_frontier = []
        for asn, phase in frontier:
            steps = []
            if phase == 0:
                steps += [(p, 0) for p in graph.providers(asn)]
                steps += [(p, 1) for p in graph.peers(asn)]
            steps += [(c, 1) for c in graph.customers(asn)]
            steps += [(s, phase) for s in graph.siblings(asn)]
            for nxt, nxt_phase in steps:
                state = (nxt, nxt_phase)
                if state in visited:
                    continue
                visited.add(state)
                for cluster in clusters_in(nxt):
                    if passes(cluster):
                        members.add(cluster)
                if expandable(nxt):
                    next_frontier.append(state)
        frontier = next_frontier
    return members


class TestCloseSetConformance:
    @pytest.mark.parametrize("cluster_index", [0, 5, 13, 27, 40])
    def test_matches_reference(self, scenario, system, cluster_index):
        if cluster_index >= scenario.matrices.count:
            pytest.skip("cluster index out of range in tiny world")
        config = system.config
        fast = set(system.close_set(cluster_index).entries)
        slow = reference_close_set(system, scenario, cluster_index, config)
        assert fast == slow


def reference_opt_one_hop(matrices, a, b, relay_delay=40.0):
    """Oracle: plain loop over every relay cluster."""
    best = None
    for c in range(matrices.count):
        if c in (a, b):
            continue
        rtt = matrices.rtt_ms[a, c] + matrices.rtt_ms[c, b] + relay_delay
        if np.isfinite(rtt) and (best is None or rtt < best):
            best = float(rtt)
    return best


class TestOptConformance:
    def test_matches_reference(self, scenario):
        from repro.baselines import BaselineConfig, OPTMethod

        matrices = scenario.matrices
        opt = OPTMethod(BaselineConfig())
        rng = np.random.default_rng(3)
        for _ in range(15):
            a, b = (int(x) for x in rng.integers(0, matrices.count, 2))
            if a == b:
                continue
            _, fast = opt.best_one_hop(matrices, a, b)
            slow = reference_opt_one_hop(matrices, a, b)
            if slow is None:
                assert fast is None
            else:
                assert fast == pytest.approx(slow)


def reference_two_hop(matrices, a, b, relay_delay=40.0):
    """Oracle: O(N²) loop over relay cluster pairs.  The endpoints are
    not eligible intermediates (a host cannot relay its own call);
    i == j is allowed, as in the vectorized min-plus formulation."""
    best = None
    n = matrices.count
    for i in range(n):
        if i in (a, b):
            continue
        for j in range(n):
            if j in (a, b):
                continue
            rtt = (
                matrices.rtt_ms[a, i]
                + matrices.rtt_ms[i, j]
                + matrices.rtt_ms[j, b]
                + 2 * relay_delay
            )
            if np.isfinite(rtt) and (best is None or rtt < best):
                best = float(rtt)
    return best


class TestTwoHopConformance:
    def test_matches_reference(self, scenario):
        from repro.baselines import BaselineConfig, OPTMethod

        matrices = scenario.matrices
        opt = OPTMethod(BaselineConfig())
        rng = np.random.default_rng(4)
        for _ in range(5):
            a, b = (int(x) for x in rng.integers(0, matrices.count, 2))
            if a == b:
                continue
            fast = opt.best_two_hop(matrices, a, b)
            slow = reference_two_hop(matrices, a, b)
            assert fast == pytest.approx(slow)


def reference_valley_free_distance(graph: ASGraph, src: int, dst: int, cap: int = 8):
    """Oracle: exhaustive DFS enumeration of valley-free paths up to cap."""
    if src == dst:
        return 0
    best = [None]

    def walk(node, phase, dist, seen):
        if best[0] is not None and dist >= best[0]:
            return
        if dist >= cap:
            return
        steps = []
        if phase == 0:
            steps += [(p, 0) for p in graph.providers(node)]
            steps += [(p, 1) for p in graph.peers(node)]
        steps += [(c, 1) for c in graph.customers(node)]
        steps += [(s, phase) for s in graph.siblings(node)]
        for nxt, nxt_phase in steps:
            if nxt == dst:
                if best[0] is None or dist + 1 < best[0]:
                    best[0] = dist + 1
                continue
            if nxt in seen:
                continue
            walk(nxt, nxt_phase, dist + 1, seen | {nxt})

    walk(src, 0, 0, {src})
    return best[0]


class TestValleyFreeConformance:
    def test_matches_reference_on_random_graphs(self):
        from repro.topology import TopologyConfig, generate_topology

        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=6, tier3_count=12, seed=9)
        )
        graph = topo.graph
        ases = graph.ases()
        rng = np.random.default_rng(5)
        for _ in range(25):
            src, dst = (int(x) for x in rng.choice(ases, 2, replace=False))
            fast = graph.valley_free_distance(src, dst, max_hops=8)
            slow = reference_valley_free_distance(graph, src, dst, cap=8)
            assert fast == slow, f"{src}->{dst}: fast={fast} slow={slow}"
