"""Tests for the sharded control plane: hash ring, router, directory."""

import pytest

from repro.control import BootstrapRouter, HashRing, ShardedDirectory
from repro.errors import ConfigurationError
from repro.netaddr import IPv4Address


def _ip(value: int) -> IPv4Address:
    return IPv4Address(0x0A000000 + value)  # 10.0.x.y


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(5)
        b = HashRing(5)
        assert [a.owner(k) for k in range(200)] == [b.owner(k) for k in range(200)]

    def test_every_shard_owns_some_keys(self):
        ring = HashRing(4)
        owners = {ring.owner(k) for k in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(k) for k in range(50)} == {0}

    def test_preference_starts_at_owner_and_is_distinct(self):
        ring = HashRing(4)
        for key in range(100):
            chain = ring.preference(key)
            assert chain[0] == ring.owner(key)
            assert sorted(chain) == [0, 1, 2, 3]

    def test_preference_count_truncates(self):
        ring = HashRing(4)
        assert len(ring.preference(7, count=2)) == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)
        with pytest.raises(ConfigurationError):
            HashRing(2, virtual_nodes=0)


class TestBootstrapRouter:
    def test_address_count_must_match_shards(self):
        with pytest.raises(ConfigurationError):
            BootstrapRouter(HashRing(3), ["a:1", "b:2"], lambda ip: 0)

    def test_single_router_always_returns_its_address(self):
        router = BootstrapRouter.single("boot:9")
        assert router.shard_count == 1
        assert router.addrs_for(_ip(1)) == ["boot:9"]
        assert router.owner_addr(_ip(1)) == "boot:9"

    def test_addrs_for_walks_preference_owner_first(self):
        ring = HashRing(3)
        addrs = ["s0:1", "s1:1", "s2:1"]
        router = BootstrapRouter(ring, addrs, lambda ip: ip.value % 7)
        for value in range(30):
            ip = _ip(value)
            chain = router.addrs_for(ip)
            assert chain[0] == router.owner_addr(ip)
            assert sorted(chain) == sorted(addrs)


def _directory(shards=3, ttl_ms=100.0):
    ring = HashRing(shards)
    return ShardedDirectory(ring, lambda ip: ip.value % 11, ttl_ms=ttl_ms)


class TestShardedDirectory:
    def test_join_then_resolve_hits_owner_first_try(self):
        directory = _directory()
        ip = _ip(1)
        shard = directory.join(ip, 0.0)
        assert shard == directory.owner_of(ip)
        resolved = directory.resolve(ip, 1.0)
        assert resolved == (shard, 1)

    def test_rejoin_is_idempotent(self):
        directory = _directory()
        ip = _ip(2)
        for t in range(5):
            directory.join(ip, float(t))
        assert directory.total() == 1
        assert directory.peak_total == 1

    def test_leave_removes_and_miss_is_well_formed(self):
        directory = _directory()
        ip = _ip(3)
        directory.join(ip, 0.0)
        assert directory.leave(ip, 1.0) == 1
        assert directory.resolve(ip, 2.0) is None
        assert directory.resolve_misses == 1

    def test_ttl_sweep_expires_stale_leases(self):
        directory = _directory(ttl_ms=100.0)
        directory.join(_ip(4), 0.0)
        directory.join(_ip(5), 80.0)
        assert directory.sweep(150.0) == 1  # only the t=0 lease expired
        assert directory.total() == 1

    def test_down_shard_fails_over_to_ring_successor(self):
        directory = _directory()
        ip = _ip(6)
        owner = directory.owner_of(ip)
        directory.set_shard_down(owner, 10.0)
        shard = directory.join(ip, 11.0)
        assert shard is not None and shard != owner
        assert directory.failover_joins == 1
        # Resolve walks past the dead owner to the successor's copy.
        assert directory.resolve(ip, 12.0) is not None

    def test_all_shards_down_is_a_failed_join(self):
        directory = _directory(shards=2)
        directory.set_shard_down(0, 0.0)
        directory.set_shard_down(1, 0.0)
        assert directory.join(_ip(7), 1.0) is None
        assert directory.failed_joins == 1

    def test_recovered_shard_restarts_empty(self):
        directory = _directory()
        ip = _ip(8)
        owner = directory.owner_of(ip)
        directory.join(ip, 0.0)
        directory.set_shard_down(owner, 1.0)
        directory.set_shard_up(owner, 2.0)
        assert directory.sizes()[owner] == 0
        # Soft state: the next refresh re-registers on the owner.
        assert directory.join(ip, 3.0) == owner

    def test_operation_log_is_byte_stable(self):
        def run():
            directory = _directory()
            for value in range(20):
                directory.join(_ip(value), float(value))
            directory.set_shard_down(0, 30.0)
            directory.join(_ip(21), 31.0)
            directory.set_shard_up(0, 40.0)
            directory.leave(_ip(3), 41.0)
            directory.sweep(500.0)
            return directory.log

        assert run() == run()
