"""Unit tests for the ``repro.media`` plane: frames, jitter buffer,
PLC, codec adaptation, trace scoring and the end-to-end session."""

import pytest

from repro.errors import ConfigurationError
from repro.media.adapt import AdaptationPolicy, CodecAdapter
from repro.media.frames import (
    CODEC_WIRE_IDS,
    FrameSource,
    ReceivedFrame,
    ReceivedTrace,
    codec_by_wire_id,
    trace_from_wire,
)
from repro.media.jitterbuf import AdaptiveJitterBuffer, JitterBufferConfig
from repro.media.plc import PLCConfig, conceal
from repro.media.score import MEASURED_MOS_TOLERANCE, score_trace
from repro.media.session import MediaPlaneConfig, PathWindow, run_media_session
from repro.voip.codecs import ALL_CODECS, G729A_VAD, ILBC
from repro.voip.emodel import EModel, EModelConfig
from repro.voip.outage import OutageWindow
from repro.voip.quality import mos_of_path


# -- fallback codec sanity (satellite) ----------------------------------------


class TestFallbackCodec:
    def test_fallback_worse_at_zero_loss(self):
        """iLBC's longer frame + lookahead costs delay: at zero loss the
        primary codec scores strictly better."""
        primary = EModel(EModelConfig(codec=G729A_VAD))
        fallback = EModel(EModelConfig(codec=ILBC))
        for one_way in (20.0, 80.0, 150.0):
            assert primary.mos(one_way, 0.0) > fallback.mos(one_way, 0.0)

    def test_fallback_better_at_high_loss(self):
        """iLBC's Bpl advantage dominates once loss climbs."""
        primary = EModel(EModelConfig(codec=G729A_VAD))
        fallback = EModel(EModelConfig(codec=ILBC))
        for loss in (0.05, 0.10, 0.20):
            assert fallback.mos(80.0, loss) > primary.mos(80.0, loss)

    def test_ilbc_constants(self):
        assert ILBC.bpl > G729A_VAD.bpl
        assert ILBC.codec_delay_ms() > G729A_VAD.codec_delay_ms()
        assert ILBC in ALL_CODECS


# -- frames -------------------------------------------------------------------


class TestFrames:
    def test_wire_ids_are_stable_and_total(self):
        assert len(CODEC_WIRE_IDS) == len(ALL_CODECS)
        for codec in ALL_CODECS:
            assert codec_by_wire_id(CODEC_WIRE_IDS[codec.name]) is codec
        with pytest.raises(ConfigurationError):
            codec_by_wire_id(200)

    def test_source_paces_at_codec_interval(self):
        source = FrameSource(G729A_VAD)
        frames = list(source.frames_until(100.0))
        assert [f.sequence for f in frames] == list(range(5))
        assert [f.sent_ms for f in frames] == [0.0, 20.0, 40.0, 60.0, 80.0]

    def test_switch_changes_pacing(self):
        source = FrameSource(G729A_VAD)
        source.next_frame()          # 0 ms
        source.switch(ILBC)          # 30 ms interval from the next frame on
        second = source.next_frame()
        third = source.next_frame()
        assert second.codec is ILBC
        assert third.sent_ms - second.sent_ms == ILBC.packet_interval_ms()

    def test_trace_roundtrip_is_byte_identical(self, tmp_path):
        frames = tuple(
            ReceivedFrame(i, i * 20.0, None if i == 3 else i * 20.0 + 45.0, "G.729A+VAD")
            for i in range(6)
        )
        trace = ReceivedTrace(call_id=9, frames=frames)
        path = tmp_path / "trace.jsonl"
        trace.write(path)
        again = ReceivedTrace.read(path)
        assert again == trace
        assert again.to_jsonl() == trace.to_jsonl()
        assert trace.loss_rate == pytest.approx(1 / 6)

    def test_trace_rejects_gaps(self):
        with pytest.raises(ConfigurationError):
            ReceivedTrace(
                call_id=1,
                frames=(ReceivedFrame(1, 0.0, 1.0, "G.729A+VAD"),),
            )

    def test_trace_from_wire_fills_gaps_as_loss(self):
        wire_id = CODEC_WIRE_IDS["G.729A+VAD"]
        receipts = [
            (0, 0.0, 60.0, wire_id),
            (2, 40.0, 100.0, wire_id),
            (2, 40.0, 95.0, wire_id),   # duplicate: earliest arrival wins
        ]
        trace = trace_from_wire(7, receipts, expected_frames=4)
        assert len(trace.frames) == 4
        assert trace.frames[1].lost and trace.frames[3].lost
        assert trace.frames[2].arrival_ms == 95.0
        assert trace.frames[1].sent_ms == 20.0  # interpolated pacing


# -- jitter buffer ------------------------------------------------------------


def _trace(arrivals, interval=20.0, codec="G.729A+VAD"):
    return ReceivedTrace(
        call_id=1,
        frames=tuple(
            ReceivedFrame(i, i * interval, a, codec) for i, a in enumerate(arrivals)
        ),
    )


class TestJitterBuffer:
    def test_steady_path_all_played_at_min_depth(self):
        trace = _trace([i * 20.0 + 60.0 for i in range(50)])
        result = AdaptiveJitterBuffer().play(trace)
        assert result.played == 50 and result.late == 0 and result.lost == 0
        assert result.mean_depth_ms == pytest.approx(20.0)
        # Playout = sent + delay + depth on a jitter-free path.
        assert result.frames[10].playout_ms == pytest.approx(10 * 20.0 + 60.0 + 20.0)

    def test_late_frame_reclassified_as_loss(self):
        arrivals = [i * 20.0 + 60.0 for i in range(50)]
        arrivals[30] = 30 * 20.0 + 500.0  # way past any deadline
        result = AdaptiveJitterBuffer().play(_trace(arrivals))
        assert result.frames[30].status == "late"
        assert result.effective_loss_flags[30] is True
        assert result.late == 1

    def test_lost_frames_do_not_advance_estimators(self):
        steady = [i * 20.0 + 60.0 for i in range(40)]
        with_loss = list(steady)
        with_loss[5] = None
        a = AdaptiveJitterBuffer().play(_trace(steady))
        b = AdaptiveJitterBuffer().play(_trace(with_loss))
        # Every other frame's playout schedule is unchanged by the loss.
        for i in (6, 20, 39):
            assert a.frames[i].playout_ms == b.frames[i].playout_ms

    def test_depth_clamped_to_max(self):
        config = JitterBufferConfig(max_depth_ms=50.0)
        buf = AdaptiveJitterBuffer(config)
        arrivals = [i * 20.0 + 60.0 + (i % 7) * 40.0 for i in range(200)]
        result = buf.play(_trace(arrivals))
        assert all(f.depth_ms <= 50.0 for f in result.frames)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JitterBufferConfig(alpha=1.5)
        with pytest.raises(ConfigurationError):
            JitterBufferConfig(min_depth_ms=100.0, max_depth_ms=10.0)


# -- PLC ----------------------------------------------------------------------


class TestPLC:
    def test_short_runs_fully_concealed(self):
        flags = [False, True, True, False, True, False]
        report = conceal(flags)
        assert report.concealed == 3 and report.revealed == 0
        assert report.effective_loss == pytest.approx(3 * 0.35 / 6)

    def test_long_burst_revealed_past_window(self):
        flags = [False] * 5 + [True] * 8 + [False] * 5
        report = conceal(flags, PLCConfig(max_conceal_frames=3))
        assert report.concealed == 3 and report.revealed == 5
        assert report.statuses[5:8] == ("concealed",) * 3
        assert report.statuses[8:13] == ("revealed",) * 5

    def test_burst_aware_same_mean_loss(self):
        """Same loss count, burstier arrangement → more revealed loss."""
        scattered = ([True] + [False] * 9) * 4          # 4 isolated losses
        bursty = [True] * 4 + [False] * 36              # one 4-burst
        assert (
            conceal(bursty).effective_loss > conceal(scattered).effective_loss
        )

    def test_runs_reset_after_good_frame(self):
        flags = [True] * 3 + [False] + [True] * 3
        report = conceal(flags, PLCConfig(max_conceal_frames=3))
        assert report.revealed == 0  # both runs fit the window


# -- adaptation ---------------------------------------------------------------


class TestAdaptation:
    def test_down_and_up_switch_with_hysteresis(self):
        policy = AdaptationPolicy(window_frames=10, down_loss=0.3, up_loss=0.1,
                                  min_dwell_frames=0)
        adapter = CodecAdapter(policy)
        switches = []
        t = 0.0
        # 10 clean frames, then a heavy-loss episode, then clean again.
        pattern = [False] * 10 + [True] * 5 + [False] * 40
        for seq, lost in enumerate(pattern):
            s = adapter.observe(seq, t, lost)
            if s:
                switches.append(s)
            t += 20.0
        assert [s.to_codec for s in switches] == ["iLBC", "G.729A+VAD"]
        assert switches[0].window_loss >= policy.down_loss
        assert switches[1].window_loss <= policy.up_loss

    def test_no_switch_inside_hysteresis_band(self):
        policy = AdaptationPolicy(window_frames=10, down_loss=0.5, up_loss=0.1,
                                  min_dwell_frames=0)
        adapter = CodecAdapter(policy)
        # Constant 20% loss sits between the thresholds: never switches.
        for seq in range(200):
            assert adapter.observe(seq, seq * 20.0, seq % 5 == 0) is None
        assert adapter.codec is policy.primary

    def test_dwell_blocks_immediate_flap(self):
        policy = AdaptationPolicy(window_frames=4, down_loss=0.5, up_loss=0.4,
                                  min_dwell_frames=100)
        adapter = CodecAdapter(policy)
        switched = 0
        for seq in range(100):
            if adapter.observe(seq, seq * 20.0, True):
                switched += 1
        assert switched == 1  # dwell holds despite the thresholds inviting flaps

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(down_loss=0.1, up_loss=0.2)
        with pytest.raises(ConfigurationError):
            AdaptationPolicy(window_frames=0)


# -- scoring ------------------------------------------------------------------


class TestScoreTrace:
    def test_measured_agrees_with_closed_form_on_clean_path(self):
        """Zero-fault fixed-RTT path: measured MOS within the documented
        tolerance of the closed-form E-model score (same codec/loss)."""
        rtt = 150.0
        result = run_media_session(
            call_id=1,
            duration_ms=10_000.0,
            path=[PathWindow(0.0, rtt, 0.0)],
            config=MediaPlaneConfig(jitter_mean_ms=0.0),
            seed=0,
        )
        closed = mos_of_path(rtt, loss_rate=0.0)
        assert abs(result.score.mos - closed) < MEASURED_MOS_TOLERANCE

    def test_zero_played_window_counts_as_outage(self):
        arrivals = [i * 20.0 + 60.0 for i in range(150)]
        for i in range(50, 100):       # second second: nothing arrives
            arrivals[i] = None
        score = score_trace(_trace(arrivals))
        assert any(w.is_outage for w in score.windows)
        assert score.outage_windows
        assert score.mos < score.base_mos

    def test_loss_lowers_measured_mos(self):
        clean = run_media_session(
            1, 10_000.0, [PathWindow(0.0, 100.0, 0.0)],
            config=MediaPlaneConfig(jitter_mean_ms=0.0), seed=0,
        )
        lossy = run_media_session(
            1, 10_000.0, [PathWindow(0.0, 100.0, 0.10)],
            config=MediaPlaneConfig(jitter_mean_ms=0.0), seed=0,
        )
        assert lossy.score.mos < clean.score.mos

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            score_trace(ReceivedTrace(call_id=1, frames=()))


# -- end-to-end session -------------------------------------------------------


class TestMediaSession:
    def test_same_seed_byte_identical(self):
        kwargs = dict(
            call_id=5,
            duration_ms=12_000.0,
            path=[PathWindow(0.0, 120.0, 0.02)],
            config=MediaPlaneConfig(burst_frames=4.0),
            seed=11,
        )
        a = run_media_session(**kwargs)
        b = run_media_session(**kwargs)
        assert a.trace.to_jsonl() == b.trace.to_jsonl()
        assert a.score == b.score
        assert a.switches == b.switches

    def test_different_seeds_differ(self):
        kwargs = dict(
            call_id=5, duration_ms=12_000.0,
            path=[PathWindow(0.0, 120.0, 0.05)],
            config=MediaPlaneConfig(),
        )
        a = run_media_session(seed=1, **kwargs)
        b = run_media_session(seed=2, **kwargs)
        assert a.trace.to_jsonl() != b.trace.to_jsonl()

    def test_burst_triggers_codec_switch(self):
        result = run_media_session(
            call_id=2,
            duration_ms=20_000.0,
            path=[
                PathWindow(0.0, 120.0, 0.005),
                PathWindow(5_000.0, 120.0, 0.30),
                PathWindow(12_000.0, 120.0, 0.005),
            ],
            config=MediaPlaneConfig(burst_frames=4.0),
            seed=5,
        )
        downs = [s for s in result.switches if s.to_codec == ILBC.name]
        assert downs, "expected a fallback switch under the loss burst"
        assert 5_000.0 <= downs[0].at_ms <= 12_000.0

    def test_outage_overrides_channel_without_perturbing_it(self):
        kwargs = dict(
            call_id=3, duration_ms=10_000.0,
            path=[PathWindow(0.0, 100.0, 0.0)],
            config=MediaPlaneConfig(jitter_mean_ms=0.0, adaptation=None),
            seed=0,
        )
        clean = run_media_session(**kwargs)
        cut = run_media_session(
            outages=[OutageWindow(3_000.0, 5_000.0)], **kwargs
        )
        # Outside the outage the traces agree frame for frame.
        for f_clean, f_cut in zip(clean.trace.frames, cut.trace.frames):
            if 3_000.0 <= f_clean.sent_ms < 5_000.0:
                assert f_cut.lost
            else:
                assert f_clean == f_cut
        assert cut.score.mos < clean.score.mos

    def test_session_validation(self):
        with pytest.raises(ConfigurationError):
            run_media_session(1, 0.0, [PathWindow(0.0, 100.0, 0.0)])
        with pytest.raises(ConfigurationError):
            run_media_session(1, 1000.0, [])
        with pytest.raises(ConfigurationError):
            run_media_session(
                1, 1000.0,
                [PathWindow(500.0, 100.0, 0.0), PathWindow(0.0, 100.0, 0.0)],
            )
