"""Tests for BGP dump files, matrix archives, and record CSV/JSON."""

import json

import numpy as np
import pytest

from repro.errors import BGPParseError, ReproError
from repro.evaluation.metrics import MethodRecord
from repro.scenario import tiny_scenario
from repro.storage import (
    load_matrices,
    load_records_csv,
    read_rib_file,
    read_update_file,
    save_matrices,
    save_records_csv,
    save_records_json,
    write_rib_file,
    write_update_file,
)
from repro.topology import allocate_prefixes, generate_rib_entries, generate_topology, generate_update_stream, TopologyConfig


@pytest.fixture(scope="module")
def world():
    topo = generate_topology(TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=25, seed=2))
    allocation = allocate_prefixes(topo, seed=2)
    entries = generate_rib_entries(topo, allocation, vantage_count=4, seed=2)
    updates = generate_update_stream(topo, allocation, churn_fraction=0.2, vantage_count=4, seed=2)
    return entries, updates


class TestDumpFiles:
    def test_rib_round_trip(self, tmp_path, world):
        entries, _ = world
        path = tmp_path / "rib.dump"
        count = write_rib_file(path, entries)
        assert count == len(entries)
        assert read_rib_file(path) == entries

    def test_rib_file_has_header_comment(self, tmp_path, world):
        entries, _ = world
        path = tmp_path / "rib.dump"
        write_rib_file(path, entries)
        assert path.read_text().startswith("#")

    def test_update_round_trip(self, tmp_path, world):
        _, updates = world
        path = tmp_path / "updates.log"
        count = write_update_file(path, updates)
        assert count == len(updates)
        assert read_update_file(path) == updates

    def test_corrupt_rib_file_rejected(self, tmp_path):
        path = tmp_path / "bad.dump"
        path.write_text("RIB|not|valid\n")
        with pytest.raises(BGPParseError):
            read_rib_file(path)


class TestMatrixArchive:
    def test_round_trip(self, tmp_path):
        scenario = tiny_scenario(seed=2)
        matrices = scenario.matrices
        path = tmp_path / "matrices.npz"
        save_matrices(path, matrices)
        loaded = load_matrices(path)
        assert loaded.prefixes == matrices.prefixes
        assert np.array_equal(loaded.asn_of, matrices.asn_of)
        assert np.array_equal(loaded.sizes, matrices.sizes)
        assert np.array_equal(loaded.rtt_ms, matrices.rtt_ms)
        assert np.array_equal(loaded.loss, matrices.loss)
        assert np.array_equal(loaded.as_hops, matrices.as_hops)
        assert loaded.index_of == matrices.index_of

    def test_loaded_matrices_usable(self, tmp_path):
        scenario = tiny_scenario(seed=2)
        path = tmp_path / "m.npz"
        save_matrices(path, scenario.matrices)
        loaded = load_matrices(path)
        assert loaded.one_hop_rtt(0, 1, 2) == scenario.matrices.one_hop_rtt(0, 1, 2)

    def test_version_check(self, tmp_path):
        scenario = tiny_scenario(seed=2)
        path = tmp_path / "m.npz"
        save_matrices(path, scenario.matrices)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        data["version"] = np.array([99])
        np.savez(path, **data)
        with pytest.raises(ReproError):
            load_matrices(path)


def sample_records():
    return [
        MethodRecord("ASAP", 0, 1200, 210.5, 3.9, 2, one_hop_quality_paths=800),
        MethodRecord("DEDI", 0, 8, 250.0, 3.8, 160, one_hop_quality_paths=8),
        MethodRecord("RAND", 1, 0, None, None, 400, one_hop_quality_paths=0),
    ]


class TestRecordFiles:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "records.csv"
        records = sample_records()
        assert save_records_csv(path, records) == 3
        assert load_records_csv(path) == records

    def test_csv_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("method,session_id\nASAP,1\n")
        with pytest.raises(ReproError):
            load_records_csv(path)

    def test_json_export(self, tmp_path):
        path = tmp_path / "records.json"
        assert save_records_json(path, sample_records()) == 3
        payload = json.loads(path.read_text())
        assert len(payload) == 3
        assert payload[0]["method"] == "ASAP"
        assert payload[2]["best_rtt_ms"] is None


class TestASGraphFile:
    def _graph(self):
        from repro.bgp import ASGraph

        g = ASGraph()
        g.add_peer(1, 2)
        g.add_provider_customer(1, 3)
        g.add_provider_customer(2, 4)
        g.add_sibling(3, 5)
        g.add_as(9)  # isolated AS must survive the round trip
        return g

    def test_round_trip(self, tmp_path):
        from repro.storage.dumps import read_asgraph_file, write_asgraph_file
        from repro.bgp.asgraph import Relationship

        graph = self._graph()
        path = tmp_path / "asgraph.txt"
        count = write_asgraph_file(path, graph)
        assert count == graph.edge_count()
        loaded = read_asgraph_file(path)
        assert loaded.ases() == graph.ases()
        assert loaded.relationship(1, 2) is Relationship.PEER_PEER
        assert loaded.is_provider_of(1, 3)
        assert loaded.relationship(3, 5) is Relationship.SIBLING_SIBLING
        assert 9 in loaded

    def test_scenario_graph_round_trip(self, tmp_path):
        from repro.storage.dumps import read_asgraph_file, write_asgraph_file

        scenario = tiny_scenario(seed=2)
        path = tmp_path / "inferred.txt"
        write_asgraph_file(path, scenario.inferred_graph)
        loaded = read_asgraph_file(path)
        assert loaded.edge_count() == scenario.inferred_graph.edge_count()
        assert loaded.ases() == scenario.inferred_graph.ases()

    def test_malformed_rejected(self, tmp_path):
        from repro.errors import BGPParseError
        from repro.storage.dumps import read_asgraph_file

        path = tmp_path / "bad.txt"
        path.write_text("P2C|1\n")
        with pytest.raises(BGPParseError):
            read_asgraph_file(path)
        path.write_text("P2C|one|two\n")
        with pytest.raises(BGPParseError):
            read_asgraph_file(path)


class TestKingCampaign:
    def test_campaign_response_rate(self):
        from repro.measurement.tools import KingEstimator, run_king_campaign

        scenario = tiny_scenario(seed=2)
        king = KingEstimator(scenario.latency, seed=1, non_response_rate=0.3)
        estimates, responded, attempted = run_king_campaign(
            king, scenario.clusters, max_pairs=500
        )
        assert attempted == 500
        assert responded == len(estimates)
        # ~70% answer rate, like the paper's campaign.
        assert 0.55 < responded / attempted < 0.85

    def test_estimates_are_near_truth(self):
        from repro.measurement.tools import KingEstimator, run_king_campaign

        scenario = tiny_scenario(seed=2)
        king = KingEstimator(scenario.latency, seed=1, non_response_rate=0.0)
        estimates, _, _ = run_king_campaign(king, scenario.clusters, max_pairs=200)
        matrices = scenario.matrices
        errors = []
        for (i, j), est in estimates.items():
            truth = matrices.rtt_ms[i, j]
            if np.isfinite(truth):
                errors.append(abs(est - truth) / truth)
        assert errors and np.median(errors) < 0.15
