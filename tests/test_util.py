"""Tests for the rng and stats utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    ccdf_points,
    cdf_points,
    derive_rng,
    percentile,
    spawn_rngs,
    summarize,
)
from repro.util.stats import fraction_above, fraction_below


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42, "x").integers(0, 10**9, 5)
        b = derive_rng(42, "x").integers(0, 10**9, 5)
        assert np.array_equal(a, b)

    def test_labels_namespace_streams(self):
        a = derive_rng(42, "topology").integers(0, 10**9, 5)
        b = derive_rng(42, "workload").integers(0, 10**9, 5)
        assert not np.array_equal(a, b)

    def test_multiple_labels(self):
        a = derive_rng(1, "a", "b").integers(0, 10**9, 3)
        b = derive_rng(1, "a", "c").integers(0, 10**9, 3)
        assert not np.array_equal(a, b)

    def test_generator_seed_draws_child(self):
        parent = np.random.default_rng(7)
        child = derive_rng(parent, "x")
        assert isinstance(child, np.random.Generator)

    def test_none_seed_nondeterministic_type(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(5, 3, "pool")
        assert len(rngs) == 3
        draws = [r.integers(0, 10**9, 4) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])

    def test_spawn_rngs_deterministic(self):
        a = [r.integers(0, 100, 3).tolist() for r in spawn_rngs(5, 2, "pool")]
        b = [r.integers(0, 100, 3).tolist() for r in spawn_rngs(5, 2, "pool")]
        assert a == b


class TestStats:
    def test_summarize_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert "n=" in summary.row()

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points_shape(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_cdf_points_empty(self):
        assert cdf_points([]) == []

    def test_ccdf_complements_cdf(self):
        samples = [1.0, 5.0, 9.0, 9.0]
        for (v1, p), (v2, q) in zip(cdf_points(samples), ccdf_points(samples)):
            assert v1 == v2
            assert p + q == pytest.approx(1.0)

    def test_fractions(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(samples, 2.5) == 0.5
        assert fraction_above(samples, 2.5) == 0.5
        assert fraction_below([], 1.0) == 0.0
        assert fraction_above([], 1.0) == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_cdf_monotone_and_bounded(self, samples):
        points = cdf_points(samples)
        ps = [p for _, p in points]
        vs = [v for v, _ in points]
        assert ps == sorted(ps)
        assert vs == sorted(vs)
        assert ps[-1] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_summary_ordering(self, samples):
        s = summarize(samples)
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.p90 <= s.p99 <= s.maximum


class TestGoldenDeterminism:
    """Regression guard: the tiny world's key numbers must never drift
    silently.  If a substrate change moves them, update these constants
    deliberately (and re-check EXPERIMENTS.md)."""

    def test_tiny_world_fingerprint(self):
        from repro.scenario import tiny_scenario

        scenario = tiny_scenario(seed=11)
        matrices = scenario.matrices
        assert len(scenario.population) == 300
        assert matrices.count == 46
        finite = matrices.rtt_ms[np.isfinite(matrices.rtt_ms)]
        assert np.median(finite) == pytest.approx(124.563, abs=0.5)
        assert float((finite > 300).mean()) == pytest.approx(0.0789, abs=0.005)

    def test_tiny_world_asap_fingerprint(self):
        from repro.core import ASAPConfig, ASAPSystem
        from repro.core.config import derive_k_hops
        from repro.evaluation import generate_workload

        scenario = tiny_scenario = __import__("repro.scenario", fromlist=["tiny_scenario"]).tiny_scenario(seed=11)
        system = ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices)))
        workload = generate_workload(scenario, 300, seed=1, latent_target=5)
        latent = workload.latent()[:5]
        results = [system.call(s.caller, s.callee) for s in latent]
        fingerprint = [(r.quality_paths, r.messages) for r in results]
        again = [
            (r.quality_paths, r.messages)
            for r in (
                ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))).call(s.caller, s.callee)
                for s in latent
            )
        ]
        assert fingerprint == again
