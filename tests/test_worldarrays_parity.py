"""Flat-array substrate parity: bit-identical to the object reference.

The ``repro.worldarrays`` fast paths are *substitutes*, not
approximations: for the same scenario they must reproduce the object
paths bit for bit — every matrix cell (IEEE-exact), every close-set
entry, every probe count, and every observability record, across
seeds, scales, serial and parallel execution, with fault injection
running and tracing on.  These tests are the contract that lets the
flat paths be the default.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.core import ASAPConfig, ASAPSystem
from repro.evaluation.chaos import run_chaos
from repro.faults import FaultScheduleConfig
from repro.measurement.matrix import compute_delegate_matrices
from repro.scenario import ScenarioConfig, build_scenario, tiny_scenario
from repro.scenario import PopulationConfig, TopologyConfig
from repro.worldarrays import FLAT_WORLD_ENV, flat_enabled

SEEDS = (3, 11, 29)


def _medium_scenario(seed: int):
    """A second scale tier: ~2x the tiny world in every dimension."""
    config = dataclasses.replace(
        ScenarioConfig.preset("tiny", seed),
        topology=TopologyConfig(
            tier1_count=4, tier2_count=16, tier3_count=80, seed=seed
        ),
        population=PopulationConfig(host_count=900, seed=seed),
        vantage_count=6,
    )
    return build_scenario(config)


@pytest.fixture(scope="module")
def scenarios():
    return [tiny_scenario(seed=s) for s in SEEDS] + [_medium_scenario(17)]


def _assert_matrices_identical(a, b):
    assert np.array_equal(a.rtt_ms, b.rtt_ms)
    assert np.array_equal(a.loss, b.loss)
    assert np.array_equal(a.as_hops, b.as_hops)
    assert a.prefixes == b.prefixes


class TestFlatDefault:
    def test_flat_is_the_default(self, monkeypatch):
        monkeypatch.delenv(FLAT_WORLD_ENV, raising=False)
        assert flat_enabled()

    def test_env_opts_out(self, monkeypatch):
        for value in ("0", "no", "off"):
            monkeypatch.setenv(FLAT_WORLD_ENV, value)
            assert not flat_enabled()
        monkeypatch.setenv(FLAT_WORLD_ENV, "1")
        assert flat_enabled()


class TestMatrixParity:
    def test_flat_serial_bit_identical_across_seeds_and_scales(self, scenarios):
        for scenario in scenarios:
            flat = compute_delegate_matrices(
                scenario.latency, scenario.clusters, method="flat"
            )
            obj = compute_delegate_matrices(
                scenario.latency, scenario.clusters, method="object"
            )
            _assert_matrices_identical(flat, obj)

    def test_flat_parallel_bit_identical_to_object_serial(self, scenarios):
        scenario = scenarios[0]
        reference = compute_delegate_matrices(
            scenario.latency, scenario.clusters, method="object"
        )
        for workers in (2, 3):
            parallel = compute_delegate_matrices(
                scenario.latency, scenario.clusters, workers=workers, method="flat"
            )
            _assert_matrices_identical(parallel, reference)

    def test_object_parallel_still_bit_identical(self, scenarios):
        scenario = scenarios[1]
        reference = compute_delegate_matrices(
            scenario.latency, scenario.clusters, method="object"
        )
        parallel = compute_delegate_matrices(
            scenario.latency, scenario.clusters, workers=2, method="object"
        )
        _assert_matrices_identical(parallel, reference)

    def test_unknown_method_rejected(self, scenarios):
        from repro.errors import MeasurementError

        scenario = scenarios[0]
        with pytest.raises(MeasurementError):
            compute_delegate_matrices(
                scenario.latency, scenario.clusters, method="sparse"
            )


def _close_sets(scenario, flat: bool, monkeypatch, workers: int = 1):
    monkeypatch.setenv(FLAT_WORLD_ENV, "1" if flat else "0")
    system = ASAPSystem(scenario, ASAPConfig())
    return system.prebuild_close_sets(workers=workers)


def _assert_close_sets_identical(flat_sets, obj_sets):
    assert set(flat_sets) == set(obj_sets)
    for idx in obj_sets:
        flat, obj = flat_sets[idx], obj_sets[idx]
        assert flat.owner == obj.owner
        assert flat.probe_messages == obj.probe_messages
        assert flat.ases_visited == obj.ases_visited
        assert dict(flat.probes_by_as) == dict(obj.probes_by_as)
        assert set(flat.entries) == set(obj.entries)
        for cluster, entry in obj.entries.items():
            got = flat.entries[cluster]
            assert got.rtt_ms == entry.rtt_ms        # bitwise: no approx
            assert got.loss == entry.loss
            assert got.as_hops == entry.as_hops


class TestCloseSetParity:
    def test_bit_identical_across_seeds_and_scales(self, scenarios, monkeypatch):
        for scenario in scenarios:
            _assert_close_sets_identical(
                _close_sets(scenario, flat=True, monkeypatch=monkeypatch),
                _close_sets(scenario, flat=False, monkeypatch=monkeypatch),
            )

    def test_parallel_prebuild_parity(self, scenarios, monkeypatch):
        scenario = scenarios[0]
        _assert_close_sets_identical(
            _close_sets(scenario, flat=True, monkeypatch=monkeypatch, workers=2),
            _close_sets(scenario, flat=False, monkeypatch=monkeypatch, workers=1),
        )


class TestObservabilityParity:
    """Tracing on: the two paths must write byte-identical traces.jsonl."""

    def _trace_bytes(self, scenario, flat, tmp_path, monkeypatch):
        monkeypatch.setenv(FLAT_WORLD_ENV, "1" if flat else "0")
        obs_dir = tmp_path / ("flat" if flat else "object")
        with obs.observe(obs_dir=obs_dir, trace=True) as run:
            system = ASAPSystem(scenario, ASAPConfig())
            system.prebuild_close_sets(workers=1)
            columns = run.registry.snapshot()["counters"].get("matrix.columns", 0)
        return (obs_dir / "traces.jsonl").read_bytes(), columns

    def test_traces_byte_identical(self, scenarios, tmp_path, monkeypatch):
        scenario = scenarios[0]
        flat_trace, flat_cols = self._trace_bytes(
            scenario, True, tmp_path, monkeypatch
        )
        obj_trace, obj_cols = self._trace_bytes(
            scenario, False, tmp_path, monkeypatch
        )
        assert flat_trace == obj_trace
        assert flat_trace  # non-empty: the spans were actually emitted
        assert flat_cols == obj_cols


class TestChaosParity:
    """Faults enabled: a chaos run is replay-identical under both paths."""

    @pytest.mark.parametrize("seed", [0, 4])
    def test_chaos_run_identical(self, scenarios, monkeypatch, seed):
        scenario = scenarios[0]
        fault_config = FaultScheduleConfig(
            duration_ms=20_000.0,
            surrogate_crash_rate_per_min=6.0,
            host_churn_rate_per_min=6.0,
            message_loss_rate=0.05,
            seed=seed,
        )
        results = {}
        for flat in (True, False):
            monkeypatch.setenv(FLAT_WORLD_ENV, "1" if flat else "0")
            results[flat] = run_chaos(
                scenario, fault_config, sessions=12, joins=12, seed=seed
            )
        assert results[True].to_dict() == results[False].to_dict()
        assert results[True].fault_log == results[False].fault_log
