"""Tests for load-aware relay assignment (§6.2's final pick)."""

import numpy as np
import pytest

from repro.core import ASAPConfig, ASAPSystem
from repro.core.assignment import (
    RelayAssignmentService,
    relay_capacity,
)
from repro.core.config import derive_k_hops
from repro.errors import ProtocolError
from repro.evaluation.sessions import generate_workload
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def world():
    scenario = tiny_scenario(seed=11)
    system = ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices)))
    workload = generate_workload(scenario, 400, seed=1, latent_target=8)
    calls = []
    for session in workload.latent()[:8]:
        call = system.call(session.caller, session.callee)
        if call.selection is not None and call.selection.one_hop:
            calls.append(call)
    if not calls:
        pytest.skip("no relayed calls in tiny world")
    return scenario, system, calls


class TestRelayCapacity:
    def test_scales_with_bandwidth(self):
        assert relay_capacity(64.0) == 1
        assert relay_capacity(1280.0) == 10
        assert relay_capacity(0.0) == 1  # floor of one call


class TestAssignment:
    def test_assigns_within_latency_slack(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        call = calls[0]
        assignment = service.assign(0, call.selection)
        assert assignment is not None
        best = min(c.relay_rtt_ms for c in call.selection.one_hop)
        assert assignment.relay_rtt_ms <= best + service._slack

    def test_load_counted_and_released(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        assignment = service.assign(0, calls[0].selection)
        assert service.load[assignment.relay_ip] == 1
        assert service.active_sessions() == 1
        service.release(0)
        assert service.active_sessions() == 0
        assert service.max_load() == 0

    def test_duplicate_session_rejected(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        service.assign(0, calls[0].selection)
        with pytest.raises(ProtocolError):
            service.assign(0, calls[0].selection)

    def test_release_unknown_rejected(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        with pytest.raises(ProtocolError):
            service.release(99)

    def test_repeated_sessions_spread_load(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        call = calls[0]
        assigned = []
        for sid in range(12):
            assignment = service.assign(sid, call.selection)
            if assignment is None:
                break
            assigned.append(assignment.relay_ip)
        # Least-loaded picking must not pile every session on one IP
        # while alternatives exist.
        if len(assigned) >= 4:
            assert len(set(assigned)) > 1

    def test_assignment_deterministic(self, world):
        scenario, system, calls = world
        a = RelayAssignmentService(scenario.clusters, scenario.matrices, seed=3)
        b = RelayAssignmentService(scenario.clusters, scenario.matrices, seed=3)
        for sid, call in enumerate(calls):
            ra = a.assign(sid, call.selection)
            rb = b.assign(sid, call.selection)
            assert (ra is None) == (rb is None)
            if ra is not None:
                assert ra.relay_ip == rb.relay_ip

    def test_no_candidates_returns_none(self, world):
        scenario, system, calls = world
        from repro.core.relay_selection import RelaySelection

        service = RelayAssignmentService(scenario.clusters, scenario.matrices)
        assert service.assign(0, RelaySelection()) is None

    def test_capacity_exhaustion(self, world):
        scenario, system, calls = world
        service = RelayAssignmentService(
            scenario.clusters, scenario.matrices, latency_slack_ms=0.0
        )
        call = calls[0]
        # Saturate: keep assigning until the (slack=0 → single-cluster)
        # candidate pool runs out of capacity.
        results = []
        for sid in range(10_000):
            assignment = service.assign(sid, call.selection, max_candidate_clusters=1)
            if assignment is None:
                break
            results.append(assignment)
        assert results, "expected at least one assignment"
        assert len(results) < 10_000, "capacity must eventually exhaust"
