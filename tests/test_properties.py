"""Cross-module property tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asgraph import ASGraph
from repro.bgp.pathinfer import infer_as_path
from repro.bgp.routing import PolicyRouter
from repro.core import ASAPConfig, construct_close_cluster_set
from repro.core.close_cluster import CloseClusterSet
from repro.core.relay_selection import select_close_relay
from repro.core.close_cluster import CloseClusterEntry
from repro.topology import TopologyConfig, generate_topology
from repro.util.rng import derive_rng


def random_annotated_graph(seed: int, n: int = 12) -> ASGraph:
    """A small random annotated graph (always includes a tier-1 pair)."""
    rng = derive_rng(seed, "prop-graph")
    g = ASGraph()
    g.add_peer(1, 2)
    for asn in range(3, n + 1):
        g.add_as(asn)
        provider = int(rng.integers(1, asn))
        if g.relationship(provider, asn) is None:
            g.add_provider_customer(provider, asn)
        if rng.random() < 0.3:
            other = int(rng.integers(1, asn))
            if other != asn and g.relationship(other, asn) is None:
                if rng.random() < 0.5:
                    g.add_peer(other, asn)
                else:
                    g.add_provider_customer(other, asn)
    return g


class TestGraphProperties:
    @given(st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_ball_monotone_in_radius(self, seed):
        g = random_annotated_graph(seed)
        start = 3
        previous = set()
        for k in range(0, 5):
            ball = set(g.valley_free_ball(start, k))
            assert previous <= ball, "ball must grow monotonically with k"
            previous = ball

    @given(st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_ball_distances_match_pairwise_distance(self, seed):
        g = random_annotated_graph(seed)
        ball = g.valley_free_ball(3, 4)
        for node, dist in ball.items():
            direct = g.valley_free_distance(3, node)
            assert direct is not None
            assert direct == dist

    @given(st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_inferred_path_never_beats_ball_distance(self, seed):
        g = random_annotated_graph(seed)
        for dst in list(g.ases())[:6]:
            path = infer_as_path(g, 3, dst)
            dist = g.valley_free_distance(3, dst)
            if path is None:
                assert dist is None
            else:
                assert len(path) - 1 == dist

    @given(st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_policy_path_at_least_shortest_valley_free(self, seed):
        g = random_annotated_graph(seed)
        router = PolicyRouter(g)
        for dst in list(g.ases())[:5]:
            selected = router.as_path(3, dst)
            if selected is None:
                continue
            shortest = g.valley_free_distance(3, dst)
            assert shortest is not None
            assert len(selected) - 1 >= shortest

    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_policy_subpath_consistency(self, seed):
        # Hop-by-hop forwarding: the next hop's selected path to the
        # same destination is the tail of the current path.
        g = random_annotated_graph(seed)
        router = PolicyRouter(g)
        for dst in list(g.ases())[:4]:
            tree = router.tree(dst)
            for src in g.ases():
                path = tree.path_from(src)
                if path is None or len(path) < 2:
                    continue
                assert tree.path_from(path[1]) == path[1:]


class TestCloseSetProperties:
    def _world(self, seed):
        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=30, seed=seed)
        )
        graph = topo.graph
        stubs = topo.stub_ases()
        clusters_in_as = lambda asn: [asn] if asn in stubs else []
        rng = derive_rng(seed, "prop-lat")
        cache = {}

        def lat(a, b):
            key = (min(a, b), max(a, b))
            if key not in cache:
                cache[key] = float(rng.uniform(20.0, 400.0))
            return cache[key]

        loss = lambda a, b: 0.0
        return topo, graph, stubs, clusters_in_as, lat, loss

    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_close_set_monotone_in_k(self, seed):
        topo, graph, stubs, cin, lat, loss = self._world(seed)
        own = stubs[0]
        previous = set()
        for k in (1, 2, 3, 4):
            result = construct_close_cluster_set(
                own, own, graph, cin, lat, loss, ASAPConfig(k_hops=k)
            )
            current = set(result.entries)
            assert previous <= current
            previous = current

    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_close_set_within_valley_free_ball(self, seed):
        topo, graph, stubs, cin, lat, loss = self._world(seed)
        own = stubs[0]
        k = 3
        result = construct_close_cluster_set(
            own, own, graph, cin, lat, loss, ASAPConfig(k_hops=k)
        )
        ball = graph.valley_free_ball(own, k)
        for cluster in result.entries:
            assert cluster in ball

    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_close_set_entries_meet_thresholds(self, seed):
        topo, graph, stubs, cin, lat, loss = self._world(seed)
        own = stubs[0]
        config = ASAPConfig(k_hops=3, lat_threshold_ms=250.0)
        result = construct_close_cluster_set(own, own, graph, cin, lat, loss, config)
        for cluster, entry in result.entries.items():
            if cluster == own:
                continue
            assert entry.rtt_ms < config.lat_threshold_ms
            assert entry.loss < config.loss_threshold


def close_set_strategy(owner: int):
    entry = st.tuples(
        st.integers(0, 30),
        st.floats(min_value=1.0, max_value=280.0),
    )
    return st.lists(entry, max_size=15).map(
        lambda pairs: _build_set(owner, pairs)
    )


def _build_set(owner, pairs):
    cs = CloseClusterSet(owner=owner)
    for cluster, rtt in pairs:
        if cluster not in cs.entries:
            cs.entries[cluster] = CloseClusterEntry(cluster, rtt, 0.0, 1)
    return cs


class TestRelaySelectionProperties:
    @given(close_set_strategy(100), close_set_strategy(200))
    @settings(max_examples=60, deadline=None)
    def test_message_accounting_formula(self, s1, s2):
        config = ASAPConfig(size_threshold=10**9, max_two_hop_queries=3)
        result = select_close_relay(
            s1, s2, lambda idx: 1, lambda idx: _build_set(idx, []), config
        )
        assert result.messages == 2 + 2 * result.two_hop_queries
        assert result.two_hop_queries <= 3

    @given(close_set_strategy(100), close_set_strategy(200))
    @settings(max_examples=60, deadline=None)
    def test_one_hop_candidates_in_intersection(self, s1, s2):
        config = ASAPConfig(size_threshold=0)
        result = select_close_relay(
            s1, s2, lambda idx: 1, lambda idx: _build_set(idx, []), config
        )
        common = set(s1.entries) & set(s2.entries)
        for candidate in result.one_hop:
            assert candidate.cluster in common
            assert candidate.relay_rtt_ms < config.lat_threshold_ms
            assert candidate.relay_rtt_ms == pytest.approx(
                s1.rtt_to(candidate.cluster)
                + s2.rtt_to(candidate.cluster)
                + config.relay_delay_rtt_ms
            )

    @given(close_set_strategy(100), close_set_strategy(200))
    @settings(max_examples=40, deadline=None)
    def test_quality_paths_nonnegative_and_consistent(self, s1, s2):
        result = select_close_relay(
            s1, s2, lambda idx: 2, lambda idx: _build_set(idx, []), ASAPConfig()
        )
        assert result.quality_paths == result.one_hop_ips + result.two_hop_pairs
        assert result.one_hop_ips == 2 * len(result.one_hop)
