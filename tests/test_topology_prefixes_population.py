"""Tests for prefix allocation and peer population synthesis."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.netaddr import IPv4Prefix
from repro.topology import (
    PopulationConfig,
    TopologyConfig,
    allocate_prefixes,
    generate_population,
    generate_topology,
)
from repro.topology.prefixes import PrefixAllocator

SMALL = TopologyConfig(tier1_count=4, tier2_count=12, tier3_count=40, seed=1)


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/8"))
        a = alloc.allocate(24)
        b = alloc.allocate(24)
        assert a != b
        assert not a.contains_prefix(b) and not b.contains_prefix(a)

    def test_alignment(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/8"))
        alloc.allocate(24)
        big = alloc.allocate(16)
        # /16 must be aligned on a /16 boundary.
        assert big.network % big.size() == 0

    def test_exhaustion(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/30"))
        alloc.allocate(31)
        alloc.allocate(31)
        with pytest.raises(TopologyError):
            alloc.allocate(31)

    def test_rejects_shorter_than_superblock(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/8"))
        with pytest.raises(TopologyError):
            alloc.allocate(4)

    def test_remaining_addresses_decreases(self):
        alloc = PrefixAllocator(IPv4Prefix.from_string("10.0.0.0/16"))
        before = alloc.remaining_addresses()
        alloc.allocate(24)
        assert alloc.remaining_addresses() == before - 256


class TestAllocatePrefixes:
    def test_every_as_gets_prefixes(self):
        topo = generate_topology(SMALL)
        allocation = allocate_prefixes(topo, seed=1)
        for asn in topo.graph.ases():
            assert allocation.prefixes_of[asn], f"AS {asn} got no prefix"

    def test_all_prefixes_disjoint(self):
        topo = generate_topology(SMALL)
        allocation = allocate_prefixes(topo, seed=1)
        prefixes = allocation.all_prefixes()
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains_prefix(b) and not b.contains_prefix(a)

    def test_deterministic(self):
        topo = generate_topology(SMALL)
        a = allocate_prefixes(topo, seed=1)
        b = allocate_prefixes(topo, seed=1)
        assert a.prefixes_of == b.prefixes_of

    def test_origin_of(self):
        topo = generate_topology(SMALL)
        allocation = allocate_prefixes(topo, seed=1)
        asn = topo.stub_ases()[0]
        prefix = allocation.prefixes_of[asn][0]
        assert allocation.origin_of(prefix) == asn
        assert allocation.origin_of(IPv4Prefix.from_string("203.0.113.0/24")) is None


class TestGeneratePopulation:
    def _population(self, host_count=400, seed=2, **kwargs):
        topo = generate_topology(SMALL)
        allocation = allocate_prefixes(topo, seed=1)
        config = PopulationConfig(host_count=host_count, seed=seed, **kwargs)
        return topo, allocation, generate_population(topo, allocation, config)

    def test_hosts_live_in_their_prefix(self):
        _, allocation, pop = self._population()
        for host in pop.hosts:
            assert host.prefix.contains(host.ip)
            assert host.prefix in allocation.prefixes_of[host.asn]

    def test_all_hosts_in_stub_ases(self):
        topo, _, pop = self._population()
        stubs = set(topo.stub_ases())
        for host in pop.hosts:
            assert host.asn in stubs

    def test_no_duplicate_ips(self):
        _, _, pop = self._population()
        ips = pop.ips()
        assert len(ips) == len(set(ips))

    def test_deterministic(self):
        _, _, a = self._population(seed=5)
        _, _, b = self._population(seed=5)
        assert a.ips() == b.ips()

    def test_by_ip_lookup(self):
        _, _, pop = self._population()
        host = pop.hosts[10]
        assert pop.by_ip(host.ip) is host
        assert host.ip in pop

    def test_by_ip_unknown_raises(self):
        _, _, pop = self._population()
        from repro.netaddr import IPv4Address
        with pytest.raises(TopologyError):
            pop.by_ip(IPv4Address.from_string("203.0.113.1"))

    def test_heavy_tail_occupancy(self):
        _, _, pop = self._population(host_count=1000, occupancy_skew=1.2)
        from collections import Counter
        counts = Counter(h.prefix for h in pop.hosts)
        sizes = sorted(counts.values(), reverse=True)
        assert sizes[0] > 5 * np.median(sizes)

    def test_network_address_never_assigned(self):
        _, _, pop = self._population()
        for host in pop.hosts:
            assert host.ip.value != host.prefix.network

    def test_access_delay_in_range(self):
        _, _, pop = self._population()
        lo, hi = PopulationConfig().access_delay_range_ms
        for host in pop.hosts:
            assert lo <= host.access_delay_ms <= hi

    def test_capability_score_positive(self):
        _, _, pop = self._population()
        for host in pop.hosts[:50]:
            assert host.info.capability() > 0


class TestHierarchicalAllocation:
    def _world(self, seed=1):
        from repro.topology.prefixes import allocate_prefixes_hierarchical

        topo = generate_topology(SMALL)
        return topo, allocate_prefixes_hierarchical(topo, seed=seed)

    def test_stub_prefixes_inside_provider_aggregate(self):
        topo, allocation = self._world()
        nested = 0
        for stub in topo.stub_ases():
            providers = sorted(topo.graph.providers(stub))
            if not providers:
                continue
            primary_blocks = allocation.prefixes_of.get(providers[0], [])
            for prefix in allocation.prefixes_of[stub]:
                if any(block.contains_prefix(prefix) for block in primary_blocks):
                    nested += 1
        assert nested > 10  # most stub space is provider-assigned

    def test_lpm_prefers_specific_over_aggregate(self):
        from repro.bgp import PrefixOriginTable, RoutingTable
        from repro.topology import generate_rib_entries

        topo, allocation = self._world()
        entries = generate_rib_entries(topo, allocation, vantage_count=4, seed=1)
        table = PrefixOriginTable.from_routing_table(RoutingTable.from_entries(entries))
        checked = 0
        for stub in topo.stub_ases()[:10]:
            for prefix in allocation.prefixes_of[stub]:
                ip = prefix.nth_address(1)
                assert table.origin_of(ip) == stub
                checked += 1
        assert checked > 0

    def test_stub_prefixes_mutually_disjoint(self):
        topo, allocation = self._world()
        stub_prefixes = [
            p for asn in topo.stub_ases() for p in allocation.prefixes_of[asn]
        ]
        for i, a in enumerate(stub_prefixes):
            for b in stub_prefixes[i + 1:]:
                assert not a.contains_prefix(b) and not b.contains_prefix(a)

    def test_deterministic(self):
        _, a = self._world(seed=4)
        _, b = self._world(seed=4)
        assert a.prefixes_of == b.prefixes_of

    def test_scenario_flag_builds(self):
        from dataclasses import replace

        from repro.scenario import ScenarioConfig, build_scenario
        from repro.topology import PopulationConfig

        cfg = replace(
            ScenarioConfig(
                topology=SMALL, population=PopulationConfig(host_count=200, seed=1)
            ).with_seed(1),
            hierarchical_prefixes=True,
        )
        scenario = build_scenario(cfg)
        assert len(scenario.clusters) > 0
        assert not scenario.clusters.unmatched
        for host in scenario.population.hosts[:20]:
            assert scenario.prefix_table.origin_of(host.ip) == host.asn
