"""Tests for network conditions and the latency model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.measurement import (
    ConditionsConfig,
    LatencyModel,
    NetworkConditions,
    RELAY_DELAY_ONE_WAY_MS,
    RELAY_DELAY_RTT_MS,
    generate_conditions,
)
from repro.topology import (
    PopulationConfig,
    TopologyConfig,
    allocate_prefixes,
    generate_population,
    generate_topology,
)

SMALL = TopologyConfig(tier1_count=4, tier2_count=12, tier3_count=40, seed=1)


@pytest.fixture(scope="module")
def world():
    topo = generate_topology(SMALL)
    allocation = allocate_prefixes(topo, seed=1)
    population = generate_population(
        topo, allocation, PopulationConfig(host_count=300, seed=1)
    )
    conditions = generate_conditions(
        topo, ConditionsConfig(congested_link_fraction=0.1, failed_fraction=0.05, seed=1)
    )
    model = LatencyModel(topo, conditions, population, seed=1)
    return topo, population, conditions, model


class TestConditionsConfig:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            ConditionsConfig(congested_link_fraction=1.5)

    def test_rejects_bad_loss(self):
        with pytest.raises(ConfigurationError):
            ConditionsConfig(baseline_loss_rate=1.0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigurationError):
            ConditionsConfig(link_penalty_median_ms=-1)


class TestGenerateConditions:
    def test_deterministic(self, world):
        topo, *_ = world
        cfg = ConditionsConfig(congested_link_fraction=0.1, seed=5)
        a = generate_conditions(topo, cfg)
        b = generate_conditions(topo, cfg)
        assert a.link_penalty == b.link_penalty
        assert a.failed_ases == b.failed_ases

    def test_congested_links_are_transit_transit(self, world):
        topo, _, conditions, _ = world
        transit = set(topo.transit_ases())
        for a, b in conditions.congested_links():
            assert a in transit and b in transit

    def test_failed_are_transit_not_tier1(self, world):
        topo, _, conditions, _ = world
        for asn in conditions.failed_ases:
            assert topo.tier_of[asn] == 2

    def test_every_as_has_loss_rate(self, world):
        topo, _, conditions, _ = world
        for asn in topo.graph.ases():
            assert 0.0 <= conditions.loss_of(asn) < 0.5

    def test_loss_raised_near_congestion(self, world):
        topo, _, conditions, _ = world
        hot = {a for link in conditions.congested_links() for a in link}
        if not hot:
            pytest.skip("no congested links drawn")
        cold = [a for a in topo.graph.ases() if a not in hot]
        hot_loss = np.mean([conditions.loss_of(a) for a in hot])
        cold_loss = np.mean([conditions.loss_of(a) for a in cold])
        assert hot_loss > cold_loss

    def test_whole_as_congestion_ablation_knob(self, world):
        topo, *_ = world
        conditions = generate_conditions(
            topo, ConditionsConfig(congested_as_fraction=0.5, congested_link_fraction=0.0, seed=2)
        )
        assert conditions.congested_ases()
        for asn in conditions.congested_ases():
            assert conditions.penalty_ms(asn) > 0


class TestLatencyModel:
    def test_link_delay_symmetric_and_cached(self, world):
        topo, _, _, model = world
        ases = topo.graph.ases()
        a, b = ases[0], ases[1]
        assert model.link_delay_ms(a, b) == model.link_delay_ms(b, a)

    def test_link_delay_includes_congestion(self, world):
        topo, _, conditions, model = world
        links = conditions.congested_links()
        if not links:
            pytest.skip("no congested links drawn")
        a, b = links[0]
        base = topo.geography.propagation_delay_ms(a, b)
        assert model.link_delay_ms(a, b) >= base + conditions.link_penalty_ms(a, b)

    def test_path_one_way_endpoint_congestion_exempt(self, world):
        topo, _, conditions, model = world
        # endpoint AS cost excludes whole-AS congestion penalties
        asn = topo.graph.ases()[0]
        assert model.endpoint_cost_ms(asn) <= model.node_cost_ms(asn)

    def test_as_rtt_is_twice_one_way(self, world):
        topo, _, _, model = world
        stubs = topo.stub_ases()
        a, b = stubs[0], stubs[1]
        one_way = model.as_one_way_ms(a, b)
        if one_way is None:
            pytest.skip("pair unreachable under failures")
        assert model.as_rtt_ms(a, b) == pytest.approx(2 * one_way)

    def test_failed_as_unreachable(self, world):
        topo, _, conditions, model = world
        if not conditions.failed_ases:
            pytest.skip("no failures drawn")
        dead = next(iter(conditions.failed_ases))
        alive = topo.stub_ases()[0]
        assert model.as_path(alive, dead) is None
        assert model.as_rtt_ms(alive, dead) is None

    def test_host_rtt_adds_access_delays(self, world):
        topo, population, _, model = world
        a, b = population.hosts[0], population.hosts[1]
        core = model.as_rtt_ms(a.asn, b.asn)
        if core is None:
            pytest.skip("pair unreachable")
        assert model.host_rtt_ms(a, b) == pytest.approx(
            core + 2 * (a.access_delay_ms + b.access_delay_ms)
        )

    def test_one_hop_relay_rtt(self, world):
        _, population, _, model = world
        hosts = population.hosts
        a, r, b = hosts[0], hosts[5], hosts[9]
        direct_legs = (model.host_rtt_ms(a, r), model.host_rtt_ms(r, b))
        if any(leg is None for leg in direct_legs):
            pytest.skip("legs unreachable")
        assert model.one_hop_relay_rtt_ms(a, r, b) == pytest.approx(
            sum(direct_legs) + RELAY_DELAY_RTT_MS
        )

    def test_two_hop_relay_rtt(self, world):
        _, population, _, model = world
        hosts = population.hosts
        a, r1, r2, b = hosts[0], hosts[3], hosts[6], hosts[9]
        legs = (
            model.host_rtt_ms(a, r1),
            model.host_rtt_ms(r1, r2),
            model.host_rtt_ms(r2, b),
        )
        if any(leg is None for leg in legs):
            pytest.skip("legs unreachable")
        assert model.two_hop_relay_rtt_ms(a, r1, r2, b) == pytest.approx(
            sum(legs) + 2 * RELAY_DELAY_RTT_MS
        )

    def test_relay_delay_constants(self):
        assert RELAY_DELAY_RTT_MS == 2 * RELAY_DELAY_ONE_WAY_MS == 40.0

    def test_loss_accumulates_along_path(self, world):
        topo, _, conditions, model = world
        stubs = topo.stub_ases()
        path = model.as_path(stubs[0], stubs[1])
        if path is None:
            pytest.skip("unreachable")
        loss = model.path_loss_rate(path)
        assert 0.0 <= loss < 1.0
        assert loss >= max(conditions.loss_of(asn) for asn in path) - 1e-12

    def test_deterministic_across_instances(self, world):
        topo, population, conditions, model = world
        clone = LatencyModel(topo, conditions, population, seed=1)
        a, b = population.hosts[0], population.hosts[1]
        assert clone.host_rtt_ms(a, b) == model.host_rtt_ms(a, b)
