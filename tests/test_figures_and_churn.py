"""Tests for figure-data export and runtime churn (surrogate failures)."""

import csv

import pytest

from repro.cli import main
from repro.core import ASAPConfig
from repro.core.runtime import ASAPRuntime
from repro.evaluation.figures import export_all, export_section3, export_section7
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


class TestFigureExport:
    def test_export_all_writes_every_figure(self, tmp_path, scenario):
        written = export_all(
            scenario, tmp_path, session_count=300, latent_target=8, seed=1
        )
        expected = {"fig02.csv", "fig03.csv", "fig07.csv", "fig12.csv",
                    "fig14.csv", "fig16.csv", "fig18.csv"}
        assert set(written) == expected
        for name in expected:
            assert (tmp_path / name).exists()
            assert written[name] > 0

    def test_fig02_rows_are_cdf(self, tmp_path, scenario):
        export_section3(scenario, tmp_path, session_count=300, seed=1)
        rows = read_rows(tmp_path / "fig02.csv")
        direct = [r for r in rows if r["series"] == "direct_rtt_cdf"]
        ys = [float(r["y"]) for r in direct]
        xs = [float(r["x"]) for r in direct]
        assert ys == sorted(ys)
        assert xs == sorted(xs)
        assert 0.0 < ys[0] <= ys[-1] <= 1.0

    def test_fig12_covers_all_methods(self, tmp_path, scenario):
        export_section7(
            scenario, tmp_path, session_count=300, latent_target=8, seed=1
        )
        rows = read_rows(tmp_path / "fig12.csv")
        methods = {r["series"] for r in rows}
        assert {"DEDI", "RAND", "MIX", "ASAP", "OPT"} <= methods

    def test_cli_figures_command(self, tmp_path, capsys):
        rc = main([
            "figures", "--scale", "tiny", "--seed", "11",
            "--sessions", "300", "--latent", "6",
            "--output", str(tmp_path / "figs"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "figure data files" in out
        assert (tmp_path / "figs" / "fig12.csv").exists()


class TestRuntimeChurn:
    def test_surrogate_failure_promotes_and_records(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 2:
            pytest.skip("no multi-host cluster")
        idx = scenario.matrices.index_of[big.prefix]
        before = runtime.system.surrogate(idx).ip
        runtime.schedule_surrogate_failure(idx, at_ms=50.0)
        runtime.run()
        assert len(runtime.surrogate_failures) == 1
        time_ms, cluster, new_ip = runtime.surrogate_failures[0]
        assert time_ms == 50.0
        assert cluster == idx
        assert new_ip != before
        assert runtime.system.surrogate(idx).ip == new_ip

    def test_single_host_cluster_failure_noop(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        single = next(
            (c for c in scenario.clusters.all_clusters() if len(c) == 1), None
        )
        if single is None:
            pytest.skip("no single-host cluster")
        idx = scenario.matrices.index_of[single.prefix]
        runtime.schedule_surrogate_failure(idx, at_ms=10.0)
        runtime.run()
        assert runtime.surrogate_failures == []

    def test_calls_succeed_after_failover(self, scenario):
        import numpy as np

        runtime = ASAPRuntime(scenario, ASAPConfig(k_hops=5))
        m = scenario.matrices
        clusters = scenario.clusters.all_clusters()
        pair = None
        for a, b in np.argwhere(m.rtt_ms > 300):
            ca, cb = clusters[int(a)], clusters[int(b)]
            if len(ca) >= 2 and cb.hosts:
                pair = (int(a), ca, cb)
                break
        if pair is None:
            pytest.skip("no latent pair with multi-host caller cluster")
        idx, ca, cb = pair
        runtime.schedule_surrogate_failure(idx, at_ms=10.0)
        record = runtime.schedule_call(ca.hosts[0].ip, cb.hosts[0].ip, at_ms=100.0)
        runtime.run()
        assert record.setup_ms is not None
        assert record.session is not None


class TestLeaveChurn:
    def test_leave_ordinary_member(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        idx = scenario.matrices.index_of[big.prefix]
        surrogate_ips = {m.ip for m in system.surrogate_group(idx)}
        ordinary = next(h for h in big.hosts if h.ip not in surrogate_ips)
        promoted = system.leave(ordinary.ip)
        assert promoted is None
        assert not system.is_online(ordinary.ip)
        # Surrogates untouched.
        assert {m.ip for m in system.surrogate_group(idx)} == surrogate_ips

    def test_leave_surrogate_promotes(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 2:
            pytest.skip("no multi-host cluster")
        idx = scenario.matrices.index_of[big.prefix]
        old_primary = system.surrogate(idx)
        promoted = system.leave(old_primary.ip)
        assert promoted is not None
        assert promoted.ip != old_primary.ip
        assert system.surrogate(idx).ip == promoted.ip
        for bootstrap in system.bootstraps:
            assert bootstrap.surrogate_for(big.prefix) == promoted.ip

    def test_leave_last_host_darkens_cluster(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig())
        single = next(
            (c for c in scenario.clusters.all_clusters() if len(c) == 1), None
        )
        if single is None:
            pytest.skip("no single-host cluster")
        idx = scenario.matrices.index_of[single.prefix]
        promoted = system.leave(single.hosts[0].ip)
        assert promoted is None
        # Stale surrogate entry remains until a member rejoins.
        assert system.surrogate(idx).ip == single.hosts[0].ip

    def test_rejoin_after_leave(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig())
        host = max(scenario.clusters.all_clusters(), key=len).hosts[1]
        system.leave(host.ip)
        assert not system.is_online(host.ip)
        system.join(host.ip)
        assert system.is_online(host.ip)

    def test_runtime_schedule_leave(self, scenario):
        from repro.core.runtime import ASAPRuntime

        runtime = ASAPRuntime(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 2:
            pytest.skip("no multi-host cluster")
        idx = scenario.matrices.index_of[big.prefix]
        primary_ip = runtime.system.surrogate(idx).ip
        runtime.schedule_leave(primary_ip, at_ms=25.0)
        runtime.run()
        assert len(runtime.surrogate_failures) == 1
        assert runtime.system.surrogate(idx).ip != primary_ip
