"""Unit tests for the annotated AS graph and valley-free search."""

import pytest

from repro.errors import TopologyError
from repro.bgp import ASGraph, Relationship


def diamond():
    """1 and 2 are tier-1 peers; 3 and 4 are customers; 5 is multihomed."""
    g = ASGraph()
    g.add_peer(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    return g


class TestConstruction:
    def test_add_as_idempotent(self):
        g = ASGraph()
        g.add_as(1)
        g.add_as(1)
        assert len(g) == 1

    def test_positive_asn_required(self):
        g = ASGraph()
        with pytest.raises(TopologyError):
            g.add_as(0)

    def test_self_edges_rejected(self):
        g = ASGraph()
        for adder in (g.add_peer, g.add_sibling):
            with pytest.raises(TopologyError):
                adder(1, 1)
        with pytest.raises(TopologyError):
            g.add_provider_customer(2, 2)

    def test_double_annotation_rejected(self):
        g = ASGraph()
        g.add_provider_customer(1, 2)
        with pytest.raises(TopologyError):
            g.add_peer(1, 2)
        with pytest.raises(TopologyError):
            g.add_provider_customer(2, 1)

    def test_relationship_queries(self):
        g = diamond()
        assert g.relationship(1, 2) is Relationship.PEER_PEER
        assert g.relationship(1, 3) is Relationship.PROVIDER_CUSTOMER
        assert g.relationship(1, 4) is None
        assert g.is_provider_of(1, 3)
        assert not g.is_provider_of(3, 1)

    def test_sibling_relationship(self):
        g = ASGraph()
        g.add_sibling(7, 8)
        assert g.relationship(7, 8) is Relationship.SIBLING_SIBLING
        assert g.siblings(7) == {8}

    def test_degree_and_neighbors(self):
        g = diamond()
        assert g.neighbors(1) == {2, 3}
        assert g.degree(5) == 2

    def test_edge_count(self):
        assert diamond().edge_count() == 5

    def test_multihomed_detection(self):
        assert diamond().multihomed_ases() == [5]

    def test_top_degree_ases(self):
        g = diamond()
        top = g.top_degree_ases(2)
        assert len(top) == 2
        assert set(top) <= {1, 2, 3, 4, 5}
        # Degree-2 nodes everywhere; tie-break is by ASN.
        assert top == sorted(top, key=lambda a: (-g.degree(a), a))

    def test_without_removes_node_and_edges(self):
        g = diamond().without([3])
        assert 3 not in g
        assert g.relationship(1, 3) is None
        assert g.providers(5) == {4}

    def test_without_preserves_annotations(self):
        g = diamond().without([])
        assert g.relationship(1, 2) is Relationship.PEER_PEER
        assert g.is_provider_of(1, 3)
        assert g.edge_count() == 5


class TestValleyFree:
    def test_ball_includes_start_at_zero(self):
        g = diamond()
        ball = g.valley_free_ball(5, 0)
        assert ball == {5: 0}

    def test_ball_respects_hop_limit(self):
        g = diamond()
        ball = g.valley_free_ball(5, 1)
        assert set(ball) == {5, 3, 4}

    def test_ball_full_reach(self):
        g = diamond()
        ball = g.valley_free_ball(5, 4)
        assert set(ball) == {1, 2, 3, 4, 5}

    def test_ball_rejects_unknown_as(self):
        with pytest.raises(TopologyError):
            diamond().valley_free_ball(99, 2)

    def test_ball_rejects_negative_hops(self):
        with pytest.raises(TopologyError):
            diamond().valley_free_ball(5, -1)

    def test_no_valley_through_customer(self):
        # 3 and 4 both provide for 5; a path 3-5-4 would be a valley.
        g = diamond()
        ball = g.valley_free_ball(3, 2)
        # From 3: up to 1 (peer 2 next), down to 5. 4 reachable only via
        # 3-1-2-4 (3 hops) or the valley 3-5-4 (forbidden).
        assert 4 not in ball
        ball3 = g.valley_free_ball(3, 3)
        assert ball3[4] == 3

    def test_distance_symmetric_cases(self):
        g = diamond()
        assert g.valley_free_distance(5, 5) == 0
        assert g.valley_free_distance(5, 3) == 1
        assert g.valley_free_distance(3, 4) == 3
        assert g.valley_free_distance(5, 1) == 2

    def test_distance_unreachable(self):
        g = diamond()
        g.add_as(42)
        assert g.valley_free_distance(5, 42) is None

    def test_distance_max_hops_cutoff(self):
        g = diamond()
        assert g.valley_free_distance(3, 4, max_hops=2) is None

    def test_peer_edge_only_once(self):
        # Chain: 10-peer-11-peer-12. A path using two peer edges invalid.
        g = ASGraph()
        g.add_peer(10, 11)
        g.add_peer(11, 12)
        assert g.valley_free_distance(10, 12) is None

    def test_sibling_keeps_phase(self):
        # 20 sibling 21; 21 customer of 22. 20 should climb via sibling.
        g = ASGraph()
        g.add_sibling(20, 21)
        g.add_provider_customer(22, 21)
        g.add_peer(22, 23)
        assert g.valley_free_distance(20, 23) == 3

    def test_is_valley_free_explicit_paths(self):
        g = diamond()
        assert g.is_valley_free([5, 3, 1, 2, 4])
        assert not g.is_valley_free([3, 5, 4])       # valley
        assert g.is_valley_free([5])                  # trivial
        assert g.is_valley_free([])                   # trivial
        assert not g.is_valley_free([5, 1])           # not an edge

    def test_is_valley_free_rejects_peer_after_down(self):
        g = ASGraph()
        g.add_provider_customer(1, 2)
        g.add_peer(2, 3)
        # 1 -> 2 is downhill, then peer edge: invalid.
        assert not g.is_valley_free([1, 2, 3])
        # Uphill after a peer edge is also invalid.
        assert not g.is_valley_free([3, 2, 1])
        # Uphill then peer then downhill is the canonical valid shape.
        assert g.is_valley_free([2, 1])
        assert g.is_valley_free([2, 3])
