"""The churn soak harness: determinism, gates, chaos equivalence."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.evaluation.chaos import run_chaos
from repro.evaluation.soak import SoakConfig, default_shard_outage, run_soak
from repro.faults import ChurnWave, FaultScheduleConfig, ShardOutage
from repro.obs.manifest import validate_manifest
from repro.scenario import tiny_scenario

SOAK_SEED = 3


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


def churn_config(minutes=20.0, **overrides) -> SoakConfig:
    base = SoakConfig(
        seed=SOAK_SEED,
        sim_minutes=minutes,
        shards=3,
        sessions=12,
        joins=12,
        media_duration_ms=4_000.0,
        churn_rate_per_min=2.0,
        churn_waves=(ChurnWave(at_ms=minutes * 60_000.0 / 3, fraction=0.2),),
        rejoin_delay_ms=20_000.0,
        maintenance_interval_ms=60_000.0,
        registry_ttl_ms=120_000.0,
    )
    config = dataclasses.replace(base, **overrides) if overrides else base
    return dataclasses.replace(
        config, shard_outages=(default_shard_outage(config, shard=0),)
    )


class TestSoakConfig:
    def test_ttl_must_exceed_maintenance_interval(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(maintenance_interval_ms=100.0, registry_ttl_ms=100.0)

    def test_outage_must_end_before_run(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(
                sim_minutes=1.0,
                shard_outages=(
                    ShardOutage(shard=0, start_ms=50_000.0, duration_ms=60_000.0),
                ),
            )

    def test_outage_shard_must_exist(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(
                shards=2,
                shard_outages=(
                    ShardOutage(shard=5, start_ms=0.0, duration_ms=1_000.0),
                ),
            )

    def test_default_outage_leaves_recovery_time(self):
        config = SoakConfig(sim_minutes=10.0)
        outage = default_shard_outage(config)
        assert outage.start_ms + outage.duration_ms < config.duration_ms


class TestChurnSoak:
    @pytest.fixture(scope="class")
    def report(self, scenario):
        return run_soak(scenario, churn_config())

    def test_all_gates_pass_through_a_shard_kill(self, report):
        assert report.registry_bounded, report.directory
        assert report.directory_converged, report.directory
        assert report.staleness_bounded, report.staleness
        assert report.calls_terminal
        assert report.ok

    def test_shard_outage_actually_happened(self, report):
        assert any('"kind":"shard-down"' in line for line in report.directory_log)
        assert any('"kind":"shard-up"' in line for line in report.directory_log)
        assert report.directory["failover_joins"] > 0

    def test_registry_steady_state(self, report):
        assert report.directory["end_total"] == report.alive_end
        assert report.directory["peak_total"] <= 2 * report.hosts

    def test_maintainer_repaired_under_churn(self, report):
        assert report.maintainer["events_seen"] > 0
        assert report.maintainer["local_repairs"] + report.maintainer["rebuilds"] > 0

    def test_same_seed_is_byte_identical(self, scenario, report):
        again = run_soak(scenario, churn_config())
        assert again.to_json() == report.to_json()
        assert again.log_lines() == report.log_lines()

    def test_manifest_block_satisfies_schema_v5(self, report):
        document = {
            "schema": 5,
            "run_id": "t",
            "command": "soak",
            "argv": [],
            "started_at": "now",
            "wall_seconds": 0.0,
            "seed": report.seed,
            "scale": "tiny",
            "config_key": None,
            "workers": None,
            "soak": report.manifest_block(),
            "cache": {
                "scenario_hits": 0,
                "scenario_misses": 0,
                "close_set_hits": 0,
                "close_set_misses": 0,
            },
            "counters": {},
            "gauges": {},
            "histograms": {},
            "events_file": None,
            "events_written": 0,
            "traces_file": None,
            "traces_written": 0,
        }
        assert validate_manifest(document) == []
        document["soak"] = {"ok": True}  # gate verdicts missing
        assert any("soak missing field" in p for p in validate_manifest(document))


class TestZeroChurnEquivalence:
    def test_zero_fault_soak_reproduces_static_chaos(self, scenario):
        config = SoakConfig(
            seed=SOAK_SEED,
            sim_minutes=5.0,
            sessions=10,
            joins=10,
            media_duration_ms=4_000.0,
        )
        report = run_soak(scenario, config)
        static = run_chaos(
            scenario,
            FaultScheduleConfig(seed=SOAK_SEED, duration_ms=config.duration_ms),
            sessions=10,
            joins=10,
            media_duration_ms=4_000.0,
            seed=SOAK_SEED,
        )
        # Same seeded workload stream, no faults: the soak's outcome
        # record is byte-identical to the static chaos run's.
        assert report.workload == static.to_dict()
        assert report.ok
        assert report.maintainer["events_seen"] == 0
