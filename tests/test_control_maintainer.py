"""Incremental close-set repair: parity-exact against the fresh builder.

The core property under test: after ``drain()``, every tracked set's
``entries`` equals what :func:`construct_close_cluster_set` builds from
scratch on the same membership — for any seeded interleaving of join
and leave events, with drains at arbitrary points.
"""

import random

import pytest

from repro.bgp import ASGraph
from repro.control import ClusterMembership, CloseSetMaintainer, MembershipEvent
from repro.core import ASAPConfig, construct_close_cluster_set
from repro.errors import ProtocolError


def diamond():
    """1-peer-2 core; 3, 4 customers; 5 multihomed below both."""
    g = ASGraph()
    g.add_peer(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    return g


def chain():
    """1 -> 3 -> 5: AS 1 reachable from 5 only through AS 3."""
    g = ASGraph()
    g.add_provider_customer(1, 3)
    g.add_provider_customer(3, 5)
    return g


def make_maintainer(graph, lat_map, clusters_map, asn_of, counts, config=None):
    def lat(own, other):
        return lat_map.get((own, other), lat_map.get((other, own)))

    def loss(own, other):
        return 0.0 if lat(own, other) is not None else None

    membership = ClusterMembership(counts)
    maintainer = CloseSetMaintainer(
        graph=graph,
        membership=membership,
        clusters_in_as=lambda asn: clusters_map.get(asn, []),
        asn_of_cluster=lambda c: asn_of[c],
        lat=lat,
        loss=loss,
        config=config,
    )
    return maintainer, lat, loss


def fresh_entries(maintainer, owner):
    return dict(maintainer._fresh(owner).entries)


def assert_parity(maintainer):
    for owner in maintainer.tracked:
        assert maintainer.current(owner).entries == fresh_entries(maintainer, owner)
        assert maintainer.staleness(owner) == 0.0


class TestClusterMembership:
    def test_only_zero_one_transitions_reported(self):
        membership = ClusterMembership({0: 1})
        up = MembershipEvent(at_ms=0.0, kind="host-join", cluster=0)
        down = MembershipEvent(at_ms=1.0, kind="host-leave", cluster=0)
        assert membership.apply(up) is None          # 1 -> 2
        assert membership.apply(down) is None        # 2 -> 1
        assert membership.apply(down) == "offline"   # 1 -> 0
        assert membership.apply(up) == "online"      # 0 -> 1

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ProtocolError):
            MembershipEvent(at_ms=0.0, kind="host-reboot", cluster=0)


class TestRepairPaths:
    def _small_world(self):
        # Own AS 5 has cluster 0; AS 3 holds clusters 1 (close) and
        # 6 (too far); AS 1 (behind 3) holds cluster 2 (close).
        lat_map = {(0, 1): 50.0, (0, 6): 500.0, (0, 2): 60.0}
        clusters = {5: [0], 3: [1, 6], 1: [2]}
        asn_of = {0: 5, 1: 3, 6: 3, 2: 1}
        counts = {0: 2, 1: 1, 6: 1, 2: 1}
        return make_maintainer(
            chain(), lat_map, clusters, asn_of, counts, ASAPConfig(k_hops=2)
        )

    def test_local_patch_when_verdict_unchanged(self):
        maintainer, _, _ = self._small_world()
        maintainer.track(0)
        assert set(maintainer.current(0).entries) == {0, 1, 2}
        # Cluster 2 leaves: AS 1's verdict may flip but it sits at the
        # hop limit (depth == k_hops) where it never expands — patch.
        maintainer.enqueue(MembershipEvent(at_ms=1.0, kind="host-leave", cluster=2))
        maintainer.drain()
        assert maintainer.rebuilds == 0
        assert maintainer.local_repairs == 1
        assert set(maintainer.current(0).entries) == {0, 1}
        assert_parity(maintainer)

    def test_verdict_flip_triggers_rebuild(self):
        maintainer, _, _ = self._small_world()
        maintainer.track(0)
        # Cluster 1 (AS 3's only passing probe) leaves: AS 3's verdict
        # flips True -> False at depth 1 < k_hops — downstream AS 1
        # becomes unreachable, only a rebuild can know that.
        maintainer.enqueue(MembershipEvent(at_ms=1.0, kind="host-leave", cluster=1))
        maintainer.drain()
        assert maintainer.rebuilds == 1
        assert set(maintainer.current(0).entries) == {0}
        assert_parity(maintainer)
        # And back: the verdict flips again, rebuilding restores reach.
        maintainer.enqueue(MembershipEvent(at_ms=2.0, kind="host-join", cluster=1))
        maintainer.drain()
        assert maintainer.rebuilds == 2
        assert set(maintainer.current(0).entries) == {0, 1, 2}
        assert_parity(maintainer)

    def test_unvisited_as_is_a_noop(self):
        maintainer, _, _ = self._small_world()
        maintainer.track(0)
        before = dict(maintainer.current(0).entries)
        # Cluster 9 lives in AS 99, never visited by the BFS.
        maintainer._static_clusters_in_as = lambda asn: {99: [9]}.get(asn, [])
        maintainer._asn_of_cluster = lambda c: {9: 99}.get(c, 5)
        maintainer.enqueue(MembershipEvent(at_ms=1.0, kind="host-join", cluster=9))
        maintainer.drain()
        assert maintainer.current(0).entries == before
        assert maintainer.noops >= 1

    def test_owner_goes_dark_and_returns(self):
        maintainer, _, _ = self._small_world()
        maintainer.membership._counts[0] = 1  # single host in the owner
        maintainer.track(0)
        maintainer.enqueue(MembershipEvent(at_ms=1.0, kind="host-leave", cluster=0))
        maintainer.drain()
        assert maintainer.tracked == []
        with pytest.raises(ProtocolError):
            maintainer.current(0)
        maintainer.enqueue(MembershipEvent(at_ms=2.0, kind="host-join", cluster=0))
        maintainer.drain()
        assert maintainer.tracked == [0]
        assert_parity(maintainer)

    def test_tracking_an_offline_cluster_raises(self):
        maintainer, _, _ = self._small_world()
        maintainer.membership._counts[1] = 0
        with pytest.raises(ProtocolError):
            maintainer.track(1)


class TestRandomizedParity:
    """The acceptance property: incremental == from-scratch, any order."""

    def _world(self):
        # Diamond with clusters spread over every AS; a mix of passing
        # and failing probes so verdicts actually flip under churn.
        lat_map = {
            (0, 1): 50.0, (0, 2): 120.0, (0, 3): 500.0,
            (0, 4): 90.0, (0, 5): 150.0, (0, 6): 700.0,
        }
        clusters = {5: [0], 3: [1, 3], 4: [2], 1: [4, 6], 2: [5]}
        asn_of = {0: 5, 1: 3, 3: 3, 2: 4, 4: 1, 6: 1, 5: 2}
        counts = {c: 2 for c in asn_of}
        return make_maintainer(
            diamond(), lat_map, clusters, asn_of, counts, ASAPConfig(k_hops=3)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7, 19])
    def test_seeded_event_interleavings(self, seed):
        maintainer, _, _ = self._world()
        maintainer.track(0)
        rng = random.Random(seed)
        clusters = [1, 2, 3, 4, 5, 6]
        for step in range(300):
            cluster = rng.choice(clusters)
            kind = rng.choice(("host-join", "host-leave"))
            maintainer.enqueue(
                MembershipEvent(at_ms=float(step), kind=kind, cluster=cluster)
            )
            if rng.random() < 0.15:  # drain mid-stream at random points
                maintainer.drain()
                assert_parity(maintainer)
        maintainer.drain()
        assert_parity(maintainer)
        assert maintainer.events_seen == 300

    def test_repair_log_is_byte_stable(self):
        def run():
            maintainer, _, _ = self._world()
            maintainer.track(0)
            rng = random.Random(5)
            for step in range(120):
                maintainer.enqueue(
                    MembershipEvent(
                        at_ms=float(step),
                        kind=rng.choice(("host-join", "host-leave")),
                        cluster=rng.choice([1, 2, 3, 4, 5, 6]),
                    )
                )
            maintainer.drain()
            return list(maintainer.repair_log)

        assert run() == run()
