"""Tests for the discrete-event engine, sim network, and trace records."""

import pytest

from repro.netaddr import IPv4Address
from repro.scenario import tiny_scenario
from repro.sim import PacketRecord, SessionTrace, SimNetwork, Simulator
from repro.sim.engine import SimulationError


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10.0, lambda: order.append("b"))
        sim.schedule(5.0, lambda: order.append("a"))
        sim.schedule(20.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: seen.append(sim.now_ms))
        sim.run()
        assert seen == [3.0]
        assert sim.now_ms == 3.0

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def outer():
            hits.append(sim.now_ms)
            sim.schedule(5.0, lambda: hits.append(sim.now_ms))

        sim.schedule(1.0, outer)
        sim.run()
        assert hits == [1.0, 6.0]

    def test_run_until_bounds_time(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, lambda: hits.append(1))
        sim.schedule(50.0, lambda: hits.append(2))
        sim.run(until_ms=10.0)
        assert hits == [1]
        assert sim.now_ms == 10.0
        sim.run()
        assert hits == [1, 2]

    def test_run_max_events(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert sim.pending_events == 2

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_step_returns_false_on_empty(self):
        assert not Simulator().step()

    def test_processed_events_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed_events == 2


class TestSimNetwork:
    @pytest.fixture(scope="class")
    def scenario(self):
        return tiny_scenario(seed=4)

    def test_delivery_after_one_way_delay(self, scenario):
        sim = Simulator()
        net = SimNetwork(sim, scenario.latency)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        got = []
        net.register(a, lambda m: None)
        net.register(b, lambda m: got.append((sim.now_ms, m)))
        assert net.send(a, b.ip, "probe", payload=42)
        sim.run()
        assert len(got) == 1
        t, msg = got[0]
        assert t == pytest.approx(scenario.latency.host_rtt_ms(a, b) / 2.0)
        assert msg.payload == 42
        assert msg.category == "probe"

    def test_unregistered_destination_dropped(self, scenario):
        sim = Simulator()
        net = SimNetwork(sim, scenario.latency)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        net.register(a, lambda m: None)
        assert not net.send(a, b.ip, "probe")
        assert net.dropped == 1
        assert net.total_sent == 1  # counted at the sender regardless

    def test_category_counters(self, scenario):
        sim = Simulator()
        net = SimNetwork(sim, scenario.latency)
        a, b = scenario.population.hosts[0], scenario.population.hosts[1]
        net.register(a, lambda m: None)
        net.register(b, lambda m: None)
        net.send(a, b.ip, "probe")
        net.send(a, b.ip, "probe")
        net.send(b, a.ip, "join")
        assert net.sent_by_category["probe"] == 2
        assert net.sent_by_category["join"] == 1
        assert net.total_sent == 3


def _packet(t, src, dst, size, kind="voice"):
    return PacketRecord(
        time_ms=t,
        src_ip=IPv4Address.from_string(src),
        src_port=1000,
        dst_ip=IPv4Address.from_string(dst),
        dst_port=1000,
        size_bytes=size,
        kind=kind,
    )


class TestSessionTrace:
    def test_duration_and_merge(self):
        trace = SessionTrace(
            session_id=1,
            caller=IPv4Address.from_string("10.0.0.1"),
            callee=IPv4Address.from_string("10.0.0.2"),
        )
        trace.record_at_caller(_packet(0.0, "10.0.0.1", "10.0.0.2", 160))
        trace.record_at_callee(_packet(50.0, "10.0.0.2", "10.0.0.1", 160))
        trace.record_at_caller(_packet(100.0, "10.0.0.1", "10.0.0.9", 48))
        assert trace.duration_ms() == 100.0
        merged = list(trace.all_packets())
        assert [p.time_ms for p in merged] == [0.0, 50.0, 100.0]

    def test_packets_sent_by(self):
        trace = SessionTrace(
            session_id=1,
            caller=IPv4Address.from_string("10.0.0.1"),
            callee=IPv4Address.from_string("10.0.0.2"),
        )
        trace.record_at_caller(_packet(0.0, "10.0.0.1", "10.0.0.9", 160))
        trace.record_at_callee(_packet(1.0, "10.0.0.2", "10.0.0.1", 160))
        sent = trace.packets_sent_by(IPv4Address.from_string("10.0.0.1"))
        assert len(sent) == 1
        assert str(sent[0].dst_ip) == "10.0.0.9"

    def test_contacted_ips_ordered_distinct(self):
        trace = SessionTrace(
            session_id=1,
            caller=IPv4Address.from_string("10.0.0.1"),
            callee=IPv4Address.from_string("10.0.0.2"),
        )
        for dst in ("10.0.0.5", "10.0.0.6", "10.0.0.5"):
            trace.record_at_caller(_packet(0.0, "10.0.0.1", dst, 48))
        contacted = trace.contacted_ips(IPv4Address.from_string("10.0.0.1"))
        assert [str(ip) for ip in contacted] == ["10.0.0.5", "10.0.0.6"]
