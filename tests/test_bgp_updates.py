"""Unit tests for BGP update parsing and RIB replay."""

import pytest

from repro.errors import BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp import BGPUpdate, RIBEntry, RoutingTable, apply_updates, parse_update_stream
from repro.bgp.updates import parse_update_line


PEER = IPv4Address.from_string("10.0.0.1")
PFX = IPv4Prefix.from_string("192.0.2.0/24")


def announce(ts=10, path=(1, 2)):
    return BGPUpdate(kind="ANNOUNCE", timestamp=ts, peer=PEER, prefix=PFX, as_path=path)


def withdraw(ts=20):
    return BGPUpdate(kind="WITHDRAW", timestamp=ts, peer=PEER, prefix=PFX)


class TestUpdateModel:
    def test_announce_requires_path(self):
        with pytest.raises(BGPParseError):
            BGPUpdate(kind="ANNOUNCE", timestamp=1, peer=PEER, prefix=PFX)

    def test_withdraw_must_not_carry_path(self):
        with pytest.raises(BGPParseError):
            BGPUpdate(kind="WITHDRAW", timestamp=1, peer=PEER, prefix=PFX, as_path=(1,))

    def test_unknown_kind_rejected(self):
        with pytest.raises(BGPParseError):
            BGPUpdate(kind="NOTIFY", timestamp=1, peer=PEER, prefix=PFX)

    def test_announce_to_entry(self):
        e = announce().to_entry()
        assert isinstance(e, RIBEntry)
        assert e.as_path == (1, 2)

    def test_withdraw_to_entry_fails(self):
        with pytest.raises(BGPParseError):
            withdraw().to_entry()

    def test_line_round_trips(self):
        for update in (announce(), withdraw()):
            assert parse_update_line(update.to_line()) == update

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "WITHDRAW|1|10.0.0.1",
            "ANNOUNCE|1|10.0.0.1|192.0.2.0/24|1 2",
            "ANNOUNCE|x|10.0.0.1|192.0.2.0/24|1 2|IGP",
            "NOTIFY|1|10.0.0.1|192.0.2.0/24",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(BGPParseError):
            parse_update_line(bad)

    def test_stream_parser_reports_line(self):
        text = announce().to_line() + "\nGARBAGE|line\n"
        with pytest.raises(BGPParseError, match="line 2"):
            list(parse_update_stream(text.splitlines()))


class TestApplyUpdates:
    def test_announce_installs(self):
        table = RoutingTable()
        assert apply_updates(table, [announce()]) == 1
        assert len(table) == 1

    def test_withdraw_after_announce_empties(self):
        table = RoutingTable()
        apply_updates(table, [announce(ts=1), withdraw(ts=2)])
        assert len(table) == 0

    def test_updates_applied_in_timestamp_order(self):
        # A withdraw that logically precedes the announce must not win
        # even when supplied out of order.
        table = RoutingTable()
        apply_updates(table, [announce(ts=5), withdraw(ts=2)])
        assert len(table) == 1

    def test_until_cutoff_skips_later_updates(self):
        table = RoutingTable()
        applied = apply_updates(table, [announce(ts=1), withdraw(ts=100)], until=50)
        assert applied == 1
        assert len(table) == 1

    def test_reannounce_replaces_path(self):
        table = RoutingTable()
        apply_updates(table, [announce(ts=1, path=(1, 2)), announce(ts=2, path=(3, 4))])
        assert table.best_route(PFX).as_path == (3, 4)
