"""Tests for packet-level streams, playout buffering, and the call runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.voip.call import (
    CallConfig,
    PathQualityProcess,
    VoiceCall,
    call_paths_from_selection,
)
from repro.voip.codecs import G711, G729A_VAD
from repro.voip.stream import (
    PlayoutBuffer,
    StreamConfig,
    merge_diverse_arrivals,
    score_playout,
    simulate_stream,
)


class TestSimulateStream:
    def test_packet_count_and_spacing(self):
        config = StreamConfig(duration_ms=1000.0)
        arrivals = simulate_stream(50.0, 0.0, config)
        assert len(arrivals) == config.packet_count
        gaps = {round(b.sent_ms - a.sent_ms, 6) for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {config.codec.packet_interval_ms()}

    def test_zero_loss_all_arrive(self):
        arrivals = simulate_stream(50.0, 0.0, StreamConfig(duration_ms=2000.0))
        assert all(not p.lost for p in arrivals)
        for p in arrivals:
            assert p.arrival_ms >= p.sent_ms + 50.0

    def test_full_loss(self):
        arrivals = simulate_stream(50.0, 1.0, StreamConfig(duration_ms=1000.0))
        assert all(p.lost for p in arrivals)

    def test_loss_rate_statistics(self):
        arrivals = simulate_stream(50.0, 0.2, StreamConfig(duration_ms=60_000.0, seed=3))
        observed = np.mean([p.lost for p in arrivals])
        assert 0.15 < observed < 0.25

    def test_deterministic_by_seed(self):
        a = simulate_stream(50.0, 0.1, StreamConfig(seed=5))
        b = simulate_stream(50.0, 0.1, StreamConfig(seed=5))
        assert a == b

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_stream(-1.0, 0.0)
        with pytest.raises(ConfigurationError):
            simulate_stream(10.0, 1.5)
        with pytest.raises(ConfigurationError):
            StreamConfig(duration_ms=0)


class TestDiversity:
    def test_earlier_copy_wins(self):
        fast = simulate_stream(30.0, 0.0, StreamConfig(duration_ms=1000.0, jitter_mean_ms=0.0))
        slow = simulate_stream(90.0, 0.0, StreamConfig(duration_ms=1000.0, jitter_mean_ms=0.0))
        merged = merge_diverse_arrivals(slow, fast)
        for p in merged:
            assert p.arrival_ms == pytest.approx(p.sent_ms + 30.0)

    def test_survives_single_path_loss(self):
        lossy = simulate_stream(30.0, 1.0, StreamConfig(duration_ms=1000.0))
        clean = simulate_stream(90.0, 0.0, StreamConfig(duration_ms=1000.0))
        merged = merge_diverse_arrivals(lossy, clean)
        assert all(not p.lost for p in merged)

    def test_lost_on_both(self):
        a = simulate_stream(30.0, 1.0, StreamConfig(duration_ms=500.0))
        b = simulate_stream(60.0, 1.0, StreamConfig(duration_ms=500.0))
        merged = merge_diverse_arrivals(a, b)
        assert all(p.lost for p in merged)

    def test_mismatched_streams_rejected(self):
        a = simulate_stream(30.0, 0.0, StreamConfig(duration_ms=500.0))
        b = simulate_stream(30.0, 0.0, StreamConfig(duration_ms=1000.0))
        with pytest.raises(ConfigurationError):
            merge_diverse_arrivals(a, b)

    @given(st.floats(0.0, 0.6), st.floats(0.0, 0.6))
    @settings(max_examples=30, deadline=None)
    def test_diversity_never_increases_loss(self, loss_a, loss_b):
        config = StreamConfig(duration_ms=5000.0, seed=1)
        a = simulate_stream(40.0, loss_a, config, rng=np.random.default_rng(1))
        b = simulate_stream(60.0, loss_b, config, rng=np.random.default_rng(2))
        merged = merge_diverse_arrivals(a, b)
        merged_loss = np.mean([p.lost for p in merged])
        assert merged_loss <= min(
            np.mean([p.lost for p in a]), np.mean([p.lost for p in b])
        ) + 1e-12


class TestPlayoutBuffer:
    def test_deep_buffer_plays_everything(self):
        arrivals = simulate_stream(50.0, 0.0, StreamConfig(duration_ms=2000.0))
        result = PlayoutBuffer(depth_ms=500.0).play(arrivals)
        assert result.late == 0
        assert result.played == result.total

    def test_shallow_buffer_discards_late(self):
        arrivals = simulate_stream(
            50.0, 0.0, StreamConfig(duration_ms=5000.0, jitter_mean_ms=30.0)
        )
        result = PlayoutBuffer(depth_ms=1.0).play(arrivals)
        assert result.late > 0
        assert result.played + result.late + result.network_lost == result.total

    def test_effective_loss_combines(self):
        arrivals = simulate_stream(
            50.0, 0.1, StreamConfig(duration_ms=10_000.0, jitter_mean_ms=20.0, seed=2)
        )
        result = PlayoutBuffer(depth_ms=10.0).play(arrivals)
        assert result.effective_loss > 0.1  # network loss plus late loss

    def test_all_lost_stream(self):
        arrivals = simulate_stream(50.0, 1.0, StreamConfig(duration_ms=500.0))
        result = PlayoutBuffer().play(arrivals)
        assert result.played == 0
        assert not np.isfinite(result.mouth_to_ear_ms)
        assert score_playout(result) == 1.0

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            PlayoutBuffer().play([])

    def test_depth_delay_tradeoff(self):
        # A deeper buffer lowers loss but raises mouth-to-ear delay.
        arrivals = simulate_stream(
            60.0, 0.0, StreamConfig(duration_ms=10_000.0, jitter_mean_ms=25.0, seed=4)
        )
        shallow = PlayoutBuffer(depth_ms=5.0).play(arrivals)
        deep = PlayoutBuffer(depth_ms=120.0).play(arrivals)
        assert deep.effective_loss <= shallow.effective_loss
        assert deep.mouth_to_ear_ms > shallow.mouth_to_ear_ms

    def test_score_playout_reasonable(self):
        arrivals = simulate_stream(40.0, 0.002, StreamConfig(duration_ms=5000.0, seed=5))
        result = PlayoutBuffer(depth_ms=40.0).play(arrivals)
        mos = score_playout(result)
        assert 3.5 < mos <= 4.5


class TestPathQualityProcess:
    def test_clear_state_matches_base(self):
        process = PathQualityProcess(50.0, 0.01, congest_probability=0.0, seed=1)
        for _ in range(10):
            state = process.step()
            assert state.one_way_delay_ms == 50.0
            assert state.loss_rate == pytest.approx(0.01)

    def test_congestion_raises_delay_and_loss(self):
        process = PathQualityProcess(
            50.0, 0.01, congest_probability=1.0, recover_probability=0.0, seed=1
        )
        state = process.step()
        assert state.one_way_delay_ms > 50.0
        assert state.loss_rate > 0.01

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            PathQualityProcess(50.0, 0.0, congest_probability=1.5)


class TestVoiceCall:
    def _paths(self, n=3, congest=0.0, seed=0):
        return [
            PathQualityProcess(
                60.0 + 15.0 * i, 0.003, congest_probability=congest, seed=seed + i
            )
            for i in range(n)
        ]

    def test_stable_call_no_switches(self):
        call = VoiceCall(self._paths(congest=0.0), CallConfig(windows=10, seed=1))
        outcome = call.run()
        assert outcome.switches == 0
        assert outcome.mean_mos > 3.6
        assert outcome.satisfied_fraction == 1.0

    def test_needs_at_least_one_path(self):
        with pytest.raises(ConfigurationError):
            VoiceCall([], CallConfig())

    def test_switching_recovers_from_congestion(self):
        # Path 0 is permanently congested from window 0; switching must
        # move off it and recover quality.
        bad = PathQualityProcess(
            60.0, 0.003, congest_probability=1.0, recover_probability=0.0,
            congestion_delay_ms=300.0, congestion_loss=0.15, seed=1,
        )
        good = PathQualityProcess(75.0, 0.003, congest_probability=0.0, seed=2)
        with_switching = VoiceCall(
            [bad, good], CallConfig(windows=12, use_switching=True, seed=3)
        ).run()
        bad2 = PathQualityProcess(
            60.0, 0.003, congest_probability=1.0, recover_probability=0.0,
            congestion_delay_ms=300.0, congestion_loss=0.15, seed=1,
        )
        good2 = PathQualityProcess(75.0, 0.003, congest_probability=0.0, seed=2)
        without = VoiceCall(
            [bad2, good2], CallConfig(windows=12, use_switching=False, seed=3)
        ).run()
        assert with_switching.switches >= 1
        assert with_switching.mean_mos > without.mean_mos
        assert with_switching.windows[-1].active_path == 1

    def test_diversity_improves_lossy_call(self):
        def paths(seed):
            return [
                PathQualityProcess(60.0, 0.08, congest_probability=0.0, seed=seed),
                PathQualityProcess(70.0, 0.08, congest_probability=0.0, seed=seed + 1),
            ]

        plain = VoiceCall(
            paths(1), CallConfig(windows=8, use_switching=False, use_diversity=False, seed=5)
        ).run()
        diverse = VoiceCall(
            paths(1), CallConfig(windows=8, use_switching=False, use_diversity=True, seed=5)
        ).run()
        assert diverse.mean_mos > plain.mean_mos
        assert all(w.effective_loss <= 0.06 for w in diverse.windows)

    def test_windows_recorded(self):
        outcome = VoiceCall(self._paths(), CallConfig(windows=7, seed=2)).run()
        assert [w.window for w in outcome.windows] == list(range(7))


class TestCallPathsFromSelection:
    def test_builds_processes_from_selection(self):
        from repro.scenario import tiny_scenario
        from repro.core import ASAPSystem, ASAPConfig
        from repro.core.config import derive_k_hops

        scenario = tiny_scenario(seed=11)
        system = ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices)))
        m = scenario.matrices
        latent = np.argwhere(m.rtt_ms > 300)
        if latent.size == 0:
            pytest.skip("no latent pair")
        a, b = (int(x) for x in latent[0])
        clusters = scenario.clusters.all_clusters()
        session = system.call(clusters[a].hosts[0].ip, clusters[b].hosts[0].ip)
        if session.selection is None or not session.selection.one_hop:
            pytest.skip("no one-hop candidates")
        paths = call_paths_from_selection(session.selection, m, a, b)
        assert 1 <= len(paths) <= 4
        outcome = VoiceCall(paths, CallConfig(windows=5, seed=1)).run()
        assert outcome.mean_mos > 1.0


class TestAdaptivePlayoutBuffer:
    def _stream(self, jitter, duration=20_000.0, loss=0.0, seed=6):
        from repro.voip.stream import simulate_stream, StreamConfig

        return simulate_stream(
            60.0, loss, StreamConfig(duration_ms=duration, jitter_mean_ms=jitter, seed=seed)
        )

    def test_low_jitter_tight_deadline(self):
        from repro.voip.stream import AdaptivePlayoutBuffer, PlayoutBuffer

        arrivals = self._stream(jitter=1.0)
        adaptive = AdaptivePlayoutBuffer().play(arrivals)
        fixed_deep = PlayoutBuffer(depth_ms=120.0).play(arrivals)
        # On a calm path the adaptive buffer plays out far earlier.
        assert adaptive.mouth_to_ear_ms < fixed_deep.mouth_to_ear_ms
        assert adaptive.effective_loss < 0.05

    def test_high_jitter_deepens(self):
        from repro.voip.stream import AdaptivePlayoutBuffer

        calm = AdaptivePlayoutBuffer().play(self._stream(jitter=1.0))
        jittery = AdaptivePlayoutBuffer().play(self._stream(jitter=40.0))
        assert jittery.mouth_to_ear_ms > calm.mouth_to_ear_ms

    def test_beats_shallow_fixed_on_jitter(self):
        from repro.voip.stream import AdaptivePlayoutBuffer, PlayoutBuffer

        arrivals = self._stream(jitter=30.0)
        adaptive = AdaptivePlayoutBuffer().play(arrivals)
        shallow = PlayoutBuffer(depth_ms=2.0).play(arrivals)
        assert adaptive.effective_loss < shallow.effective_loss

    def test_accounting_sums(self):
        from repro.voip.stream import AdaptivePlayoutBuffer

        arrivals = self._stream(jitter=10.0, loss=0.1)
        result = AdaptivePlayoutBuffer().play(arrivals)
        assert result.played + result.late + result.network_lost == result.total

    def test_all_lost(self):
        from repro.voip.stream import AdaptivePlayoutBuffer

        arrivals = self._stream(jitter=5.0, loss=1.0, duration=1_000.0)
        result = AdaptivePlayoutBuffer().play(arrivals)
        assert result.played == 0
        assert not np.isfinite(result.mouth_to_ear_ms)

    def test_invalid_params(self):
        from repro.voip.stream import AdaptivePlayoutBuffer
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            AdaptivePlayoutBuffer(alpha=1.0)
        with pytest.raises(ConfigurationError):
            AdaptivePlayoutBuffer(factor=0.0)
        with pytest.raises(ConfigurationError):
            AdaptivePlayoutBuffer().play([])


class TestFECRecovery:
    def _voice(self, loss, duration=10_000.0, seed=9):
        return simulate_stream(
            50.0, loss, StreamConfig(duration_ms=duration, jitter_mean_ms=5.0, seed=seed)
        )

    def _parity(self, voice, loss=0.0, seed=9):
        from repro.voip.stream import make_parity_stream, StreamConfig as SC

        return make_parity_stream(
            70.0, loss, len(voice), group_size=4,
            config=SC(duration_ms=10_000.0, jitter_mean_ms=5.0, seed=seed),
        )

    def test_recovers_isolated_losses(self):
        from repro.voip.stream import apply_fec_recovery

        voice = self._voice(loss=0.05)
        parity = self._parity(voice)
        recovered = apply_fec_recovery(voice, parity, group_size=4)
        before = sum(1 for p in voice if p.lost)
        after = sum(1 for p in recovered if p.lost)
        assert before > 0
        assert after < before

    def test_cannot_recover_double_loss_in_group(self):
        from repro.voip.stream import apply_fec_recovery, PacketArrival

        voice = [
            PacketArrival(0, 0.0, None),
            PacketArrival(1, 20.0, None),
            PacketArrival(2, 40.0, 90.0),
            PacketArrival(3, 60.0, 110.0),
        ]
        parity = [PacketArrival(0, 60.0, 130.0)]
        recovered = apply_fec_recovery(voice, parity, group_size=4)
        assert sum(1 for p in recovered if p.lost) == 2

    def test_recovery_waits_for_all_pieces(self):
        from repro.voip.stream import apply_fec_recovery, PacketArrival

        voice = [
            PacketArrival(0, 0.0, None),
            PacketArrival(1, 20.0, 70.0),
            PacketArrival(2, 40.0, 95.0),
            PacketArrival(3, 60.0, 200.0),
        ]
        parity = [PacketArrival(0, 60.0, 130.0)]
        recovered = apply_fec_recovery(voice, parity, group_size=4)
        assert recovered[0].arrival_ms == 200.0  # last surviving piece

    def test_lost_parity_recovers_nothing(self):
        from repro.voip.stream import apply_fec_recovery, PacketArrival

        voice = [PacketArrival(0, 0.0, None), PacketArrival(1, 20.0, 60.0)]
        parity = [PacketArrival(0, 20.0, None)]
        recovered = apply_fec_recovery(voice, parity, group_size=2)
        assert recovered[0].lost

    def test_parity_count_validated(self):
        from repro.voip.stream import apply_fec_recovery

        voice = self._voice(loss=0.0, duration=1000.0)
        with pytest.raises(ConfigurationError):
            apply_fec_recovery(voice, [], group_size=4)
        with pytest.raises(ConfigurationError):
            apply_fec_recovery(voice, voice, group_size=1)

    def test_fec_improves_playout_mos(self):
        from repro.voip.stream import apply_fec_recovery

        voice = self._voice(loss=0.08, duration=30_000.0)
        parity = self._parity(voice, loss=0.08)
        recovered = apply_fec_recovery(voice, parity, group_size=4)
        plain = score_playout(PlayoutBuffer(60.0).play(voice))
        fec = score_playout(PlayoutBuffer(60.0).play(recovered))
        assert fec > plain


class TestVoiceCallFEC:
    def _lossy_paths(self, seed=1):
        return [
            PathQualityProcess(60.0, 0.08, congest_probability=0.0, seed=seed),
            PathQualityProcess(70.0, 0.08, congest_probability=0.0, seed=seed + 1),
        ]

    def test_fec_improves_lossy_call(self):
        plain = VoiceCall(
            self._lossy_paths(),
            CallConfig(windows=8, use_switching=False, seed=5),
        ).run()
        fec = VoiceCall(
            self._lossy_paths(),
            CallConfig(windows=8, use_switching=False, use_fec=True, seed=5),
        ).run()
        assert fec.mean_mos > plain.mean_mos

    def test_fec_cheaper_than_diversity_but_weaker(self):
        # Full duplication recovers more than 1-per-group FEC.
        fec = VoiceCall(
            self._lossy_paths(),
            CallConfig(windows=8, use_switching=False, use_fec=True, seed=5),
        ).run()
        diversity = VoiceCall(
            self._lossy_paths(),
            CallConfig(windows=8, use_switching=False, use_diversity=True, seed=5),
        ).run()
        assert diversity.mean_mos >= fec.mean_mos - 0.05

    def test_fec_and_diversity_exclusive(self):
        with pytest.raises(ConfigurationError):
            CallConfig(use_fec=True, use_diversity=True)

    def test_fec_group_size_validated(self):
        with pytest.raises(ConfigurationError):
            CallConfig(use_fec=True, fec_group_size=1)

    def test_single_path_fec_noop(self):
        single = [PathQualityProcess(60.0, 0.05, congest_probability=0.0, seed=2)]
        outcome = VoiceCall(
            single, CallConfig(windows=4, use_switching=False, use_fec=True, seed=2)
        ).run()
        assert len(outcome.windows) == 4
