"""Tests for the wire transports: loopback, TCP, fault and shaping wrappers.

The loopback's virtual clock must be exact and deterministic; the TCP
transport must round-trip the same frames over real sockets and map
every failure (silence, refusal, handler crash) onto the same
:mod:`repro.errors` types the retry policies consume.
"""

import asyncio

import pytest

from repro.errors import RemoteError, TransportTimeout
from repro.net.codec import ERR_INTERNAL, ERR_UNSUPPORTED, Ping, Pong
from repro.net.faulty import FaultyTransport, ShapedTransport
from repro.net.loopback import LoopbackHub, LoopbackTransport
from repro.net.sockets import TcpTransport


async def _echo(sender, frame):
    return Pong(token=frame.message.token)


async def _crash(sender, frame):
    raise RuntimeError("handler bug")


async def _silent(sender, frame):
    return None


def _loopback_pair(hub, shape=lambda t: t):
    a = shape(LoopbackTransport(hub, "a"))
    b = shape(LoopbackTransport(hub, "b"))
    return a, b


def _run_loopback(main, latency_ms_fn=None):
    hub = LoopbackHub(latency_ms_fn=latency_ms_fn)
    return hub, asyncio.run(hub.run(main(hub)))


class TestLoopback:
    def test_request_takes_exactly_one_rtt(self):
        async def main(hub):
            a, b = _loopback_pair(hub)
            b.bind(_echo)
            await a.start()
            await b.start()
            reply = await a.request("b", Ping(token=4), timeout_ms=100.0)
            return reply, hub.now_ms

        hub, (reply, now) = _run_loopback(
            main, latency_ms_fn=lambda s, d: 10.0
        )
        assert reply == Pong(token=4)
        assert now == pytest.approx(10.0)  # rtt/2 out + rtt/2 back

    def test_timeout_fires_at_exact_virtual_instant(self):
        async def main(hub):
            a, b = _loopback_pair(hub)
            b.bind(_silent)  # oneway-style handler: a request gets nothing
            await a.start()
            await b.start()
            with pytest.raises(RemoteError):
                # handler answers None to a REQUEST -> ERR_UNSUPPORTED reply
                await a.request("b", Ping(token=1), timeout_ms=50.0)
            with pytest.raises(TransportTimeout):
                # unreachable peer: only the timeout ends the wait
                await a.request("nowhere", Ping(token=2), timeout_ms=80.0)
            return hub.now_ms

        hub, now = _run_loopback(main, latency_ms_fn=lambda s, d: 4.0)
        assert now == pytest.approx(4.0 + 80.0)

    def test_handler_crash_maps_to_remote_error(self):
        async def main(hub):
            a, b = _loopback_pair(hub)
            b.bind(_crash)
            await a.start()
            await b.start()
            with pytest.raises(RemoteError) as err:
                await a.request("b", Ping(token=1), timeout_ms=50.0)
            return err.value.code

        _, code = _run_loopback(main)
        assert code == ERR_INTERNAL

    def test_gather_runs_branches_concurrently(self):
        async def main(hub):
            a, b = _loopback_pair(hub)
            b.bind(_echo)
            await a.start()
            await b.start()
            replies = await a.gather(
                a.request("b", Ping(token=1), timeout_ms=100.0),
                a.request("b", Ping(token=2), timeout_ms=100.0),
                a.sleep_ms(6.0),
            )
            return replies, hub.now_ms

        hub, (replies, now) = _run_loopback(main, latency_ms_fn=lambda s, d: 10.0)
        assert replies[:2] == [Pong(token=1), Pong(token=2)]
        # concurrent: one RTT total, not two
        assert now == pytest.approx(10.0)

    def test_same_program_is_deterministic(self):
        def run_once():
            events = []

            async def main(hub):
                a, b = _loopback_pair(hub)
                b.bind(_echo)
                await a.start()
                await b.start()
                for token in range(5):
                    await a.request("b", Ping(token=token), timeout_ms=100.0)
                    events.append((token, hub.now_ms))
                await a.sleep_ms(3.5)
                events.append(("end", hub.now_ms))

            hub, _ = _run_loopback(main, latency_ms_fn=lambda s, d: 7.0)
            return events, hub.deliveries, hub.now_ms

        assert run_once() == run_once()

    def test_deadlock_is_detected_not_hung(self):
        from repro.errors import ServiceError

        async def main(hub):
            # a bare future nothing will ever resolve
            await hub._park(asyncio.get_running_loop().create_future())

        hub = LoopbackHub()
        with pytest.raises(ServiceError, match="deadlock"):
            asyncio.run(hub.run(main(hub)))


class TestTcp:
    def test_request_response_over_real_sockets(self):
        async def main():
            server = TcpTransport()
            server.bind(_echo)
            await server.start()
            client = TcpTransport()
            await client.start()
            try:
                reply = await client.request(
                    server.local_address, Ping(token=9), timeout_ms=2_000.0
                )
                return reply
            finally:
                await client.close()
                await server.close()

        assert asyncio.run(main()) == Pong(token=9)

    def test_unhandled_type_raises_remote_error(self):
        async def main():
            server = TcpTransport()
            await server.start()  # no handler bound
            client = TcpTransport()
            await client.start()
            try:
                with pytest.raises(RemoteError) as err:
                    await client.request(
                        server.local_address, Ping(token=1), timeout_ms=2_000.0
                    )
                return err.value.code
            finally:
                await client.close()
                await server.close()

        assert asyncio.run(main()) == ERR_UNSUPPORTED

    def test_connection_refused_maps_to_timeout(self):
        async def main():
            client = TcpTransport()
            await client.start()
            try:
                with pytest.raises(TransportTimeout):
                    await client.request(
                        "127.0.0.1:1", Ping(token=1), timeout_ms=500.0
                    )
            finally:
                await client.close()

        asyncio.run(main())


class TestWrappers:
    def test_faulty_drop_consumes_timeout_then_raises(self):
        async def main(hub):
            raw_a, b = _loopback_pair(hub)
            a = FaultyTransport(raw_a, seed=0, drop_rate=1.0)
            b.bind(_echo)
            await a.start()
            await b.start()
            with pytest.raises(TransportTimeout):
                await a.request("b", Ping(token=1), timeout_ms=60.0)
            return hub.now_ms, a.dropped

        hub, (now, dropped) = _run_loopback(main)
        assert now == pytest.approx(60.0)  # silent peer: full timeout burned
        assert dropped == 1

    def test_faulty_zero_rate_is_transparent(self):
        async def main(hub):
            raw_a, b = _loopback_pair(hub)
            a = FaultyTransport(raw_a, seed=0, drop_rate=0.0)
            b.bind(_echo)
            await a.start()
            await b.start()
            return await a.request("b", Ping(token=2), timeout_ms=60.0)

        _, reply = _run_loopback(main)
        assert reply == Pong(token=2)

    def test_shaped_injects_per_destination_rtt(self):
        async def main(hub):
            raw_a, b = _loopback_pair(hub)
            a = ShapedTransport(raw_a)
            a.set_rtt_ms("b", 120.0)
            b.bind(_echo)
            await a.start()
            await b.start()
            start = a.now_ms()
            await a.request("b", Ping(token=1), timeout_ms=1_000.0)
            return a.now_ms() - start

        _, elapsed = _run_loopback(main, latency_ms_fn=lambda s, d: 0.0)
        assert elapsed == pytest.approx(120.0)

    def test_shaped_unregistered_destination_passes_through(self):
        async def main(hub):
            raw_a, b = _loopback_pair(hub)
            a = ShapedTransport(raw_a)
            b.bind(_echo)
            await a.start()
            await b.start()
            start = a.now_ms()
            await a.request("b", Ping(token=1), timeout_ms=1_000.0)
            return a.now_ms() - start

        _, elapsed = _run_loopback(main, latency_ms_fn=lambda s, d: 8.0)
        assert elapsed == pytest.approx(8.0)


class TestBackpressure:
    """Per-connection in-flight caps with a bounded wait queue."""

    def test_full_queue_rejects_as_backpressure_timeout(self):
        async def main():
            gate = asyncio.Event()

            async def slow(sender, frame):
                await gate.wait()
                return Pong(token=frame.message.token)

            server = TcpTransport()
            server.bind(slow)
            await server.start()
            client = TcpTransport(max_in_flight=1, max_waiters=1)
            await client.start()
            try:
                first = asyncio.ensure_future(
                    client.request(server.local_address, Ping(token=1), 5_000.0)
                )
                await asyncio.sleep(0.05)  # occupies the single slot
                second = asyncio.ensure_future(
                    client.request(server.local_address, Ping(token=2), 5_000.0)
                )
                await asyncio.sleep(0.05)  # fills the single queue seat
                with pytest.raises(TransportTimeout, match="backpressure"):
                    await client.request(server.local_address, Ping(token=3), 5_000.0)
                gate.set()  # queued work still completes in order
                return await first, await second
            finally:
                await client.close()
                await server.close()

        r1, r2 = asyncio.run(main())
        assert r1 == Pong(token=1)
        assert r2 == Pong(token=2)

    def test_waiter_times_out_when_slot_never_frees(self):
        async def main():
            gate = asyncio.Event()

            async def slow(sender, frame):
                await gate.wait()
                return Pong(token=frame.message.token)

            server = TcpTransport()
            server.bind(slow)
            await server.start()
            client = TcpTransport(max_in_flight=1, max_waiters=8)
            await client.start()
            try:
                first = asyncio.ensure_future(
                    client.request(server.local_address, Ping(token=1), 5_000.0)
                )
                await asyncio.sleep(0.05)
                with pytest.raises(TransportTimeout, match="no free slot"):
                    await client.request(server.local_address, Ping(token=2), 200.0)
                gate.set()
                return await first
            finally:
                await client.close()
                await server.close()

        assert asyncio.run(main()) == Pong(token=1)

    def test_throughput_unharmed_below_the_cap(self):
        async def main():
            server = TcpTransport()
            server.bind(_echo)
            await server.start()
            client = TcpTransport(max_in_flight=4, max_waiters=64)
            await client.start()
            try:
                replies = await asyncio.gather(
                    *[
                        client.request(server.local_address, Ping(token=t), 5_000.0)
                        for t in range(20)
                    ]
                )
                return replies
            finally:
                await client.close()
                await server.close()

        replies = asyncio.run(main())
        assert sorted(r.token for r in replies) == list(range(20))
