"""Tests for end-to-end scenario assembly and subsampling."""

import numpy as np
import pytest

from repro import Scenario, ScenarioConfig, build_scenario, tiny_scenario
from repro.scenario import subsample_scenario
from repro.topology import PopulationConfig, TopologyConfig


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=9)


class TestBuildScenario:
    def test_deterministic(self):
        a = tiny_scenario(seed=11)
        b = tiny_scenario(seed=11)
        assert a.population.ips() == b.population.ips()
        assert np.array_equal(a.matrices.rtt_ms, b.matrices.rtt_ms)

    def test_seed_changes_world(self):
        a = tiny_scenario(seed=11)
        b = tiny_scenario(seed=12)
        assert a.population.ips() != b.population.ips()

    def test_with_seed_propagates(self):
        config = ScenarioConfig().with_seed(42)
        assert config.seed == 42
        assert config.topology.seed == 42
        assert config.population.seed == 42
        assert config.conditions.seed == 42

    def test_prefix_table_built_from_parsed_rib(self, scenario):
        # Every populated prefix must be resolvable through the table.
        for cluster in scenario.clusters.all_clusters():
            assert scenario.prefix_table.origin_of(cluster.delegate.ip) == cluster.asn

    def test_inferred_graph_nonempty(self, scenario):
        assert len(scenario.inferred_graph) > 0
        assert scenario.inferred_graph.edge_count() > 0

    def test_protocol_graph_flag(self, scenario):
        assert scenario.protocol_graph is scenario.inferred_graph
        truth_cfg = ScenarioConfig(
            topology=TopologyConfig(tier1_count=3, tier2_count=10, tier3_count=40, seed=1),
            population=PopulationConfig(host_count=300, seed=1),
            use_inferred_graph=False,
        )
        truth_scenario = build_scenario(truth_cfg)
        assert truth_scenario.protocol_graph is truth_scenario.topology.graph

    def test_matrices_cached(self, scenario):
        assert scenario.matrices is scenario.matrices

    def test_routing_table_updates_applied(self, scenario):
        # The update stream re-announces churned prefixes; the table
        # must still cover every allocated prefix.
        announced = set(scenario.routing_table.prefixes())
        for prefixes in scenario.allocation.prefixes_of.values():
            for prefix in prefixes:
                assert prefix in announced


class TestSubsample:
    def test_population_shrinks(self, scenario):
        small = subsample_scenario(scenario, 0.25, seed=1)
        assert len(small.population) == pytest.approx(0.25 * len(scenario.population), abs=2)

    def test_hosts_are_subset(self, scenario):
        small = subsample_scenario(scenario, 0.25, seed=1)
        original = set(scenario.population.ips())
        assert set(small.population.ips()) <= original

    def test_topology_shared(self, scenario):
        small = subsample_scenario(scenario, 0.25, seed=1)
        assert small.topology is scenario.topology
        assert small.prefix_table is scenario.prefix_table
        assert small.conditions is scenario.conditions

    def test_clusters_rebuilt(self, scenario):
        small = subsample_scenario(scenario, 0.25, seed=1)
        assert len(small.clusters) <= len(scenario.clusters)
        for cluster in small.clusters.all_clusters():
            assert cluster.delegate is not None
            assert len(cluster) >= 1

    def test_matrix_consistency_on_shared_clusters(self, scenario):
        # AS-level structure unchanged → same-cluster-pair RTTs should
        # agree up to delegate access deltas (delegates may differ).
        small = subsample_scenario(scenario, 0.5, seed=1)
        shared = [p for p in small.matrices.prefixes if p in scenario.matrices.index_of]
        assert shared
        p, q = shared[0], shared[-1]
        i1, j1 = scenario.matrices.index_of[p], scenario.matrices.index_of[q]
        i2, j2 = small.matrices.index_of[p], small.matrices.index_of[q]
        big_val = scenario.matrices.rtt_ms[i1, j1]
        small_val = small.matrices.rtt_ms[i2, j2]
        if np.isfinite(big_val):
            assert abs(big_val - small_val) < 80.0  # access-delay slack

    def test_invalid_fraction(self, scenario):
        with pytest.raises(ValueError):
            subsample_scenario(scenario, 0.0)
        with pytest.raises(ValueError):
            subsample_scenario(scenario, 1.5)

    def test_deterministic(self, scenario):
        a = subsample_scenario(scenario, 0.3, seed=2)
        b = subsample_scenario(scenario, 0.3, seed=2)
        assert a.population.ips() == b.population.ips()
