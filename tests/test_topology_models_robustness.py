"""Tests for alternative topology families and robustness studies."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.evaluation.robustness import (
    family_study,
    headline_metrics,
    seed_study,
    summarize_across,
)
from repro.scenario import ScenarioConfig, build_scenario_from_topology
from repro.topology import PopulationConfig, TopologyConfig
from repro.topology.models import generate_barabasi_albert, generate_waxman
from repro.topology.validation import validate_topology


class TestBarabasiAlbert:
    def test_structure_valid(self):
        topo = generate_barabasi_albert(as_count=120, seed=3)
        topo.validate()
        assert len(topo.graph) == 120

    def test_core_is_peered_and_transit_free(self):
        topo = generate_barabasi_albert(as_count=120, core_size=5, seed=3)
        core = [a for a, t in topo.tier_of.items() if t == 1]
        assert len(core) == 5
        for asn in core:
            assert not topo.graph.providers(asn)

    def test_heavy_tail(self):
        topo = generate_barabasi_albert(as_count=300, seed=3)
        degrees = sorted((topo.graph.degree(a) for a in topo.graph.ases()), reverse=True)
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_policy_routing_works(self):
        topo = generate_barabasi_albert(as_count=120, seed=3)
        report = validate_topology(topo, sample_pairs=80, seed=3)
        assert report.valley_free_rate == 1.0
        assert report.reachable_rate > 0.95

    def test_deterministic(self):
        a = generate_barabasi_albert(as_count=100, seed=4)
        b = generate_barabasi_albert(as_count=100, seed=4)
        assert a.graph.edge_count() == b.graph.edge_count()
        assert a.geography.coords == b.geography.coords

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            generate_barabasi_albert(as_count=5, core_size=6)


class TestWaxman:
    def test_structure_valid(self):
        topo = generate_waxman(as_count=120, seed=3)
        topo.validate()
        assert len(topo.graph) == 120

    def test_connected_and_routable(self):
        topo = generate_waxman(as_count=120, seed=3)
        report = validate_topology(topo, sample_pairs=80, seed=3)
        assert report.reachable_rate > 0.95
        assert report.valley_free_rate == 1.0

    def test_edges_prefer_short_distances(self):
        topo = generate_waxman(as_count=200, seed=5)
        geo = topo.geography
        edge_dists = []
        ases = topo.graph.ases()
        for a in ases:
            for b in topo.graph.neighbors(a):
                if a < b:
                    edge_dists.append(geo.distance_km(a, b))
        rng = np.random.default_rng(1)
        random_dists = [
            geo.distance_km(int(rng.choice(ases)), int(rng.choice(ases)))
            for _ in range(300)
        ]
        assert np.median(edge_dists) < np.median(random_dists)

    def test_deterministic(self):
        a = generate_waxman(as_count=100, seed=4)
        b = generate_waxman(as_count=100, seed=4)
        assert a.graph.edge_count() == b.graph.edge_count()


class TestPipelineOnAlternativeFamilies:
    @pytest.mark.parametrize("factory", [generate_barabasi_albert, generate_waxman])
    def test_full_scenario_builds(self, factory):
        topo = factory(as_count=120, seed=2)
        config = ScenarioConfig(
            population=PopulationConfig(host_count=500, seed=2)
        ).with_seed(2)
        scenario = build_scenario_from_topology(topo, config)
        matrices = scenario.matrices
        assert matrices.count > 10
        assert np.isfinite(matrices.rtt_ms).mean() > 0.8


class TestRobustnessStudies:
    SMALL = ScenarioConfig(
        topology=TopologyConfig(tier1_count=3, tier2_count=10, tier3_count=50),
        population=PopulationConfig(host_count=500),
    )

    def test_headline_metrics_fields(self):
        from repro.scenario import build_scenario

        scenario = build_scenario(self.SMALL.with_seed(11))
        metrics = headline_metrics(
            scenario, "t", session_count=400, latent_target=8, seed=11
        )
        assert 0.0 <= metrics.latent_fraction <= 1.0
        assert 0.0 <= metrics.asap_rescue_rate <= 1.0
        assert metrics.asap_over_best_baseline > 0
        assert "latent=" in metrics.row()

    def test_seed_study_multiple_seeds(self):
        results = seed_study(
            self.SMALL, seeds=(11, 12), session_count=400, latent_target=6
        )
        assert len(results) == 2
        assert results[0].label != results[1].label
        rows = summarize_across(results)
        assert any("±" in value for _, value in rows)

    def test_family_study_runs_all_families(self):
        results = family_study(
            self.SMALL, as_count=100, session_count=400, latent_target=6, seed=11
        )
        labels = [m.label for m in results]
        assert labels == ["tiered", "barabasi-albert", "waxman"]
