"""Tests for per-call causal tracing (``repro.obs.trace``).

Covers the tracer's four contracts:

- identifiers are deterministic (sequence counters + simulated time,
  never wall clock), so identical instrumentation yields byte-identical
  files;
- the disabled path is inert: the null tracer/span are falsy shared
  no-ops, and a run without ``trace=True`` writes nothing;
- records validate: header-first schema, field shapes, unique span ids,
  parent referential integrity across out-of-order emission;
- the tracer integrates with the observer: manifest accounting,
  fork-child detachment, ambient scoping.
"""

import json

import pytest

from repro import obs
from repro.obs.trace import (
    NULL_TRACER,
    NULL_TRACE_SPAN,
    TRACE_SCHEMA_VERSION,
    Tracer,
    load_trace_file,
    validate_trace_records,
)


@pytest.fixture(autouse=True)
def no_leaked_run():
    if obs.enabled():
        obs.finish_run()
    yield
    if obs.enabled():
        obs.finish_run()


def _sample_records():
    """A small two-trace record set exercised by several tests."""
    tracer = Tracer()
    call = tracer.begin("call", 10.0, caller="a", callee="b")
    ping = call.child("setup.ping", 10.0, attempt=1)
    ping.end(42.5, outcome="ok")
    call.point("setup.done", 42.5, outcome="completed")
    call.end(50.0, outcome="finished")
    join = tracer.begin("join", 60.0, ip="c")
    join.end(61.0, outcome="completed")
    return tracer.records


class TestIdentifiers:
    def test_ids_are_deterministic_across_tracers(self):
        first, second = Tracer(), Tracer()
        for tracer in (first, second):
            root = tracer.begin("call", 12.25, caller="a")
            child = root.child("setup.ping", 12.25)
            child.end(13.0, outcome="ok")
            root.end(20.0)
        assert first.records == second.records

    def test_trace_id_embeds_sequence_and_time(self):
        tracer = Tracer()
        root = tracer.begin("call", 12.25)
        assert root.trace_id == f"0001.{int(12.25 * 1000):x}"
        again = tracer.begin("call", 12.25)
        assert again.trace_id != root.trace_id  # sequence disambiguates

    def test_span_ids_unique_and_ordered(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        children = [root.child("x", 0.0) for _ in range(5)]
        ids = [root.span_id] + [c.span_id for c in children]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_end_is_idempotent(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        root.end(1.0)
        root.end(2.0)
        spans = [r for r in tracer.records if r["kind"] == "span"]
        assert len(spans) == 1
        assert spans[0]["end_ms"] == 1.0


class TestDisabledPath:
    def test_null_objects_are_falsy(self):
        assert not NULL_TRACER
        assert not NULL_TRACE_SPAN
        assert Tracer()  # a real tracer is truthy
        assert Tracer().begin("x", 0.0)

    def test_null_span_propagates_itself(self):
        span = NULL_TRACE_SPAN.child("setup.ping", 1.0, attempt=1)
        assert span is NULL_TRACE_SPAN
        span.point("setup.done", 2.0)
        span.end(3.0, outcome="ok")  # all free no-ops

    def test_null_tracer_scope_stays_inert(self):
        with NULL_TRACER.scope(NULL_TRACE_SPAN):
            assert NULL_TRACER.active is NULL_TRACE_SPAN
        assert NULL_TRACER.begin("call", 0.0) is NULL_TRACE_SPAN
        assert NULL_TRACER.records == []

    def test_tracer_hook_off_without_trace_run(self):
        assert obs.tracer() is NULL_TRACER
        with obs.observe():
            assert obs.tracer() is NULL_TRACER  # run without trace=True

    def test_tracer_hook_on_with_trace_run(self):
        with obs.observe(trace=True) as run:
            assert obs.tracer() is run.trace
            assert obs.tracer()


class TestScoping:
    def test_scope_swaps_and_restores_ambient(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        assert tracer.active is NULL_TRACE_SPAN
        with tracer.scope(root):
            assert tracer.active is root
            inner = root.child("setup.select", 1.0)
            with tracer.scope(inner):
                assert tracer.active is inner
            assert tracer.active is root
        assert tracer.active is NULL_TRACE_SPAN

    def test_clock_drives_now(self):
        tracer = Tracer()
        assert tracer.now() == 0.0
        tracer.clock = lambda: 123.5
        assert tracer.now() == 123.5


class TestValidation:
    def test_sample_records_validate(self):
        assert validate_trace_records(_sample_records()) == []

    def test_empty_and_missing_header_rejected(self):
        assert validate_trace_records([])
        records = _sample_records()
        assert validate_trace_records(records[1:])  # header stripped

    def test_wrong_schema_rejected(self):
        records = _sample_records()
        records[0] = {"kind": "header", "schema": TRACE_SCHEMA_VERSION + 1}
        assert any("schema" in p for p in validate_trace_records(records))

    def test_unknown_parent_rejected(self):
        records = _sample_records()
        records[1]["parent"] = "ffffff"
        assert any("parent" in p for p in validate_trace_records(records))

    def test_cross_trace_parent_rejected(self):
        tracer = Tracer()
        a = tracer.begin("call", 0.0)
        b = tracer.begin("call", 1.0)
        stray = tracer._span(b.trace_id, a.span_id, "x", 1.0, {})
        stray.end(2.0)
        a.end(3.0)
        b.end(3.0)
        assert any("belongs to trace" in p for p in validate_trace_records(tracer.records))

    def test_duplicate_span_id_rejected(self):
        records = _sample_records()
        records.append(dict(records[1]))
        assert any("duplicate" in p for p in validate_trace_records(records))

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        root = tracer.begin("call", 10.0)
        root.end(5.0)
        assert any("before start" in p for p in validate_trace_records(tracer.records))

    def test_out_of_order_parents_are_legal(self):
        # Children are emitted before their parent ends; the two-pass
        # validator must accept the file order the tracer produces.
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        child = root.child("setup.ping", 0.0)
        child.end(1.0)
        root.end(2.0)
        kinds = [r["name"] for r in tracer.records if r["kind"] == "span"]
        assert kinds == ["setup.ping", "call"]  # child first in the file
        assert validate_trace_records(tracer.records) == []


class TestFileStream:
    def test_records_stream_to_disk_and_load_back(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(path)
        root = tracer.begin("call", 0.0, caller="a")
        root.point("setup.done", 1.0)
        root.end(2.0, outcome="finished")
        tracer.close()
        records = load_trace_file(path)
        assert records == tracer.records
        assert records[0] == {"kind": "header", "schema": TRACE_SCHEMA_VERSION}
        assert tracer.records_written == len(records)

    def test_lines_are_canonical_json(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(path)
        tracer.begin("call", 0.0, z="last", a="first").end(1.0)
        tracer.close()
        for line in path.read_text().splitlines():
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"kind":"span"}\n')
        with pytest.raises(ValueError):
            load_trace_file(path)


class TestObserverIntegration:
    def test_manifest_accounts_for_traces(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, command="unit", trace=True):
            tracer = obs.tracer()
            tracer.begin("call", 0.0).end(1.0)
        manifest = obs.load_manifest(tmp_path / obs.MANIFEST_FILENAME)
        assert manifest["traces_file"] == obs.TRACES_FILENAME
        assert manifest["traces_written"] == 2  # header + one span
        assert load_trace_file(tmp_path / obs.TRACES_FILENAME)

    def test_untraced_run_writes_no_trace_file(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, command="unit"):
            obs.tracer().begin("call", 0.0).end(1.0)  # no-op
        manifest = obs.load_manifest(tmp_path / obs.MANIFEST_FILENAME)
        assert manifest["traces_file"] is None
        assert manifest["traces_written"] == 0
        assert not (tmp_path / obs.TRACES_FILENAME).exists()

    def test_forked_child_detaches_tracer(self):
        with obs.observe(trace=True) as run:
            assert run.trace is not None
            obs.begin_forked_child()
            assert run.trace is None
            assert obs.tracer() is NULL_TRACER
