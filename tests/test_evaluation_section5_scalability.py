"""Tests for the Skype-study runner (Section 5) and scalability (Fig. 17)."""

import numpy as np
import pytest

from repro.evaluation.scalability import run_scalability
from repro.evaluation.section5 import (
    REGION_A_SITES,
    REGION_B_SITES,
    TABLE1_SESSION_PLAN,
    build_site_plan,
    run_section5,
)
from repro.scenario import tiny_scenario
from repro.skype import SkypeConfig


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


class TestSitePlan:
    def test_seventeen_sites(self, scenario):
        plan = build_site_plan(scenario, seed=1)
        assert set(plan.site_host) == set(range(1, 18))

    def test_region_assignment(self, scenario):
        plan = build_site_plan(scenario, seed=1)
        for site in REGION_A_SITES:
            assert plan.region_of[site] == "A"
        for site in REGION_B_SITES:
            assert plan.region_of[site] == "B"

    def test_sites_1_to_6_colocated(self, scenario):
        plan = build_site_plan(scenario, seed=1)
        prefixes = {
            scenario.clusters.cluster_of(plan.host(site).ip).prefix
            for site in range(1, 7)
        }
        assert len(prefixes) == 1

    def test_regions_have_poor_direct_path(self, scenario):
        # The anchor pair is picked for a bad direct RTT (the paper's
        # US-China pairs were chosen because they were problematic).
        plan = build_site_plan(scenario, seed=1)
        m = scenario.matrices
        a = plan.host(1)
        b = plan.host(13)
        ca = m.index_of[scenario.clusters.cluster_of(a.ip).prefix]
        cb = m.index_of[scenario.clusters.cluster_of(b.ip).prefix]
        finite = m.rtt_ms[np.isfinite(m.rtt_ms)]
        assert m.rtt_ms[ca, cb] > np.percentile(finite, 75)

    def test_table1_plan_shape(self):
        assert len(TABLE1_SESSION_PLAN) == 14
        for caller, callee in TABLE1_SESSION_PLAN:
            assert 1 <= caller <= 17 and 1 <= callee <= 17


class TestRunSection5:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        # Short sessions + small probe budgets keep this test fast; an
        # aggressive quality target keeps Skype probing/switching long
        # enough to exhibit relay bounce even in a tiny low-RTT world.
        config = SkypeConfig(
            max_probes=24,
            max_background_probes=3,
            target_rtt_ms=120.0,
            switch_margin=0.02,
        )
        return run_section5(scenario, config=config, duration_ms=150_000.0, seed=1)

    def test_fourteen_sessions(self, result):
        assert len(result.results) == 14
        assert len(result.analyses) == 14

    def test_fig7a_stabilization_series(self, result):
        stabilization = result.stabilization_seconds()
        assert len(stabilization) == 14
        assert all(s >= 0 for s in stabilization)
        # Relay bounce must be visible somewhere (Limit 3).
        assert max(stabilization) > 1.0

    def test_fig7b_probe_counts(self, result):
        probed = result.probed_counts()
        assert len(probed) == 14
        assert all(p >= 0 for p in probed)
        # Cross-region latent sessions probe heavily (Limit 4).
        assert max(probed) > 10

    def test_fig7c_after_stabilization(self, result):
        after = result.probed_after_stabilization()
        assert len(after) == 14
        assert all(a >= 0 for a in after)

    def test_table2_same_as_rows(self, result):
        rows = result.same_as_table()
        # AS-unaware popularity-biased probing must occasionally probe
        # two nodes of one AS (Limit 2).
        assert rows, "expected at least one same-AS probe group"
        for _, asn, ips in rows:
            assert len(ips) > 1

    def test_intra_cluster_sessions_use_direct(self, result):
        # Session 1 (sites 3-5) is intra-cluster: direct path wins.
        analysis = result.analyses[0]
        assert analysis.forward.major_carrier is None

    def test_deterministic(self, scenario, result):
        config = SkypeConfig(
            max_probes=24,
            max_background_probes=3,
            target_rtt_ms=120.0,
            switch_margin=0.02,
        )
        again = run_section5(scenario, config=config, duration_ms=150_000.0, seed=1)
        assert again.probed_counts() == result.probed_counts()
        assert again.stabilization_seconds() == result.stabilization_seconds()


class TestScalability:
    def test_asap_scales_baselines_do_not(self, scenario):
        result = run_scalability(
            scenario,
            ratio=2.0,
            session_count=400,
            latent_target=10,
            max_latent_sessions=10,
            methods=("DEDI", "ASAP"),
            seed=1,
        )
        assert result.small_population < result.large_population
        # ASAP's per-capita quality paths stay stable across scales;
        # DEDI's fixed-fleet counts do not shrink with the population,
        # so its normalized error is pinned near |1/ratio - 1|.
        asap_err = result.scalability_error("ASAP")
        dedi_err = result.scalability_error("DEDI")
        assert asap_err < dedi_err

    def test_normalization(self, scenario):
        result = run_scalability(
            scenario,
            ratio=2.0,
            session_count=300,
            latent_target=5,
            max_latent_sessions=5,
            methods=("ASAP",),
            seed=2,
        )
        raw = result.large.series("ASAP", "one_hop_quality_paths")
        norm = result.normalized_large_series("ASAP")
        assert np.allclose(norm * result.ratio, raw)
