"""Tests for geographic placement and delay conversion."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.geography import Geography, MS_PER_KM, PATH_STRETCH


class TestGeography:
    def test_place_and_distance(self):
        geo = Geography(width_km=100.0, height_km=50.0)
        geo.place(1, 0.0, 0.0)
        geo.place(2, 30.0, 40.0)
        assert geo.distance_km(1, 2) == pytest.approx(50.0)

    def test_x_wraparound(self):
        geo = Geography(width_km=100.0, height_km=50.0)
        geo.place(1, 5.0, 0.0)
        geo.place(2, 95.0, 0.0)
        # Going the short way around: 10 km, not 90.
        assert geo.distance_km(1, 2) == pytest.approx(10.0)

    def test_y_clamped(self):
        geo = Geography(width_km=100.0, height_km=50.0)
        geo.place(1, 0.0, 80.0)
        assert geo.coords[1][1] == 50.0
        geo.place(2, 0.0, -10.0)
        assert geo.coords[2][1] == 0.0

    def test_x_wraps_modulo(self):
        geo = Geography(width_km=100.0, height_km=50.0)
        geo.place(1, 130.0, 0.0)
        assert geo.coords[1][0] == pytest.approx(30.0)

    def test_place_near_requires_anchor(self):
        geo = Geography()
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            geo.place_near(2, 1, rng, 100.0)

    def test_place_near_spread(self):
        geo = Geography()
        geo.place(1, 10000.0, 5000.0)
        rng = np.random.default_rng(0)
        distances = []
        for asn in range(2, 102):
            geo.place_near(asn, 1, rng, 500.0)
            distances.append(geo.distance_km(1, asn))
        assert np.mean(distances) < 2000.0

    def test_propagation_delay(self):
        geo = Geography(width_km=100000.0, height_km=50000.0)
        geo.place(1, 0.0, 0.0)
        geo.place(2, 1000.0, 0.0)
        assert geo.propagation_delay_ms(1, 2) == pytest.approx(1000.0 * MS_PER_KM * PATH_STRETCH)

    def test_distance_unknown_as(self):
        geo = Geography()
        geo.place(1, 0.0, 0.0)
        with pytest.raises(TopologyError):
            geo.distance_km(1, 99)

    def test_contains_and_len(self):
        geo = Geography()
        geo.place(7, 1.0, 1.0)
        assert 7 in geo
        assert 8 not in geo
        assert len(geo) == 1

    def test_place_random_within_bounds(self):
        geo = Geography(width_km=100.0, height_km=50.0)
        rng = np.random.default_rng(3)
        for asn in range(1, 50):
            geo.place_random(asn, rng)
            x, y = geo.coords[asn]
            assert 0.0 <= x < 100.0
            assert 0.0 <= y <= 50.0
