"""Tests for the event-driven ASAP runtime (joins + call setups)."""

import numpy as np
import pytest

from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.core.runtime import ASAPRuntime
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


@pytest.fixture()
def runtime(scenario):
    return ASAPRuntime(
        scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
    )


def latent_host_pair(scenario):
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    for a, b in np.argwhere(m.rtt_ms > 300):
        ca, cb = clusters[int(a)], clusters[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no latent pair")


def good_host_pair(scenario):
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    for a, b in np.argwhere(np.isfinite(m.rtt_ms) & (m.rtt_ms < 120)):
        if a == b:
            continue
        ca, cb = clusters[int(a)], clusters[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no good pair")


class TestJoinFlow:
    def test_join_completes_with_positive_duration(self, scenario, runtime):
        ip = scenario.population.hosts[0].ip
        record = runtime.schedule_join(ip, at_ms=0.0)
        runtime.run()
        assert record.completed_ms is not None
        assert record.duration_ms > 0

    def test_join_sends_messages(self, scenario, runtime):
        ip = scenario.population.hosts[0].ip
        runtime.schedule_join(ip)
        runtime.run()
        assert runtime.network.sent_by_category["join-request"] == 1
        assert runtime.network.sent_by_category["publish-nodal-info"] == 1

    def test_many_joins(self, scenario, runtime):
        for host in scenario.population.hosts[:20]:
            runtime.schedule_join(host.ip, at_ms=float(host.ip.value % 50))
        runtime.run()
        completed = [j for j in runtime.joins if j.completed_ms is not None]
        assert len(completed) >= 18  # a couple may sit behind failures


class TestCallSetup:
    def test_good_pair_setup_is_one_ping(self, scenario, runtime):
        caller, callee = good_host_pair(scenario)
        record = runtime.schedule_call(caller, callee)
        runtime.run()
        assert record.setup_ms is not None
        direct = scenario.latency.host_rtt_ms(
            scenario.population.by_ip(caller), scenario.population.by_ip(callee)
        )
        assert record.setup_ms == pytest.approx(direct, rel=1e-6)
        assert not record.session.relay_needed

    def test_latent_pair_setup_bounded_by_few_rtts(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        record = runtime.schedule_call(caller, callee)
        runtime.run()
        assert record.setup_ms is not None
        assert record.session.relay_needed
        # Setup is a handful of RTTs — single-digit seconds even on a
        # terrible path, versus Skype's tens-to-hundreds of seconds.
        assert record.setup_ms < 10_000.0
        assert record.setup_ms > record.session.direct_rtt_ms  # ping + fetches

    def test_callback_invoked(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        seen = []
        runtime.schedule_call(caller, callee, on_complete=seen.append)
        runtime.run()
        assert len(seen) == 1
        assert seen[0].setup_ms is not None

    def test_concurrent_calls(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        caller2, callee2 = good_host_pair(scenario)
        runtime.schedule_call(caller, callee, at_ms=0.0)
        runtime.schedule_call(caller2, callee2, at_ms=5.0)
        runtime.run()
        assert len(runtime.setup_times_ms()) == 2

    def test_messages_flow_through_network(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        runtime.schedule_call(caller, callee)
        runtime.run()
        assert runtime.network.sent_by_category["ping"] == 1
        assert runtime.network.sent_by_category["close-set-request"] >= 2


class TestMultiSurrogate:
    def test_large_cluster_gets_multiple_surrogates(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig(hosts_per_surrogate=5))
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 6:
            pytest.skip("no cluster large enough")
        idx = scenario.matrices.index_of[big.prefix]
        group = system.surrogate_group(idx)
        assert len(group) == -(-len(big) // 5)
        # Replicas serve the primary's close set object.
        assert group[1].close_set() is group[0].close_set()

    def test_requests_spread_over_group(self, scenario):
        from repro.core import ASAPSystem

        system = ASAPSystem(scenario, ASAPConfig(hosts_per_surrogate=5))
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 11:
            pytest.skip("no cluster large enough")
        idx = scenario.matrices.index_of[big.prefix]
        served = set()
        for host in scenario.population.hosts[:40]:
            served.add(system.surrogate(idx, requester=host.ip).ip)
        assert len(served) > 1

    def test_maintenance_counted_once_per_cluster(self, scenario):
        from repro.core import ASAPSystem

        multi = ASAPSystem(scenario, ASAPConfig(hosts_per_surrogate=5))
        single = ASAPSystem(scenario, ASAPConfig(hosts_per_surrogate=10**9))
        big = max(scenario.clusters.all_clusters(), key=len)
        idx = scenario.matrices.index_of[big.prefix]
        multi.close_set(idx)
        single.close_set(idx)
        # Replicas share the primary's probes — no duplicate traffic.
        assert multi.maintenance_messages() == single.maintenance_messages()
