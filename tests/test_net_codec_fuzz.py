"""Structured fuzz tests for the wire codec's adversarial-input contract.

The stream decoder faces bytes from the network; the contract under
attack (mutations, truncations, concatenations, garbage) is:

- decoding never raises anything but :class:`FrameError` /
  :class:`CodecError` — no crashes, no unbounded allocations;
- every frame a decoder *returns* is a complete, well-formed message
  (it re-encodes to a valid frame) — corruption never yields a partial
  or garbled emission;
- after the first corrupt frame the decoder is poisoned: every later
  ``feed`` raises, however valid its bytes.

All randomness is deterministic (fixed-seed ``random.Random``), so a
failure reproduces exactly.
"""

import random

import pytest

from repro.errors import CodecError, FrameError
from repro.net.codec import (
    Bye,
    CallSetup,
    CloseSetQuery,
    CloseSetReply,
    Frame,
    FrameDecoder,
    Join,
    Keepalive,
    Media,
    NodalPublish,
    ONEWAY,
    Ping,
    REQUEST,
    RESPONSE,
    ROLE_HOST,
    decode_frame,
    encode_frame,
)
from repro.netaddr import IPv4Address


def _corpus():
    """Representative valid frames: every field kind, varied flags/ids."""
    messages = [
        (Join(IPv4Address(0x0A000001), ROLE_HOST, -1, "10.0.0.1:4000"), REQUEST, 7),
        (Ping(token=0xDEADBEEF), REQUEST, 1),
        (CloseSetQuery(cluster=-1, requester_ip=IPv4Address(0x0A000002)), REQUEST, 2),
        (
            CloseSetReply(owner=12, entries=((3, 17.5), (9, 80.25), (41, 119.0))),
            RESPONSE,
            2,
        ),
        (
            NodalPublish(IPv4Address(0x0A000003), 1536.0, 72.5, 1.25),
            ONEWAY,
            0,
        ),
        (CallSetup(101, IPv4Address(0x0A000004), IPv4Address(0x0A000005)), REQUEST, 3),
        (Media(call_id=101, seq=5, payload=b"\x00\x01voice\xff" * 3), ONEWAY, 0),
        (Keepalive(call_id=101, seq=6), REQUEST, 4),
        (Bye(call_id=101, reason="done"), ONEWAY, 0),
    ]
    return [
        (encode_frame(m, flags, request_id), Frame(m, flags, request_id))
        for m, flags, request_id in messages
    ]


def _reencodes(frame: Frame) -> bool:
    """A returned frame must be complete: its message re-encodes cleanly."""
    return isinstance(encode_frame(frame.message, frame.flags, frame.request_id), bytes)


DECODE_ERRORS = (FrameError, CodecError)


class TestDecodeFrameFuzz:
    def test_every_truncation_raises(self):
        for raw, _ in _corpus():
            for cut in range(len(raw)):
                with pytest.raises(DECODE_ERRORS):
                    decode_frame(raw[:cut])

    def test_single_byte_mutations_never_crash(self):
        rng = random.Random(0xA5A9)
        for raw, _ in _corpus():
            for _ in range(120):
                position = rng.randrange(len(raw))
                delta = rng.randrange(1, 256)
                mutated = bytearray(raw)
                mutated[position] = (mutated[position] + delta) % 256
                try:
                    frame = decode_frame(bytes(mutated))
                except DECODE_ERRORS:
                    continue  # rejected: the contract's good outcome
                # A benign mutation (e.g. a float payload bit) may still
                # decode — but only ever to a complete message.
                assert _reencodes(frame)

    def test_random_garbage_never_crashes(self):
        rng = random.Random(0xBEEF)
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
            try:
                frame = decode_frame(blob)
            except DECODE_ERRORS:
                continue
            assert _reencodes(frame)


def _feed_in_chunks(decoder, stream, rng):
    """Feed a byte stream in random-sized chunks, collecting frames."""
    frames = []
    offset = 0
    while offset < len(stream):
        size = rng.randrange(1, 19)
        frames.extend(decoder.feed(stream[offset:offset + size]))
        offset += size
    return frames


class TestFrameDecoderFuzz:
    def test_concatenated_frames_reassemble_under_any_chunking(self):
        corpus = _corpus()
        rng = random.Random(0x5EED)
        for trial in range(25):
            picks = [corpus[rng.randrange(len(corpus))] for _ in range(6)]
            stream = b"".join(raw for raw, _ in picks)
            decoder = FrameDecoder()
            frames = _feed_in_chunks(decoder, stream, rng)
            assert frames == [frame for _, frame in picks]
            assert decoder.pending_bytes == 0

    def test_truncated_tail_stays_pending_not_an_error(self):
        raw, frame = _corpus()[0]
        decoder = FrameDecoder()
        assert decoder.feed(raw + raw[:-1]) == [frame]
        assert decoder.pending_bytes == len(raw) - 1
        assert decoder.feed(raw[-1:]) == [frame]
        assert decoder.pending_bytes == 0

    def test_mutated_streams_poison_and_never_emit_partials(self):
        corpus = _corpus()
        rng = random.Random(0xFADE)
        poisoned_seen = 0
        for trial in range(60):
            picks = [corpus[rng.randrange(len(corpus))] for _ in range(4)]
            stream = bytearray(b"".join(raw for raw, _ in picks))
            stream[rng.randrange(len(stream))] ^= 1 << rng.randrange(8)
            decoder = FrameDecoder()
            emitted = []
            corrupted = False
            try:
                offset = 0
                while offset < len(stream):
                    size = rng.randrange(1, 23)
                    emitted.extend(decoder.feed(bytes(stream[offset:offset + size])))
                    offset += size
            except DECODE_ERRORS:
                corrupted = True
            for frame in emitted:
                assert _reencodes(frame)
            if corrupted:
                poisoned_seen += 1
                # Poison holds: perfectly valid bytes are now refused.
                with pytest.raises(FrameError, match="poisoned"):
                    decoder.feed(corpus[0][0])
        # Enough mutations must actually trip corruption (many bit flips
        # land in float/string payload bytes and legitimately decode) —
        # otherwise the poison assertions above are vacuous.
        assert poisoned_seen >= 10

    def test_garbage_prefix_poisons_immediately(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(b"XX" + bytes(20))
        with pytest.raises(FrameError, match="poisoned"):
            decoder.feed(_corpus()[0][0])


def _traced_corpus():
    """Traced variants of representative frames (extension segment set)."""
    contexts = [
        ("d-0001.2a30", "d-000001"),
        ("s-00ff.0", None),
        ("x" * 120, "y" * 120),
    ]
    out = []
    for index, (raw, frame) in enumerate(_corpus()):
        trace = contexts[index % len(contexts)]
        out.append(
            encode_frame(frame.message, frame.flags, frame.request_id, trace=trace)
        )
    return out


class TestTraceExtensionFuzz:
    def test_every_truncation_of_traced_frames_raises(self):
        for raw in _traced_corpus():
            for cut in range(len(raw)):
                with pytest.raises(DECODE_ERRORS):
                    decode_frame(raw[:cut])

    def test_mutations_inside_the_extension_never_crash(self):
        rng = random.Random(0x7ACE)
        for raw in _traced_corpus():
            for _ in range(120):
                position = rng.randrange(len(raw))
                mutated = bytearray(raw)
                mutated[position] ^= 1 << rng.randrange(8)
                try:
                    frame = decode_frame(bytes(mutated))
                except DECODE_ERRORS:
                    continue
                assert _reencodes(frame)

    def test_traced_and_legacy_frames_interleave_in_one_stream(self):
        rng = random.Random(0x51EA)
        legacy = [raw for raw, _ in _corpus()]
        traced = _traced_corpus()
        stream = b"".join(
            x for pair in zip(legacy, traced) for x in pair
        )
        decoder = FrameDecoder()
        frames = _feed_in_chunks(decoder, stream, rng)
        assert len(frames) == len(legacy) + len(traced)
        # trace context alternates absent/present down the stream
        assert [frame.trace_id is not None for frame in frames] == [
            bool(i % 2) for i in range(len(frames))
        ]
