"""Tests for the tiered AS topology generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TopologyError
from repro.bgp.asgraph import Relationship
from repro.topology import TopologyConfig, generate_topology


SMALL = TopologyConfig(tier1_count=4, tier2_count=12, tier3_count=40, seed=1)


class TestConfigValidation:
    def test_rejects_tiny_core(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(tier1_count=1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(multihoming_probability=1.5)

    def test_rejects_bad_sibling_fraction(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(sibling_fraction=-0.1)

    def test_total_ases(self):
        assert SMALL.total_ases == 56


class TestGeneratedStructure:
    def test_deterministic_by_seed(self):
        a = generate_topology(SMALL)
        b = generate_topology(SMALL)
        assert a.graph.ases() == b.graph.ases()
        assert a.graph.edge_count() == b.graph.edge_count()
        assert a.geography.coords == b.geography.coords

    def test_different_seeds_differ(self):
        a = generate_topology(SMALL)
        b = generate_topology(TopologyConfig(
            tier1_count=4, tier2_count=12, tier3_count=40, seed=2))
        assert a.geography.coords != b.geography.coords

    def test_tier1_full_peer_mesh(self):
        topo = generate_topology(SMALL)
        tier1 = [a for a, t in topo.tier_of.items() if t == 1]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert topo.graph.relationship(a, b) is Relationship.PEER_PEER

    def test_every_non_tier1_has_provider(self):
        topo = generate_topology(SMALL)
        for asn, tier in topo.tier_of.items():
            if tier != 1:
                assert topo.graph.providers(asn) or topo.graph.siblings(asn)

    def test_tier1_has_no_providers(self):
        topo = generate_topology(SMALL)
        for asn, tier in topo.tier_of.items():
            if tier == 1:
                assert not topo.graph.providers(asn)

    def test_stub_and_transit_partition(self):
        topo = generate_topology(SMALL)
        stubs = set(topo.stub_ases())
        transit = set(topo.transit_ases())
        assert stubs.isdisjoint(transit)
        assert stubs | transit == set(topo.tier_of)

    def test_multihomed_stubs_exist(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=12, tier3_count=80,
                           multihoming_probability=0.8, seed=3)
        )
        multihomed_stubs = [a for a in topo.graph.multihomed_ases()
                            if topo.tier_of[a] == 3]
        assert len(multihomed_stubs) > 10

    def test_all_ases_have_coordinates(self):
        topo = generate_topology(SMALL)
        for asn in topo.graph.ases():
            assert asn in topo.geography

    def test_validate_passes(self):
        generate_topology(SMALL).validate()  # must not raise

    def test_sibling_fraction_produces_siblings(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=20, tier3_count=80,
                           sibling_fraction=0.1, seed=4)
        )
        sibling_edges = sum(len(topo.graph.siblings(a)) for a in topo.graph.ases())
        assert sibling_edges > 0

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_heavy_tail_degree_distribution(self, seed):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=20, tier3_count=100, seed=seed)
        )
        degrees = sorted((topo.graph.degree(a) for a in topo.graph.ases()), reverse=True)
        # Preferential attachment: the top AS should dominate the median.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=6, deadline=None)
    def test_geography_regional_cones(self, seed):
        # A stub should be closer to its primary-ish providers than a
        # random AS is on average (regional transit purchasing).
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=20, tier3_count=60, seed=seed)
        )
        geo = topo.geography
        stubs = topo.stub_ases()[:20]
        provider_dists, random_dists = [], []
        all_ases = topo.graph.ases()
        for i, stub in enumerate(stubs):
            for p in topo.graph.providers(stub):
                provider_dists.append(geo.distance_km(stub, p))
            random_dists.append(geo.distance_km(stub, all_ases[(i * 7) % len(all_ases)]))
        assert sum(provider_dists) / len(provider_dists) < sum(random_dists) / len(random_dists) * 1.2
