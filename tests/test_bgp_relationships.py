"""Tests for Gao-style AS relationship inference."""

import pytest

from repro.bgp import RoutingTable, infer_relationships
from repro.bgp.asgraph import Relationship
from repro.bgp.relationships import (
    InferenceConfig,
    collect_paths,
    inference_accuracy,
    path_degrees,
)
from repro.bgp.routing import PolicyRouter
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp.rib import RIBEntry
from repro.topology import TopologyConfig, allocate_prefixes, generate_rib_entries, generate_topology


def entry(path, prefix="192.0.2.0/24"):
    return RIBEntry(
        timestamp=1,
        peer=IPv4Address.from_string("10.0.0.1"),
        prefix=IPv4Prefix.from_string(prefix),
        as_path=tuple(path),
    )


class TestPathHelpers:
    def test_collect_paths_dedup_and_collapse(self):
        entries = [entry((1, 2, 2, 3)), entry((1, 2, 3)), entry((4, 5))]
        paths = collect_paths(entries)
        assert (1, 2, 3) in paths
        assert (4, 5) in paths
        assert len(paths) == 2

    def test_path_degrees(self):
        degrees = path_degrees([(1, 2, 3), (2, 4)])
        assert degrees == {1: 1, 2: 3, 3: 1, 4: 1}


class TestInferenceOnHandBuiltPaths:
    def test_uphill_downhill_classification(self):
        # 2 is the top provider (highest degree): 1 climbs to 2, 2
        # descends to 3.
        entries = [
            entry((1, 2, 3)),
            entry((1, 2, 4), prefix="198.51.100.0/24"),
            entry((5, 2, 3), prefix="203.0.113.0/24"),
        ]
        graph = infer_relationships(entries)
        assert graph.is_provider_of(2, 1)
        assert graph.is_provider_of(2, 3)
        assert graph.is_provider_of(2, 4)
        assert graph.is_provider_of(2, 5)

    def test_sibling_from_mutual_transit(self):
        # a and b transit for each other equally often → siblings.
        entries = [
            entry((1, 10, 20, 2)),
            entry((2, 20, 10, 1), prefix="198.51.100.0/24"),
            # pad degrees so 10 and 20 tie as top providers
            entry((10, 3), prefix="203.0.113.0/24"),
            entry((20, 4), prefix="203.0.114.0/24"),
            entry((10, 5), prefix="203.0.115.0/24"),
            entry((20, 6), prefix="203.0.116.0/24"),
        ]
        graph = infer_relationships(entries)
        assert graph.relationship(10, 20) is Relationship.SIBLING_SIBLING

    def test_peer_when_no_transit_evidence(self):
        # Single path 1-2: 2 is top provider by degree tie-break → the
        # edge gets a transit vote, so craft a two-node-tops case: path
        # (1, 2) where degrees are equal gives provider vote; instead
        # test the unvoted case via the top edge of two tops.
        entries = [
            entry((3, 1, 2, 4)),
            # raise both 1 and 2 to equal high degree
            entry((1, 5), prefix="198.51.100.0/24"),
            entry((2, 6), prefix="203.0.113.0/24"),
        ]
        graph = infer_relationships(entries)
        # 1-2 sits between the uphill and downhill segments; whichever
        # side is "top" the other adjacent edges are classified; the
        # 1-2 edge must exist with *some* annotation.
        assert graph.relationship(1, 2) is not None


class TestInferenceOnGeneratedWorld:
    @pytest.fixture(scope="class")
    def inferred(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=15, tier3_count=60, seed=7)
        )
        allocation = allocate_prefixes(topo, seed=7)
        entries = generate_rib_entries(topo, allocation, vantage_count=8, seed=7)
        return topo, infer_relationships(entries)

    def test_most_edges_recovered(self, inferred):
        topo, graph = inferred
        # Paths only cover edges actually used by routing, so compare on
        # the edges present in the inferred graph.
        assert graph.edge_count() > 0.5 * topo.graph.edge_count()

    def test_direction_accuracy(self, inferred):
        topo, graph = inferred
        total, correct = 0, 0
        for a in graph.ases():
            for b in graph.neighbors(a):
                if a >= b or topo.graph.relationship(a, b) is None:
                    continue
                total += 1
                if (
                    topo.graph.relationship(a, b) == graph.relationship(a, b)
                    and topo.graph.is_provider_of(a, b) == graph.is_provider_of(a, b)
                ):
                    correct += 1
        assert total > 0
        assert correct / total > 0.75, f"accuracy {correct}/{total}"

    def test_inference_accuracy_helper(self, inferred):
        topo, graph = inferred
        score = inference_accuracy(topo.graph, graph)
        assert 0.0 <= score <= 1.0
        # Missing edges count against; still expect a majority match.
        assert score > 0.4

    def test_inferred_graph_supports_routing(self, inferred):
        _, graph = inferred
        router = PolicyRouter(graph)
        ases = graph.ases()
        reachable = sum(
            1 for a in ases[:10] for b in ases[-10:] if a != b and router.route(a, b)
        )
        assert reachable > 50  # most pairs routable on the inferred graph
