"""Tests for the unified experiment engine and its streaming substrate.

The acceptance contract of the engine is *bit-identical results* across
substrates: a streamed run (columns assembled on demand, spilled to a
chunked store, dense N×N never materialized) must reproduce the legacy
dense run record for record.  These tests pin that contract at the tiny
tier, plus the satellite surfaces that ship with the engine: scale
presets (and their deprecation shims), the one canonical
``RelayPolicy.evaluate_sessions`` signature, the resumable column
store, and the BENCH_e2e.json schema.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.baselines import BaselineConfig
from repro.baselines.base import RelayPolicy
from repro.errors import ConfigurationError
from repro.evaluation import generate_workload
from repro.evaluation.engine import (
    E2E_BENCH_SCHEMA_VERSION,
    STREAM_SCALES,
    ExperimentConfig,
    main as engine_main,
    run_experiment,
    validate_e2e_document,
)
from repro.evaluation.policies import METHOD_NAMES, default_policies
from repro.scenario import (
    SCALES,
    ScenarioConfig,
    config_for_scale,
    evaluation_config,
    small_config,
    tiny_config,
    tiny_scenario,
)
from repro.storage.cache import scenario_cache_key
from repro.storage.columns import ColumnStore
from repro.worldarrays.virtual import VirtualMatrices

EXPERIMENT_KWARGS = dict(
    scale="tiny", seed=3, session_count=400, latent_target=10, max_latent_sessions=10
)


# -- config and presets --------------------------------------------------------


class TestExperimentConfig:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale="galactic")

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(methods=("OPT", "TELEPATHY"))

    def test_rejects_empty_workload(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(session_count=0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(chunk_columns=0)

    def test_substrate_follows_tier(self):
        for scale in SCALES:
            assert ExperimentConfig(scale=scale).streamed == (scale in STREAM_SCALES)

    def test_substrate_override_wins(self):
        assert ExperimentConfig(scale="tiny", stream=True).streamed
        assert not ExperimentConfig(scale="100k", stream=False).streamed


class TestScalePresets:
    def test_tier_table_is_complete(self):
        assert SCALES == ("tiny", "small", "10k", "evaluation", "100k", "1m")
        for scale in SCALES:
            config = ScenarioConfig.preset(scale, seed=5)
            assert config.topology.seed == 5

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            ScenarioConfig.preset("galactic")

    def test_population_grows_with_tier(self):
        hosts = [ScenarioConfig.preset(s).population.host_count for s in SCALES]
        assert hosts == sorted(hosts)
        assert hosts[-1] == 1_000_000

    @pytest.mark.parametrize(
        "helper, scale",
        [
            (tiny_config, "tiny"),
            (small_config, "small"),
            (evaluation_config, "evaluation"),
        ],
    )
    def test_deprecated_helpers_match_preset(self, helper, scale):
        with pytest.warns(DeprecationWarning, match="preset"):
            old = helper(seed=9)
        assert old == ScenarioConfig.preset(scale, seed=9)

    def test_config_for_scale_shim(self):
        with pytest.warns(DeprecationWarning, match="preset"):
            old = config_for_scale("small", seed=2)
        assert old == ScenarioConfig.preset("small", seed=2)

    def test_cache_keys_stable_across_shim_and_preset(self):
        # The preset migration must not invalidate existing artifact
        # caches: identical config => identical content-addressed key.
        with pytest.warns(DeprecationWarning):
            old = tiny_config(seed=4)
        assert scenario_cache_key(old) == scenario_cache_key(
            ScenarioConfig.preset("tiny", seed=4)
        )


# -- streaming parity (the engine's core contract) -----------------------------


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    spill = tmp_path_factory.mktemp("spill")
    dense = run_experiment(stream=False, **EXPERIMENT_KWARGS)
    streamed = run_experiment(stream=True, spill_dir=spill, **EXPERIMENT_KWARGS)
    return dense, streamed, spill


class TestStreamingParity:
    def test_same_latent_sessions(self, reports):
        dense, streamed, _ = reports
        assert dense.result.latent_sessions == streamed.result.latent_sessions

    def test_records_bit_identical(self, reports):
        dense, streamed, _ = reports
        assert set(dense.result.records) == set(streamed.result.records)
        for method, records in dense.result.records.items():
            assert records == streamed.result.records[method], method

    def test_summaries_identical(self, reports):
        dense, streamed, _ = reports
        assert dense.result.summaries() == streamed.result.summaries()

    def test_same_derived_k(self, reports):
        dense, streamed, _ = reports
        assert dense.derived_k_hops == streamed.derived_k_hops

    def test_spill_accounting(self, reports):
        dense, streamed, spill = reports
        assert dense.spill is None
        assert streamed.spill is not None
        assert streamed.spill["ephemeral"] is False
        assert streamed.spill["chunks"] == streamed.spill["chunk_total"]
        assert streamed.spill["bytes"] > 0
        assert list(spill.glob("*.npy"))

    def test_stage_timings_cover_pipeline(self, reports):
        for report in reports[:2]:
            assert set(report.stage_seconds) == {
                "build",
                "sweep",
                "workload",
                "evaluate",
                "reduce",
            }
            assert all(v >= 0.0 for v in report.stage_seconds.values())

    def test_per_policy_timings_present(self, reports):
        dense, streamed, _ = reports
        for report in (dense, streamed):
            assert set(report.policy_seconds) == set(METHOD_NAMES)

    def test_resume_reuses_spilled_chunks(self, reports):
        _, first, spill = reports
        chunks = sorted(spill.glob("*.npy"))
        assert chunks
        stamps = {p.name: p.stat().st_mtime_ns for p in chunks}
        again = run_experiment(stream=True, spill_dir=spill, **EXPERIMENT_KWARGS)
        assert again.result.records == first.result.records
        # Every chunk adopted, none rewritten.
        assert {p.name: p.stat().st_mtime_ns for p in sorted(spill.glob("*.npy"))} == stamps


# -- the column store ----------------------------------------------------------


class TestColumnStore:
    def _store(self, tmp_path, n=10, chunk=4, key="k1"):
        return ColumnStore(tmp_path, key=key, n=n, chunk=chunk)

    def test_geometry(self, tmp_path):
        store = self._store(tmp_path)
        assert store.starts() == [0, 4, 8]
        assert list(store.columns_of(8)) == [8, 9]

    def test_round_trip_bit_exact(self, tmp_path):
        store = self._store(tmp_path)
        rng = np.random.default_rng(0)
        rtt = rng.uniform(1.0, 500.0, (10, 4))
        rtt[0, 0] = np.inf
        loss = rng.uniform(0.0, 1.0, (10, 4))
        hops = rng.integers(-1, 9, (10, 4)).astype(np.int64)
        store.save(0, rtt, loss, hops)
        got_rtt, got_loss, got_hops = store.load(0)
        assert np.array_equal(got_rtt, rtt)
        assert np.array_equal(got_loss, loss)
        assert np.array_equal(got_hops, hops)

    def test_rejects_misshapen_chunk(self, tmp_path):
        store = self._store(tmp_path)
        block = np.zeros((10, 3))
        with pytest.raises(ValueError):
            store.save(0, block, block, block.astype(np.int64))

    def test_progress_counters(self, tmp_path):
        store = self._store(tmp_path)
        assert store.chunk_count() == (0, 3)
        assert not store.complete()
        wide = np.zeros((10, 4))
        narrow = np.zeros((10, 2))
        store.save(0, wide, wide, wide.astype(np.int64))
        store.save(8, narrow, narrow, narrow.astype(np.int64))
        assert store.chunk_count() == (2, 3)
        store.save(4, wide, wide, wide.astype(np.int64))
        assert store.complete()

    def test_foreign_store_is_cleared(self, tmp_path):
        store = self._store(tmp_path)
        block = np.zeros((10, 4))
        store.save(0, block, block, block.astype(np.int64))
        # Same directory, different identity: chunks must not survive.
        other = self._store(tmp_path, key="k2")
        assert other.chunk_count() == (0, 3)
        assert not list(tmp_path.glob("*_00000000.npy"))

    def test_matching_store_is_adopted(self, tmp_path):
        store = self._store(tmp_path)
        block = np.ones((10, 4))
        store.save(0, block, block, block.astype(np.int64))
        adopted = self._store(tmp_path)
        assert adopted.has(0)
        assert np.array_equal(adopted.load(0)[0], block)


class TestVirtualSpillRoundTrip:
    def test_spilled_blocks_match_computed(self, tmp_path):
        scenario = tiny_scenario(seed=6)
        clusters = scenario.clusters.all_clusters()
        fresh = VirtualMatrices(scenario.latency, clusters, chunk_columns=16)
        store = ColumnStore(tmp_path, key="parity", n=len(clusters), chunk=16)
        spilled = VirtualMatrices(
            scenario.latency, clusters, chunk_columns=16, store=store
        )
        spilled.ensure_spilled()
        assert store.complete()
        # Reads served from the mmap'd store are bit-identical to the
        # formula path (np.save/np.load round-trips exactly).
        for (cols_a, rtt_a, loss_a, hops_a), (cols_b, rtt_b, loss_b, hops_b) in zip(
            fresh.iter_column_blocks(), spilled.iter_column_blocks()
        ):
            assert np.array_equal(cols_a, cols_b)
            assert np.array_equal(rtt_a, rtt_b)
            assert np.array_equal(loss_a, loss_b)
            assert np.array_equal(hops_a, hops_b)


# -- one canonical policy signature --------------------------------------------


class TestRelayPolicyConformance:
    @pytest.fixture(scope="class")
    def scenario(self):
        return tiny_scenario(seed=6)

    @pytest.fixture(scope="class")
    def policies(self, scenario):
        return default_policies(scenario, baseline_config=BaselineConfig(seed=0))

    def test_full_roster_satisfies_protocol(self, policies):
        assert [p.name for p in policies] == list(METHOD_NAMES)
        for policy in policies:
            assert isinstance(policy, RelayPolicy)

    def test_session_objects_and_tuples_agree(self, scenario, policies):
        workload = generate_workload(scenario, 300, seed=1, latent_target=5)
        latent = workload.latent()[:5]
        assert latent
        world = scenario.matrix_view()
        pairs = [(s.caller_cluster, s.callee_cluster) for s in latent]
        ids = [s.session_id for s in latent]
        for policy in policies:
            from_sessions = policy.evaluate_sessions(world, latent)
            from_tuples = policy.evaluate_sessions(world, pairs, session_ids=ids)
            assert from_sessions == from_tuples, policy.name

    def test_columns_keyword_accepted(self, scenario, policies):
        world = scenario.matrix_view()
        for policy in policies:
            out = policy.evaluate_sessions(world, [(0, 1)], columns=None)
            assert len(out) == 1

    def test_mismatched_ids_rejected(self, scenario, policies):
        world = scenario.matrix_view()
        with pytest.raises(ConfigurationError):
            policies[0].evaluate_sessions(world, [(0, 1)], session_ids=[1, 2])


# -- BENCH_e2e.json schema -----------------------------------------------------


class TestBenchDocument:
    def test_report_document_validates(self, reports):
        for report in reports[:2]:
            document = report.bench_document()
            assert validate_e2e_document(document) == []
            assert document["schema"] == E2E_BENCH_SCHEMA_VERSION

    def test_document_is_json_clean(self, reports):
        dense, _, _ = reports
        encoded = json.dumps(dense.bench_document(), sort_keys=True)
        assert "Infinity" not in encoded and "NaN" not in encoded

    def test_write_and_cli_check(self, reports, tmp_path):
        _, streamed, _ = reports
        path = streamed.write_bench(tmp_path / "BENCH_e2e.json")
        assert engine_main([str(path), "--check"]) == 0

    def test_rejects_broken_documents(self, reports, capsys):
        dense, _, _ = reports
        good = dense.bench_document()

        wrong_schema = dict(good, schema=99)
        assert any("schema" in p for p in validate_e2e_document(wrong_schema))

        no_stage = dict(good, stage_seconds={"build": 1.0})
        assert any("sweep" in p for p in validate_e2e_document(no_stage))

        no_methods = dict(good, methods={})
        assert any("methods" in p for p in validate_e2e_document(no_methods))

        grid = dict(good["mos_cdf"])
        grid["OPT"] = grid["OPT"][:-1]
        bad_grid = dict(good, mos_cdf=grid)
        assert any("OPT" in p for p in validate_e2e_document(bad_grid))

        streamed_no_spill = dict(good, streamed=True, spill=None)
        assert any("spill" in p for p in validate_e2e_document(streamed_no_spill))

    def test_cli_check_fails_on_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 0}), encoding="utf-8")
        assert engine_main([str(bad), "--check"]) == 1
        assert engine_main([str(bad)]) == 0  # report-only mode
