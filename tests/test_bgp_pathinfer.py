"""Tests for shortest-valley-free AS path inference."""

import pytest

from repro.bgp import ASGraph, PolicyRouter
from repro.bgp.pathinfer import evaluate_inference, infer_as_path
from repro.errors import TopologyError
from repro.topology import TopologyConfig, generate_topology


def diamond():
    g = ASGraph()
    g.add_peer(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    return g


class TestInferAsPath:
    def test_trivial_and_direct(self):
        g = diamond()
        assert infer_as_path(g, 5, 5) == (5,)
        assert infer_as_path(g, 5, 3) == (5, 3)

    def test_valley_free_shortest(self):
        g = diamond()
        # 3 → 4: shortest valley-free is 3-1-2-4 (the valley 3-5-4 is
        # forbidden).
        assert infer_as_path(g, 3, 4) == (3, 1, 2, 4)

    def test_path_is_valley_free(self):
        g = diamond()
        for src in g.ases():
            for dst in g.ases():
                path = infer_as_path(g, src, dst)
                if path is not None:
                    assert g.is_valley_free(path)

    def test_unreachable(self):
        g = diamond()
        g.add_as(42)
        assert infer_as_path(g, 5, 42) is None

    def test_unknown_as_raises(self):
        with pytest.raises(TopologyError):
            infer_as_path(diamond(), 99, 1)

    def test_max_hops_cutoff(self):
        g = diamond()
        assert infer_as_path(g, 3, 4, max_hops=2) is None

    def test_deterministic_tie_break(self):
        # Two equal-length uphill routes: prefer the lower ASN chain.
        g = ASGraph()
        g.add_provider_customer(10, 1)
        g.add_provider_customer(20, 1)
        g.add_provider_customer(10, 2)
        g.add_provider_customer(20, 2)
        assert infer_as_path(g, 1, 2) == (1, 10, 2)


class TestEvaluateInference:
    @pytest.fixture(scope="class")
    def world(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=15, tier3_count=60, seed=3)
        )
        return topo.graph, PolicyRouter(topo.graph), topo

    def test_report_consistency(self, world):
        graph, router, topo = world
        stubs = topo.stub_ases()
        pairs = [(a, b) for a in stubs[:10] for b in stubs[-10:] if a != b]
        report = evaluate_inference(graph, router, pairs)
        assert report.pairs == len(pairs)
        accounted = (
            report.unreachable_agreement
            + report.exact_matches
            + report.length_matches
            + report.inferred_shorter
            + report.inferred_longer
        )
        assert accounted <= report.pairs

    def test_inference_never_longer_than_policy(self, world):
        # Policy routes are valley-free, so the shortest valley-free
        # path can never exceed them in hops.
        graph, router, topo = world
        stubs = topo.stub_ases()
        pairs = [(a, b) for a in stubs[:8] for b in stubs[-8:] if a != b]
        report = evaluate_inference(graph, router, pairs)
        assert report.inferred_longer == 0

    def test_reasonable_accuracy(self, world):
        # Mao et al.'s observation transplanted: hop counts mostly match.
        graph, router, topo = world
        stubs = topo.stub_ases()
        pairs = [(a, b) for a in stubs[:12] for b in stubs[-12:] if a != b]
        report = evaluate_inference(graph, router, pairs)
        assert report.length_rate > 0.5

    def test_detour_rate_positive(self, world):
        # Policy preference creates detours somewhere — the overlay gap.
        graph, router, topo = world
        stubs = topo.stub_ases()
        pairs = [(a, b) for a in stubs for b in stubs[::3] if a != b][:300]
        report = evaluate_inference(graph, router, pairs)
        assert report.detour_rate >= 0.0  # present, typically > 0
