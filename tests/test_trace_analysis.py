"""Tests for the trace analyzer (``repro.obs.trace_analysis``).

The analyzer's contract is that everything — timelines, the setup
critical path, the L1-L4 limits report — derives purely from the
records of a ``traces.jsonl`` file.  These tests therefore always go
through the file on disk (write during a traced run, read back with
:func:`load_trace_file`) rather than peeking at live runtime state, and
check the runtime's ground truth only to *cross-validate* the trace.

Covers the PR's acceptance criteria:

- every media failover of a (chaos) run appears in its call's
  reconstructed timeline;
- the four Skype-limit metrics are reproduced from the trace alone;
- same-seed traced runs produce byte-identical trace files, and traces
  validate against the schema.
"""

import pytest

from repro import obs
from repro.core.config import ASAPConfig, derive_k_hops
from repro.core.runtime import ASAPRuntime
from repro.evaluation.chaos import run_chaos
from repro.evaluation.sessions import generate_workload
from repro.faults import FaultScheduleConfig
from repro.obs import trace_analysis as ta
from repro.obs.trace import Tracer, load_trace_file
from repro.scenario import tiny_scenario
from repro.skype.session import run_skype_session


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


@pytest.fixture(autouse=True)
def no_leaked_run():
    if obs.enabled():
        obs.finish_run()
    yield
    if obs.enabled():
        obs.finish_run()


def _latent_pair(scenario):
    workload = generate_workload(scenario, 4, seed=0, latent_target=1)
    latent = workload.latent()
    if not latent:
        pytest.skip("no latent pair on this scenario")
    return latent[0].caller, latent[0].callee


def _traced_relay_kill(scenario, out_dir):
    """One relayed call whose relay is killed mid-media, traced to disk.

    Returns (records, media ground truth) — the runtime object itself is
    discarded to keep the analysis honest.
    """
    with obs.observe(obs_dir=out_dir, command="test", trace=True):
        runtime = ASAPRuntime(
            scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        )
        caller, callee = _latent_pair(scenario)
        record = runtime.schedule_call(caller, callee, media_duration_ms=15_000.0)
        runtime.run(until_ms=5_000.0)
        if record.outcome != "completed" or record.relay_ip is None:
            pytest.skip("setup did not select a relay on this scenario")
        runtime.schedule_leave(record.relay_ip, at_ms=runtime.sim.now_ms + 100.0)
        runtime.run()
        media = runtime.media_sessions[0]
        truth = {
            "failovers": len(media.failovers),
            "relay": str(record.relay_ip),
            "setup_ms": record.setup_ms,
        }
    return load_trace_file(out_dir / obs.TRACES_FILENAME), truth


class TestReconstruction:
    def test_trees_reparent_out_of_order_spans(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0, caller="a", callee="b")
        child = root.child("setup.ping", 0.0)
        grandchild = child.child("net.request", 0.0)
        grandchild.end(1.0)
        child.end(1.5)
        root.point("setup.done", 1.5, outcome="completed")
        root.end(2.0, outcome="finished")
        trees = ta.build_trees(tracer.records)
        assert len(trees) == 1
        tree = next(iter(trees.values()))
        assert tree.root is not None and tree.root.name == "call"
        assert [c.name for c in tree.root.children] == ["setup.ping", "setup.done"]
        ping = tree.root.children[0]
        assert [c.name for c in ping.children] == ["net.request"]
        assert not tree.orphans

    def test_unfinished_parent_leaves_orphans(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        child = root.child("setup.ping", 0.0)
        child.end(1.0)
        # root never ends — the run stopped mid-call.
        trees = ta.build_trees(tracer.records)
        tree = next(iter(trees.values()))
        assert tree.root is None
        assert [n.name for n in tree.orphans] == ["setup.ping"]
        assert ta.render_timeline(tree)[0].startswith("trace")

    def test_find_and_first(self):
        tracer = Tracer()
        root = tracer.begin("call", 0.0)
        for leg in ("own", "peer"):
            root.child("setup.close_set", 1.0, leg=leg).end(2.0)
        root.end(3.0)
        tree = next(iter(ta.build_trees(tracer.records).values()))
        assert len(tree.root.find("setup.close_set")) == 2
        assert tree.root.first("setup.close_set").attrs["leg"] == "own"
        assert tree.root.first("missing") is None


class TestFailoverTimelines:
    def test_every_failover_appears_in_its_call_timeline(self, scenario, tmp_path):
        records, truth = _traced_relay_kill(scenario, tmp_path)
        trees = ta.build_trees(records)
        call_trees = [
            t for t in trees.values() if t.root is not None and t.root.name == "call"
        ]
        assert len(call_trees) == 1
        root = call_trees[0].root
        # Every runtime failover event has a matching trace point inside
        # this call's tree (failover, or degrade/drop when no candidate).
        traced = (
            root.find("media.failover")
            + root.find("media.degraded")
            + root.find("media.dropped")
        )
        assert len(traced) == truth["failovers"] >= 1
        assert root.find("media.relay_lost")
        failover = traced[0]
        assert failover.attrs["old_relay"] == truth["relay"]
        text = "\n".join(ta.render_timeline(call_trees[0]))
        assert failover.name in text
        assert truth["relay"] in text

    def test_chaos_failovers_all_traced(self, scenario, tmp_path):
        fault_config = FaultScheduleConfig(
            seed=5,
            duration_ms=20_000.0,
            surrogate_crash_rate_per_min=20.0,
            host_churn_rate_per_min=120.0,
        )
        with obs.observe(obs_dir=tmp_path, command="test", trace=True):
            result = run_chaos(
                scenario,
                fault_config,
                sessions=6,
                joins=6,
                media_duration_ms=8_000.0,
                seed=3,
                latent_target=6,
            )
        trees = ta.build_trees(load_trace_file(tmp_path / obs.TRACES_FILENAME))
        interruptions = sum(
            len(t.root.find("media.failover"))
            + len(t.root.find("media.degraded"))
            + len(t.root.find("media.dropped"))
            for t in trees.values()
            if t.root is not None and t.root.name == "call"
        )
        assert interruptions == len(result.interruption_times_ms)
        # Fault spans exist and disruption links point at real traces.
        links = ta.fault_links(trees)
        assert all(trace_id in trees for trace_id in links)


class TestCallAnalysis:
    def test_call_summary_fields(self, scenario, tmp_path):
        records, truth = _traced_relay_kill(scenario, tmp_path)
        calls = ta.analyze_calls(ta.build_trees(records))
        assert len(calls) == 1
        call = calls[0]
        assert call.relay == truth["relay"]
        assert call.path == "relay"
        assert call.setup_ms == pytest.approx(truth["setup_ms"], abs=0.01)
        assert call.chosen_rtt_ms is not None
        assert call.best_candidate_rtt_ms is not None
        assert call.relay_gap_ms is not None and call.relay_gap_ms >= 0.0
        # Critical path: ping always present; phase times non-negative.
        assert "ping" in call.phases
        assert all(v >= 0.0 for v in call.phases.values())
        # Lazy close-set builds under the call carry per-AS attribution.
        if call.probe_messages:
            assert call.probes_by_as
            assert sum(call.probes_by_as.values()) == call.probe_messages

    def test_limits_report_from_trace_alone(self, scenario, tmp_path):
        caller, callee = _latent_pair(scenario)
        with obs.observe(obs_dir=tmp_path, command="test", trace=True):
            runtime = ASAPRuntime(
                scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
            )
            runtime.schedule_call(caller, callee, media_duration_ms=4_000.0)
            runtime.run()
            for session_id in range(2):
                run_skype_session(
                    scenario, caller, callee,
                    duration_ms=60_000.0, session_id=session_id,
                )
        records = load_trace_file(tmp_path / obs.TRACES_FILENAME)
        trees = ta.build_trees(records)
        calls = ta.analyze_calls(trees)
        skypes = ta.analyze_skype_calls(trees)
        assert len(calls) == 1 and len(skypes) == 2

        report = ta.limits_report(calls, skypes)
        assert report.n_calls == 1 and report.n_skype == 2
        # L4: Skype probe messages equal 2x the probes its traces record.
        total_probes = sum(s.probes for s in skypes)
        assert total_probes > 0
        assert report.l4_skype_probe_messages == 2 * total_probes
        assert report.l4_asap_probe_messages == sum(
            c.probe_messages for c in calls
        )
        # L2: duplicates never exceed total probes.
        assert 0 <= report.l2_skype_dup_probes <= total_probes
        # L3: both stabilization numbers came from the traces.
        assert report.l3_skype_stabilize_ms is not None
        assert report.l3_asap_setup_ms == pytest.approx(calls[0].setup_ms)
        # Rendering: one row per limit, all formatted.
        rows = report.rows()
        assert len(rows) == 6
        assert all(isinstance(k, str) and isinstance(v, str) for k, v in rows)

    def test_skype_direction_summaries(self, scenario, tmp_path):
        caller, callee = _latent_pair(scenario)
        with obs.observe(obs_dir=tmp_path, command="test", trace=True):
            run_skype_session(scenario, caller, callee, duration_ms=60_000.0)
        trees = ta.build_trees(load_trace_file(tmp_path / obs.TRACES_FILENAME))
        (skype,) = ta.analyze_skype_calls(trees)
        assert len(skype.directions) == 2
        assert {d.direction for d in skype.directions} == {"fwd", "bwd"}
        for direction in skype.directions:
            assert direction.probes == sum(direction.probes_by_as.values())
            assert direction.bounces >= 0
            if direction.final_rtt_ms is not None:
                assert direction.best_path_rtt_ms is not None
                assert direction.relay_gap_ms >= 0.0


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self, scenario, tmp_path):
        def one_run(out_dir):
            with obs.observe(obs_dir=out_dir, command="test", trace=True):
                runtime = ASAPRuntime(
                    scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
                )
                caller, callee = _latent_pair(scenario)
                runtime.schedule_call(caller, callee, media_duration_ms=3_000.0)
                runtime.run()
                run_skype_session(scenario, caller, callee, duration_ms=30_000.0)
            return (out_dir / obs.TRACES_FILENAME).read_bytes()

        first = one_run(tmp_path / "a")
        second = one_run(tmp_path / "b")
        assert first == second
        assert load_trace_file(tmp_path / "a" / obs.TRACES_FILENAME)
