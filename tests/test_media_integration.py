"""Integration tests for the media plane riding the rest of the stack:
the event-driven runtime, the N-way conference evaluation, and the
service-layer demo shipping real ``MediaFrame`` messages."""

import numpy as np
import pytest

from repro import obs
from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.core.runtime import ASAPRuntime
from repro.evaluation.conference import run_conference
from repro.media.score import MEASURED_MOS_TOLERANCE, score_trace
from repro.media.session import MediaPlaneConfig
from repro.scenario import tiny_scenario
from repro.service import ServiceWorld, run_demo
from repro.voip.codecs import ILBC


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


def latent_host_pair(scenario):
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    for a, b in np.argwhere(m.rtt_ms > 300):
        ca, cb = clusters[int(a)], clusters[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no latent pair")


def _media_runtime(scenario, seed=7):
    return ASAPRuntime(
        scenario,
        ASAPConfig(k_hops=derive_k_hops(scenario.matrices)),
        media_plane=MediaPlaneConfig(burst_frames=4.0),
        media_seed=seed,
    )


class TestRuntimeMediaPlane:
    def test_default_runtime_has_no_media_state(self, scenario):
        """``media_plane=None`` (the default) must leave zero media-plane
        footprint — the bit-identical-to-seed contract."""
        runtime = ASAPRuntime(
            scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        )
        caller, callee = latent_host_pair(scenario)
        runtime.schedule_call(caller, callee, media_duration_ms=5_000.0)
        runtime.run()
        assert runtime.media_sessions
        media = runtime.media_sessions[0]
        assert media.measured is None
        assert media.path_windows == []
        assert media.codec_switches == 0

    def test_measured_mos_scored_at_session_end(self, scenario):
        runtime = _media_runtime(scenario)
        caller, callee = latent_host_pair(scenario)
        runtime.schedule_call(caller, callee, media_duration_ms=8_000.0)
        runtime.run()
        media = runtime.media_sessions[0]
        assert media.measured is not None
        assert 1.0 <= media.measured.score.mos <= 4.5
        # The path was sampled at least once, session-relative.
        assert media.path_windows
        assert media.path_windows[0].start_ms == 0.0
        assert media.path_windows[0].rtt_ms > 0.0
        # Frames cover the media duration at the codec's pacing.
        assert len(media.measured.trace.frames) == pytest.approx(
            8_000.0 / 20.0, abs=1
        )

    def test_same_seed_runs_identical(self, scenario):
        caller, callee = latent_host_pair(scenario)
        scores = []
        for _ in range(2):
            runtime = _media_runtime(scenario, seed=3)
            runtime.schedule_call(caller, callee, media_duration_ms=8_000.0)
            runtime.run()
            media = runtime.media_sessions[0]
            scores.append(
                (media.measured.trace.to_jsonl(), media.measured.score.to_dict())
            )
        assert scores[0] == scores[1]

    def test_media_seed_changes_trace(self, scenario):
        caller, callee = latent_host_pair(scenario)
        traces = []
        for seed in (1, 2):
            runtime = _media_runtime(scenario, seed=seed)
            runtime.schedule_call(caller, callee, media_duration_ms=8_000.0)
            runtime.run()
            traces.append(runtime.media_sessions[0].measured.trace.to_jsonl())
        assert traces[0] != traces[1]


class TestConference:
    def test_three_way_reports_every_leg(self, scenario):
        result = run_conference(scenario, participants=3, duration_ms=20_000.0)
        assert len(result.participants) == 3
        assert len(result.legs) == 3  # all pairs
        for leg in result.legs:
            assert 1.0 <= leg.measured_mos <= 4.5
            assert 1.0 <= leg.closed_form_mos <= 4.5
        assert result.min_leg_mos == min(l.measured_mos for l in result.legs)

    def test_burst_triggers_codec_switch_on_some_leg(self, scenario):
        result = run_conference(scenario, participants=3, duration_ms=20_000.0)
        assert result.total_switches > 0

    def test_burst_degrades_min_leg_mos(self, scenario):
        calm = run_conference(
            scenario, participants=3, duration_ms=20_000.0, burst=None
        )
        stormy = run_conference(scenario, participants=3, duration_ms=20_000.0)
        assert calm.min_leg_mos > stormy.min_leg_mos

    def test_clean_legs_match_closed_form(self, scenario):
        """Fault-free conference: measured per-leg MOS within tolerance of
        the closed-form score for the same (RTT, loss)."""
        media = MediaPlaneConfig(jitter_mean_ms=0.0, adaptation=None)
        result = run_conference(
            scenario, participants=3, duration_ms=20_000.0, burst=None, media=media
        )
        for leg in result.legs:
            if leg.base_loss == 0.0:
                assert leg.measured_mos == pytest.approx(
                    leg.closed_form_mos, abs=MEASURED_MOS_TOLERANCE
                )

    def test_result_json_is_deterministic(self, scenario):
        a = run_conference(scenario, participants=3, duration_ms=10_000.0)
        b = run_conference(scenario, participants=3, duration_ms=10_000.0)
        assert a.to_json() == b.to_json()

    def test_switches_visible_as_spans_and_telemetry(self, scenario):
        with obs.observe(command="conference", trace=True) as run:
            result = run_conference(scenario, participants=3, duration_ms=20_000.0)
            samples = run.timeline.snapshot()
            records = obs.tracer().records
        assert result.total_switches > 0
        names = [
            r["name"] for r in records if r.get("kind") in ("span", "point")
        ]
        assert names.count("conference") == 1
        assert names.count("conference.leg") == len(result.legs)
        switch_points = [
            r for r in records if r.get("name") == "media.codec_switch"
        ]
        assert len(switch_points) == result.total_switches
        assert any(p["attrs"]["to_codec"] == ILBC.name for p in switch_points)
        series = {s["series"] for s in samples}
        assert {
            "media.jitterbuf_depth_ms",
            "media.concealed_loss_rate",
            "media.codec_switches",
            "media.window_mos",
        } <= series
        legs = {s["tags"]["leg"] for s in samples if "leg" in s.get("tags", {})}
        assert len(legs) == len(result.legs)


class TestServiceMediaFrames:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("scenario-cache"))

    def test_loopback_frames_reach_callee_and_score(self, cache_dir):
        world = ServiceWorld.from_scale("tiny", 0, cache_dir=cache_dir)
        result = run_demo(world=world, calls=1, media_ms=2_000.0, media_frames=True)
        assert result.completed == 1
        assert result.frame_traces and result.frame_traces[0]
        (trace,) = result.frame_traces[0].values()
        assert len(trace.frames) > 50  # ~2 s at 20 ms pacing
        assert trace.loss_rate < 0.5
        score = score_trace(trace)
        assert 1.0 <= score.mos <= 4.5

    def test_loopback_frame_traces_byte_identical(self, cache_dir):
        payloads = []
        for _ in range(2):
            world = ServiceWorld.from_scale("tiny", 0, cache_dir=cache_dir)
            result = run_demo(
                world=world, calls=1, media_ms=2_000.0, media_frames=True
            )
            (trace,) = result.frame_traces[0].values()
            payloads.append(trace.to_jsonl())
        assert payloads[0] == payloads[1]
