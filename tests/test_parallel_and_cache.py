"""Tests for the parallel/cached evaluation substrate.

Covers the three pillars added for fast repeated evaluation:

- fork-pool matrix assembly and close-set prebuilds are *bit-for-bit*
  identical to the serial reference paths;
- the content-addressed scenario cache round-trips a world exactly and
  never serves derived (subsampled / measured-view) worlds;
- the vectorized ``evaluate_sessions`` batch API agrees with the
  per-session ``evaluate_session`` loop for every baseline method.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.baselines import (
    BaselineConfig,
    DEDIMethod,
    MIXMethod,
    OPTMethod,
    RANDMethod,
)
from repro.core import ASAPConfig, ASAPSystem
from repro.measurement.matrix import compute_delegate_matrices
from repro.scenario import (
    ScenarioConfig,
    build_scenario,
    subsample_scenario,
    tiny_scenario,
)
from repro.storage import SCHEMA_VERSION, ScenarioCache, scenario_cache_key
from repro.storage.cache import CACHE_DIR_ENV, resolve_cache_dir
from repro.util import chunked, plan_chunks, resolve_workers, shared_ndarray
from repro.util.parallel import WORKERS_ENV, run_forked


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


# -- worker resolution ---------------------------------------------------------


class TestResolveWorkers:
    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_garbage_env_is_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestChunked:
    def test_covers_all_items_in_order(self):
        items = list(range(17))
        chunks = chunked(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_no_empty_chunks(self):
        assert all(chunked(list(range(3)), 8))

    def test_empty_input(self):
        assert chunked([], 4) == []


class TestPlanChunks:
    def test_covers_all_items_in_order(self):
        costs = [5.0, 1.0, 1.0, 1.0, 9.0, 2.0, 2.0]
        chunks = plan_chunks(costs, 3)
        assert [i for chunk in chunks for i in chunk] == list(range(len(costs)))
        assert all(chunks)

    def test_balances_cost_not_length(self):
        # One huge item followed by many tiny ones: length-balanced
        # chunking would put the huge item with a third of the tail;
        # cost-balanced chunking isolates it.
        costs = [90.0] + [1.0] * 9
        chunks = plan_chunks(costs, 3)
        assert chunks[0] == [0]

    def test_bounded_imbalance(self):
        rng = np.random.default_rng(2)
        costs = rng.uniform(0.5, 20.0, 97)
        chunk_count = 8
        chunks = plan_chunks(list(costs), chunk_count)
        total = float(costs.sum())
        worst = max(float(costs[chunk].sum()) for chunk in chunks)
        # No chunk exceeds its fair share by more than one item's cost.
        assert worst <= total / chunk_count + float(costs.max())

    def test_more_chunks_than_items(self):
        chunks = plan_chunks([1.0, 1.0], 8)
        assert chunks == [[0], [1]]

    def test_zero_total_cost_falls_back_to_length_balance(self):
        assert plan_chunks([0.0] * 6, 3) == chunked(list(range(6)), 3)

    def test_empty_input(self):
        assert plan_chunks([], 4) == []

    def test_deterministic(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert plan_chunks(costs, 3) == plan_chunks(costs, 3)


def _stamp_shared(indices):
    """Pool worker: write into the inherited shared array (no return)."""
    array = _SHARED_TARGET[0]
    for i in indices:
        array[i] = i * 10.0
    return len(indices)


_SHARED_TARGET = [None]


class TestSharedNdarray:
    def test_shape_dtype_fill(self):
        array = shared_ndarray((3, 4), np.float64, fill=2.5)
        assert array.shape == (3, 4)
        assert array.dtype == np.float64
        assert np.all(array == 2.5)

    def test_backed_by_shared_mmap(self):
        import mmap as mmap_module

        array = shared_ndarray((2, 2), np.int32)
        base = array
        while base is not None and not isinstance(base, mmap_module.mmap):
            if isinstance(base, memoryview):
                base = base.obj
            else:
                base = getattr(base, "base", None)
        assert isinstance(base, mmap_module.mmap)

    def test_fork_children_write_through(self):
        if not hasattr(os, "fork"):
            pytest.skip("fork unavailable")
        array = shared_ndarray((8,), np.float64, fill=-1.0)
        _SHARED_TARGET[0] = array
        try:
            counts = run_forked(
                _stamp_shared, [[0, 1, 2, 3], [4, 5, 6, 7]], processes=2
            )
        finally:
            _SHARED_TARGET[0] = None
        assert counts == [4, 4]
        assert np.array_equal(array, np.arange(8) * 10.0)


# -- parallel parity -----------------------------------------------------------


class TestMatrixParallelParity:
    def test_bit_identical_to_serial(self, scenario):
        serial = compute_delegate_matrices(
            scenario.latency, scenario.clusters, workers=1
        )
        parallel = compute_delegate_matrices(
            scenario.latency, scenario.clusters, workers=2
        )
        assert np.array_equal(serial.rtt_ms, parallel.rtt_ms)
        assert np.array_equal(serial.loss, parallel.loss)
        assert np.array_equal(serial.as_hops, parallel.as_hops)
        assert serial.prefixes == parallel.prefixes

    def test_lazy_property_respects_config_workers(self):
        world = build_scenario(dataclasses.replace(ScenarioConfig.preset("tiny", 11), workers=2))
        reference = tiny_scenario(seed=11)
        assert np.array_equal(world.matrices.rtt_ms, reference.matrices.rtt_ms)

    def test_method_knob_selects_path(self, scenario):
        flat = compute_delegate_matrices(
            scenario.latency, scenario.clusters, method="flat"
        )
        obj = compute_delegate_matrices(
            scenario.latency, scenario.clusters, method="object"
        )
        assert np.array_equal(flat.rtt_ms, obj.rtt_ms)
        assert np.array_equal(flat.loss, obj.loss)

    def test_parallel_run_records_chunk_stats(self, scenario):
        from repro.measurement import matrix as matrix_module

        compute_delegate_matrices(scenario.latency, scenario.clusters, workers=2)
        stats = matrix_module.last_parallel_stats()
        assert stats is not None
        assert stats["workers"] == 2
        assert sum(stats["chunk_sizes"]) == scenario.matrices.count
        assert len(stats["chunk_seconds"]) == len(stats["chunk_sizes"])
        assert all(s >= 0.0 for s in stats["chunk_seconds"])

    def test_deprecated_global_warns_but_still_answers(self, scenario):
        from repro.measurement import matrix as matrix_module

        compute_delegate_matrices(scenario.latency, scenario.clusters, workers=2)
        with pytest.warns(DeprecationWarning, match="LAST_PARALLEL_STATS"):
            stats = matrix_module.LAST_PARALLEL_STATS
        assert stats == matrix_module.last_parallel_stats()


class TestCloseSetPrebuildParity:
    def test_parallel_prebuild_matches_lazy(self, scenario):
        config = ASAPConfig()
        lazy = ASAPSystem(scenario, config)
        fanned = ASAPSystem(scenario, config)
        built = fanned.prebuild_close_sets(workers=2)
        for idx, close_set in built.items():
            reference = lazy.close_set(idx)
            assert set(close_set.entries) == set(reference.entries)
            assert close_set.probe_messages == reference.probe_messages
            for cluster, entry in close_set.entries.items():
                assert entry.rtt_ms == reference.entries[cluster].rtt_ms


# -- scenario cache ------------------------------------------------------------


class TestScenarioCacheKey:
    def test_stable_across_runtime_knobs(self):
        base = ScenarioConfig.preset("tiny", 3)
        tuned = dataclasses.replace(base, workers=8, cache_dir="/somewhere")
        assert scenario_cache_key(base) == scenario_cache_key(tuned)

    def test_differs_across_seeds(self):
        assert scenario_cache_key(ScenarioConfig.preset("tiny", 1)) != scenario_cache_key(ScenarioConfig.preset("tiny", 2))

    def test_differs_across_shape(self):
        base = ScenarioConfig.preset("tiny", 1)
        bigger = dataclasses.replace(base, vantage_count=base.vantage_count + 1)
        assert scenario_cache_key(base) != scenario_cache_key(bigger)


class TestScenarioCache:
    def test_round_trip_is_identical(self, tmp_path):
        config = dataclasses.replace(ScenarioConfig.preset("tiny", 7), cache_dir=str(tmp_path))
        cold = build_scenario(config)
        entry_dir = tmp_path / scenario_cache_key(config)
        assert (entry_dir / "scenario.pkl.gz").exists()
        assert (entry_dir / "matrices.npz").exists()
        assert (entry_dir / "meta.json").exists()

        warm = build_scenario(config)
        assert np.array_equal(cold.matrices.rtt_ms, warm.matrices.rtt_ms)
        assert np.array_equal(cold.matrices.loss, warm.matrices.loss)
        assert np.array_equal(cold.matrices.as_hops, warm.matrices.as_hops)
        assert [h.ip for h in cold.population.hosts] == [
            h.ip for h in warm.population.hosts
        ]
        assert len(cold.clusters.all_clusters()) == len(warm.clusters.all_clusters())
        assert warm.config == config

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        config = dataclasses.replace(ScenarioConfig.preset("tiny", 7), cache_dir=str(tmp_path))
        build_scenario(config)
        pickle_path = tmp_path / scenario_cache_key(config) / "scenario.pkl.gz"
        pickle_path.write_bytes(b"not a gzip stream")
        rebuilt = build_scenario(config)  # must rebuild, not crash
        assert rebuilt.matrices.count > 0

    def test_env_var_selects_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache_dir(None) == tmp_path
        build_scenario(ScenarioConfig.preset("tiny", 7))
        assert (tmp_path / scenario_cache_key(ScenarioConfig.preset("tiny", 7))).is_dir()

    def test_no_cache_dir_means_no_caching(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir(None) is None

    def test_refuses_derived_scenarios(self, scenario, tmp_path):
        cache = ScenarioCache(str(tmp_path))
        sub = subsample_scenario(scenario, 0.5, seed=1)
        assert not sub.cacheable
        with pytest.raises(ValueError):
            cache.save(sub)
        measured = scenario.with_measured_matrices(seed=1)
        assert not measured.cacheable
        with pytest.raises(ValueError):
            cache.save(measured)

    def test_close_set_round_trip(self, scenario, tmp_path):
        cache = ScenarioCache(str(tmp_path))
        cache.save(scenario)
        asap_config = ASAPConfig()
        built = ASAPSystem(scenario, asap_config).prebuild_close_sets(workers=1)
        cache.save_close_sets(scenario.config, asap_config, built)
        loaded = cache.load_close_sets(scenario.config, asap_config)
        assert loaded is not None
        assert set(loaded) == set(built)
        for idx in built:
            assert set(loaded[idx].entries) == set(built[idx].entries)

    def test_schema_version_guards_key(self):
        # The schema version participates in the key material: bumping it
        # must invalidate every existing entry.  (Indirect check: the key
        # derives from a payload that includes the current version.)
        assert isinstance(SCHEMA_VERSION, int)
        key = scenario_cache_key(ScenarioConfig.preset("tiny", 0))
        assert len(key) == 20
        assert key == scenario_cache_key(ScenarioConfig.preset("tiny", 0))


# -- batch evaluation parity ---------------------------------------------------


def _some_pairs(matrices, count=12, seed=5):
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < count:
        a, b = (int(x) for x in rng.integers(0, matrices.count, 2))
        if a != b:
            pairs.append((a, b))
    return pairs


def _assert_results_equal(batch, loop):
    assert len(batch) == len(loop)
    for got, want in zip(batch, loop):
        assert got.method == want.method
        assert got.quality_paths == want.quality_paths
        assert got.messages == want.messages
        assert got.probed_nodes == want.probed_nodes
        if want.best_rtt_ms is None:
            assert got.best_rtt_ms is None
        else:
            assert got.best_rtt_ms == pytest.approx(want.best_rtt_ms)


class TestBatchEvaluationParity:
    @pytest.fixture(scope="class")
    def world(self, scenario):
        return scenario.matrices, scenario.topology.graph

    def _check(self, engine, matrices):
        pairs = _some_pairs(matrices)
        session_ids = [100 + k for k in range(len(pairs))]
        batch = engine.evaluate_sessions(matrices, pairs, session_ids=session_ids)
        loop = [
            engine.evaluate_session(matrices, a, b, sid)
            for (a, b), sid in zip(pairs, session_ids)
        ]
        _assert_results_equal(batch, loop)

    def test_opt(self, world):
        matrices, _ = world
        self._check(OPTMethod(BaselineConfig()), matrices)

    def test_dedi(self, world):
        matrices, graph = world
        self._check(DEDIMethod(graph, BaselineConfig()), matrices)

    def test_rand(self, world):
        matrices, _ = world
        self._check(RANDMethod(BaselineConfig()), matrices)

    def test_mix(self, world):
        matrices, graph = world
        self._check(MIXMethod(graph, BaselineConfig()), matrices)

    def test_default_session_ids(self, world):
        matrices, _ = world
        engine = RANDMethod(BaselineConfig())
        pairs = _some_pairs(matrices, count=4)
        batch = engine.evaluate_sessions(matrices, pairs)
        loop = [
            engine.evaluate_session(matrices, a, b, k)
            for k, (a, b) in enumerate(pairs)
        ]
        _assert_results_equal(batch, loop)

    def test_empty_batch(self, world):
        matrices, _ = world
        assert OPTMethod(BaselineConfig()).evaluate_sessions(matrices, []) == []
