"""Tests for the evaluation harness: workloads, metrics, experiments."""

import numpy as np
import pytest

from repro.baselines.base import MethodResult
from repro.errors import EvaluationError
from repro.evaluation import generate_workload, summarize_method
from repro.evaluation.metrics import (
    MethodRecord,
    record_from_asap,
    record_from_baseline,
)
from repro.evaluation.report import (
    render_cdf_row,
    render_kv_table,
    render_method_table,
    render_series,
)
from repro.evaluation.section3 import run_section3
from repro.evaluation.section7 import run_section7
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    # Seed 11 yields a tiny world with a solid share (~8%) of latent
    # cluster pairs, which the Section 7 tests need.
    return tiny_scenario(seed=11)


class TestWorkload:
    def test_deterministic(self, scenario):
        a = generate_workload(scenario, 200, seed=1)
        b = generate_workload(scenario, 200, seed=1)
        assert [(s.caller, s.callee) for s in a.sessions] == [
            (s.caller, s.callee) for s in b.sessions
        ]

    def test_count(self, scenario):
        workload = generate_workload(scenario, 150, seed=1)
        assert len(workload) == 150

    def test_sessions_have_distinct_endpoints(self, scenario):
        workload = generate_workload(scenario, 200, seed=2)
        for session in workload.sessions:
            assert session.caller != session.callee

    def test_direct_rtt_matches_matrices(self, scenario):
        workload = generate_workload(scenario, 50, seed=3)
        m = scenario.matrices
        for session in workload.sessions:
            assert session.direct_rtt_ms == m.rtt_ms[
                session.caller_cluster, session.callee_cluster
            ]

    def test_latent_subset(self, scenario):
        workload = generate_workload(scenario, 300, seed=4)
        for session in workload.latent():
            assert session.is_latent
        total = len(workload.latent()) + sum(
            1 for s in workload.sessions if not s.is_latent
        )
        assert total == len(workload)

    def test_latent_target_extends_generation(self, scenario):
        workload = generate_workload(scenario, 50, seed=5, latent_target=10)
        assert len(workload.latent()) >= 10 or len(workload) >= 50 * 50

    def test_rejects_zero_count(self, scenario):
        with pytest.raises(EvaluationError):
            generate_workload(scenario, 0)


class TestMetrics:
    def test_record_from_baseline(self):
        result = MethodResult("DEDI", 5, 250.0, 160, 80)
        record = record_from_baseline(3, result)
        assert record.method == "DEDI"
        assert record.session_id == 3
        assert record.found_quality_path
        assert record.highest_mos is not None and record.highest_mos > 3.6

    def test_record_no_path(self):
        result = MethodResult("RAND", 0, None, 400, 200)
        record = record_from_baseline(1, result)
        assert not record.found_quality_path
        assert record.highest_mos is None

    def test_summary_requires_single_method(self):
        a = MethodRecord("A", 1, 1, 100.0, 4.0, 2)
        b = MethodRecord("B", 1, 1, 100.0, 4.0, 2)
        with pytest.raises(ValueError):
            summarize_method([a, b])
        with pytest.raises(ValueError):
            summarize_method([])

    def test_summary_values(self):
        records = [
            MethodRecord("X", i, qp, rtt, 4.0, 10)
            for i, (qp, rtt) in enumerate([(10, 100.0), (20, 200.0), (30, None)])
        ]
        summary = summarize_method(records)
        assert summary.sessions == 3
        assert summary.quality_paths_median == 20
        assert summary.frac_best_below_300 == pytest.approx(2 / 3)
        assert summary.frac_rtt_above_1s == pytest.approx(1 / 3)


class TestSection3:
    def test_shapes_and_invariants(self, scenario):
        result = run_section3(scenario, session_count=400, seed=1)
        n = len(result.direct_rtts)
        assert len(result.optimal_one_hop) == n
        assert 0.0 <= result.improved_fraction <= 1.0
        assert 0.0 <= result.latent_fraction <= 1.0
        # Reduction ratios are in (0, 1) by construction.
        assert np.all(result.reduction_ratios > 0)
        assert np.all(result.reduction_ratios < 1)

    def test_latent_arrays_aligned(self, scenario):
        result = run_section3(scenario, session_count=400, seed=1)
        assert len(result.latent_direct) == len(result.latent_optimal)
        assert np.all(
            ~np.isfinite(result.latent_direct) | (result.latent_direct > 300.0)
        )

    def test_most_latent_sessions_rescued(self, scenario):
        result = run_section3(scenario, session_count=600, seed=2)
        if result.latent_direct.size < 5:
            pytest.skip("too few latent sessions in tiny world")
        assert result.rescued_fraction > 0.7


class TestSection7:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return run_section7(
            scenario,
            session_count=400,
            latent_target=15,
            seed=1,
            max_latent_sessions=15,
        )

    def test_all_methods_present(self, result):
        assert set(result.records) == {"DEDI", "RAND", "MIX", "ASAP", "OPT"}

    def test_records_aligned_with_sessions(self, result):
        n = len(result.latent_sessions)
        for records in result.records.values():
            assert len(records) == n

    def test_asap_finds_more_quality_paths_than_baselines(self, result):
        asap = np.median(result.series("ASAP", "quality_paths"))
        for name in ("DEDI", "RAND", "MIX"):
            base = np.median(result.series(name, "quality_paths"))
            assert asap > base

    def test_opt_best_rtt_lower_bound(self, result):
        opt = result.series("OPT", "best_rtt_ms")
        for name in ("DEDI", "RAND", "MIX"):
            other = result.series(name, "best_rtt_ms")
            finite = np.isfinite(opt) & np.isfinite(other)
            assert np.all(opt[finite] <= other[finite] + 1e-9)

    def test_asap_overhead_below_baselines(self, result):
        asap_msgs = np.median(result.series("ASAP", "messages"))
        assert asap_msgs < 160  # DEDI's fixed cost

    def test_summaries_render(self, result):
        table = render_method_table(result.summaries())
        for name in ("DEDI", "RAND", "MIX", "ASAP", "OPT"):
            assert name in table


class TestReportRendering:
    def test_cdf_row_handles_inf(self):
        row = render_cdf_row("x", [1.0, 2.0, float("inf")])
        assert "unreachable" in row

    def test_cdf_row_empty(self):
        assert "no finite samples" in render_cdf_row("x", [float("inf")])

    def test_series_block(self):
        block = render_series("title", [("a", [1.0, 2.0]), ("b", [3.0])])
        assert block.startswith("title")
        assert block.count("\n") == 2

    def test_kv_table(self):
        block = render_kv_table("T", [("key", 1.5), ("other", "v")])
        assert "1.5000" in block and "other" in block
