"""Integration tests for the assembled ASAP system."""

import numpy as np
import pytest

from repro.core import ASAPConfig, ASAPSystem
from repro.core.config import derive_k_hops
from repro.errors import ConfigurationError, ProtocolError
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=5)


@pytest.fixture(scope="module")
def system(scenario):
    return ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices)))


def latent_pair(scenario):
    m = scenario.matrices
    latent = np.argwhere(m.rtt_ms > 300)
    for a, b in latent:
        ca = scenario.clusters.all_clusters()[int(a)]
        cb = scenario.clusters.all_clusters()[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no latent pair in tiny scenario")


def good_pair(scenario):
    m = scenario.matrices
    good = np.argwhere(np.isfinite(m.rtt_ms) & (m.rtt_ms < 150))
    for a, b in good:
        if a == b:
            continue
        ca = scenario.clusters.all_clusters()[int(a)]
        cb = scenario.clusters.all_clusters()[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no good pair in tiny scenario")


class TestConfig:
    def test_defaults_match_paper(self):
        config = ASAPConfig()
        assert config.k_hops == 4
        assert config.lat_threshold_ms == 300.0
        assert config.size_threshold == 300
        assert config.relay_delay_rtt_ms == 40.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ASAPConfig(k_hops=-1)
        with pytest.raises(ConfigurationError):
            ASAPConfig(lat_threshold_ms=0)
        with pytest.raises(ConfigurationError):
            ASAPConfig(loss_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ASAPConfig(bootstrap_count=0)

    def test_derive_k_hops_in_bounds(self, scenario):
        k = derive_k_hops(scenario.matrices)
        assert 2 <= k <= 8


class TestMembership:
    def test_join_returns_correct_mapping(self, scenario, system):
        host = scenario.population.hosts[0]
        endhost = system.join(host.ip)
        assert endhost.joined
        assert endhost.join_info.asn == host.asn
        assert endhost.join_info.prefix.contains(host.ip)

    def test_join_registers_nodal_info(self, scenario, system):
        host = scenario.population.hosts[1]
        system.join(host.ip)
        idx = system.cluster_of_ip(host.ip)
        assert host.ip in system.surrogate(idx).published_info

    def test_join_load_spreads_over_bootstraps(self, scenario):
        fresh = ASAPSystem(scenario, ASAPConfig(bootstrap_count=3))
        for host in scenario.population.hosts[:30]:
            fresh.join(host.ip)
        counts = [b.join_requests for b in fresh.bootstraps]
        assert sum(counts) == 30
        assert sum(1 for c in counts if c > 0) >= 2

    def test_surrogate_is_most_capable(self, scenario, system):
        cluster = max(scenario.clusters.all_clusters(), key=len)
        idx = scenario.matrices.index_of[cluster.prefix]
        surrogate = system.surrogate(idx)
        assert surrogate.host.ip == cluster.most_capable_host().ip

    def test_unknown_cluster_raises(self, system):
        with pytest.raises(ProtocolError):
            system.surrogate(10**6)


class TestSurrogateFailover:
    def test_failover_promotes_next_best(self, scenario):
        fresh = ASAPSystem(scenario)
        cluster = max(scenario.clusters.all_clusters(), key=len)
        if len(cluster) < 2:
            pytest.skip("no multi-host cluster")
        idx = scenario.matrices.index_of[cluster.prefix]
        old = fresh.surrogate(idx)
        new = fresh.fail_surrogate(idx)
        assert new.host.ip != old.host.ip
        assert new.host in cluster.hosts
        # Bootstraps updated.
        for bootstrap in fresh.bootstraps:
            assert bootstrap.surrogate_for(cluster.prefix) == new.host.ip

    def test_failover_single_host_cluster_raises(self, scenario):
        fresh = ASAPSystem(scenario)
        single = next(
            (c for c in scenario.clusters.all_clusters() if len(c) == 1), None
        )
        if single is None:
            pytest.skip("no single-host cluster")
        idx = scenario.matrices.index_of[single.prefix]
        with pytest.raises(ProtocolError):
            fresh.fail_surrogate(idx)


class TestCalling:
    def test_good_direct_path_needs_no_relay(self, scenario, system):
        caller, callee = good_pair(scenario)
        session = system.call(caller, callee)
        assert not session.relay_needed
        assert session.messages == 0
        assert session.quality_paths == 0
        assert session.best_path_rtt_ms == session.direct_rtt_ms

    def test_latent_session_runs_selection(self, scenario, system):
        caller, callee = latent_pair(scenario)
        session = system.call(caller, callee)
        assert session.relay_needed
        assert session.selection is not None
        assert session.messages >= 2

    def test_latent_session_finds_quality_relay(self, scenario, system):
        caller, callee = latent_pair(scenario)
        session = system.call(caller, callee)
        if session.best_relay_rtt_ms is None:
            pytest.skip("tiny world: close sets may miss")
        assert session.best_relay_rtt_ms < session.direct_rtt_ms
        assert session.best_path_rtt_ms == session.best_relay_rtt_ms

    def test_best_path_mos_in_range(self, scenario, system):
        caller, callee = latent_pair(scenario)
        session = system.call(caller, callee)
        assert 1.0 <= session.best_path_mos() <= 4.5

    def test_close_sets_cached_across_calls(self, scenario, system):
        caller, callee = latent_pair(scenario)
        idx = system.cluster_of_ip(caller)
        first = system.surrogate(idx).close_set()
        system.call(caller, callee)
        assert system.surrogate(idx).close_set() is first

    def test_maintenance_messages_accounted(self, scenario, system):
        caller, callee = latent_pair(scenario)
        system.call(caller, callee)
        assert system.maintenance_messages() > 0

    def test_relay_entries_respect_threshold(self, scenario, system):
        caller, callee = latent_pair(scenario)
        session = system.call(caller, callee)
        for candidate in session.selection.one_hop:
            assert candidate.relay_rtt_ms < system.config.lat_threshold_ms
        for candidate in session.selection.two_hop:
            assert candidate.relay_rtt_ms < system.config.lat_threshold_ms
