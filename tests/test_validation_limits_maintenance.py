"""Tests for substrate validation, limit detection, and maintenance."""

import numpy as np
import pytest

from repro.core import ASAPConfig, ASAPSystem
from repro.core.maintenance import (
    reweather,
    run_maintenance_study,
    staleness,
)
from repro.evaluation.sessions import generate_workload
from repro.measurement.tools import KingEstimator
from repro.scenario import tiny_scenario
from repro.skype import SkypeConfig, SupernodeOverlay, TraceAnalyzer, run_skype_session
from repro.skype.limits import LimitThresholds, detect_limits
from repro.topology import TopologyConfig, generate_topology
from repro.topology.validation import validate_latency, validate_topology


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


class TestTopologyValidation:
    def test_report_on_generated_topology(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=4, tier2_count=15, tier3_count=60, seed=1)
        )
        report = validate_topology(topo, sample_pairs=150, seed=1)
        assert report.as_count == len(topo.graph)
        assert report.valley_free_rate == 1.0
        assert report.reachable_rate > 0.9
        assert report.degree_tail_ratio > 2.0
        assert 2.0 <= report.mean_policy_path_hops <= 7.0
        assert 0.0 < report.multihomed_stub_fraction < 1.0

    def test_rows_render(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=25, seed=2)
        )
        rows = validate_topology(topo, sample_pairs=50, seed=2).rows()
        assert any("valley-free" in key for key, _ in rows)

    def test_latency_realism(self, scenario):
        report = validate_latency(scenario, sample_pairs=150, seed=1)
        assert report.hop_latency_correlation > 0.1
        assert report.median_rtt_ms > 0
        assert 0.0 <= report.latent_fraction_300ms <= 1.0
        assert 0.0 <= report.policy_detour_fraction <= 1.0

    def test_tiny_topology_rejected(self):
        from repro.errors import TopologyError
        from repro.topology.generator import Topology
        from repro.topology.geography import Geography
        from repro.bgp.asgraph import ASGraph

        empty = Topology(
            config=TopologyConfig(), graph=ASGraph(), geography=Geography(), tier_of={}
        )
        with pytest.raises(TopologyError):
            validate_topology(empty)


class TestLimitDetection:
    @pytest.fixture(scope="class")
    def study(self, scenario):
        overlay = SupernodeOverlay(scenario.population)
        analyzer = TraceAnalyzer(
            scenario.prefix_table,
            king=KingEstimator(scenario.latency, seed=1, non_response_rate=0.0),
            population=scenario.population,
        )
        m = scenario.matrices
        clusters = scenario.clusters.all_clusters()
        pairs = np.argwhere(np.isfinite(m.rtt_ms) & (m.rtt_ms > 250))
        sessions, analyses = [], []
        for sid, (a, b) in enumerate(pairs[:6], start=1):
            ca, cb = clusters[int(a)], clusters[int(b)]
            if not ca.hosts or not cb.hosts:
                continue
            result = run_skype_session(
                scenario, ca.hosts[0].ip, cb.hosts[0].ip, overlay, session_id=sid
            )
            sessions.append(result)
            analyses.append(analyzer.analyze(result.trace))
        return scenario, analyzer, sessions, analyses

    def test_detects_limits(self, study):
        scenario, analyzer, sessions, analyses = study
        king = KingEstimator(scenario.latency, seed=1, non_response_rate=0.0)
        report = detect_limits(
            analyses,
            sessions,
            analyzer,
            king=king,
            population=scenario.population,
            thresholds=LimitThresholds(heavy_probing_nodes=5, long_stabilization_ms=100.0),
        )
        # With low bounds, probing-heavy sessions must appear.
        assert report.limit4
        assert report.sessions_with_any_limit()
        rows = dict(report.summary_rows())
        assert rows["Limit 4 (heavy probing) sessions"] == len(report.limit4)

    def test_limit2_groups_are_multi_ip(self, study):
        scenario, analyzer, sessions, analyses = study
        report = detect_limits(analyses, sessions, analyzer)
        for groups in report.limit2.values():
            for ips in groups.values():
                assert len(ips) > 1

    def test_limit1_findings_consistent(self, study):
        scenario, analyzer, sessions, analyses = study
        king = KingEstimator(scenario.latency, seed=1, non_response_rate=0.0)
        report = detect_limits(
            analyses, sessions, analyzer, king=king, population=scenario.population
        )
        for finding in report.limit1:
            assert finding.major_path_rtt_ms > finding.best_probed_rtt_ms
            assert finding.wasted_ms > 0

    def test_without_king_skips_limit1(self, study):
        scenario, analyzer, sessions, analyses = study
        report = detect_limits(analyses, sessions, analyzer)
        assert report.limit1 == []


class TestMaintenance:
    def test_reweather_changes_conditions_only(self, scenario):
        fresh = reweather(scenario, seed=99)
        assert fresh.topology is scenario.topology
        assert fresh.population is scenario.population
        assert fresh.conditions is not scenario.conditions
        # Different weather → different congested links (almost surely).
        assert (
            fresh.conditions.congested_links() != scenario.conditions.congested_links()
            or fresh.conditions.failed_ases != scenario.conditions.failed_ases
        )

    def test_reweather_deterministic(self, scenario):
        a = reweather(scenario, seed=5)
        b = reweather(scenario, seed=5)
        assert a.conditions.congested_links() == b.conditions.congested_links()

    def test_staleness_report(self, scenario):
        system = ASAPSystem(scenario, ASAPConfig(k_hops=5))
        fresh = reweather(scenario, seed=7)
        report = staleness(system, fresh, cluster_index=0)
        assert report.entries == len(system.close_set(0))
        assert 0 <= report.violating <= report.entries
        assert report.missing >= 0
        assert 0.0 <= report.violation_rate <= 1.0

    def test_same_weather_not_stale(self, scenario):
        system = ASAPSystem(scenario, ASAPConfig(k_hops=5))
        report = staleness(system, scenario, cluster_index=0)
        assert report.violating == 0

    def test_maintenance_study(self, scenario):
        workload = generate_workload(scenario, 400, seed=3, latent_target=6)
        sessions = workload.latent()[:6]
        if len(sessions) < 3:
            pytest.skip("too few latent sessions in tiny world")
        outcomes, reports = run_maintenance_study(scenario, sessions, weather_seed=7)
        by_policy = {o.policy: o for o in outcomes}
        assert set(by_policy) == {"stale", "refreshed"}
        # Refreshed selection can only match or beat stale on realized
        # rescues (both evaluated under the same fresh weather).
        assert by_policy["refreshed"].rescued_fraction >= by_policy["stale"].rescued_fraction - 1e-9
        assert reports
