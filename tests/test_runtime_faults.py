"""Tests for runtime fault tolerance: retries, failover, chaos runs."""

import numpy as np
import pytest

from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.core.runtime import ASAPRuntime, RuntimePolicy
from repro.errors import ConfigurationError, ProtocolError
from repro.evaluation.chaos import run_chaos, sweep_chaos
from repro.faults import FaultScheduleConfig
from repro.scenario import tiny_scenario
from repro.voip.outage import OutageWindow, account_outages, merge_windows


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


@pytest.fixture()
def runtime(scenario):
    return ASAPRuntime(
        scenario, ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
    )


def latent_host_pair(scenario):
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    for a, b in np.argwhere(m.rtt_ms > 300):
        ca, cb = clusters[int(a)], clusters[int(b)]
        if ca.hosts and cb.hosts:
            return ca.hosts[0].ip, cb.hosts[0].ip
    pytest.skip("no latent pair")


def relayed_setup(runtime, scenario):
    """A completed latent call that actually selected a relay."""
    m = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    for a, b in np.argwhere(m.rtt_ms > 300):
        ca, cb = clusters[int(a)], clusters[int(b)]
        if not (ca.hosts and cb.hosts):
            continue
        record = runtime.schedule_call(
            ca.hosts[0].ip, cb.hosts[0].ip, at_ms=runtime.sim.now_ms
        )
        runtime.run()
        if record.outcome == "completed" and record.relay_ip is not None:
            return record
    pytest.skip("no latent pair with a live relay candidate")


class TestRuntimePolicy:
    def test_defaults_valid(self):
        policy = RuntimePolicy()
        assert policy.backoff_ms(0) == policy.backoff_base_ms
        assert policy.backoff_ms(2) == policy.backoff_base_ms * policy.backoff_factor**2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimePolicy(join_timeout_ms=0)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(max_join_attempts=0)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(backoff_factor=0.5)


class TestJoinFaults:
    def test_join_fails_over_to_next_bootstrap(self, scenario, runtime):
        ip = scenario.population.hosts[0].ip
        first = runtime.bootstrap_hosts[ip.value % len(runtime.bootstrap_hosts)]
        runtime.network.set_host_down(first.ip)
        record = runtime.schedule_join(ip)
        runtime.run()
        assert record.outcome == "completed"
        assert record.attempts == 2
        assert record.completed_ms is not None
        # The retry waited out a timeout + backoff before succeeding.
        assert record.duration_ms > runtime.policy.join_timeout_ms

    def test_join_fails_when_all_bootstraps_down(self, scenario, runtime):
        for host in runtime.bootstrap_hosts:
            runtime.network.set_host_down(host.ip)
        record = runtime.schedule_join(scenario.population.hosts[0].ip)
        runtime.run()
        assert record.outcome == "failed"
        assert record.failure_reason == "join-timeout"
        assert record.completed_ms is None  # failed joins never complete
        assert record.attempts == runtime.policy.max_join_attempts

    def test_failed_join_counted_in_obs(self, scenario):
        from repro import obs

        with obs.observe(command="test") as observer:
            runtime = ASAPRuntime(scenario, ASAPConfig())
            for host in runtime.bootstrap_hosts:
                runtime.network.set_host_down(host.ip)
            runtime.schedule_join(scenario.population.hosts[0].ip)
            runtime.run()
            counters = observer.registry.snapshot()["counters"]
        assert counters.get("runtime.joins_failed") == 1


class TestCallSetupFaults:
    def test_callee_down_fails_terminally(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        runtime.network.set_host_down(callee)
        record = runtime.schedule_call(caller, callee)
        runtime.run()
        assert record.outcome == "failed"
        assert record.failure_reason == "ping-timeout"
        assert record.attempts == runtime.policy.max_ping_attempts
        assert record.completed_ms is None
        assert not runtime.pending_records()

    def test_own_surrogate_group_down_degrades_to_direct(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        cluster = runtime.system.cluster_of_ip(caller)
        for member in runtime.system.surrogate_group(cluster):
            if member.ip not in (caller, callee):
                runtime.network.set_host_down(member.ip)
        record = runtime.schedule_call(caller, callee)
        runtime.run()
        assert record.outcome in ("degraded", "completed")
        if record.outcome == "degraded":
            assert record.failure_reason == "close-set-unavailable"
            assert record.path == "direct"
            assert record.completed_ms is not None  # degraded still terminates

    def test_zero_faults_full_outcomes(self, scenario, runtime):
        caller, callee = latent_host_pair(scenario)
        record = runtime.schedule_call(caller, callee)
        runtime.run()
        assert record.outcome in ("completed", "degraded")
        assert record.terminal
        assert record.attempts == 1
        assert record.retries == 0


class TestRelayExclusion:
    def test_offline_relay_cluster_leaves_selection(self, scenario):
        """Regression: churned-dark clusters must not stay relay candidates."""
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        record = relayed_setup(runtime, scenario)
        target = record.relay_cluster
        # Take every host of the selected relay cluster offline.
        fresh = ASAPRuntime(scenario, config)
        for host in fresh.system.online_hosts_in_cluster(target):
            fresh.system.leave(host.ip)
        assert fresh.system.online_size(target) == 0
        session = fresh.system.call(record.caller, record.callee)
        if session.selection is not None:
            assert target not in [c.cluster for c in session.selection.one_hop]
            assert target not in [c.first for c in session.selection.two_hop]
            assert target not in [c.second for c in session.selection.two_hop]

    def test_pick_relay_skips_offline_hosts(self, scenario):
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        record = relayed_setup(runtime, scenario)
        session = record.session
        first_choice = record.relay_ip
        runtime.system.leave(first_choice)
        alt = runtime._pick_relay(session)
        if alt is not None:
            assert alt[1] != first_choice


class TestKeepaliveFailover:
    def test_relay_death_triggers_failover_or_degrade(self, scenario):
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        caller, callee = latent_host_pair(scenario)
        record = runtime.schedule_call(
            caller, callee, media_duration_ms=12_000.0
        )
        runtime.run(until_ms=5_000.0)
        if record.outcome != "completed" or record.relay_ip is None:
            pytest.skip("setup did not select a relay on this scenario")
        media = runtime.media_sessions[0]
        runtime.schedule_leave(record.relay_ip, at_ms=runtime.sim.now_ms + 100.0)
        runtime.run()
        assert media.outcome in ("finished", "dropped")
        assert media.failovers, "relay death must be detected via keepalives"
        event = media.failovers[0]
        assert event.interruption_ms > 0
        assert event.old_relay == record.relay_ip
        if event.new_relay is not None:
            assert event.new_relay != record.relay_ip
            assert media.relay_ip == media.failovers[-1].new_relay or media.degraded_to_direct
        assert media.impact is not None
        assert media.impact.interruption_ms > 0
        assert media.impact.mos_dip >= 0

    def test_late_call_outage_scored_call_relative(self, scenario):
        """Regression: outage windows must be shifted call-relative.

        Windows are recorded in absolute sim time; they used to be passed
        to account_outages unshifted, so any call whose start time
        exceeded its own duration (the normal case mid-run) had every
        window clipped away and scored mos_dip == 0.
        """
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        caller, callee = latent_host_pair(scenario)
        record = runtime.schedule_call(
            caller, callee, at_ms=60_000.0, media_duration_ms=8_000.0
        )
        runtime.run(until_ms=62_000.0)
        if record.outcome != "completed" or record.relay_ip is None:
            pytest.skip("setup did not select a relay on this scenario")
        media = runtime.media_sessions[0]
        assert media.started_ms > media.duration_ms  # the failing regime
        runtime.schedule_leave(record.relay_ip, at_ms=runtime.sim.now_ms + 100.0)
        runtime.run()
        assert media.failovers
        assert media.impact is not None
        assert media.impact.interruption_ms > 0
        assert media.impact.mos_dip > 0

    def test_dropped_call_tail_counts_as_outage(self, scenario, monkeypatch):
        """A dropped call keeps its scheduled duration; the undelivered
        tail is scored as outage rather than silently truncated."""
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        caller, callee = latent_host_pair(scenario)
        record = runtime.schedule_call(
            caller, callee, media_duration_ms=20_000.0
        )
        runtime.run(until_ms=5_000.0)
        if record.outcome != "completed" or record.relay_ip is None:
            pytest.skip("setup did not select a relay on this scenario")
        media = runtime.media_sessions[0]
        scheduled_end = media.ends_ms
        # No surviving relay candidate and no direct route: every other
        # host goes dark and the latency model reports caller/callee as
        # unreachable, so the failover chain must end in a drop.
        for host in scenario.population.hosts:
            if host.ip not in (caller, callee):
                runtime.network.set_host_down(host.ip)
        monkeypatch.setattr(runtime, "_rtt_between", lambda a, b: None)
        runtime.run()
        assert media.outcome == "dropped"
        assert media.ends_ms == scheduled_end
        last = media.outage_windows[-1]
        assert last.end_ms == scheduled_end
        assert media.impact is not None
        assert media.impact.interruption_ms > 0
        assert media.impact.mos_dip > 0

    def test_fault_free_media_session_clean(self, scenario):
        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
        runtime = ASAPRuntime(scenario, config)
        caller, callee = latent_host_pair(scenario)
        runtime.schedule_call(caller, callee, media_duration_ms=6_000.0)
        runtime.run()
        assert runtime.media_sessions
        media = runtime.media_sessions[0]
        assert media.outcome == "finished"
        assert not media.failovers
        assert media.impact is not None
        assert media.impact.mos_dip == 0.0
        assert media.impact.interruption_ms == 0.0


class TestRepeatedChurn:
    def test_repeated_surrogate_failures_reelect_consistently(self, scenario):
        """Repeated failures on one cluster keep promoting fresh primaries
        and keep every bootstrap's surrogate table in sync."""
        runtime = ASAPRuntime(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 3:
            pytest.skip("need a cluster with >= 3 hosts")
        idx = scenario.matrices.index_of[big.prefix]
        seen = [runtime.system.surrogate(idx).ip]
        for round_no in range(2):
            fresh = runtime.system.fail_surrogate(idx)
            assert fresh.ip not in seen, "re-election must not resurrect the dead"
            seen.append(fresh.ip)
            for bootstrap in runtime.system.bootstraps:
                assert bootstrap.surrogate_for(big.prefix) == fresh.ip

    def test_exhausting_cluster_raises(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        sized = sorted(scenario.clusters.all_clusters(), key=len)
        cluster = next((c for c in sized if len(c) == 2), None)
        if cluster is None:
            pytest.skip("no 2-host cluster")
        idx = scenario.matrices.index_of[cluster.prefix]
        runtime.system.fail_surrogate(idx)
        with pytest.raises(ProtocolError):
            runtime.system.fail_surrogate(idx)

    def test_leave_then_fail_surrogate_consistent(self, scenario):
        runtime = ASAPRuntime(scenario, ASAPConfig())
        big = max(scenario.clusters.all_clusters(), key=len)
        if len(big) < 3:
            pytest.skip("need a cluster with >= 3 hosts")
        idx = scenario.matrices.index_of[big.prefix]
        runtime.schedule_leave(runtime.system.surrogate(idx).ip, at_ms=10.0)
        runtime.run()
        second = runtime.system.surrogate(idx).ip
        fresh = runtime.system.fail_surrogate(idx)
        assert fresh.ip != second
        online = {h.ip for h in runtime.system.online_hosts_in_cluster(idx)}
        assert fresh.ip in online
        assert second not in online


class TestChaosRuns:
    def test_no_call_ever_hangs_under_faults(self, scenario):
        config = FaultScheduleConfig(
            seed=9,
            duration_ms=30_000,
            surrogate_crash_rate_per_min=6.0,
            host_churn_rate_per_min=40.0,
            message_loss_rate=0.05,
            random_as_outages=1,
        )
        result = run_chaos(
            scenario, config, sessions=20, joins=20, media_duration_ms=5_000, seed=3
        )
        assert sum(result.call_outcomes.values()) == 20
        assert set(result.call_outcomes) <= {"completed", "degraded", "failed"}
        assert set(result.join_outcomes) <= {"completed", "failed"}
        assert set(result.media_outcomes) <= {"finished", "dropped"}

    def test_chaos_is_deterministic(self, scenario):
        config = FaultScheduleConfig(
            seed=4,
            duration_ms=20_000,
            host_churn_rate_per_min=30.0,
            message_loss_rate=0.02,
        )
        a = run_chaos(scenario, config, sessions=15, joins=15, seed=2)
        b = run_chaos(scenario, config, sessions=15, joins=15, seed=2)
        assert a.to_json() == b.to_json()
        assert a.fault_log == b.fault_log

    def test_zero_fault_chaos_all_clean(self, scenario):
        result = run_chaos(
            scenario,
            FaultScheduleConfig.zeroed(duration_ms=20_000),
            sessions=15,
            joins=15,
            seed=2,
        )
        assert result.fault_events == 0
        assert result.fault_log == []
        assert "failed" not in result.call_outcomes
        assert result.request_timeouts == 0

    def test_sweep_scales_intensity(self, scenario):
        base = FaultScheduleConfig(
            seed=6, duration_ms=15_000, host_churn_rate_per_min=40.0
        )
        results = sweep_chaos(
            scenario, base, intensities=(0.0, 1.0), sessions=10, joins=10, seed=1
        )
        assert results[0][1].fault_events == 0
        assert results[1][1].fault_events > 0


class TestOutageAccounting:
    def test_merge_windows(self):
        merged = merge_windows(
            [
                OutageWindow(start_ms=0, end_ms=100),
                OutageWindow(start_ms=50, end_ms=150),
                OutageWindow(start_ms=300, end_ms=400),
            ]
        )
        assert [(w.start_ms, w.end_ms) for w in merged] == [(0, 150), (300, 400)]

    def test_account_outages_weights_by_time(self):
        impact = account_outages(
            base_mos=4.0,
            duration_ms=1_000.0,
            windows=[OutageWindow(start_ms=0, end_ms=500)],
        )
        assert impact.outage_fraction == pytest.approx(0.5)
        assert impact.effective_mos == pytest.approx(2.5)
        assert impact.mos_dip == pytest.approx(1.5)

    def test_windows_clipped_to_call(self):
        impact = account_outages(
            base_mos=4.0,
            duration_ms=1_000.0,
            windows=[OutageWindow(start_ms=900, end_ms=5_000)],
        )
        assert impact.interruption_ms == pytest.approx(100.0)

    def test_no_windows_no_dip(self):
        impact = account_outages(base_mos=4.2, duration_ms=1_000.0, windows=[])
        assert impact.mos_dip == 0.0
        assert impact.effective_mos == 4.2
