"""Unit + property tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netaddr import IPv4Address, IPv4Prefix, PrefixTrie


def P(text):
    return IPv4Prefix.from_string(text)


def A(text):
    return IPv4Address.from_string(text)


class TestPrefixTrieBasics:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        assert trie.get(P("10.0.0.0/8")) == "a"
        assert trie.get(P("10.0.0.0/9")) is None
        assert len(trie) == 1

    def test_insert_overwrites(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        trie.insert(P("10.0.0.0/8"), 2)
        assert trie.get(P("10.0.0.0/8")) == 2
        assert len(trie) == 1

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        assert P("10.0.0.0/8") in trie
        assert P("10.0.0.0/16") not in trie

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        assert trie.remove(P("10.0.0.0/8"))
        assert not trie.remove(P("10.0.0.0/8"))
        assert len(trie) == 0
        assert trie.longest_match(A("10.1.1.1")) is None

    def test_longest_match_prefers_most_specific(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "short")
        trie.insert(P("10.1.0.0/16"), "mid")
        trie.insert(P("10.1.2.0/24"), "long")
        prefix, value = trie.longest_match(A("10.1.2.3"))
        assert value == "long"
        assert prefix == P("10.1.2.0/24")
        prefix, value = trie.longest_match(A("10.1.9.9"))
        assert value == "mid"
        prefix, value = trie.longest_match(A("10.9.9.9"))
        assert value == "short"

    def test_longest_match_none_when_uncovered(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        assert trie.longest_match(A("11.0.0.1")) is None

    def test_all_matches_shortest_first(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), 8)
        trie.insert(P("10.1.0.0/16"), 16)
        trie.insert(P("10.1.2.0/24"), 24)
        matches = trie.all_matches(A("10.1.2.3"))
        assert [v for _, v in matches] == [8, 16, 24]

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(P("0.0.0.0/0"), "default")
        _, value = trie.longest_match(A("203.0.113.7"))
        assert value == "default"

    def test_items_returns_all_entries(self):
        trie = PrefixTrie()
        entries = {P("10.0.0.0/8"): 1, P("192.168.0.0/16"): 2, P("10.1.0.0/16"): 3}
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert dict(trie.items()) == entries

    def test_slash32_entry(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.5/32"), "host")
        assert trie.longest_match(A("10.0.0.5"))[1] == "host"
        assert trie.longest_match(A("10.0.0.6")) is None


prefix_strategy = st.builds(
    lambda value, length: IPv4Prefix(value, length),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)


class TestPrefixTrieProperties:
    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_get_returns_what_was_inserted(self, mapping):
        trie = PrefixTrie()
        for prefix, value in mapping.items():
            trie.insert(prefix, value)
        assert len(trie) == len(mapping)
        for prefix, value in mapping.items():
            assert trie.get(prefix) == value

    @given(
        st.dictionaries(prefix_strategy, st.integers(), max_size=30),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_longest_match_agrees_with_linear_scan(self, mapping, addr_int):
        trie = PrefixTrie()
        for prefix, value in mapping.items():
            trie.insert(prefix, value)
        address = IPv4Address(addr_int)
        covering = [p for p in mapping if p.contains(address)]
        expected = max(covering, key=lambda p: p.length) if covering else None
        got = trie.longest_match(address)
        if expected is None:
            assert got is None
        else:
            got_prefix, got_value = got
            assert got_prefix.length == expected.length
            assert got_prefix.contains(address)

    @given(st.lists(prefix_strategy, max_size=30), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_all_matches_sorted_and_covering(self, prefixes, addr_int):
        trie = PrefixTrie()
        for i, prefix in enumerate(prefixes):
            trie.insert(prefix, i)
        address = IPv4Address(addr_int)
        matches = trie.all_matches(address)
        lengths = [p.length for p, _ in matches]
        assert lengths == sorted(lengths)
        for prefix, _ in matches:
            assert prefix.contains(address)
