"""End-to-end tests for the service layer: daemons, demo, determinism.

The demo must complete a relayed call over both substrates; same-seed
loopback runs must be byte-identical including ``traces.jsonl``; and
the span vocabulary written by the daemons must match the simulated
runtime's, so one trace-analysis toolkit reads both.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.net.codec import ROLE_HOST, Join, JoinOk, Leave, Resolve, ResolveOk
from repro.net.loopback import LoopbackHub, LoopbackTransport
from repro.netaddr import IPv4Address
from repro.service import ServiceWorld, run_demo
from repro.service.bootstrap import BootstrapServer
from repro.service.surrogate import SurrogateServer

SCALE, SEED = "tiny", 0


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("scenario-cache"))


@pytest.fixture()
def world(cache_dir):
    # A fresh world per test: the embedded ASAPSystem accumulates join
    # state, so reuse would leak one run's registrations into the next.
    return ServiceWorld.from_scale(SCALE, SEED, cache_dir=cache_dir)


def _traced_demo(out_dir, world):
    obs.start_run(str(out_dir), command="demo", trace=True)
    try:
        result = run_demo(world=world, calls=1, media_ms=2_000.0)
    finally:
        obs.finish_run()
    return result, (out_dir / obs.TRACES_FILENAME).read_bytes()


class TestLoopbackDemo:
    def test_completes_a_relayed_call(self, world):
        result = run_demo(world=world, calls=1, media_ms=2_000.0)
        assert result.completed == 1
        assert result.relayed == 1
        assert result.best_mos() > 3.5
        assert result.media_delivered[0] > 0
        assert result.wire_drops == 0
        call = result.calls[0]
        assert call.path_rtt_ms < call.direct_rtt_ms
        assert call.selection_messages > 0
        # the setup critical path was recorded step by step
        assert [name for name, _ in call.steps][:2] == ["ping", "close_set"]

    def test_same_seed_runs_are_byte_identical(self, tmp_path, cache_dir):
        runs = []
        for name in ("a", "b"):
            world = ServiceWorld.from_scale(SCALE, SEED, cache_dir=cache_dir)
            out = tmp_path / name
            result, trace_bytes = _traced_demo(out, world)
            runs.append((result, trace_bytes))
        (r1, t1), (r2, t2) = runs
        assert t1 == t2  # traces.jsonl byte-identical
        assert r1.virtual_ms == r2.virtual_ms
        assert r1.wire_deliveries == r2.wire_deliveries
        assert [c.mos for c in r1.calls] == [c.mos for c in r2.calls]

    def test_span_vocabulary_matches_the_runtime(self, tmp_path, world):
        _, trace_bytes = _traced_demo(tmp_path / "t", world)
        records = [
            json.loads(line) for line in trace_bytes.splitlines() if line
        ]
        assert records[0]["kind"] == "header"
        names = {r["name"] for r in records if r["kind"] in ("span", "point")}
        # the simulated runtime's vocabulary, produced by real daemons
        assert {"join", "call", "setup.ping", "setup.select",
                "setup.close_set", "setup.done", "media",
                "net.request"} <= names
        requests = [
            r for r in records
            if r["kind"] == "span" and r["name"] == "net.request"
        ]
        assert requests
        for record in requests:
            assert "category" in record["attrs"]
            assert record["attrs"]["outcome"] in ("response", "timeout", "error")
        # and the file validates against the trace schema
        assert obs.validate_trace_records(
            obs.load_trace_file(tmp_path / "t" / obs.TRACES_FILENAME)
        ) == []

    def test_latent_pairs_exclude_surrogate_hosts(self, world):
        reserved = world.surrogate_ips()
        for caller, callee in world.latent_pairs(3):
            assert caller not in reserved
            assert callee not in reserved


class TestBootstrapHardening:
    """Registration edge cases: duplicates, misses, deregistration."""

    def _overlay(self, world, hub):
        async def setup():
            bootstrap = BootstrapServer(world, LoopbackTransport(hub, "boot"))
            await bootstrap.start()
            cluster = world.populated_clusters()[0]
            surrogate = SurrogateServer(
                world, cluster, LoopbackTransport(hub, "surr"), bootstrap.address
            )
            await surrogate.start()
            await surrogate.register()
            client = LoopbackTransport(hub, "client")
            await client.start()
            host = next(
                h for h in world.hosts_in_cluster(cluster)
                if h.ip != world.surrogate_ip(cluster)
            )
            return bootstrap, client, host

        return setup

    def test_duplicate_join_is_idempotent(self, world):
        async def main(hub):
            bootstrap, client, host = await self._overlay(world, hub)()
            join = Join(ip=host.ip, role=ROLE_HOST, cluster=-1, wire_addr="client")
            first = await client.request("boot", join, timeout_ms=1_000.0)
            second = await client.request("boot", join, timeout_ms=1_000.0)
            return bootstrap, first, second

        hub = LoopbackHub(latency_ms_fn=lambda s, d: 1.0)
        bootstrap, first, second = asyncio.run(hub.run(main(hub)))
        assert isinstance(first, JoinOk)
        assert second == first  # same cluster, same surrogate
        assert bootstrap.duplicate_joins == 1
        assert list(bootstrap.directory.values()).count("client") == 1

    def test_resolve_unknown_host_is_well_formed_not_found(self, world):
        async def main(hub):
            _, client, _ = await self._overlay(world, hub)()
            return await client.request(
                "boot", Resolve(ip=IPv4Address(0xDEADBEEF)), timeout_ms=1_000.0
            )

        hub = LoopbackHub(latency_ms_fn=lambda s, d: 1.0)
        reply = asyncio.run(hub.run(main(hub)))
        assert isinstance(reply, ResolveOk)
        assert reply.found == 0
        assert reply.addr == ""

    def test_leave_deregisters_and_is_safe_to_repeat(self, world):
        async def main(hub):
            bootstrap, client, host = await self._overlay(world, hub)()
            join = Join(ip=host.ip, role=ROLE_HOST, cluster=-1, wire_addr="client")
            await client.request("boot", join, timeout_ms=1_000.0)
            await client.send("boot", Leave(ip=host.ip))
            await client.sleep_ms(10.0)
            gone = await client.request(
                "boot", Resolve(ip=host.ip), timeout_ms=1_000.0
            )
            await client.send("boot", Leave(ip=host.ip))  # duplicate: no-op
            await client.sleep_ms(10.0)
            return bootstrap, gone

        hub = LoopbackHub(latency_ms_fn=lambda s, d: 1.0)
        bootstrap, gone = asyncio.run(hub.run(main(hub)))
        assert gone.found == 0
        assert bootstrap.leaves == 1


class TestShardedDemo:
    def test_three_shard_overlay_completes_and_routes_home(self, world):
        result = run_demo(world=world, calls=1, media_ms=1_000.0, shards=3)
        assert result.completed == 1
        assert result.relayed == 1
        assert result.shard_count == 3
        # The router sent every join to the ring owner of its cluster.
        assert result.foreign_joins == [0, 0, 0]


class TestTcpDemo:
    def test_completes_the_same_call_over_real_sockets(self, world, cache_dir):
        tcp = run_demo(world=world, calls=1, media_ms=1_000.0, transport="tcp")
        assert tcp.completed == 1
        assert tcp.relayed == 1
        assert tcp.best_mos() > 3.5
        # the relay decision agrees with a loopback run of the same world
        loop = run_demo(
            world=ServiceWorld.from_scale(SCALE, SEED, cache_dir=cache_dir),
            calls=1,
            media_ms=1_000.0,
        )
        assert tcp.calls[0].relay_cluster == loop.calls[0].relay_cluster
        assert tcp.calls[0].path_rtt_ms == pytest.approx(
            loop.calls[0].path_rtt_ms
        )
