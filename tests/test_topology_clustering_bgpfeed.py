"""Tests for prefix clustering and the synthetic BGP feed."""

import pytest

from repro.bgp import PrefixOriginTable, RoutingTable, parse_rib_dump, format_rib_dump
from repro.bgp.routing import PolicyRouter
from repro.errors import TopologyError
from repro.topology import (
    PopulationConfig,
    TopologyConfig,
    allocate_prefixes,
    build_clusters,
    generate_population,
    generate_rib_entries,
    generate_topology,
    generate_update_stream,
)
from repro.topology.bgpfeed import pick_vantage_ases

SMALL = TopologyConfig(tier1_count=4, tier2_count=12, tier3_count=40, seed=1)


@pytest.fixture(scope="module")
def world():
    topo = generate_topology(SMALL)
    allocation = allocate_prefixes(topo, seed=1)
    entries = generate_rib_entries(topo, allocation, vantage_count=5, seed=1)
    table = RoutingTable.from_entries(entries)
    prefix_table = PrefixOriginTable.from_routing_table(table)
    population = generate_population(
        topo, allocation, PopulationConfig(host_count=400, seed=2)
    )
    return topo, allocation, entries, prefix_table, population


class TestBGPFeed:
    def test_vantages_are_transit(self, world):
        topo, *_ = world
        vantages = pick_vantage_ases(topo, 5, seed=1)
        assert len(vantages) == 5
        assert set(vantages) <= set(topo.transit_ases())

    def test_entries_origin_matches_allocation(self, world):
        topo, allocation, entries, *_ = world
        for entry in entries[:200]:
            assert entry.prefix in allocation.prefixes_of[entry.origin_as]

    def test_entries_paths_are_policy_paths(self, world):
        topo, allocation, entries, *_ = world
        router = PolicyRouter(topo.graph)
        for entry in entries[:100]:
            path = entry.as_path
            assert topo.graph.is_valley_free(path)
            assert router.as_path(path[0], path[-1]) == path

    def test_dump_round_trip(self, world):
        _, _, entries, *_ = world
        parsed = list(parse_rib_dump(format_rib_dump(entries).splitlines()))
        assert parsed == entries

    def test_update_stream_replay(self, world):
        topo, allocation, entries, *_ = world
        table = RoutingTable.from_entries(entries)
        updates = generate_update_stream(
            topo, allocation, churn_fraction=0.2, vantage_count=5, seed=1
        )
        assert updates, "expected churn at 20%"
        from repro.bgp import apply_updates
        before = len(table)
        apply_updates(table, updates)
        # Withdraw+re-announce pairs leave the table at the same size.
        assert len(table) == before

    def test_prefix_table_covers_population(self, world):
        _, _, _, prefix_table, population = world
        for host in population.hosts:
            match = prefix_table.lookup(host.ip)
            assert match is not None
            _, asn = match
            assert asn == host.asn


class TestClustering:
    def test_clusters_group_by_prefix(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        for cluster in index.all_clusters():
            for host in cluster.hosts:
                assert cluster.prefix.contains(host.ip)

    def test_every_host_clustered(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        clustered = sum(len(c) for c in index.all_clusters())
        assert clustered + len(index.unmatched) == len(population)
        assert not index.unmatched  # full BGP coverage in generated worlds

    def test_delegate_is_member(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        for cluster in index.all_clusters():
            assert cluster.delegate in cluster.hosts

    def test_delegate_deterministic(self, world):
        *_, prefix_table, population = world
        a = build_clusters(population, prefix_table, seed=3)
        b = build_clusters(population, prefix_table, seed=3)
        for pa, pb in zip(a.all_clusters(), b.all_clusters()):
            assert pa.delegate.ip == pb.delegate.ip

    def test_cluster_of_lookup(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        host = population.hosts[0]
        assert host.ip in index
        assert index.cluster_of(host.ip).prefix.contains(host.ip)

    def test_cluster_of_unknown_raises(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        from repro.netaddr import IPv4Address
        with pytest.raises(TopologyError):
            index.cluster_of(IPv4Address.from_string("203.0.113.1"))

    def test_most_capable_host(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        big = max(index.all_clusters(), key=len)
        best = big.most_capable_host()
        assert all(
            best.info.capability() >= h.info.capability() for h in big.hosts
        )

    def test_occupancy_distribution_sorted(self, world):
        *_, prefix_table, population = world
        index = build_clusters(population, prefix_table, seed=3)
        occ = index.occupancy_distribution()
        assert occ == sorted(occ, reverse=True)
        assert sum(occ) == len(population)
