"""Tests for select-close-relay (paper Fig. 10)."""

import pytest

from repro.core import ASAPConfig, select_close_relay
from repro.core.close_cluster import CloseClusterEntry, CloseClusterSet


def close_set(owner, rtts):
    """Build a CloseClusterSet from {cluster: rtt}."""
    cs = CloseClusterSet(owner=owner)
    for cluster, rtt in rtts.items():
        cs.entries[cluster] = CloseClusterEntry(cluster, rtt, 0.0, 1)
    return cs


def sizes(mapping):
    return lambda idx: mapping.get(idx, 1)


def no_two_hop(idx):
    raise AssertionError("two-hop expansion should not run")


class TestOneHop:
    def test_intersection_with_threshold(self):
        s1 = close_set(0, {10: 100.0, 11: 100.0, 12: 280.0})
        s2 = close_set(1, {10: 100.0, 12: 100.0, 13: 50.0})
        config = ASAPConfig(size_threshold=0)  # no two-hop
        result = select_close_relay(s1, s2, sizes({10: 5, 12: 3}), no_two_hop, config)
        clusters = {c.cluster for c in result.one_hop}
        # 10: 100+100+40=240 ✓; 12: 280+100+40=420 ✗; 11/13 not common.
        assert clusters == {10}
        assert result.one_hop_ips == 5
        assert result.quality_paths == 5

    def test_two_messages_for_one_hop(self):
        s1 = close_set(0, {10: 100.0})
        s2 = close_set(1, {10: 100.0})
        result = select_close_relay(
            s1, s2, sizes({10: 400}), no_two_hop, ASAPConfig(size_threshold=300)
        )
        assert result.messages == 2
        assert result.two_hop_queries == 0

    def test_relay_rtt_computation(self):
        s1 = close_set(0, {10: 120.0})
        s2 = close_set(1, {10: 90.0})
        result = select_close_relay(
            s1, s2, sizes({}), no_two_hop, ASAPConfig(size_threshold=0)
        )
        assert result.one_hop[0].relay_rtt_ms == pytest.approx(120.0 + 90.0 + 40.0)

    def test_empty_intersection_no_one_hop(self):
        s1 = close_set(0, {10: 100.0})
        s2 = close_set(1, {11: 100.0})
        result = select_close_relay(
            s1, s2, sizes({}), lambda idx: close_set(idx, {}), ASAPConfig()
        )
        assert result.one_hop == []
        assert result.best_rtt_ms() is None


class TestTwoHop:
    def test_two_hop_triggered_below_size_threshold(self):
        s1 = close_set(0, {10: 80.0})
        s2 = close_set(1, {10: 80.0, 20: 60.0})
        fetched = []

        def close_of(idx):
            fetched.append(idx)
            return close_set(idx, {20: 50.0})

        config = ASAPConfig(size_threshold=100)
        result = select_close_relay(s1, s2, sizes({10: 2, 20: 3}), close_of, config)
        assert fetched == [10]
        assert result.two_hop_queries == 1
        assert result.messages == 4  # 2 + 2 per query
        # Path 0 -10- 20 -1: 80 + 50 + 60 + 80 = 270 < 300.
        assert len(result.two_hop) == 1
        assert result.two_hop[0].relay_rtt_ms == pytest.approx(270.0)
        assert result.two_hop_pairs == 2 * 3
        assert result.quality_paths == 2 + 6

    def test_two_hop_skipped_when_enough_one_hop(self):
        s1 = close_set(0, {10: 80.0})
        s2 = close_set(1, {10: 80.0})
        result = select_close_relay(
            s1, s2, sizes({10: 500}), no_two_hop, ASAPConfig(size_threshold=300)
        )
        assert result.two_hop == []

    def test_two_hop_requires_r2_in_s2(self):
        s1 = close_set(0, {10: 80.0})
        s2 = close_set(1, {10: 80.0})

        def close_of(idx):
            return close_set(idx, {30: 10.0})  # 30 not in S2

        result = select_close_relay(s1, s2, sizes({10: 1}), close_of, ASAPConfig())
        assert result.two_hop == []

    def test_two_hop_threshold_applies(self):
        s1 = close_set(0, {10: 150.0})
        s2 = close_set(1, {10: 150.0, 20: 100.0})

        def close_of(idx):
            return close_set(idx, {20: 100.0})

        # 150 + 100 + 100 + 80 = 430 > 300 → rejected.
        result = select_close_relay(s1, s2, sizes({}), close_of, ASAPConfig())
        assert result.two_hop == []

    def test_max_two_hop_queries_cap(self):
        s1 = close_set(0, {10: 80.0, 11: 80.0, 12: 80.0})
        s2 = close_set(1, {10: 80.0, 11: 80.0, 12: 80.0})
        fetched = []

        def close_of(idx):
            fetched.append(idx)
            return close_set(idx, {})

        config = ASAPConfig(size_threshold=10**6, max_two_hop_queries=2)
        result = select_close_relay(s1, s2, sizes({}), close_of, config)
        assert len(fetched) == 2
        assert result.messages == 2 + 4

    def test_r1_equals_r2_skipped(self):
        s1 = close_set(0, {10: 50.0})
        s2 = close_set(1, {10: 50.0})

        def close_of(idx):
            return close_set(idx, {10: 0.0})

        result = select_close_relay(s1, s2, sizes({10: 1}), close_of, ASAPConfig())
        assert all(c.first != c.second for c in result.two_hop)

    def test_best_rtt_over_both_sets(self):
        s1 = close_set(0, {10: 100.0})
        s2 = close_set(1, {10: 100.0, 20: 50.0})

        def close_of(idx):
            return close_set(idx, {20: 40.0})

        result = select_close_relay(
            s1, s2, sizes({10: 1, 20: 1}), close_of, ASAPConfig(size_threshold=300)
        )
        one_hop_rtt = 100.0 + 100.0 + 40.0      # 240
        two_hop_rtt = 100.0 + 40.0 + 50.0 + 80  # 270
        assert result.best_rtt_ms() == pytest.approx(min(one_hop_rtt, two_hop_rtt))
