"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.core import ASAPConfig, ASAPSystem
from repro.core.runtime import ASAPRuntime
from repro.errors import EvaluationError, MeasurementError, TopologyError
from repro.measurement.matrix import compute_delegate_matrices
from repro.scenario import ScenarioConfig, build_scenario, tiny_scenario
from repro.topology import PopulationConfig, TopologyConfig
from repro.topology.clustering import ClusterIndex
from repro.evaluation.sessions import generate_workload


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


class TestEmptyAndDegenerateInputs:
    def test_empty_cluster_index_rejected_by_matrix(self, scenario):
        with pytest.raises(MeasurementError):
            compute_delegate_matrices(scenario.latency, ClusterIndex())

    def test_call_between_same_cluster_hosts(self, scenario):
        system = ASAPSystem(scenario)
        cluster = max(scenario.clusters.all_clusters(), key=len)
        if len(cluster) < 2:
            pytest.skip("no multi-host cluster")
        a, b = cluster.hosts[0].ip, cluster.hosts[1].ip
        session = system.call(a, b)
        # Intra-cluster direct path is always fast: no relay needed.
        assert not session.relay_needed
        assert session.caller_cluster == session.callee_cluster

    def test_call_with_unknown_ip_raises(self, scenario):
        from repro.netaddr import IPv4Address

        system = ASAPSystem(scenario)
        with pytest.raises(TopologyError):
            system.call(IPv4Address.from_string("203.0.113.5"), scenario.population.hosts[0].ip)

    def test_workload_on_minimal_population(self):
        config = ScenarioConfig(
            topology=TopologyConfig(tier1_count=2, tier2_count=3, tier3_count=8, seed=3),
            population=PopulationConfig(host_count=6, seed=3),
        ).with_seed(3)
        scenario = build_scenario(config)
        workload = generate_workload(scenario, 10, seed=1)
        assert len(workload) == 10
        for session in workload.sessions:
            assert session.caller != session.callee


class TestFailureInjection:
    def test_heavy_failures_still_build(self):
        from repro.measurement.conditions import ConditionsConfig

        config = ScenarioConfig(
            topology=TopologyConfig(tier1_count=3, tier2_count=12, tier3_count=40, seed=5),
            population=PopulationConfig(host_count=300, seed=5),
            conditions=ConditionsConfig(failed_fraction=0.25, seed=5),
        )
        scenario = build_scenario(config)
        matrices = scenario.matrices
        # Heavy failures leave unreachable pairs, but the build survives
        # and the reachable core still routes.
        assert np.isfinite(matrices.rtt_ms).mean() > 0.2

    def test_workload_avoids_offline_hosts_under_failures(self):
        from repro.measurement.conditions import ConditionsConfig

        config = ScenarioConfig(
            topology=TopologyConfig(tier1_count=3, tier2_count=12, tier3_count=40, seed=5),
            population=PopulationConfig(host_count=300, seed=5),
            conditions=ConditionsConfig(failed_fraction=0.25, seed=5),
        )
        scenario = build_scenario(config)
        workload = generate_workload(scenario, 150, seed=2)
        matrices = scenario.matrices
        finite_fraction = np.mean(np.isfinite(matrices.rtt_ms), axis=1)
        for session in workload.sessions:
            assert finite_fraction[session.caller_cluster] >= 0.5
            assert finite_fraction[session.callee_cluster] >= 0.5

    def test_runtime_call_to_unreachable_callee_never_completes(self):
        from repro.measurement.conditions import ConditionsConfig

        config = ScenarioConfig(
            topology=TopologyConfig(tier1_count=3, tier2_count=12, tier3_count=40, seed=5),
            population=PopulationConfig(host_count=300, seed=5),
            conditions=ConditionsConfig(failed_fraction=0.25, seed=5),
        )
        scenario = build_scenario(config)
        matrices = scenario.matrices
        # Find a pair with no route at all.
        dead = np.argwhere(~np.isfinite(matrices.rtt_ms))
        pair = None
        clusters = scenario.clusters.all_clusters()
        for a, b in dead:
            if a != b and clusters[int(a)].hosts and clusters[int(b)].hosts:
                pair = (clusters[int(a)].hosts[0].ip, clusters[int(b)].hosts[0].ip)
                break
        if pair is None:
            pytest.skip("no unreachable pair under this seed")
        runtime = ASAPRuntime(scenario, ASAPConfig())
        record = runtime.schedule_call(*pair)
        runtime.run()
        assert record.setup_ms is None  # the ping never comes back


class TestConfigInteractions:
    def test_zero_relay_delay(self, scenario):
        system = ASAPSystem(scenario, ASAPConfig(relay_delay_rtt_ms=0.0, k_hops=5))
        workload = generate_workload(scenario, 200, seed=4, latent_target=3)
        latent = workload.latent()[:3]
        if not latent:
            pytest.skip("no latent sessions")
        for session in latent:
            call = system.call(session.caller, session.callee)
            if call.selection is not None:
                for cand in call.selection.one_hop:
                    # Without relay delay, the candidate RTT is just the
                    # two legs.
                    s1 = system.close_set(call.caller_cluster)
                    s2 = system.close_set(call.callee_cluster)
                    assert cand.relay_rtt_ms == pytest.approx(
                        s1.rtt_to(cand.cluster) + s2.rtt_to(cand.cluster)
                    )

    def test_huge_k_saturates_at_reachability(self, scenario):
        small_k = ASAPSystem(scenario, ASAPConfig(k_hops=6))
        huge_k = ASAPSystem(scenario, ASAPConfig(k_hops=8))
        a = 0
        assert set(huge_k.close_set(a).entries) >= set(small_k.close_set(a).entries)

    def test_loss_threshold_zero_point_one_percent(self, scenario):
        # An extremely tight loss threshold shrinks close sets.
        tight = ASAPSystem(scenario, ASAPConfig(loss_threshold=1e-6, k_hops=4))
        loose = ASAPSystem(scenario, ASAPConfig(loss_threshold=0.5, k_hops=4))
        assert len(tight.close_set(0)) <= len(loose.close_set(0))
