"""Tests for the DEDI / RAND / MIX / OPT baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineConfig,
    DEDIMethod,
    MIXMethod,
    OPTMethod,
    RANDMethod,
)
from repro.errors import ConfigurationError
from repro.scenario import tiny_scenario


@pytest.fixture(scope="module")
def world():
    scenario = tiny_scenario(seed=6)
    return scenario, scenario.matrices, scenario.topology.graph


def a_session(matrices):
    finite = np.argwhere(np.isfinite(matrices.rtt_ms))
    for a, b in finite:
        if a != b:
            return int(a), int(b)
    raise AssertionError("no session")


class TestBaselineConfig:
    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(dedicated_count=-1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(lat_threshold_ms=0)


class TestDEDI:
    def test_fleet_in_top_degree_clusters(self, world):
        _, matrices, graph = world
        config = BaselineConfig(dedicated_count=10)
        dedi = DEDIMethod(graph, config)
        fleet = dedi.fleet_for(matrices)
        assert len(fleet) == 10
        degrees = [graph.degree(int(matrices.asn_of[c])) for c in fleet]
        others = [
            graph.degree(int(matrices.asn_of[c]))
            for c in range(matrices.count)
            if c not in fleet
        ]
        assert min(degrees) >= max(others) - 1  # ranked placement

    def test_fixed_messages(self, world):
        _, matrices, graph = world
        dedi = DEDIMethod(graph, BaselineConfig(dedicated_count=10))
        a, b = a_session(matrices)
        result = dedi.evaluate_session(matrices, a, b)
        assert result.messages == 2 * result.probed_nodes
        assert result.probed_nodes <= 10

    def test_endpoints_excluded_from_fleet_probes(self, world):
        _, matrices, graph = world
        dedi = DEDIMethod(graph, BaselineConfig(dedicated_count=matrices.count))
        a, b = a_session(matrices)
        result = dedi.evaluate_session(matrices, a, b)
        assert result.probed_nodes == matrices.count - 2

    def test_quality_counts_threshold(self, world):
        _, matrices, graph = world
        dedi = DEDIMethod(graph, BaselineConfig(dedicated_count=20))
        a, b = a_session(matrices)
        result = dedi.evaluate_session(matrices, a, b)
        manual = 0
        for c in dedi.fleet_for(matrices):
            if c in (a, b):
                continue
            rtt = matrices.rtt_ms[a, c] + matrices.rtt_ms[c, b] + 40.0
            if np.isfinite(rtt) and rtt < 300.0:
                manual += 1
        assert result.quality_paths == manual


class TestRAND:
    def test_deterministic_per_session(self, world):
        _, matrices, _ = world
        rand = RANDMethod(BaselineConfig(random_probes=50))
        a, b = a_session(matrices)
        r1 = rand.evaluate_session(matrices, a, b, session_id=7)
        r2 = rand.evaluate_session(matrices, a, b, session_id=7)
        assert r1 == r2

    def test_different_sessions_differ(self, world):
        _, matrices, _ = world
        rand = RANDMethod(BaselineConfig(random_probes=50))
        a, b = a_session(matrices)
        r1 = rand.evaluate_session(matrices, a, b, session_id=1)
        r2 = rand.evaluate_session(matrices, a, b, session_id=2)
        # Random draws differ (overwhelmingly likely to change results).
        assert (r1.best_rtt_ms, r1.quality_paths) != (r2.best_rtt_ms, r2.quality_paths)

    def test_probe_budget_respected(self, world):
        _, matrices, _ = world
        rand = RANDMethod(BaselineConfig(random_probes=30))
        a, b = a_session(matrices)
        result = rand.evaluate_session(matrices, a, b)
        assert result.probed_nodes <= 30

    def test_population_weighting(self, world):
        # Clusters with more hosts must be drawn more often.
        _, matrices, _ = world
        rand = RANDMethod(BaselineConfig(random_probes=2000))
        sizes = matrices.sizes.astype(float)
        weights = sizes / sizes.sum()
        rng = rand._session_rng(0)
        draws = rng.choice(matrices.count, size=2000, replace=True, p=weights)
        counts = np.bincount(draws, minlength=matrices.count)
        big = int(np.argmax(matrices.sizes))
        small = int(np.argmin(matrices.sizes))
        assert counts[big] >= counts[small]


class TestMIX:
    def test_combines_budgets(self, world):
        _, matrices, graph = world
        config = BaselineConfig(mix_dedicated=5, mix_random=15)
        mix = MIXMethod(graph, config)
        a, b = a_session(matrices)
        result = mix.evaluate_session(matrices, a, b)
        assert result.probed_nodes <= 20
        assert result.messages == 2 * result.probed_nodes

    def test_best_of_both(self, world):
        _, matrices, graph = world
        config = BaselineConfig(mix_dedicated=5, mix_random=15)
        mix = MIXMethod(graph, config)
        a, b = a_session(matrices)
        result = mix.evaluate_session(matrices, a, b, session_id=3)
        dedi = DEDIMethod(graph, config, fleet_size=5).evaluate_session(
            matrices, a, b, 3
        )
        if result.best_rtt_ms is not None and dedi.best_rtt_ms is not None:
            assert result.best_rtt_ms <= dedi.best_rtt_ms


class TestOPT:
    def test_one_hop_excludes_endpoint_clusters(self, world):
        _, matrices, _ = world
        opt = OPTMethod()
        a, b = a_session(matrices)
        relay, _ = opt.best_one_hop(matrices, a, b)
        assert relay not in (a, b)

    def test_one_hop_is_minimum(self, world):
        _, matrices, _ = world
        opt = OPTMethod()
        a, b = a_session(matrices)
        _, best = opt.best_one_hop(matrices, a, b)
        path = matrices.rtt_ms[a, :] + matrices.rtt_ms[:, b] + 40.0
        path[a] = np.inf
        path[b] = np.inf
        assert best == pytest.approx(float(np.min(path)))

    def test_two_hop_excludes_endpoints_as_intermediates(self):
        # Regression: the vectorized min-plus two-hop used to let the
        # endpoints themselves serve as intermediate hops, so the
        # degenerate "path" a -> b -> b -> b (three legs of the direct
        # route plus zero-length self-legs) undercut every genuine
        # two-hop relay path.  Here the direct RTT is 5 ms while every
        # leg through the only real intermediates (clusters 2, 3) costs
        # 100 ms — the buggy answer would be 5 ms + 2*delay.
        from repro.measurement.matrix import DelegateMatrices
        from repro.netaddr.ipv4 import IPv4Prefix

        n = 4
        rtt = np.full((n, n), 100.0)
        np.fill_diagonal(rtt, 0.0)
        rtt[0, 1] = rtt[1, 0] = 5.0
        prefixes = [IPv4Prefix(i << 24, 8) for i in range(1, n + 1)]
        matrices = DelegateMatrices(
            prefixes=prefixes,
            index_of={p: i for i, p in enumerate(prefixes)},
            asn_of=np.arange(n, dtype=np.int64),
            sizes=np.ones(n, dtype=np.int64),
            rtt_ms=rtt,
            loss=np.zeros((n, n)),
            as_hops=np.ones((n, n), dtype=np.int64),
        )
        config = BaselineConfig()
        opt = OPTMethod(config)
        two = opt.best_two_hop(matrices, 0, 1)
        # Best legitimate path: 0 -> 2 -> 2 -> 1 (i == j allowed).
        assert two == pytest.approx(200.0 + 2 * config.relay_delay_rtt_ms)

    def test_two_hop_at_least_as_good_with_extra_delay(self, world):
        _, matrices, _ = world
        opt = OPTMethod()
        a, b = a_session(matrices)
        _, one = opt.best_one_hop(matrices, a, b)
        two = opt.best_two_hop(matrices, a, b)
        # Chaining the optimal one-hop relay with a zero-length second
        # leg costs one extra relay delay, so two-hop can't beat one-hop
        # by more than it saves in path terms — sanity bound only:
        assert two is not None
        assert two <= one + 1000.0

    def test_offline_no_messages(self, world):
        _, matrices, _ = world
        opt = OPTMethod()
        a, b = a_session(matrices)
        result = opt.evaluate_session(matrices, a, b)
        assert result.messages == 0
        assert result.probed_nodes == 0

    def test_quality_counts_sum_cluster_sizes(self, world):
        _, matrices, _ = world
        opt = OPTMethod()
        a, b = a_session(matrices)
        result = opt.evaluate_session(matrices, a, b)
        path = matrices.rtt_ms[a, :] + matrices.rtt_ms[:, b] + 40.0
        mask = np.isfinite(path) & (path < 300.0)
        mask[a] = mask[b] = False
        assert result.quality_paths == int(matrices.sizes[mask].sum())

    def test_opt_beats_or_matches_probing_methods(self, world):
        _, matrices, graph = world
        config = BaselineConfig()
        opt = OPTMethod(config)
        dedi = DEDIMethod(graph, config)
        rand = RANDMethod(config)
        rng = np.random.default_rng(1)
        for sid in range(10):
            a, b = rng.integers(0, matrices.count, 2)
            if a == b:
                continue
            a, b = int(a), int(b)
            best_opt = opt.evaluate_session(matrices, a, b, sid).best_rtt_ms
            for method in (dedi, rand):
                other = method.evaluate_session(matrices, a, b, sid).best_rtt_ms
                if other is not None and best_opt is not None:
                    assert best_opt <= other + 1e-9
