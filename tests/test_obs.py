"""Tests for the run-wide observability layer (``repro.obs``).

Covers the four contracts the layer makes:

- the metrics registry (create-on-demand instruments, snapshot/merge);
- fork-safe aggregation: counters incremented inside ``run_forked``
  pool workers sum into the parent exactly once, and the serial path
  is never double-counted;
- the run manifest round-trips through write/load and its hand-rolled
  validator catches malformed documents;
- observability is invisible to results: section 7 produces identical
  records with a run active and with none, and the relay-selection
  message counter equals the totals the runner reports.
"""

import json

import pytest

from repro import obs
from repro.baselines import OPTMethod, RANDMethod, RelayPolicy
from repro.evaluation.policies import ASAPPolicy, default_policies
from repro.evaluation.section7 import run_section7
from repro.measurement.matrix import compute_delegate_matrices
from repro.obs.registry import MetricsRegistry
from repro.scenario import tiny_scenario
from repro.util.parallel import chunked, fork_available, run_forked


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(seed=11)


@pytest.fixture(autouse=True)
def no_leaked_run():
    """Every test starts and ends with no active observability run."""
    if obs.enabled():
        obs.finish_run()
    yield
    if obs.enabled():
        obs.finish_run()


# -- registry ------------------------------------------------------------------


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter_value("a") == 5
        assert registry.counter_value("never-touched") == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 0.25
        assert json.dumps(snap)  # JSON-serializable

    def test_merge_sums_counters_and_histograms(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(1)
        child.counter("c").inc(2)
        child.counter("only-child").inc(3)
        for value in (0.1, 0.4):
            child.histogram("h").observe(value)
        parent.histogram("h").observe(0.2)
        parent.merge_snapshot(child.snapshot())
        assert parent.counter_value("c") == 3
        assert parent.counter_value("only-child") == 3
        histogram = parent.histogram("h")
        assert histogram.count == 3
        assert histogram.min == 0.1 and histogram.max == 0.4
        assert histogram.total == pytest.approx(0.7)

    def test_merge_gauge_fills_only_when_parent_unset(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.gauge("fresh").set(1.0)
        parent.gauge("held").set(5.0)
        child.gauge("held").set(9.0)
        parent.merge_snapshot(child.snapshot())
        assert parent.gauge("fresh").value == 1.0
        assert parent.gauge("held").value == 5.0


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) is None

    def test_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_quantiles_ordered_and_bounded(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        p50, p95, p99 = (
            histogram.quantile(0.50),
            histogram.quantile(0.95),
            histogram.quantile(0.99),
        )
        assert histogram.min <= p50 <= p95 <= p99 <= histogram.max
        # Log2 buckets: the estimate is within one bucket of the truth.
        assert p50 == pytest.approx(50.0, rel=0.5)

    def test_single_value_quantiles_collapse(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(3.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(3.0)

    def test_snapshot_carries_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.4):
            registry.histogram("h").observe(value)
        entry = registry.snapshot()["histograms"]["h"]
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99", "buckets"):
            assert key in entry
        assert entry["p50"] <= entry["p95"] <= entry["p99"]

    def test_quantiles_survive_merge(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            parent.histogram("h").observe(value)
        for value in (3.0, 4.0):
            child.histogram("h").observe(value)
        parent.merge_snapshot(child.snapshot())
        assert parent.histogram("h").quantile(1.0) == pytest.approx(4.0)
        assert parent.histogram("h").quantile(0.0) == pytest.approx(1.0)


# -- module-level hooks --------------------------------------------------------


class TestHooks:
    def test_disabled_hooks_are_shared_noops(self):
        assert not obs.enabled()
        assert obs.counter("x") is obs.counter("y")
        obs.counter("x").inc()  # goes nowhere, raises nothing
        obs.gauge("x").set(1.0)
        obs.histogram("x").observe(1.0)
        with obs.span("x"):
            pass
        obs.event("x")
        obs.annotate(seed=3)

    def test_nested_runs_are_rejected(self):
        with obs.observe():
            with pytest.raises(RuntimeError):
                obs.start_run()

    def test_counters_reach_the_active_run(self):
        with obs.observe() as run:
            obs.counter("hit").inc(2)
            assert run.registry.counter_value("hit") == 2
        assert not obs.enabled()


# -- fork-safe aggregation -----------------------------------------------------


def _counting_worker(chunk):
    for item in chunk:
        obs.counter("test.items").inc()
        obs.histogram("test.item_value").observe(float(item))
    return sum(chunk)


class TestForkedMerge:
    def test_child_counters_sum_exactly_once(self):
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        items = list(range(20))
        with obs.observe() as run:
            results = run_forked(_counting_worker, chunked(items, 6), processes=2)
            assert sum(results) == sum(items)
            assert run.registry.counter_value("test.items") == len(items)
            assert run.registry.counter_value("parallel.chunk_items") == len(items)
            assert run.registry.counter_value("parallel.chunks") == len(
                chunked(items, 6)
            )
            assert run.registry.histogram("test.item_value").count == len(items)

    def test_serial_and_parallel_paths_count_columns_identically(self, scenario):
        with obs.observe() as run:
            serial = compute_delegate_matrices(
                scenario.latency, scenario.clusters, workers=1
            )
            serial_columns = run.registry.counter_value("matrix.columns")
        assert serial_columns == serial.count
        if not fork_available():
            return
        with obs.observe() as run:
            compute_delegate_matrices(scenario.latency, scenario.clusters, workers=2)
            assert run.registry.counter_value("matrix.columns") == serial.count

    def test_fork_merge_exact_once_with_tracing_active(self, tmp_path):
        """Tracing must not change fork-merge semantics: metrics from
        workers still sum exactly once, and only the parent writes trace
        records (children are detached, so ids never race)."""
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        items = list(range(12))
        with obs.observe(obs_dir=tmp_path, command="unit", trace=True) as run:
            root = obs.tracer().begin("call", 0.0)
            results = run_forked(_counting_worker, chunked(items, 4), processes=2)
            root.end(1.0)
            assert sum(results) == sum(items)
            assert run.registry.counter_value("test.items") == len(items)
            assert run.registry.histogram("test.item_value").count == len(items)
            assert run.trace is not None  # the parent tracer stays attached
            written = run.trace.records_written
        records = obs.load_trace_file(tmp_path / obs.TRACES_FILENAME)
        assert len(records) == written == 2  # header + root span, nothing forked

    def test_fork_merge_identical_with_and_without_tracing(self):
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        items = list(range(15))
        snapshots = []
        for trace in (False, True):
            with obs.observe(trace=trace) as run:
                run_forked(_counting_worker, chunked(items, 5), processes=2)
                snapshot = run.registry.snapshot()
                snapshots.append(
                    (snapshot["counters"], snapshot["histograms"]["test.item_value"])
                )
        # Wall-clock timing histograms differ run to run; the worker-fed
        # metrics must be identical whether or not tracing was active.
        assert snapshots[0] == snapshots[1]

    def test_run_forked_untouched_when_disabled(self):
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        assert not obs.enabled()
        results = run_forked(_counting_worker, chunked(list(range(6)), 2), processes=2)
        assert sum(results) == sum(range(6))


# -- events and manifest -------------------------------------------------------


class TestEventsAndManifest:
    def test_manifest_round_trip(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, command="unit", argv=["--flag"]) as run:
            obs.annotate(seed=3, scale="tiny", config_key="abc", workers=1)
            obs.annotate(custom="kept")
            obs.counter("cache.scenario.hits").inc()
            obs.event("marker", payload=7)
        manifest = obs.load_manifest(tmp_path / obs.MANIFEST_FILENAME)
        assert obs.validate_manifest(manifest) == []
        assert manifest["command"] == "unit"
        assert manifest["argv"] == ["--flag"]
        assert manifest["seed"] == 3
        assert manifest["scale"] == "tiny"
        assert manifest["config_key"] == "abc"
        assert manifest["workers"] == 1
        assert manifest["cache"]["scenario_hits"] == 1
        assert manifest["counters"]["cache.scenario.hits"] == 1
        assert manifest["annotations"] == {"custom": "kept"}
        assert manifest["run_id"] == run.run_id
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        names = [e["name"] for e in events]
        assert names[0] == "run.start"
        assert "marker" in names
        assert names[-1] == "run.finish"
        assert manifest["events_written"] == len(events)

    def test_validator_rejects_malformed_documents(self, tmp_path):
        with obs.observe(obs_dir=tmp_path):
            pass
        document = obs.load_manifest(tmp_path / obs.MANIFEST_FILENAME)
        assert obs.validate_manifest(document) == []
        missing = dict(document)
        del missing["run_id"]
        assert any("run_id" in p for p in obs.validate_manifest(missing))
        wrong_type = dict(document, wall_seconds="fast")
        assert any("wall_seconds" in p for p in obs.validate_manifest(wrong_type))
        unknown = dict(document, extra=1)
        assert any("extra" in p for p in obs.validate_manifest(unknown))
        stale = dict(document, schema=99)
        assert any("schema" in p for p in obs.validate_manifest(stale))
        bad_cache = dict(document, cache={})
        assert any("cache." in p for p in obs.validate_manifest(bad_cache))

    def test_debug_events_dropped_at_info_level(self, tmp_path):
        with obs.observe(obs_dir=tmp_path, log_level="info"):
            obs.event("kept", level="info")
            obs.event("dropped", level="debug")
        names = [
            json.loads(line)["name"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert "kept" in names
        assert "dropped" not in names

    def test_span_durations_land_in_histograms(self):
        with obs.observe() as run:
            with obs.span("unit.block"):
                pass
            assert run.registry.histogram("span.unit.block").count == 1


# -- policies satisfy the protocol ---------------------------------------------


class TestRelayPolicyProtocol:
    def test_baselines_and_adapter_satisfy_protocol(self, scenario):
        policies = default_policies(scenario, methods=("RAND", "ASAP", "OPT"))
        assert [p.name for p in policies] == ["RAND", "ASAP", "OPT"]
        for policy in policies:
            assert isinstance(policy, RelayPolicy)
        assert isinstance(policies[1], ASAPPolicy)

    def test_evaluate_session_delegates_to_batch(self, scenario):
        engine = RANDMethod()
        matrices = scenario.matrices
        single = engine.evaluate_session(matrices, 0, 1, session_id=5)
        batch = engine.evaluate_sessions(matrices, [(0, 1)], session_ids=[5])[0]
        assert single == batch

    def test_opt_reports_no_one_hop_split(self, scenario):
        result = OPTMethod().evaluate_session(scenario.matrices, 0, 1)
        assert result.one_hop_quality_paths is None


# -- observability never changes results ---------------------------------------


class TestResultsUnchanged:
    def test_section7_identical_with_and_without_obs(self, scenario):
        kwargs = dict(session_count=400, latent_target=10, max_latent_sessions=10)
        bare = run_section7(scenario, **kwargs)
        with obs.observe() as run:
            observed = run_section7(scenario, **kwargs)
        assert set(bare.records) == set(observed.records)
        for method, records in bare.records.items():
            assert records == observed.records[method]
        # The acceptance contract: the relay-selection message counter
        # equals the ASAPSession.messages totals the runner reports.
        asap_messages = sum(r.messages for r in observed.records["ASAP"])
        assert run.registry.counter_value("asap.select.messages") == asap_messages
