"""Unit + property tests for the BGP policy routing engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.bgp import ASGraph, PolicyRouter, RouteClass
from repro.topology import TopologyConfig, generate_topology


def diamond():
    g = ASGraph()
    g.add_peer(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    return g


class TestPolicyRoutesOnDiamond:
    def test_customer_route_preferred(self):
        router = PolicyRouter(diamond())
        # 3's route to 5: learned from customer 5 directly.
        route = router.route(3, 5)
        assert route.route_class is RouteClass.CUSTOMER
        assert route.as_path == (3, 5)

    def test_origin_route(self):
        router = PolicyRouter(diamond())
        route = router.route(5, 5)
        assert route.route_class is RouteClass.ORIGIN
        assert route.as_path == (5,)

    def test_provider_route_when_no_other(self):
        router = PolicyRouter(diamond())
        # 5's route to 1 must climb to a provider.
        route = router.route(5, 1)
        assert route.route_class is RouteClass.PROVIDER
        assert route.as_path == (5, 3, 1)

    def test_peer_route(self):
        router = PolicyRouter(diamond())
        # 1's route to 4: peer 2 has a customer route to 4.
        route = router.route(1, 4)
        assert route.route_class is RouteClass.PEER
        assert route.as_path == (1, 2, 4)

    def test_valley_free_guarantee(self):
        g = diamond()
        router = PolicyRouter(g)
        # 3's route to 4 cannot be the valley 3-5-4.
        route = router.route(3, 4)
        assert route.as_path == (3, 1, 2, 4)
        assert g.is_valley_free(route.as_path)

    def test_customer_preference_beats_shorter_provider_path(self):
        # 10 provides for 11; 11 provides for 12.  10 also peers with 12's
        # other provider 13.  11's route to 12 must use the customer edge
        # even if an alternative existed.
        g = ASGraph()
        g.add_provider_customer(10, 11)
        g.add_provider_customer(11, 12)
        g.add_provider_customer(13, 12)
        g.add_peer(10, 13)
        router = PolicyRouter(g)
        route = router.route(11, 12)
        assert route.route_class is RouteClass.CUSTOMER
        assert route.as_path == (11, 12)

    def test_no_export_of_peer_routes_to_peers(self):
        # 1-peer-2, 2-peer-3 only: 1 must NOT reach 3 through 2 because 2
        # does not export a peer-learned route to its peer.
        g = ASGraph()
        g.add_peer(1, 2)
        g.add_peer(2, 3)
        router = PolicyRouter(g)
        assert router.route(1, 3) is None

    def test_customer_routes_exported_to_peers(self):
        g = ASGraph()
        g.add_peer(1, 2)
        g.add_provider_customer(2, 3)
        router = PolicyRouter(g)
        route = router.route(1, 3)
        assert route is not None
        assert route.as_path == (1, 2, 3)

    def test_unknown_as_raises(self):
        router = PolicyRouter(diamond())
        with pytest.raises(TopologyError):
            router.route(99, 5)

    def test_unreachable_returns_none(self):
        g = diamond()
        g.add_as(42)
        router = PolicyRouter(g)
        assert router.route(42, 5) is None
        assert router.route(5, 42) is None

    def test_cache_hit_returns_same_tree(self):
        router = PolicyRouter(diamond(), cache_size=2)
        t1 = router.tree(5)
        t2 = router.tree(5)
        assert t1 is t2

    def test_cache_eviction(self):
        router = PolicyRouter(diamond(), cache_size=1)
        t1 = router.tree(5)
        router.tree(4)
        t3 = router.tree(5)
        assert t1 is not t3
        assert t1.next_hop == t3.next_hop

    def test_invalidate_clears_cache(self):
        router = PolicyRouter(diamond())
        t1 = router.tree(5)
        router.invalidate()
        assert router.tree(5) is not t1

    def test_sibling_transit(self):
        # 1 provides for 2; 2 sibling 3: 1 should reach 3 through 2.
        g = ASGraph()
        g.add_provider_customer(1, 2)
        g.add_sibling(2, 3)
        router = PolicyRouter(g)
        route = router.route(1, 3)
        assert route is not None
        assert route.as_path == (1, 2, 3)


class TestPolicyRoutesOnGeneratedTopologies:
    @given(st.integers(min_value=0, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_all_selected_paths_are_valley_free(self, seed):
        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=25, seed=seed)
        )
        router = PolicyRouter(topo.graph)
        ases = topo.graph.ases()
        # Sample destinations; every selected route must be valley-free
        # and terminate at the destination.
        for dst in ases[:: max(1, len(ases) // 6)]:
            tree = router.tree(dst)
            for src in ases[:: max(1, len(ases) // 10)]:
                path = tree.path_from(src)
                if path is None:
                    continue
                assert path[0] == src and path[-1] == dst
                assert len(set(path)) == len(path), "selected path has a loop"
                assert topo.graph.is_valley_free(path)

    @given(st.integers(min_value=0, max_value=12))
    @settings(max_examples=8, deadline=None)
    def test_stub_pairs_are_reachable(self, seed):
        # With every non-tier-1 AS having a provider, any two stubs can
        # reach each other via the core.
        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=25, seed=seed)
        )
        router = PolicyRouter(topo.graph)
        stubs = topo.stub_ases()[:8]
        for i, a in enumerate(stubs):
            for b in stubs[i + 1:]:
                assert router.route(a, b) is not None

    def test_route_distance_matches_path_length(self):
        topo = generate_topology(
            TopologyConfig(tier1_count=3, tier2_count=8, tier3_count=25, seed=5)
        )
        router = PolicyRouter(topo.graph)
        stubs = topo.stub_ases()
        dst = stubs[0]
        tree = router.tree(dst)
        for src in stubs[1:10]:
            path = tree.path_from(src)
            assert path is not None
            assert len(path) - 1 == tree.distance[src]


class TestReachableFraction:
    def test_fully_reachable_diamond(self):
        from repro.bgp.routing import reachable_pairs_fraction

        router = PolicyRouter(diamond())
        pairs = [(3, 4), (5, 1), (1, 5)]
        assert reachable_pairs_fraction(router, pairs) == 1.0

    def test_counts_unreachable(self):
        from repro.bgp.routing import reachable_pairs_fraction

        g = diamond()
        g.add_as(42)
        router = PolicyRouter(g)
        assert reachable_pairs_fraction(router, [(3, 4), (42, 5)]) == 0.5

    def test_empty_sample(self):
        from repro.bgp.routing import reachable_pairs_fraction

        assert reachable_pairs_fraction(PolicyRouter(diamond()), []) == 1.0
