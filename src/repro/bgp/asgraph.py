"""Annotated AS graph with valley-free path search.

Nodes are AS numbers; edges carry one of three commercial relationships
(provider-customer, peer-peer, sibling-sibling).  Two queries matter to
the paper:

- *valley-free reachability within k AS hops* — the BFS inside ASAP's
  ``construct-close-cluster-set()`` (Fig. 9), and
- *shortest valley-free AS-hop distance* — the paper's property (3): AS
  hop count correlates with latency.

A valley-free path is an uphill segment of customer→provider edges,
at most one peer-peer edge, then a downhill segment of provider→customer
edges [Gao 2001].  Sibling edges transit in both directions and do not
change phase.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError


class Relationship(Enum):
    """Commercial relationship of an annotated AS edge."""

    PROVIDER_CUSTOMER = "p2c"
    PEER_PEER = "p2p"
    SIBLING_SIBLING = "s2s"


# BFS phase while walking a valley-free path.
_PHASE_UP = 0    # still allowed to climb customer→provider edges
_PHASE_DOWN = 1  # crossed the ridge (peer edge or first downhill edge)


@dataclass
class ASGraph:
    """Undirected AS-level topology with per-edge relationship annotations."""

    _providers: Dict[int, Set[int]] = field(default_factory=dict)
    _customers: Dict[int, Set[int]] = field(default_factory=dict)
    _peers: Dict[int, Set[int]] = field(default_factory=dict)
    _siblings: Dict[int, Set[int]] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_as(self, asn: int) -> None:
        """Register an AS with no edges (idempotent)."""
        if asn <= 0:
            raise TopologyError(f"ASN must be positive, got {asn}")
        for table in (self._providers, self._customers, self._peers, self._siblings):
            table.setdefault(asn, set())

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Annotate: ``provider`` sells transit to ``customer``."""
        if provider == customer:
            raise TopologyError(f"self edge on AS {provider}")
        self.add_as(provider)
        self.add_as(customer)
        self._check_new_edge(provider, customer)
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_peer(self, a: int, b: int) -> None:
        """Annotate a settlement-free peer-peer edge."""
        if a == b:
            raise TopologyError(f"self edge on AS {a}")
        self.add_as(a)
        self.add_as(b)
        self._check_new_edge(a, b)
        self._peers[a].add(b)
        self._peers[b].add(a)

    def add_sibling(self, a: int, b: int) -> None:
        """Annotate a sibling edge (same organization, mutual transit)."""
        if a == b:
            raise TopologyError(f"self edge on AS {a}")
        self.add_as(a)
        self.add_as(b)
        self._check_new_edge(a, b)
        self._siblings[a].add(b)
        self._siblings[b].add(a)

    def _check_new_edge(self, a: int, b: int) -> None:
        if self.relationship(a, b) is not None:
            raise TopologyError(f"edge {a}-{b} already annotated")

    # -- basic queries -----------------------------------------------------

    def ases(self) -> List[int]:
        """All registered AS numbers, sorted."""
        return sorted(self._providers)

    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def edge_count(self) -> int:
        """Number of undirected annotated edges."""
        p2c = sum(len(c) for c in self._customers.values())
        p2p = sum(len(p) for p in self._peers.values()) // 2
        s2s = sum(len(s) for s in self._siblings.values()) // 2
        return p2c + p2p + s2s

    def providers(self, asn: int) -> Set[int]:
        return set(self._providers.get(asn, ()))

    def customers(self, asn: int) -> Set[int]:
        return set(self._customers.get(asn, ()))

    def peers(self, asn: int) -> Set[int]:
        return set(self._peers.get(asn, ()))

    def siblings(self, asn: int) -> Set[int]:
        return set(self._siblings.get(asn, ()))

    def neighbors(self, asn: int) -> Set[int]:
        """All adjacent ASes regardless of relationship."""
        return (
            self.providers(asn)
            | self.customers(asn)
            | self.peers(asn)
            | self.siblings(asn)
        )

    def degree(self, asn: int) -> int:
        """Total annotated degree of an AS."""
        return len(self.neighbors(asn))

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """The relationship annotation of edge a-b, from ``a``'s view.

        Returns PROVIDER_CUSTOMER whether ``a`` is the provider or the
        customer; use :meth:`is_provider_of` to get direction.
        """
        if b in self._customers.get(a, ()) or b in self._providers.get(a, ()):
            return Relationship.PROVIDER_CUSTOMER
        if b in self._peers.get(a, ()):
            return Relationship.PEER_PEER
        if b in self._siblings.get(a, ()):
            return Relationship.SIBLING_SIBLING
        return None

    def is_provider_of(self, a: int, b: int) -> bool:
        return b in self._customers.get(a, ())

    def multihomed_ases(self) -> List[int]:
        """ASes with two or more providers — the paper's Fig. 4 shortcut case."""
        return sorted(a for a, provs in self._providers.items() if len(provs) >= 2)

    def top_degree_ases(self, count: int) -> List[int]:
        """The ``count`` highest-degree ASes (DEDI places relays here)."""
        return sorted(self.ases(), key=lambda a: (-self.degree(a), a))[:count]

    def without(self, excluded: Iterable[int]) -> "ASGraph":
        """A copy of the graph with the given ASes (and their edges) removed.

        Used for failure injection: routing over ``without(failed)`` is
        routing after those ASes went dark.
        """
        dead = set(excluded)
        clone = ASGraph()
        for asn in self.ases():
            if asn not in dead:
                clone.add_as(asn)
        for provider, customers in self._customers.items():
            if provider in dead:
                continue
            for customer in customers:
                if customer not in dead:
                    clone.add_provider_customer(provider, customer)
        seen: Set[Tuple[int, int]] = set()
        for a, peers in self._peers.items():
            if a in dead:
                continue
            for b in peers:
                if b in dead or (b, a) in seen:
                    continue
                seen.add((a, b))
                clone.add_peer(a, b)
        seen.clear()
        for a, sibs in self._siblings.items():
            if a in dead:
                continue
            for b in sibs:
                if b in dead or (b, a) in seen:
                    continue
                seen.add((a, b))
                clone.add_sibling(a, b)
        return clone

    # -- valley-free search -------------------------------------------------

    def valley_free_ball(self, start: int, max_hops: int) -> Dict[int, int]:
        """Minimum valley-free hop count to every AS within ``max_hops``.

        This is the search order of ``construct-close-cluster-set()``:
        breadth-first from ``start`` under the valley-free constraint.
        The start AS itself is included with distance 0.
        """
        if start not in self:
            raise TopologyError(f"unknown AS {start}")
        if max_hops < 0:
            raise TopologyError(f"max_hops must be >= 0, got {max_hops}")
        best: Dict[int, int] = {start: 0}
        # state: (asn, phase); visited per state to allow a node reached
        # downhill to later be reached uphill with further expansion rights.
        visited: Set[Tuple[int, int]] = {(start, _PHASE_UP)}
        queue = deque([(start, _PHASE_UP, 0)])
        while queue:
            node, phase, dist = queue.popleft()
            if dist == max_hops:
                continue
            for nxt, nxt_phase in self._valley_free_steps(node, phase):
                state = (nxt, nxt_phase)
                if state in visited:
                    continue
                visited.add(state)
                if nxt not in best or dist + 1 < best[nxt]:
                    best[nxt] = dist + 1
                queue.append((nxt, nxt_phase, dist + 1))
        return best

    def valley_free_distance(self, src: int, dst: int, max_hops: int = 32) -> Optional[int]:
        """Shortest valley-free hop distance src→dst, or None if unreachable."""
        if src not in self or dst not in self:
            raise TopologyError(f"unknown AS in pair ({src}, {dst})")
        if src == dst:
            return 0
        visited: Set[Tuple[int, int]] = {(src, _PHASE_UP)}
        queue = deque([(src, _PHASE_UP, 0)])
        while queue:
            node, phase, dist = queue.popleft()
            if dist == max_hops:
                continue
            for nxt, nxt_phase in self._valley_free_steps(node, phase):
                if nxt == dst:
                    return dist + 1
                state = (nxt, nxt_phase)
                if state in visited:
                    continue
                visited.add(state)
                queue.append((nxt, nxt_phase, dist + 1))
        return None

    def is_valley_free(self, path: Iterable[int]) -> bool:
        """Check that an explicit AS path obeys the valley-free property."""
        nodes = list(path)
        if len(nodes) <= 1:
            return True
        phase = _PHASE_UP
        for a, b in zip(nodes, nodes[1:]):
            rel = self.relationship(a, b)
            if rel is None:
                return False
            if rel is Relationship.SIBLING_SIBLING:
                continue
            if rel is Relationship.PEER_PEER:
                if phase == _PHASE_DOWN:
                    return False
                phase = _PHASE_DOWN
            elif self.is_provider_of(b, a):  # a -> b climbs to a provider
                if phase == _PHASE_DOWN:
                    return False
            else:  # a -> b descends to a customer
                phase = _PHASE_DOWN
        return True

    def _valley_free_steps(self, node: int, phase: int):
        """Yield (next_as, next_phase) moves allowed from (node, phase)."""
        if phase == _PHASE_UP:
            for p in self._providers.get(node, ()):
                yield p, _PHASE_UP
            for p in self._peers.get(node, ()):
                yield p, _PHASE_DOWN
        for c in self._customers.get(node, ()):
            yield c, _PHASE_DOWN
        for s in self._siblings.get(node, ()):
            yield s, phase
