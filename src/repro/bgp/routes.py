"""Route value types shared by the policy-routing engine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple


class RouteClass(IntEnum):
    """How a route was learned, in BGP preference order (lower = preferred).

    An AS prefers routes learned from customers (it is paid to carry
    them) over peer routes (settlement-free) over provider routes (it
    pays).  This local preference dominates AS-path length, which is why
    direct IP routing is frequently *not* the shortest path — the effect
    the whole paper exploits.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2
    ORIGIN = -1  # the destination AS itself


@dataclass(frozen=True)
class PolicyRoute:
    """The route an AS selects toward a destination AS."""

    source: int
    destination: int
    route_class: RouteClass
    as_path: Tuple[int, ...]  # source first, destination last

    def __post_init__(self) -> None:
        if not self.as_path or self.as_path[0] != self.source or self.as_path[-1] != self.destination:
            raise ValueError(
                f"as_path {self.as_path} does not run {self.source}->{self.destination}"
            )

    @property
    def hops(self) -> int:
        """Number of AS-level hops (edges) on the path."""
        return len(self.as_path) - 1
