"""Gao-style AS relationship inference from observed AS paths.

The paper annotates its AS graph "using the inferring AS relationships
algorithm in [Gao 2001]".  This module implements that three-phase
heuristic over the AS paths of a RIB:

1. For each path, locate the *top provider* (highest-degree AS on the
   path); edges left of it climb uphill (right neighbor transits for the
   left one) and edges right of it descend (left neighbor transits for
   the right one).  Count transit votes per directed pair.
2. Classify each adjacent pair: strongly one-sided votes → provider-
   customer; votes in both directions of comparable magnitude → siblings.
3. Pairs with no transit evidence in either direction are peer-peer when
   their degrees are comparable, otherwise the higher-degree side is
   assumed to be the provider.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.bgp.asgraph import ASGraph
from repro.bgp.rib import RIBEntry


@dataclass(frozen=True)
class InferenceConfig:
    """Tuning knobs of the Gao inference heuristic.

    ``sibling_ratio``: if transit votes exist in both directions and
    max/min <= sibling_ratio, the pair is classified sibling.
    ``peer_degree_ratio``: an unvoted adjacent pair is peer-peer when
    max(degree)/min(degree) <= peer_degree_ratio.
    """

    sibling_ratio: float = 1.0
    peer_degree_ratio: float = 60.0


def collect_paths(entries: Iterable[RIBEntry]) -> List[Tuple[int, ...]]:
    """Extract distinct prepending-collapsed AS paths from RIB entries."""
    seen: Set[Tuple[int, ...]] = set()
    paths: List[Tuple[int, ...]] = []
    for entry in entries:
        path = entry.without_prepending()
        if len(path) >= 1 and path not in seen:
            seen.add(path)
            paths.append(path)
    return paths


def path_degrees(paths: Sequence[Tuple[int, ...]]) -> Dict[int, int]:
    """Degree of each AS in the undirected adjacency implied by the paths."""
    adjacency: Dict[int, Set[int]] = defaultdict(set)
    for path in paths:
        for a, b in zip(path, path[1:]):
            adjacency[a].add(b)
            adjacency[b].add(a)
    for path in paths:
        for asn in path:
            adjacency.setdefault(asn, set())
    return {asn: len(neigh) for asn, neigh in adjacency.items()}


def infer_relationships(
    entries: Iterable[RIBEntry],
    config: InferenceConfig = InferenceConfig(),
) -> ASGraph:
    """Infer an annotated :class:`ASGraph` from RIB entries."""
    paths = collect_paths(entries)
    degrees = path_degrees(paths)

    # Phase 1: transit vote counting around each path's top provider.
    transit: Counter = Counter()  # transit[(u, v)]: u provides transit to v
    for path in paths:
        if len(path) < 2:
            continue
        top_index = max(range(len(path)), key=lambda i: (degrees[path[i]], -i))
        for i in range(len(path) - 1):
            left, right = path[i], path[i + 1]
            if i < top_index:
                transit[(right, left)] += 1  # climbing: right transits for left
            else:
                transit[(left, right)] += 1  # descending: left transits for right

    # Phase 2 + 3: classify each adjacent pair exactly once.
    graph = ASGraph()
    for asn in degrees:
        graph.add_as(asn)
    classified: Set[Tuple[int, int]] = set()
    for path in paths:
        for a, b in zip(path, path[1:]):
            key = (min(a, b), max(a, b))
            if key in classified:
                continue
            classified.add(key)
            _classify_pair(graph, a, b, transit, degrees, config)
    return graph


def _classify_pair(
    graph: ASGraph,
    a: int,
    b: int,
    transit: Counter,
    degrees: Dict[int, int],
    config: InferenceConfig,
) -> None:
    ab = transit[(a, b)]  # votes that a transits for b (a provider of b)
    ba = transit[(b, a)]
    if ab > 0 and ba > 0:
        if max(ab, ba) <= config.sibling_ratio * min(ab, ba):
            graph.add_sibling(a, b)
        elif ab > ba:
            graph.add_provider_customer(a, b)
        else:
            graph.add_provider_customer(b, a)
        return
    if ab > 0:
        graph.add_provider_customer(a, b)
        return
    if ba > 0:
        graph.add_provider_customer(b, a)
        return
    # No transit evidence either way: peering between comparable ASes,
    # otherwise assume the bigger AS provides for the smaller one.
    deg_a = max(degrees.get(a, 1), 1)
    deg_b = max(degrees.get(b, 1), 1)
    if max(deg_a, deg_b) <= config.peer_degree_ratio * min(deg_a, deg_b):
        graph.add_peer(a, b)
    elif deg_a > deg_b:
        graph.add_provider_customer(a, b)
    else:
        graph.add_provider_customer(b, a)


def inference_accuracy(truth: ASGraph, inferred: ASGraph) -> float:
    """Fraction of truth edges annotated identically in ``inferred``.

    Used by tests to check the inference pipeline against synthetic
    topologies whose ground-truth annotations are known.  Edges missing
    from ``inferred`` count as wrong.
    """
    total = 0
    correct = 0
    seen: Set[Tuple[int, int]] = set()
    for a in truth.ases():
        for b in truth.neighbors(a):
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            total += 1
            rel_truth = truth.relationship(a, b)
            rel_inferred = inferred.relationship(a, b) if a in inferred and b in inferred else None
            if rel_truth != rel_inferred:
                continue
            if truth.is_provider_of(a, b) == inferred.is_provider_of(a, b):
                correct += 1
    return correct / total if total else 1.0
