"""AS-level path inference by shortest valley-free paths.

The paper leans on Mao et al. [16]: "it is reasonably accurate to infer
AS paths by computing the shortest AS hops paths" (under the valley-free
constraint).  ASAP itself only needs hop *counts* (the BFS radius), but
an operator debugging relay choices wants the inferred path — and the
accuracy of the inference against actually-selected policy routes is a
measurable property of the substrate, which tests and benches check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.asgraph import ASGraph, _PHASE_DOWN, _PHASE_UP
from repro.bgp.routing import PolicyRouter
from repro.errors import TopologyError


def infer_as_path(
    graph: ASGraph, src: int, dst: int, max_hops: int = 32
) -> Optional[Tuple[int, ...]]:
    """Shortest valley-free AS path from src to dst, or None.

    Ties break deterministically toward lower ASNs, matching the rest of
    the library's determinism rules.
    """
    if src not in graph or dst not in graph:
        raise TopologyError(f"unknown AS in pair ({src}, {dst})")
    if src == dst:
        return (src,)
    # BFS over (asn, phase) with parent pointers for reconstruction.
    start = (src, _PHASE_UP)
    parents: Dict[Tuple[int, int], Tuple[int, int]] = {start: None}  # type: ignore[dict-item]
    queue = deque([(src, _PHASE_UP, 0)])
    goal: Optional[Tuple[int, int]] = None
    while queue and goal is None:
        node, phase, dist = queue.popleft()
        if dist == max_hops:
            continue
        for nxt, nxt_phase in sorted(graph._valley_free_steps(node, phase)):
            state = (nxt, nxt_phase)
            if state in parents:
                continue
            parents[state] = (node, phase)
            if nxt == dst:
                goal = state
                break
            queue.append((nxt, nxt_phase, dist + 1))
    if goal is None:
        return None
    path: List[int] = []
    state: Optional[Tuple[int, int]] = goal
    while state is not None:
        path.append(state[0])
        state = parents[state]
    return tuple(reversed(path))


@dataclass(frozen=True)
class PathInferenceReport:
    """Accuracy of shortest-valley-free inference vs selected routes."""

    pairs: int
    unreachable_agreement: int   # both say "no path"
    exact_matches: int           # identical AS sequence
    length_matches: int          # same hop count, different sequence
    inferred_shorter: int        # policy route detours past the shortest
    inferred_longer: int         # should be ~0: policy is valley-free too

    @property
    def exact_rate(self) -> float:
        return self.exact_matches / self.pairs if self.pairs else 1.0

    @property
    def length_rate(self) -> float:
        """Fraction with at least matching hop count."""
        if not self.pairs:
            return 1.0
        return (self.exact_matches + self.length_matches) / self.pairs

    @property
    def detour_rate(self) -> float:
        """Fraction where policy routing is strictly longer than the
        shortest valley-free path — the overlay opportunity measure."""
        return self.inferred_shorter / self.pairs if self.pairs else 0.0


def evaluate_inference(
    graph: ASGraph,
    router: PolicyRouter,
    pairs: Iterable[Tuple[int, int]],
) -> PathInferenceReport:
    """Score shortest-valley-free inference against policy-selected paths."""
    total = 0
    unreachable = exact = length = shorter = longer = 0
    for src, dst in pairs:
        total += 1
        selected = router.as_path(src, dst)
        inferred = infer_as_path(graph, src, dst)
        if selected is None and inferred is None:
            unreachable += 1
            continue
        if selected is None or inferred is None:
            # One side reaches, the other does not — counts as a miss.
            continue
        if selected == inferred:
            exact += 1
        elif len(selected) == len(inferred):
            length += 1
        elif len(inferred) < len(selected):
            shorter += 1
        else:
            longer += 1
    return PathInferenceReport(
        pairs=total,
        unreachable_agreement=unreachable,
        exact_matches=exact,
        length_matches=length,
        inferred_shorter=shorter,
        inferred_longer=longer,
    )
