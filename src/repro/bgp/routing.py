"""BGP policy route computation over an annotated AS graph.

This engine produces, for any destination AS, the route every other AS
would actually select under standard Gao-Rexford export/preference rules:

- export: an AS exports customer-learned routes (and its own prefixes)
  to everyone, but exports peer/provider-learned routes only to its
  customers;
- preference: customer routes > peer routes > provider routes, then
  shortest AS path, then lowest next-hop ASN (determinism).

The selected paths are the simulator's ground truth for *direct IP
routing* — they are valley-free but often longer than the shortest
valley-free path, which is precisely why one-hop peer relays can beat
direct routing (paper Section 3.3, Fig. 4).

Implementation: one pass per destination, three phases.

1. customer routes — BFS from the destination along customer→provider
   edges (each AS learns the route from the customer side);
2. peer routes — one peer edge on top of a customer route;
3. provider routes — Dijkstra-style downhill propagation where an AS
   inherits its provider's selected route (any class) plus one hop.

Sibling edges transit everything in both directions and are folded into
phase 1 (they extend customer route propagation without changing class).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.bgp.asgraph import ASGraph
from repro.bgp.routes import PolicyRoute, RouteClass


@dataclass
class RoutingTree:
    """All selected routes toward one destination AS.

    ``next_hop[n]`` is the AS that ``n`` forwards to; walking next hops
    always terminates at the destination.
    """

    destination: int
    route_class: Dict[int, RouteClass]
    distance: Dict[int, int]
    next_hop: Dict[int, int]

    def reaches(self, source: int) -> bool:
        """True if ``source`` has any route to the destination."""
        return source in self.route_class

    def path_from(self, source: int) -> Optional[Tuple[int, ...]]:
        """AS path source→destination, or None if unreachable."""
        if source == self.destination:
            return (source,)
        if source not in self.route_class:
            return None
        path = [source]
        node = source
        while node != self.destination:
            node = self.next_hop[node]
            path.append(node)
            if len(path) > len(self.route_class) + 2:
                raise TopologyError("routing loop detected — internal invariant broken")
        return tuple(path)

    def route_from(self, source: int) -> Optional[PolicyRoute]:
        """Full :class:`PolicyRoute` for ``source``, or None if unreachable."""
        path = self.path_from(source)
        if path is None:
            return None
        cls = RouteClass.ORIGIN if source == self.destination else self.route_class[source]
        return PolicyRoute(
            source=source,
            destination=self.destination,
            route_class=cls,
            as_path=path,
        )


class PolicyRouter:
    """Per-destination policy routing with an LRU cache of routing trees."""

    def __init__(self, graph: ASGraph, cache_size: int = 4096) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._graph = graph
        self._cache: "OrderedDict[int, RoutingTree]" = OrderedDict()
        self._cache_size = cache_size

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def tree(self, destination: int) -> RoutingTree:
        """The routing tree toward ``destination`` (cached)."""
        cached = self._cache.get(destination)
        if cached is not None:
            self._cache.move_to_end(destination)
            return cached
        built = self._build_tree(destination)
        self._cache[destination] = built
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return built

    def route(self, source: int, destination: int) -> Optional[PolicyRoute]:
        """The route ``source`` selects toward ``destination`` (or None)."""
        if source not in self._graph or destination not in self._graph:
            raise TopologyError(f"unknown AS in pair ({source}, {destination})")
        return self.tree(destination).route_from(source)

    def as_path(self, source: int, destination: int) -> Optional[Tuple[int, ...]]:
        """Shorthand for the selected AS path (or None if unreachable)."""
        route = self.route(source, destination)
        return None if route is None else route.as_path

    def invalidate(self) -> None:
        """Drop all cached trees (call after mutating the graph)."""
        self._cache.clear()

    # -- tree construction ---------------------------------------------------

    def _build_tree(self, destination: int) -> RoutingTree:
        graph = self._graph
        if destination not in graph:
            raise TopologyError(f"unknown destination AS {destination}")

        route_class: Dict[int, RouteClass] = {destination: RouteClass.ORIGIN}
        distance: Dict[int, int] = {destination: 0}
        next_hop: Dict[int, int] = {}

        # Phase 1 — customer routes: propagate from the destination up
        # customer→provider edges (and across sibling edges).
        queue = deque([destination])
        while queue:
            node = queue.popleft()
            dist = distance[node]
            uphill = graph.providers(node) | graph.siblings(node)
            for learner in sorted(uphill):
                if learner in route_class:
                    continue
                route_class[learner] = RouteClass.CUSTOMER
                distance[learner] = dist + 1
                next_hop[learner] = node
                queue.append(learner)

        # Phase 2 — peer routes: exactly one peer edge on top of a
        # customer route (or directly to the destination).
        customer_holders = [n for n, c in route_class.items() if c in (RouteClass.CUSTOMER, RouteClass.ORIGIN)]
        peer_candidates: Dict[int, Tuple[int, int]] = {}
        for holder in customer_holders:
            for learner in graph.peers(holder):
                if learner in route_class:
                    continue
                cand = (distance[holder] + 1, holder)
                if learner not in peer_candidates or cand < peer_candidates[learner]:
                    peer_candidates[learner] = cand
        for learner, (dist, via) in peer_candidates.items():
            route_class[learner] = RouteClass.PEER
            distance[learner] = dist
            next_hop[learner] = via

        # Phase 3 — provider routes: downhill inheritance of any selected
        # route, Dijkstra order so shorter provider routes win.
        heap = [(distance[n], n) for n in route_class]
        heapq.heapify(heap)
        settled: Set[int] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in settled or distance.get(node, dist + 1) < dist:
                continue
            settled.add(node)
            for customer in sorted(graph.customers(node)):
                cand = dist + 1
                if customer in route_class and distance[customer] <= cand:
                    continue
                if customer in route_class and route_class[customer] is not RouteClass.PROVIDER:
                    continue  # customer/peer routes are always preferred
                route_class[customer] = RouteClass.PROVIDER
                distance[customer] = cand
                next_hop[customer] = node
                heapq.heappush(heap, (cand, customer))

        return RoutingTree(
            destination=destination,
            route_class=route_class,
            distance=distance,
            next_hop=next_hop,
        )


def reachable_pairs_fraction(router: PolicyRouter, sample: Iterable[Tuple[int, int]]) -> float:
    """Fraction of (src, dst) pairs with a selected route — a health probe."""
    pairs = list(sample)
    if not pairs:
        return 1.0
    ok = sum(1 for s, d in pairs if router.tree(d).reaches(s))
    return ok / len(pairs)
