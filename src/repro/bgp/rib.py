"""BGP RIB entries and a line-oriented dump format.

The paper consumes RouteViews/RIPE RIS table snapshots.  We define an
equivalent plain-text dump format (one route per line) that both our
synthetic topology generator emits and this parser ingests, so the whole
"collect BGP tables → build prefix/AS mapping" pipeline is exercised for
real rather than bypassed.

Dump line format (pipe-separated, comments with ``#``)::

    RIB|<timestamp>|<peer-ip>|<prefix>|<as-path: space separated>|<origin>

Example::

    RIB|1127692800|10.0.0.1|192.0.2.0/24|7018 3356 64512|IGP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import AddressError, BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix

VALID_ORIGINS = ("IGP", "EGP", "INCOMPLETE")


@dataclass(frozen=True)
class RIBEntry:
    """One route in a BGP routing table snapshot.

    ``as_path`` is ordered from the collecting peer toward the origin AS,
    matching how RouteViews exports paths; ``origin_as`` is therefore the
    last element.
    """

    timestamp: int
    peer: IPv4Address
    prefix: IPv4Prefix
    as_path: Tuple[int, ...]
    origin: str = "IGP"

    def __post_init__(self) -> None:
        if not self.as_path:
            raise BGPParseError(f"empty AS path for {self.prefix}")
        if self.origin not in VALID_ORIGINS:
            raise BGPParseError(f"invalid origin attribute {self.origin!r}")
        if any(asn <= 0 for asn in self.as_path):
            raise BGPParseError(f"non-positive ASN in path {self.as_path}")

    @property
    def origin_as(self) -> int:
        """The AS that originated the prefix (last ASN on the path)."""
        return self.as_path[-1]

    def without_prepending(self) -> Tuple[int, ...]:
        """AS path with consecutive duplicate ASNs collapsed.

        Operators prepend their own ASN for traffic engineering; collapsed
        paths are what relationship inference should see.
        """
        collapsed: List[int] = []
        for asn in self.as_path:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return tuple(collapsed)

    def to_line(self) -> str:
        path = " ".join(str(a) for a in self.as_path)
        return f"RIB|{self.timestamp}|{self.peer}|{self.prefix}|{path}|{self.origin}"


def parse_rib_line(line: str) -> RIBEntry:
    """Parse one dump line into a :class:`RIBEntry`."""
    fields = line.strip().split("|")
    if len(fields) != 6 or fields[0] != "RIB":
        raise BGPParseError(f"malformed RIB line: {line!r}")
    _, ts, peer, prefix, path, origin = fields
    try:
        timestamp = int(ts)
    except ValueError as exc:
        raise BGPParseError(f"bad timestamp in {line!r}") from exc
    path_parts = path.split()
    if not path_parts:
        raise BGPParseError(f"empty AS path in {line!r}")
    try:
        as_path = tuple(int(p) for p in path_parts)
    except ValueError as exc:
        raise BGPParseError(f"non-numeric ASN in {line!r}") from exc
    try:
        return RIBEntry(
            timestamp=timestamp,
            peer=IPv4Address.from_string(peer),
            prefix=IPv4Prefix.from_string(prefix),
            as_path=as_path,
            origin=origin,
        )
    except AddressError as exc:
        raise BGPParseError(f"bad address in {line!r}: {exc}") from exc


def parse_rib_dump(lines: Iterable[str]) -> Iterator[RIBEntry]:
    """Parse a dump (iterable of lines), skipping blanks and ``#`` comments."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield parse_rib_line(line)
        except BGPParseError as exc:
            raise BGPParseError(f"line {lineno}: {exc}") from exc


def format_rib_dump(entries: Iterable[RIBEntry]) -> str:
    """Serialize entries back to dump text (inverse of parse_rib_dump)."""
    return "\n".join(entry.to_line() for entry in entries) + "\n"


@dataclass
class RoutingTable:
    """A mutable BGP table: best route per (peer, prefix).

    Mirrors a collector's view — multiple peers may carry routes for the
    same prefix.  Updates (:mod:`repro.bgp.updates`) mutate this table.
    """

    routes: Dict[Tuple[IPv4Address, IPv4Prefix], RIBEntry] = field(default_factory=dict)

    @classmethod
    def from_entries(cls, entries: Iterable[RIBEntry]) -> "RoutingTable":
        table = cls()
        for entry in entries:
            table.install(entry)
        return table

    def install(self, entry: RIBEntry) -> None:
        """Install/replace the route from ``entry.peer`` for the prefix."""
        self.routes[(entry.peer, entry.prefix)] = entry

    def withdraw(self, peer: IPv4Address, prefix: IPv4Prefix) -> bool:
        """Remove a peer's route for a prefix; True if one was present."""
        return self.routes.pop((peer, prefix), None) is not None

    def entries(self) -> Iterator[RIBEntry]:
        return iter(self.routes.values())

    def prefixes(self) -> List[IPv4Prefix]:
        """Distinct prefixes present in the table."""
        return sorted({prefix for (_, prefix) in self.routes})

    def routes_for_prefix(self, prefix: IPv4Prefix) -> List[RIBEntry]:
        return [e for (_, p), e in self.routes.items() if p == prefix]

    def best_route(self, prefix: IPv4Prefix) -> Optional[RIBEntry]:
        """Pick the table's best route for a prefix: shortest AS path wins.

        Tie-break on (origin attribute order, lowest peer address) so the
        choice is deterministic across runs.
        """
        candidates = self.routes_for_prefix(prefix)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda e: (len(e.as_path), VALID_ORIGINS.index(e.origin), e.peer),
        )

    def __len__(self) -> int:
        return len(self.routes)
