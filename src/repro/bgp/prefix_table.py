"""IP-prefix → origin-AS mapping table (Section 3.1 of the paper).

Built from a :class:`~repro.bgp.rib.RoutingTable`, this answers the two
questions the measurement pipeline and the ASAP bootstrap need:

- which announced prefix most specifically covers an end-host IP, and
- which AS originates that prefix.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix, PrefixTrie
from repro.bgp.rib import RIBEntry, RoutingTable


class PrefixOriginTable:
    """Longest-prefix-match table mapping prefixes to origin ASes.

    When multiple peers disagree on the origin AS for a prefix (MOAS
    conflicts happen in real tables), the majority origin wins, with the
    lowest ASN as deterministic tie-break.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[int] = PrefixTrie()
        self._prefixes_by_as: Dict[int, List[IPv4Prefix]] = defaultdict(list)

    @classmethod
    def from_routing_table(cls, table: RoutingTable) -> "PrefixOriginTable":
        """Build from all routes in a collector table."""
        votes: Dict[IPv4Prefix, Counter] = defaultdict(Counter)
        for entry in table.entries():
            votes[entry.prefix][entry.origin_as] += 1
        built = cls()
        for prefix, counter in votes.items():
            best = min(counter.items(), key=lambda kv: (-kv[1], kv[0]))[0]
            built.add(prefix, best)
        return built

    @classmethod
    def from_entries(cls, entries: Iterable[RIBEntry]) -> "PrefixOriginTable":
        return cls.from_routing_table(RoutingTable.from_entries(entries))

    def add(self, prefix: IPv4Prefix, origin_as: int) -> None:
        """Insert a prefix→origin mapping (overwrites an existing one)."""
        if origin_as <= 0:
            raise BGPParseError(f"non-positive origin AS {origin_as}")
        previous = self._trie.get(prefix)
        if previous is not None:
            self._prefixes_by_as[previous].remove(prefix)
        self._trie.insert(prefix, origin_as)
        self._prefixes_by_as[origin_as].append(prefix)

    def lookup(self, address: IPv4Address) -> Optional[Tuple[IPv4Prefix, int]]:
        """Longest-match an address to ``(prefix, origin AS)``, or None."""
        return self._trie.longest_match(address)

    def origin_of(self, address: IPv4Address) -> Optional[int]:
        """The origin AS covering an address, or None if unrouted."""
        match = self.lookup(address)
        return None if match is None else match[1]

    def matched_prefix(self, address: IPv4Address) -> Optional[IPv4Prefix]:
        """The longest announced prefix covering an address, or None."""
        match = self.lookup(address)
        return None if match is None else match[0]

    def prefixes_of(self, asn: int) -> List[IPv4Prefix]:
        """All prefixes originated by an AS (an AS can announce several)."""
        return sorted(self._prefixes_by_as.get(asn, []))

    def ases(self) -> List[int]:
        """All origin ASes present in the table."""
        return sorted(asn for asn, pfx in self._prefixes_by_as.items() if pfx)

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._trie
