"""BGP substrate: RIB parsing, AS relationships, annotated AS graph, routing.

The paper builds everything on public BGP data: an IP-prefix→origin-AS
mapping table (Section 3.1) and an annotated AS graph inferred with Gao's
algorithm (Sections 6-7).  This package implements that pipeline from
scratch:

- :mod:`repro.bgp.rib` — RIB entries and a text dump format + parser.
- :mod:`repro.bgp.updates` — announce/withdraw updates applied to a RIB.
- :mod:`repro.bgp.prefix_table` — prefix→origin-AS longest-match table.
- :mod:`repro.bgp.relationships` — Gao provider/customer/peer inference.
- :mod:`repro.bgp.asgraph` — the annotated AS graph with valley-free search.
- :mod:`repro.bgp.routing` — BGP policy route computation (customer >
  peer > provider preference, shortest AS path) used as the "direct IP
  routing" ground truth of the simulator.
"""

from repro.bgp.asgraph import ASGraph, Relationship
from repro.bgp.prefix_table import PrefixOriginTable
from repro.bgp.relationships import infer_relationships
from repro.bgp.rib import RIBEntry, RoutingTable, parse_rib_dump, format_rib_dump
from repro.bgp.routes import PolicyRoute, RouteClass
from repro.bgp.routing import PolicyRouter
from repro.bgp.updates import BGPUpdate, apply_updates, parse_update_stream

__all__ = [
    "ASGraph",
    "BGPUpdate",
    "PolicyRoute",
    "PolicyRouter",
    "PrefixOriginTable",
    "RIBEntry",
    "Relationship",
    "RouteClass",
    "RoutingTable",
    "apply_updates",
    "format_rib_dump",
    "infer_relationships",
    "parse_rib_dump",
    "parse_update_stream",
]
