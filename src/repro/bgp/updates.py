"""BGP update messages (announce / withdraw) and their application to a RIB.

The paper combines table snapshots with BGP *updates* collected the same
day to get an up-to-date view.  We model updates as a line-oriented stream:

    ANNOUNCE|<timestamp>|<peer-ip>|<prefix>|<as-path>|<origin>
    WITHDRAW|<timestamp>|<peer-ip>|<prefix>
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import AddressError, BGPParseError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp.rib import RIBEntry, RoutingTable, VALID_ORIGINS


@dataclass(frozen=True)
class BGPUpdate:
    """A single announce or withdraw message from one peer."""

    kind: str  # "ANNOUNCE" or "WITHDRAW"
    timestamp: int
    peer: IPv4Address
    prefix: IPv4Prefix
    as_path: Tuple[int, ...] = ()
    origin: str = "IGP"

    def __post_init__(self) -> None:
        if self.kind not in ("ANNOUNCE", "WITHDRAW"):
            raise BGPParseError(f"unknown update kind {self.kind!r}")
        if self.kind == "ANNOUNCE":
            if not self.as_path:
                raise BGPParseError("ANNOUNCE requires a non-empty AS path")
            if self.origin not in VALID_ORIGINS:
                raise BGPParseError(f"invalid origin {self.origin!r}")
        elif self.as_path:
            raise BGPParseError("WITHDRAW must not carry an AS path")

    def to_line(self) -> str:
        if self.kind == "WITHDRAW":
            return f"WITHDRAW|{self.timestamp}|{self.peer}|{self.prefix}"
        path = " ".join(str(a) for a in self.as_path)
        return f"ANNOUNCE|{self.timestamp}|{self.peer}|{self.prefix}|{path}|{self.origin}"

    def to_entry(self) -> RIBEntry:
        """Convert an ANNOUNCE into the RIB entry it installs."""
        if self.kind != "ANNOUNCE":
            raise BGPParseError("only ANNOUNCE updates carry a route")
        return RIBEntry(
            timestamp=self.timestamp,
            peer=self.peer,
            prefix=self.prefix,
            as_path=self.as_path,
            origin=self.origin,
        )


def parse_update_line(line: str) -> BGPUpdate:
    """Parse a single update line."""
    try:
        return _parse_update_fields(line)
    except AddressError as exc:
        raise BGPParseError(f"bad address in {line!r}: {exc}") from exc


def _parse_update_fields(line: str) -> BGPUpdate:
    fields = line.strip().split("|")
    if not fields:
        raise BGPParseError(f"empty update line: {line!r}")
    kind = fields[0]
    if kind == "WITHDRAW":
        if len(fields) != 4:
            raise BGPParseError(f"malformed WITHDRAW: {line!r}")
        _, ts, peer, prefix = fields
        return BGPUpdate(
            kind="WITHDRAW",
            timestamp=_parse_ts(ts, line),
            peer=IPv4Address.from_string(peer),
            prefix=IPv4Prefix.from_string(prefix),
        )
    if kind == "ANNOUNCE":
        if len(fields) != 6:
            raise BGPParseError(f"malformed ANNOUNCE: {line!r}")
        _, ts, peer, prefix, path, origin = fields
        try:
            as_path = tuple(int(p) for p in path.split())
        except ValueError as exc:
            raise BGPParseError(f"non-numeric ASN in {line!r}") from exc
        return BGPUpdate(
            kind="ANNOUNCE",
            timestamp=_parse_ts(ts, line),
            peer=IPv4Address.from_string(peer),
            prefix=IPv4Prefix.from_string(prefix),
            as_path=as_path,
            origin=origin,
        )
    raise BGPParseError(f"unknown update kind in {line!r}")


def parse_update_stream(lines: Iterable[str]) -> Iterator[BGPUpdate]:
    """Parse an update stream, skipping blanks and ``#`` comments."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield parse_update_line(line)
        except BGPParseError as exc:
            raise BGPParseError(f"line {lineno}: {exc}") from exc


def apply_updates(
    table: RoutingTable,
    updates: Iterable[BGPUpdate],
    until: Optional[int] = None,
) -> int:
    """Apply updates in timestamp order to ``table``; returns count applied.

    Updates with timestamp beyond ``until`` (if given) are ignored —
    mirrors replaying an update archive up to the snapshot moment.
    """
    ordered: List[BGPUpdate] = sorted(updates, key=lambda u: u.timestamp)
    applied = 0
    for update in ordered:
        if until is not None and update.timestamp > until:
            continue
        if update.kind == "ANNOUNCE":
            table.install(update.to_entry())
        else:
            table.withdraw(update.peer, update.prefix)
        applied += 1
    return applied


def _parse_ts(text: str, line: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise BGPParseError(f"bad timestamp in {line!r}") from exc
