"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string could not be parsed or is invalid."""


class BGPParseError(ReproError, ValueError):
    """A BGP RIB dump or update stream is malformed."""


class TopologyError(ReproError):
    """A generated or supplied topology violates a structural invariant."""


class MeasurementError(ReproError):
    """A latency/loss measurement was requested for an unknown endpoint."""


class ProtocolError(ReproError):
    """A protocol node received a message it cannot process."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object holds out-of-range or inconsistent values."""


class EvaluationError(ReproError):
    """An experiment harness was invoked with an inconsistent setup."""
