"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string could not be parsed or is invalid."""


class BGPParseError(ReproError, ValueError):
    """A BGP RIB dump or update stream is malformed."""


class TopologyError(ReproError):
    """A generated or supplied topology violates a structural invariant."""


class MeasurementError(ReproError):
    """A latency/loss measurement was requested for an unknown endpoint."""


class ProtocolError(ReproError):
    """A protocol node received a message it cannot process."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object holds out-of-range or inconsistent values."""


class EvaluationError(ReproError):
    """An experiment harness was invoked with an inconsistent setup."""


class WireError(ReproError):
    """Base class for wire-protocol problems (codec and transports)."""


class FrameError(WireError, ValueError):
    """A wire frame is malformed: bad magic, truncated, oversized, or
    carrying an unknown schema version or message type."""


class CodecError(WireError, ValueError):
    """A frame's payload does not match its message type's schema."""


class TransportError(WireError):
    """A transport could not deliver or complete an exchange."""


class TransportTimeout(TransportError):
    """A request saw no response within its timeout."""


class RemoteError(TransportError):
    """The remote node answered a request with an error frame."""

    def __init__(self, code: int, detail: str = "") -> None:
        super().__init__(f"remote error {code}: {detail}")
        self.code = code
        self.detail = detail


class ServiceError(ReproError):
    """A service daemon was driven incorrectly (bad role, not joined)."""
