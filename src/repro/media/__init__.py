"""``repro.media`` — a deterministic audio media plane.

The evaluation layer scores relay paths with closed-form E-model math
over (RTT, loss); this package goes the last mile and *measures*
quality from actual received frames, the way deployed VoIP stacks do.
Five stages, each its own module:

- :mod:`frames <repro.media.frames>` — sequence-numbered, sim-timestamped
  codec frame generation and canonical received-frame traces;
- :mod:`jitterbuf <repro.media.jitterbuf>` — adaptive playout buffering
  (late frames become effective loss);
- :mod:`plc <repro.media.plc>` — packet-loss concealment accounting
  (concealed vs revealed loss, burst-aware);
- :mod:`adapt <repro.media.adapt>` — sliding-window codec switching
  with hysteresis (G.729A+VAD ↔ iLBC);
- :mod:`score <repro.media.score>` — ReceivedTrace → per-window
  measured MOS through :mod:`repro.voip.emodel` and outage accounting.

:mod:`session <repro.media.session>` wires the stages into one
seed-deterministic in-call media session, consumable by the sim
runtime, the conference scenario and the CLI.
"""

from repro.media.adapt import AdaptationPolicy, CodecAdapter, CodecSwitch
from repro.media.frames import (
    CODEC_WIRE_IDS,
    FrameSource,
    ReceivedFrame,
    ReceivedTrace,
    SentFrame,
    codec_by_wire_id,
    trace_from_wire,
)
from repro.media.jitterbuf import (
    AdaptiveJitterBuffer,
    JitterBufferConfig,
    PlayedFrame,
    PlayoutResult,
)
from repro.media.plc import ConcealmentReport, PLCConfig, conceal
from repro.media.score import (
    MEASURED_MOS_TOLERANCE,
    MeasuredScore,
    WindowScore,
    score_trace,
)
from repro.media.session import (
    MediaPlaneConfig,
    MediaResult,
    PathWindow,
    run_media_session,
)

__all__ = [
    "AdaptationPolicy",
    "AdaptiveJitterBuffer",
    "CODEC_WIRE_IDS",
    "CodecAdapter",
    "CodecSwitch",
    "ConcealmentReport",
    "FrameSource",
    "JitterBufferConfig",
    "MEASURED_MOS_TOLERANCE",
    "MeasuredScore",
    "MediaPlaneConfig",
    "MediaResult",
    "PLCConfig",
    "PathWindow",
    "PlayedFrame",
    "PlayoutResult",
    "ReceivedFrame",
    "ReceivedTrace",
    "SentFrame",
    "WindowScore",
    "codec_by_wire_id",
    "conceal",
    "run_media_session",
    "score_trace",
    "trace_from_wire",
]
