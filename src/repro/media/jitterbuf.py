"""Adaptive playout jitter buffer.

Tracks smoothed one-way delay and delay variation with the classic
RFC 3550-style EWMA estimators (the same pair
:class:`repro.voip.stream.AdaptivePlayoutBuffer` uses analytically)
and derives a per-frame playout deadline.  A frame that arrives after
its deadline is *late* — reclassified as effective loss for the PLC
and scoring stages — so buffer depth trades delay against loss exactly
as in deployed stacks.  Pure function of the input trace: no RNG, no
wall clock, deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.media.frames import ReceivedTrace


@dataclass(frozen=True)
class JitterBufferConfig:
    """Playout policy knobs.

    ``min_depth_ms`` defaults to 20 ms — deliberately equal to
    :class:`repro.voip.emodel.EModelConfig`'s closed-form jitter-buffer
    allowance, so on a jitter-free path the measured mouth-to-ear delay
    matches what the analytic score already charges for.
    """

    alpha: float = 0.998          # delay EWMA retention
    factor: float = 4.0           # deadline = depth = factor * v_hat
    min_depth_ms: float = 20.0
    max_depth_ms: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        if self.factor <= 0:
            raise ConfigurationError("factor must be positive")
        if self.min_depth_ms < 0 or self.max_depth_ms < self.min_depth_ms:
            raise ConfigurationError(
                "need 0 <= min_depth_ms <= max_depth_ms"
            )


@dataclass(frozen=True)
class PlayedFrame:
    """Playout outcome of one frame."""

    sequence: int
    status: str                   # "played" | "late" | "lost"
    playout_ms: float             # scheduled playout time (sim ms)
    depth_ms: float               # buffer depth in force at this frame


@dataclass(frozen=True)
class PlayoutResult:
    frames: Tuple[PlayedFrame, ...]

    @property
    def played(self) -> int:
        return sum(1 for f in self.frames if f.status == "played")

    @property
    def late(self) -> int:
        return sum(1 for f in self.frames if f.status == "late")

    @property
    def lost(self) -> int:
        return sum(1 for f in self.frames if f.status == "lost")

    @property
    def effective_loss_flags(self) -> Tuple[bool, ...]:
        """Per-frame loss after reclassification (late counts as lost)."""
        return tuple(f.status != "played" for f in self.frames)

    @property
    def mean_depth_ms(self) -> float:
        if not self.frames:
            return 0.0
        return sum(f.depth_ms for f in self.frames) / len(self.frames)


class AdaptiveJitterBuffer:
    """Streamed playout over a received trace.

    The delay estimate seeds from the first arriving frame, then
    follows the EWMA; the deadline for frame *i* is
    ``sent_i + d_hat + depth`` with ``depth = clamp(factor * v_hat,
    min_depth_ms, max_depth_ms)``.  Estimator state advances on every
    *arriving* frame (late ones included — the receiver still observes
    them), never on losses.
    """

    def __init__(self, config: JitterBufferConfig = JitterBufferConfig()) -> None:
        self.config = config
        self._d_hat: float = 0.0
        self._v_hat: float = 0.0
        self._seeded = False

    def _depth_ms(self) -> float:
        cfg = self.config
        return min(max(cfg.factor * self._v_hat, cfg.min_depth_ms), cfg.max_depth_ms)

    def _observe(self, delay_ms: float) -> None:
        a = self.config.alpha
        if not self._seeded:
            self._d_hat, self._v_hat, self._seeded = delay_ms, 0.0, True
            return
        deviation = abs(delay_ms - self._d_hat)
        self._d_hat = a * self._d_hat + (1.0 - a) * delay_ms
        self._v_hat = a * self._v_hat + (1.0 - a) * deviation

    def play(self, trace: ReceivedTrace) -> PlayoutResult:
        """Run the whole trace through the buffer."""
        out: List[PlayedFrame] = []
        for frame in trace.frames:
            depth = self._depth_ms()
            deadline = frame.sent_ms + self._d_hat + depth
            if frame.arrival_ms is None:
                # Nothing to observe; playout slot elapses silently.
                status = "lost"
                playout = deadline if self._seeded else frame.sent_ms + depth
            else:
                delay = frame.arrival_ms - frame.sent_ms
                if not self._seeded:
                    # First arrival defines the delay baseline; it always
                    # plays, at its own arrival plus the minimum depth.
                    self._observe(delay)
                    status = "played"
                    playout = frame.arrival_ms + depth
                else:
                    status = "played" if frame.arrival_ms <= deadline else "late"
                    playout = deadline
                    self._observe(delay)
            out.append(
                PlayedFrame(frame.sequence, status, round(playout, 3), round(depth, 3))
            )
        return PlayoutResult(frames=tuple(out))
