"""Adaptive codec switching with hysteresis.

The sender watches measured loss over a sliding window of recent
frames; when it crosses ``down_loss`` it falls back from the primary
codec (G.729A+VAD) to the loss-robust fallback (iLBC, whose Bpl more
than doubles G.729A's), and only returns once the window drops below
the much lower ``up_loss`` — a hysteresis band that prevents flapping
at the boundary.  ``min_dwell_frames`` adds a refractory period after
each switch.  Deterministic: decisions are a pure function of the
observed loss sequence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import ConfigurationError
from repro.voip.codecs import Codec, G729A_VAD, ILBC


@dataclass(frozen=True)
class AdaptationPolicy:
    primary: Codec = G729A_VAD
    fallback: Codec = ILBC
    # A 100-frame window at 20 ms pacing ≈ 2 s of speech; the down
    # threshold sits above what a single typical loss burst (~4 frames)
    # contributes (0.04), so only sustained degradation triggers it.
    window_frames: int = 100
    down_loss: float = 0.10       # window loss above this → fallback
    up_loss: float = 0.02         # window loss below this → primary
    min_dwell_frames: int = 100   # frames to hold a codec after switching

    def __post_init__(self) -> None:
        if self.window_frames < 1:
            raise ConfigurationError("window_frames must be >= 1")
        if not 0.0 <= self.up_loss < self.down_loss <= 1.0:
            raise ConfigurationError("need 0 <= up_loss < down_loss <= 1")
        if self.min_dwell_frames < 0:
            raise ConfigurationError("min_dwell_frames must be >= 0")


@dataclass(frozen=True)
class CodecSwitch:
    """One adaptation decision, emitted the moment it fires."""

    at_ms: float
    sequence: int                 # frame that triggered the switch
    from_codec: str
    to_codec: str
    window_loss: float


class CodecAdapter:
    """Sliding-window loss observer driving codec selection."""

    def __init__(self, policy: AdaptationPolicy = AdaptationPolicy()) -> None:
        self.policy = policy
        self.codec: Codec = policy.primary
        self.switches: List[CodecSwitch] = []
        self._window: Deque[bool] = deque(maxlen=policy.window_frames)
        self._dwell = 0

    @property
    def window_loss(self) -> float:
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def observe(self, sequence: int, at_ms: float, lost: bool) -> Optional[CodecSwitch]:
        """Feed one frame outcome; returns the switch if one fired."""
        self._window.append(lost)
        if self._dwell > 0:
            self._dwell -= 1
            return None
        if len(self._window) < self.policy.window_frames:
            return None
        loss = self.window_loss
        target: Optional[Codec] = None
        if self.codec is self.policy.primary and loss >= self.policy.down_loss:
            target = self.policy.fallback
        elif self.codec is self.policy.fallback and loss <= self.policy.up_loss:
            target = self.policy.primary
        if target is None:
            return None
        switch = CodecSwitch(
            at_ms=round(at_ms, 3),
            sequence=sequence,
            from_codec=self.codec.name,
            to_codec=target.name,
            window_loss=round(loss, 6),
        )
        self.codec = target
        self.switches.append(switch)
        self._dwell = self.policy.min_dwell_frames
        return switch
