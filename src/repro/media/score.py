"""ReceivedTrace → measured MOS.

The closed-form evaluation feeds an *assumed* (RTT, loss) pair into
the E-model; this scorer feeds *measured* per-window delay and
PLC-adjusted loss from an actual received-frame trace, then charges
whole windows with no playable media as outages through
:func:`repro.voip.outage.account_outages`.

Per window of ``window_ms`` (bucketed by send time):

- effective loss = mean PLC weight of the window's frames, where the
  PLC weight sequence comes from :func:`repro.media.plc.conceal` over
  the jitter buffer's reclassified loss flags (late = lost);
- delay = mean ``playout − sent`` of played frames, fed to an E-model
  configured with ``jitter_buffer_ms = 0`` — the buffer's real depth
  is already inside the measured delay, so the closed-form allowance
  must not be charged twice;
- codec = the window's dominant codec (adaptation can switch
  mid-trace).

On a zero-fault fixed-RTT path this agrees with the closed-form
:func:`repro.voip.quality.mos_of_path` score within
:data:`MEASURED_MOS_TOLERANCE` (see docs/media.md): the buffer floor
``min_depth_ms`` equals the closed-form allowance by default, leaving
only window-quantization rounding.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.media.frames import ReceivedTrace, _codec_by_name
from repro.media.jitterbuf import AdaptiveJitterBuffer, JitterBufferConfig, PlayoutResult
from repro.media.plc import ConcealmentReport, PLCConfig, conceal
from repro.voip.emodel import EModel, EModelConfig
from repro.voip.outage import OutageWindow, account_outages

#: Documented agreement bound between measured-trace MOS and the
#: closed-form E-model score on a zero-fault, zero-jitter fixed-RTT
#: path (same codec, same loss).  See docs/media.md.
MEASURED_MOS_TOLERANCE = 0.1

#: Default scoring window (ms of send time per MOS sample).
DEFAULT_WINDOW_MS = 1000.0


@dataclass(frozen=True)
class WindowScore:
    """Measured quality of one scoring window."""

    start_ms: float
    end_ms: float
    frames: int
    played: int
    effective_loss: float         # PLC-weighted, late-as-loss
    mean_delay_ms: float          # mouth-to-ear minus codec delay; 0 if outage
    codec: str                    # dominant codec of the window
    mos: float                    # 0.0 marks an outage window

    @property
    def is_outage(self) -> bool:
        return self.played == 0


@dataclass(frozen=True)
class MeasuredScore:
    """Trace-level measured quality."""

    mos: float                    # outage-accounted, time-weighted
    base_mos: float               # frame-weighted mean of flowing windows
    windows: Tuple[WindowScore, ...]
    outage_windows: Tuple[OutageWindow, ...]
    concealed_rate: float         # PLC-masked frames / all frames
    effective_loss: float         # whole-trace PLC-weighted loss
    late_frames: int
    lost_frames: int

    def to_dict(self) -> dict:
        """Stable plain-dict form (CI byte-diffs JSON dumps of this)."""
        return {
            "mos": round(self.mos, 6),
            "base_mos": round(self.base_mos, 6),
            "concealed_rate": round(self.concealed_rate, 6),
            "effective_loss": round(self.effective_loss, 6),
            "late_frames": self.late_frames,
            "lost_frames": self.lost_frames,
            "outages": [
                {"start_ms": round(w.start_ms, 3), "end_ms": round(w.end_ms, 3)}
                for w in self.outage_windows
            ],
            "windows": [
                {
                    "start_ms": round(w.start_ms, 3),
                    "end_ms": round(w.end_ms, 3),
                    "frames": w.frames,
                    "played": w.played,
                    "effective_loss": round(w.effective_loss, 6),
                    "mean_delay_ms": round(w.mean_delay_ms, 3),
                    "codec": w.codec,
                    "mos": round(w.mos, 6),
                }
                for w in self.windows
            ],
        }


def score_trace(
    trace: ReceivedTrace,
    jitterbuf: JitterBufferConfig = JitterBufferConfig(),
    plc: PLCConfig = PLCConfig(),
    window_ms: float = DEFAULT_WINDOW_MS,
    playout: Optional[PlayoutResult] = None,
) -> MeasuredScore:
    """Score a received trace window by window.

    Pass ``playout`` to reuse a playout already computed by the caller
    (the session loop samples buffer depth as telemetry); otherwise the
    trace is played through a fresh buffer here.
    """
    if window_ms <= 0:
        raise ConfigurationError("window_ms must be positive")
    if not trace.frames:
        raise ConfigurationError("cannot score an empty trace")
    if playout is None:
        playout = AdaptiveJitterBuffer(jitterbuf).play(trace)
    if len(playout.frames) != len(trace.frames):
        raise ConfigurationError("playout does not cover the trace")
    report: ConcealmentReport = conceal(playout.effective_loss_flags, plc)

    duration = trace.duration_ms
    window_count = max(1, int(-(-duration // window_ms)))  # ceil
    buckets: Dict[int, List[int]] = {}
    for i, frame in enumerate(trace.frames):
        idx = min(int(frame.sent_ms // window_ms), window_count - 1)
        buckets.setdefault(idx, []).append(i)

    windows: List[WindowScore] = []
    outages: List[OutageWindow] = []
    for idx in range(window_count):
        start = idx * window_ms
        end = min((idx + 1) * window_ms, duration)
        members = buckets.get(idx, [])
        if not members:
            # No frames even sent in this window (codec switch pacing
            # gap at the trace tail): nothing to score, not an outage.
            continue
        played_idx = [i for i in members if playout.frames[i].status == "played"]
        eff_loss = sum(report.weights[i] for i in members) / len(members)
        codec_name = _dominant_codec([trace.frames[i].codec for i in members])
        if not played_idx:
            outages.append(OutageWindow(start_ms=start, end_ms=end))
            windows.append(
                WindowScore(
                    start_ms=start, end_ms=end, frames=len(members), played=0,
                    effective_loss=round(eff_loss, 6), mean_delay_ms=0.0,
                    codec=codec_name, mos=0.0,
                )
            )
            continue
        mean_delay = sum(
            playout.frames[i].playout_ms - trace.frames[i].sent_ms
            for i in played_idx
        ) / len(played_idx)
        emodel = EModel(EModelConfig(
            codec=_codec_by_name(codec_name), jitter_buffer_ms=0.0,
        ))
        mos = emodel.mos(mean_delay, min(1.0, eff_loss))
        windows.append(
            WindowScore(
                start_ms=start, end_ms=end, frames=len(members),
                played=len(played_idx), effective_loss=round(eff_loss, 6),
                mean_delay_ms=round(mean_delay, 3), codec=codec_name,
                mos=round(mos, 6),
            )
        )

    flowing = [w for w in windows if not w.is_outage]
    if flowing:
        total_frames = sum(w.frames for w in flowing)
        base_mos = sum(w.mos * w.frames for w in flowing) / total_frames
    else:
        base_mos = 1.0  # nothing ever played; floor of the MOS scale
    impact = account_outages(base_mos, duration, outages)
    return MeasuredScore(
        mos=round(impact.effective_mos, 6),
        base_mos=round(base_mos, 6),
        windows=tuple(windows),
        outage_windows=tuple(outages),
        concealed_rate=round(report.concealed_rate, 6),
        effective_loss=round(report.effective_loss, 6),
        late_frames=playout.late,
        lost_frames=playout.lost,
    )


def _dominant_codec(names: List[str]) -> str:
    counts = Counter(names)
    best = max(counts.values())
    # Deterministic tie-break: first codec (in frame order) at the max.
    for name in names:
        if counts[name] == best:
            return name
    return names[0]
