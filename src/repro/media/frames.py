"""Media frame generation and received-frame traces.

A sender paces :class:`SentFrame` records at the codec's packetization
interval in *simulated* time; the receiving side reconstructs a
:class:`ReceivedTrace` — one :class:`ReceivedFrame` per sequence
number, lost frames included — which is the unit every downstream
stage (jitter buffer, PLC, scorer) consumes and the unit written to
disk for byte-diff determinism checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.voip.codecs import ALL_CODECS, Codec

#: Stable codec → wire-id table (u8 on the MediaFrame message).  Ids
#: are positional in ``ALL_CODECS``; append-only by construction.
CODEC_WIRE_IDS: Dict[str, int] = {c.name: i for i, c in enumerate(ALL_CODECS)}

_CODECS_BY_ID: Dict[int, Codec] = {i: c for i, c in enumerate(ALL_CODECS)}


def codec_by_wire_id(wire_id: int) -> Codec:
    try:
        return _CODECS_BY_ID[wire_id]
    except KeyError:
        raise ConfigurationError(f"unknown codec wire id {wire_id}") from None


@dataclass(frozen=True)
class SentFrame:
    """One codec frame as emitted by the sender."""

    sequence: int
    sent_ms: float
    codec: Codec


class FrameSource:
    """Paced frame generator with mid-stream codec switching.

    Frames advance a private clock by the *current* codec's
    packetization interval, so an adaptation decision changes the
    pacing of every subsequent frame — exactly what a real sender
    does when it renegotiates the codec.
    """

    def __init__(self, codec: Codec, start_ms: float = 0.0) -> None:
        self.codec = codec
        self._next_ms = float(start_ms)
        self._next_seq = 0

    @property
    def next_ms(self) -> float:
        """Send time of the next frame (sim ms)."""
        return self._next_ms

    def switch(self, codec: Codec) -> None:
        """Use ``codec`` for all frames from the next one onward."""
        self.codec = codec

    def next_frame(self) -> SentFrame:
        frame = SentFrame(self._next_seq, round(self._next_ms, 3), self.codec)
        self._next_seq += 1
        self._next_ms += self.codec.packet_interval_ms()
        return frame

    def frames_until(self, end_ms: float) -> Iterable[SentFrame]:
        """Generate every frame with a send time strictly before ``end_ms``."""
        while self._next_ms < end_ms:
            yield self.next_frame()


@dataclass(frozen=True)
class ReceivedFrame:
    """One frame as seen at the receiver; ``arrival_ms is None`` = lost."""

    sequence: int
    sent_ms: float
    arrival_ms: Optional[float]
    codec: str

    @property
    def lost(self) -> bool:
        return self.arrival_ms is None


@dataclass(frozen=True)
class ReceivedTrace:
    """A complete, gap-free received-frame record of one media leg."""

    call_id: int
    frames: Tuple[ReceivedFrame, ...]

    def __post_init__(self) -> None:
        for i, f in enumerate(self.frames):
            if f.sequence != i:
                raise ConfigurationError(
                    f"trace frame {i} carries sequence {f.sequence}; "
                    "traces must be gap-free and ordered"
                )

    @property
    def duration_ms(self) -> float:
        if not self.frames:
            return 0.0
        last = self.frames[-1]
        codec = _codec_by_name(last.codec)
        return last.sent_ms + codec.packet_interval_ms()

    @property
    def loss_rate(self) -> float:
        if not self.frames:
            return 0.0
        return sum(1 for f in self.frames if f.lost) / len(self.frames)

    def to_jsonl(self) -> str:
        """Canonical byte-stable serialization (one frame per line)."""
        lines = [
            json.dumps(
                {"schema": 1, "call_id": self.call_id, "frames": len(self.frames)},
                sort_keys=True,
                separators=(",", ":"),
            )
        ]
        for f in self.frames:
            record = {
                "seq": f.sequence,
                "sent_ms": round(f.sent_ms, 3),
                "arrival_ms": None if f.arrival_ms is None else round(f.arrival_ms, 3),
                "codec": f.codec,
            }
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def from_jsonl(cls, text: str) -> "ReceivedTrace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConfigurationError("empty trace file")
        header = json.loads(lines[0])
        frames = []
        for ln in lines[1:]:
            rec = json.loads(ln)
            frames.append(
                ReceivedFrame(
                    sequence=rec["seq"],
                    sent_ms=rec["sent_ms"],
                    arrival_ms=rec["arrival_ms"],
                    codec=rec["codec"],
                )
            )
        trace = cls(call_id=header["call_id"], frames=tuple(frames))
        if len(trace.frames) != header["frames"]:
            raise ConfigurationError("trace header frame count mismatch")
        return trace

    @classmethod
    def read(cls, path: Union[str, Path]) -> "ReceivedTrace":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))


def _codec_by_name(name: str) -> Codec:
    for c in ALL_CODECS:
        if c.name == name:
            return c
    raise ConfigurationError(f"unknown codec {name!r}")


def trace_from_wire(
    call_id: int,
    received: Sequence[Tuple[int, float, float, int]],
    expected_frames: Optional[int] = None,
) -> ReceivedTrace:
    """Build a gap-free trace from wire-level ``MediaFrame`` receipts.

    ``received`` holds ``(seq, timestamp_ms, arrival_ms, codec_wire_id)``
    tuples in any order; sequence numbers the sender emitted but the
    receiver never saw become lost frames.  A lost frame's send time is
    interpolated from its neighbours' pacing (last known codec), since
    the wire carries send times only on frames that arrived.
    """
    by_seq: Dict[int, Tuple[float, float, int]] = {}
    for seq, ts, arr, wire_id in received:
        # Duplicates (relay re-forwarding): keep the earliest arrival.
        if seq not in by_seq or arr < by_seq[seq][1]:
            by_seq[seq] = (ts, arr, wire_id)
    if expected_frames is None:
        expected_frames = max(by_seq) + 1 if by_seq else 0
    frames: List[ReceivedFrame] = []
    last_codec: Codec = ALL_CODECS[0] if not by_seq else codec_by_wire_id(
        by_seq[min(by_seq)][2]
    )
    last_sent = 0.0
    for seq in range(expected_frames):
        if seq in by_seq:
            ts, arr, wire_id = by_seq[seq]
            codec = codec_by_wire_id(wire_id)
            frames.append(ReceivedFrame(seq, round(ts, 3), round(arr, 3), codec.name))
            last_codec, last_sent = codec, ts
        else:
            last_sent = last_sent + last_codec.packet_interval_ms() if frames else 0.0
            frames.append(
                ReceivedFrame(seq, round(last_sent, 3), None, last_codec.name)
            )
    return ReceivedTrace(call_id=call_id, frames=tuple(frames))
