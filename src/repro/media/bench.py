"""Media-plane throughput benchmark and BENCH_media.json schema.

Measures frames/s through the full codec → channel → jitter buffer →
PLC → scorer pipeline (via :func:`repro.media.session.run_media_session`)
and through the playout stage alone.  The committed baseline lives in
``benchmarks/BENCH_media.json``; CI re-validates its schema with::

    python -m repro.media.bench --check benchmarks/BENCH_media.json

and the benchmark test refreshes the numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List

from repro.media.frames import ReceivedTrace
from repro.media.jitterbuf import AdaptiveJitterBuffer, JitterBufferConfig
from repro.media.score import score_trace
from repro.media.session import MediaPlaneConfig, PathWindow, run_media_session

#: Required keys of BENCH_media.json and their types.
BENCH_MEDIA_SCHEMA: Dict[str, type] = {
    "session_seconds_simulated": (int, float),
    "pipeline_frames_per_sec": (int, float),
    "playout_frames_per_sec": (int, float),
    "score_frames_per_sec": (int, float),
}


def validate_bench_document(doc: dict) -> List[str]:
    """Schema-check a BENCH_media.json dict; returns problems (empty = ok)."""
    problems = []
    for key, kinds in BENCH_MEDIA_SCHEMA.items():
        if key not in doc:
            problems.append(f"missing key {key!r}")
        elif not isinstance(doc[key], kinds) or isinstance(doc[key], bool):
            problems.append(f"key {key!r} must be numeric, got {type(doc[key]).__name__}")
        elif doc[key] <= 0:
            problems.append(f"key {key!r} must be positive")
    for key in doc:
        if key not in BENCH_MEDIA_SCHEMA:
            problems.append(f"unexpected key {key!r}")
    return problems


def run_bench(duration_ms: float = 30_000.0, repeats: int = 3) -> dict:
    """Time the media pipeline; returns a BENCH_media.json-shaped dict."""
    config = MediaPlaneConfig(burst_frames=4.0)
    path = [PathWindow(start_ms=0.0, rtt_ms=120.0, loss_rate=0.02)]

    def one_session():
        return run_media_session(
            call_id=1, duration_ms=duration_ms, path=path, config=config, seed=7
        )

    result = one_session()  # warmup; reused for the stage benches
    frames = len(result.trace.frames)

    t0 = time.perf_counter()
    for _ in range(repeats):
        one_session()
    pipeline_fps = repeats * frames / (time.perf_counter() - t0)

    trace: ReceivedTrace = result.trace
    t0 = time.perf_counter()
    for _ in range(repeats):
        AdaptiveJitterBuffer(JitterBufferConfig()).play(trace)
    playout_fps = repeats * frames / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    for _ in range(repeats):
        score_trace(trace)
    score_fps = repeats * frames / (time.perf_counter() - t0)

    return {
        "session_seconds_simulated": round(duration_ms / 1000.0),
        "pipeline_frames_per_sec": round(pipeline_fps),
        "playout_frames_per_sec": round(playout_fps),
        "score_frames_per_sec": round(score_fps),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.media.bench")
    parser.add_argument("--out", type=Path, help="write fresh results here")
    parser.add_argument(
        "--check", type=Path, help="schema-validate an existing BENCH_media.json"
    )
    args = parser.parse_args(argv)
    if args.check is not None:
        doc = json.loads(args.check.read_text(encoding="utf-8"))
        problems = validate_bench_document(doc)
        for p in problems:
            print(f"BENCH_media.json: {p}")
        if problems:
            return 1
        print(f"{args.check}: schema ok")
        return 0
    doc = run_bench()
    text = json.dumps(doc, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text, encoding="utf-8")
    print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
