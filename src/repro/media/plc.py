"""Packet-loss concealment accounting.

Waveform-substitution PLC (repeat last frame, attenuate) masks short
loss runs almost completely but collapses on long bursts — the decoder
has nothing plausible left to repeat.  We model that with a window:
the first ``max_conceal_frames`` of every *consecutive* loss run count
as *concealed* (weight ``conceal_weight`` toward effective loss), the
remainder as *revealed* (full weight).  The model is burst-aware by
construction: a Gilbert–Elliott channel producing the same mean loss
in longer bursts reveals strictly more loss than random drops do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PLCConfig:
    max_conceal_frames: int = 3   # repeat/attenuate window per loss run
    conceal_weight: float = 0.35  # residual impairment of a concealed frame

    def __post_init__(self) -> None:
        if self.max_conceal_frames < 0:
            raise ConfigurationError("max_conceal_frames must be >= 0")
        if not 0.0 <= self.conceal_weight <= 1.0:
            raise ConfigurationError("conceal_weight must be in [0, 1]")


@dataclass(frozen=True)
class ConcealmentReport:
    """Per-frame concealment outcome over one loss-flag sequence."""

    weights: Tuple[float, ...]    # per-frame effective-loss weight
    statuses: Tuple[str, ...]     # per-frame "ok" | "concealed" | "revealed"
    concealed: int                # loss frames masked by PLC
    revealed: int                 # loss frames PLC could not mask

    @property
    def total_lost(self) -> int:
        return self.concealed + self.revealed

    @property
    def concealed_rate(self) -> float:
        """Fraction of the stream's frames concealed by PLC."""
        if not self.weights:
            return 0.0
        return self.concealed / len(self.weights)

    @property
    def effective_loss(self) -> float:
        """PLC-adjusted loss rate to feed Ie_eff in the E-model."""
        if not self.weights:
            return 0.0
        return sum(self.weights) / len(self.weights)


def conceal(loss_flags: Sequence[bool], config: PLCConfig = PLCConfig()) -> ConcealmentReport:
    """Apply the repeat/attenuate window model to a loss-flag sequence.

    ``loss_flags[i]`` is True when frame *i* was lost (or arrived too
    late to play).  Weight per frame: 0 for a played frame,
    ``conceal_weight`` for a concealed loss, 1.0 for a revealed loss.
    """
    weights: List[float] = []
    statuses: List[str] = []
    concealed = revealed = 0
    run = 0
    for lost in loss_flags:
        if not lost:
            run = 0
            weights.append(0.0)
            statuses.append("ok")
            continue
        run += 1
        if run <= config.max_conceal_frames:
            concealed += 1
            weights.append(config.conceal_weight)
            statuses.append("concealed")
        else:
            revealed += 1
            weights.append(1.0)
            statuses.append("revealed")
    return ConcealmentReport(
        weights=tuple(weights), statuses=tuple(statuses),
        concealed=concealed, revealed=revealed,
    )
