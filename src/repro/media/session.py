"""One end-to-end media session: frames → channel → buffer → PLC → MOS.

:func:`run_media_session` is the media plane's single entry point for
the sim runtime, the conference scenario and the CLI.  The caller
describes the *path* as a piecewise-constant sequence of
:class:`PathWindow` segments (RTT + loss per segment, session-relative
times) plus optional hard outage windows (failovers: nothing flows);
the session deterministically synthesizes the frame arrival process,
plays it through the adaptive jitter buffer, applies PLC accounting,
drives the codec adapter, and scores the received trace.

Determinism contract: everything derives from ``derive_rng(seed,
"media", str(call_id))`` and the configuration — same inputs, byte-
identical :class:`ReceivedTrace`, telemetry samples and MOS.  The RNG
draw pattern is fixed per loss mode (one uniform per frame i.i.d.,
two per frame Gilbert–Elliott, plus one exponential per surviving
frame when jitter is on) and never depends on outage placement, so
adding an outage does not perturb the channel elsewhere.

The adapter sees loss feedback with zero delay (the receiver's view,
not a delayed RTCP-style report) — a documented idealization that
keeps switch timing deterministic and easy to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.media.adapt import AdaptationPolicy, CodecAdapter, CodecSwitch
from repro.media.frames import FrameSource, ReceivedFrame, ReceivedTrace
from repro.media.jitterbuf import AdaptiveJitterBuffer, JitterBufferConfig, PlayoutResult
from repro.media.plc import PLCConfig, conceal
from repro.media.score import DEFAULT_WINDOW_MS, MeasuredScore, score_trace
from repro.obs.timeseries import NULL_TIMELINE
from repro.obs.trace import NULL_TRACE_SPAN
from repro.util.rng import derive_rng
from repro.voip.codecs import Codec, G729A_VAD
from repro.voip.outage import OutageWindow


@dataclass(frozen=True)
class PathWindow:
    """Path conditions from ``start_ms`` (session-relative) onward."""

    start_ms: float
    rtt_ms: float
    loss_rate: float

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.rtt_ms < 0:
            raise ConfigurationError("start_ms and rtt_ms must be non-negative")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1]")


@dataclass(frozen=True)
class MediaPlaneConfig:
    """Everything the media plane needs beyond the path itself."""

    codec: Codec = G729A_VAD
    jitter_mean_ms: float = 6.0
    # Mean loss-burst length in frames for the Gilbert–Elliott channel;
    # ``None`` drops losses i.i.d. at each segment's rate instead.
    burst_frames: Optional[float] = None
    jitterbuf: JitterBufferConfig = field(default_factory=JitterBufferConfig)
    plc: PLCConfig = field(default_factory=PLCConfig)
    # ``None`` disables codec switching entirely.
    adaptation: Optional[AdaptationPolicy] = field(default_factory=AdaptationPolicy)
    window_ms: float = DEFAULT_WINDOW_MS
    payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.jitter_mean_ms < 0:
            raise ConfigurationError("jitter_mean_ms must be non-negative")
        if self.burst_frames is not None and self.burst_frames < 1.0:
            raise ConfigurationError("burst_frames must be >= 1")
        if self.window_ms <= 0:
            raise ConfigurationError("window_ms must be positive")
        if self.payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")


@dataclass(frozen=True)
class MediaResult:
    """Everything one media session produced."""

    call_id: int
    duration_ms: float
    trace: ReceivedTrace
    playout: PlayoutResult
    score: MeasuredScore
    switches: Tuple[CodecSwitch, ...]

    @property
    def mos(self) -> float:
        return self.score.mos

    def to_dict(self) -> dict:
        """Stable summary dict (CI byte-diffs JSON dumps of this)."""
        return {
            "call_id": self.call_id,
            "duration_ms": round(self.duration_ms, 3),
            "frames": len(self.trace.frames),
            "mos": round(self.score.mos, 6),
            "base_mos": round(self.score.base_mos, 6),
            "effective_loss": round(self.score.effective_loss, 6),
            "concealed_rate": round(self.score.concealed_rate, 6),
            "late_frames": self.score.late_frames,
            "lost_frames": self.score.lost_frames,
            "switches": [
                {
                    "at_ms": s.at_ms,
                    "seq": s.sequence,
                    "from": s.from_codec,
                    "to": s.to_codec,
                    "window_loss": s.window_loss,
                }
                for s in self.switches
            ],
        }


def _segment_at(path: Sequence[PathWindow], t_ms: float) -> PathWindow:
    active = path[0]
    for seg in path:
        if seg.start_ms <= t_ms:
            active = seg
        else:
            break
    return active


def _in_outage(outages: Sequence[OutageWindow], t_ms: float) -> bool:
    return any(w.start_ms <= t_ms < w.end_ms for w in outages)


def run_media_session(
    call_id: int,
    duration_ms: float,
    path: Sequence[PathWindow],
    outages: Sequence[OutageWindow] = (),
    config: MediaPlaneConfig = MediaPlaneConfig(),
    seed: int = 0,
    start_ms: float = 0.0,
    timeline=NULL_TIMELINE,
    span=NULL_TRACE_SPAN,
    **tags: str,
) -> MediaResult:
    """Run one direction of a call's media over a described path.

    ``path`` segments and ``outages`` use session-relative times;
    ``start_ms`` only offsets telemetry timestamps and trace points so
    they land at the right absolute sim time.  ``tags`` label every
    telemetry sample (e.g. ``leg="a-b"``).
    """
    if duration_ms <= 0:
        raise ConfigurationError("duration_ms must be positive")
    if not path:
        raise ConfigurationError("need at least one PathWindow")
    if sorted(path, key=lambda s: s.start_ms) != list(path):
        raise ConfigurationError("path segments must be sorted by start_ms")

    rng = derive_rng(seed, "media", str(call_id))
    adapter = CodecAdapter(config.adaptation) if config.adaptation else None
    # With adaptation on, the policy's primary codec governs pacing;
    # ``config.codec`` applies only to fixed-codec sessions.
    source = FrameSource(adapter.codec if adapter is not None else config.codec)

    received: List[ReceivedFrame] = []
    switches: List[CodecSwitch] = []
    ge_bad = False  # Gilbert–Elliott channel state, carried across segments
    for frame in source.frames_until(duration_ms):
        seg = _segment_at(path, frame.sent_ms)
        if config.burst_frames is None:
            lost = bool(rng.random() < seg.loss_rate)
        else:
            # Per-frame transition probabilities matching the segment's
            # mean loss at the configured burst length (Gilbert channel:
            # good never drops, bad always drops).
            r = 1.0 / config.burst_frames
            loss = seg.loss_rate
            p = 0.0 if loss <= 0 else (1.0 if loss >= 1 else min(1.0, r * loss / (1.0 - loss)))
            transition = rng.random()
            emission = rng.random()  # reserved draw keeps alignment with loss_bad < 1 variants
            if ge_bad:
                if transition < r:
                    ge_bad = False
            else:
                if transition < p:
                    ge_bad = True
            lost = ge_bad and emission < 1.0
        if _in_outage(outages, frame.sent_ms):
            lost = True  # hard outage overrides the channel (draws already taken)
        if lost:
            received.append(
                ReceivedFrame(frame.sequence, frame.sent_ms, None, frame.codec.name)
            )
        else:
            jitter = (
                float(rng.exponential(config.jitter_mean_ms))
                if config.jitter_mean_ms > 0
                else 0.0
            )
            arrival = frame.sent_ms + seg.rtt_ms / 2.0 + jitter
            received.append(
                ReceivedFrame(
                    frame.sequence, frame.sent_ms, round(arrival, 3), frame.codec.name
                )
            )
        if adapter is not None:
            switch = adapter.observe(frame.sequence, frame.sent_ms, lost)
            if switch is not None:
                switches.append(switch)
                source.switch(adapter.codec)
                span.point(
                    "media.codec_switch",
                    at_ms=start_ms + switch.at_ms,
                    seq=switch.sequence,
                    from_codec=switch.from_codec,
                    to_codec=switch.to_codec,
                    window_loss=switch.window_loss,
                )

    trace = ReceivedTrace(call_id=call_id, frames=tuple(received))
    playout = AdaptiveJitterBuffer(config.jitterbuf).play(trace)
    score = score_trace(
        trace, jitterbuf=config.jitterbuf, plc=config.plc,
        window_ms=config.window_ms, playout=playout,
    )

    if timeline:
        report = conceal(playout.effective_loss_flags, config.plc)
        window_count = max(1, int(-(-trace.duration_ms // config.window_ms)))
        buckets: Dict[int, List[int]] = {}
        for i, f in enumerate(trace.frames):
            idx = min(int(f.sent_ms // config.window_ms), window_count - 1)
            buckets.setdefault(idx, []).append(i)
        switch_iter = iter(switches)
        pending = next(switch_iter, None)
        cumulative_switches = 0
        for idx in range(window_count):
            members = buckets.get(idx, [])
            if not members:
                continue
            end = start_ms + min((idx + 1) * config.window_ms, trace.duration_ms)
            depth = sum(playout.frames[i].depth_ms for i in members) / len(members)
            concealed = sum(1 for i in members if report.statuses[i] == "concealed")
            while pending is not None and pending.at_ms < (idx + 1) * config.window_ms:
                cumulative_switches += 1
                pending = next(switch_iter, None)
            timeline.sample("media.jitterbuf_depth_ms", end, depth, **tags)
            timeline.sample(
                "media.concealed_loss_rate", end, concealed / len(members), **tags
            )
            timeline.sample("media.codec_switches", end, cumulative_switches, **tags)
        for w in score.windows:
            if not w.is_outage:
                timeline.sample("media.window_mos", start_ms + w.end_ms, w.mos, **tags)

    return MediaResult(
        call_id=call_id,
        duration_ms=trace.duration_ms,
        trace=trace,
        playout=playout,
        score=score,
        switches=tuple(switches),
    )
