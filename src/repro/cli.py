"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's workflow:

- ``generate``   build a scenario and export its artifacts (RIB dump,
                 update stream, measured matrices) to a directory;
- ``section3``   the measurement-foundation experiment (Figs. 2-3);
- ``section5``   the 14-session Skype study (Tables 1-2, Figs. 6-7);
- ``section7``   ASAP vs baselines on latent sessions (Figs. 11-16, 18);
- ``experiment`` the unified experiment engine — section7 on the dense
                 or streamed substrate at any tier, with stage timings,
                 peak-RSS accounting and BENCH_e2e.json emission;
- ``scalability``the two-population experiment (Fig. 17);
- ``call``       one ASAP call on the worst direct pair (or an explicit
                 ``--src``/``--dst`` host pair), verbosely;
- ``trace``      a traced chaos + Skype-baseline run, rendered as
                 per-call timelines and the L1-L4 limits report;
- ``soak``       long-horizon churn soak over the sharded control plane
                 (steady-state gates; exits 1 when a gate fails);
- ``report``     render a finished run directory — manifest summary,
                 per-subsystem telemetry timelines, trace self-time
                 profile, critical path — and optionally export a
                 flamegraph JSON document;
- ``serve``      run the bootstrap + surrogate daemons on real TCP
                 sockets;
- ``dial``       join host agents against a running ``serve`` and place
                 one call over the wire (prints MOS and the setup
                 critical path);
- ``demo``       the whole overlay in one process — bootstrap,
                 surrogates, hosts — over the deterministic loopback
                 transport or real localhost sockets.

Every subcommand is registered through :func:`_subcommand`, the single
place the uniform flags (``--scale``/``--seed``/``--workers``/
``--cache-dir``/``--obs-dir``/``--log-level``/``--trace``) are wired —
a new subcommand cannot drift from the shared interface, and the CLI
tests enumerate the registered parsers to enforce it.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import obs
from repro.scenario import SCALES, Scenario, ScenarioConfig, build_scenario


def _build_from_args(args: argparse.Namespace) -> Scenario:
    return build_scenario(ScenarioConfig.from_cli_args(args))


def _version_string() -> str:
    from repro import __version__
    from repro.net.codec import CODEC_SCHEMA_VERSION

    return (
        f"repro {__version__} "
        f"(codec schema {CODEC_SCHEMA_VERSION}, "
        f"trace schema {obs.TRACE_SCHEMA_VERSION}, "
        f"manifest schema {obs.MANIFEST_SCHEMA_VERSION})"
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=SCALES, default="small",
                        help="scenario size (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for matrix/close-set builds "
                             "(0 = all CPUs; default: $REPRO_WORKERS or serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory for built scenarios "
                             "(default: $REPRO_CACHE_DIR or no caching)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="enable observability: write run_manifest.json "
                             "and events.jsonl to this directory")
    parser.add_argument("--log-level", choices=obs.LOG_LEVELS, default="info",
                        help="event level written to events.jsonl "
                             "(default: info; requires --obs-dir)")
    parser.add_argument("--trace", action="store_true",
                        help="also write causal trace records to "
                             "<obs-dir>/traces.jsonl (requires --obs-dir)")


def _subcommand(sub, name: str, func, help_text: str) -> argparse.ArgumentParser:
    """Register one subcommand with the uniform common flags attached.

    The only sanctioned way to add a subparser: common flags are wired
    here and nowhere else, so every present and future subcommand
    accepts the same ``--scale``/``--seed``/``--workers``/``--cache-dir``/
    ``--obs-dir``/``--log-level``/``--trace`` interface.
    """
    parser = sub.add_parser(name, help=help_text)
    _add_common(parser)
    parser.set_defaults(func=func)
    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.storage import (
        save_matrices,
        write_asgraph_file,
        write_rib_file,
        write_update_file,
    )
    from repro.topology.bgpfeed import generate_rib_entries, generate_update_stream

    scenario = _build_from_args(args)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    entries = generate_rib_entries(
        scenario.topology, scenario.allocation, seed=args.seed
    )
    updates = generate_update_stream(
        scenario.topology, scenario.allocation, seed=args.seed
    )
    n_routes = write_rib_file(out / "rib.dump", entries)
    n_updates = write_update_file(out / "updates.log", updates)
    n_edges = write_asgraph_file(out / "asgraph.txt", scenario.inferred_graph)
    save_matrices(out / "matrices.npz", scenario.matrices)
    print(
        f"wrote {n_routes} routes, {n_updates} updates, {n_edges} AS-graph "
        f"edges, {scenario.matrices.count}x{scenario.matrices.count} matrices to {out}"
    )
    return 0


def cmd_section3(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_cdf_row, render_kv_table
    from repro.evaluation.section3 import run_section3

    scenario = _build_from_args(args)
    result = run_section3(scenario, session_count=args.sessions, seed=args.seed)
    print(render_cdf_row("direct", result.direct_rtts, "ms"))
    print(render_cdf_row("opt 1-hop", result.optimal_one_hop, "ms"))
    print(
        render_kv_table(
            "summary:",
            [
                ("latent fraction (>300 ms)", result.latent_fraction),
                ("improved fraction", result.improved_fraction),
                ("latent rescued fraction", result.rescued_fraction),
            ],
        )
    )
    return 0


def cmd_section5(args: argparse.Namespace) -> int:
    from repro.evaluation.section5 import run_section5

    scenario = _build_from_args(args)
    study = run_section5(scenario, seed=args.seed)
    print("session  stabilization_s  probed  after_stab  asymmetric")
    for analysis, stab, probed, after in zip(
        study.analyses,
        study.stabilization_seconds(),
        study.probed_counts(),
        study.probed_after_stabilization(),
    ):
        print(
            f"{analysis.session_id:>7}  {stab:>15.1f}  {probed:>6}  {after:>10}  "
            f"{'yes' if analysis.asymmetric else 'no':>10}"
        )
    rows = study.same_as_table()
    print(f"same-AS probe groups: {len(rows)}")
    return 0


def cmd_section7(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_method_table
    from repro.evaluation.section7 import run_section7

    scenario = _build_from_args(args)
    result = run_section7(
        scenario,
        session_count=args.sessions,
        latent_target=args.latent,
        max_latent_sessions=args.latent,
        seed=args.seed,
    )
    print(f"latent sessions: {len(result.latent_sessions)}")
    print(render_method_table(result.summaries()))
    if "ASAP" in result.records:
        total = sum(r.messages for r in result.records["ASAP"])
        print(f"ASAP relay-selection messages (total): {total}")
    if args.records:
        from repro.storage import save_records_csv

        rows = [r for records in result.records.values() for r in records]
        save_records_csv(args.records, rows)
        print(f"wrote {len(rows)} records to {args.records}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.evaluation.engine import ExperimentConfig, run_experiment
    from repro.evaluation.policies import METHOD_NAMES
    from repro.evaluation.report import render_method_table

    if args.policies:
        methods = tuple(p.strip().upper() for p in args.policies.split(",") if p.strip())
    else:
        methods = METHOD_NAMES
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        session_count=args.sessions,
        latent_target=args.latent,
        max_latent_sessions=args.latent,
        methods=methods,
        stream=args.stream,
        spill_dir=args.spill_dir,
        chunk_columns=args.chunk_columns,
    )
    report = run_experiment(config)
    substrate = "streamed" if report.streamed else "dense"
    print(
        f"experiment: scale={args.scale} substrate={substrate} "
        f"population={report.population} clusters={report.clusters}"
    )
    stages = " ".join(f"{k}={v:.2f}s" for k, v in report.stage_seconds.items())
    print(f"stages: {stages}")
    print(f"peak RSS: {report.peak_rss_kb} KiB "
          f"(dense matrices would need {report.dense_bytes // (1024 * 1024)} MiB)")
    if report.spill is not None:
        print(f"spill: {report.spill['chunks']}/{report.spill['chunk_total']} chunks, "
              f"{report.spill['bytes'] // (1024 * 1024)} MiB "
              f"({'ephemeral' if report.spill['ephemeral'] else report.spill['dir']})")
    print(f"latent sessions: {len(report.result.latent_sessions)} "
          f"(derived k = {report.derived_k_hops})")
    print(render_method_table(report.result.summaries()))
    if args.bench_out:
        path = report.write_bench(args.bench_out)
        print(f"wrote e2e bench document: {path}")
    return 0


def cmd_scalability(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_kv_table
    from repro.evaluation.scalability import run_scalability

    scenario = _build_from_args(args)
    result = run_scalability(
        scenario,
        session_count=args.sessions,
        latent_target=args.latent,
        max_latent_sessions=args.latent,
        seed=args.seed,
    )
    print(
        render_kv_table(
            "scalability error by method (≈0 = scalable):",
            [(m, result.scalability_error(m)) for m in ("DEDI", "RAND", "MIX", "ASAP")],
        )
    )
    return 0


def cmd_call(args: argparse.Namespace) -> int:
    from repro.core import ASAPConfig, ASAPSystem
    from repro.core.config import derive_k_hops

    scenario = _build_from_args(args)
    matrices = scenario.matrices
    system = ASAPSystem(scenario, ASAPConfig(k_hops=derive_k_hops(matrices)))
    if (args.src is None) != (args.dst is None):
        print("error: --src and --dst must be given together", file=sys.stderr)
        return 2
    if args.src is not None:
        hosts = scenario.population.hosts
        for index in (args.src, args.dst):
            if not 0 <= index < len(hosts):
                print(
                    f"error: host index {index} out of range "
                    f"(population has {len(hosts)} hosts)",
                    file=sys.stderr,
                )
                return 2
        caller_ip, callee_ip = hosts[args.src].ip, hosts[args.dst].ip
    else:
        rtt = matrices.rtt_ms.copy()
        rtt[~np.isfinite(rtt)] = -1.0
        a, b = np.unravel_index(int(np.argmax(rtt)), rtt.shape)
        clusters = scenario.clusters.all_clusters()
        caller_ip, callee_ip = clusters[a].hosts[0].ip, clusters[b].hosts[0].ip
    session = system.call(caller_ip, callee_ip)
    print(f"caller {session.caller} -> callee {session.callee}")
    print(f"direct RTT: {session.direct_rtt_ms:.0f} ms; relay needed: {session.relay_needed}")
    if session.selection is not None:
        print(f"quality paths: {session.quality_paths} "
              f"({session.selection.one_hop_ips} one-hop IPs, "
              f"{session.selection.two_hop_pairs} two-hop pairs)")
        print(f"messages: {session.messages}")
        best = session.best_relay_rtt_ms
        print("best relay RTT: " + (f"{best:.0f} ms" if best is not None else "none found"))
    if args.media:
        from repro.media.session import MediaPlaneConfig, PathWindow, run_media_session
        from repro.voip.quality import DEFAULT_EVAL_LOSS_RATE, mos_of_path

        rtt = session.best_path_rtt_ms
        if not np.isfinite(rtt):
            print("media: no usable path to run frames over", file=sys.stderr)
            return 1
        result = run_media_session(
            call_id=1,
            duration_ms=args.media_ms,
            path=[PathWindow(0.0, float(rtt), DEFAULT_EVAL_LOSS_RATE)],
            config=MediaPlaneConfig(burst_frames=4.0),
            seed=args.seed,
        )
        closed = mos_of_path(float(rtt))
        print(f"media: {len(result.trace.frames)} frames over best path "
              f"({rtt:.0f} ms RTT), {result.score.late_frames} late, "
              f"{result.score.lost_frames} lost, "
              f"{len(result.switches)} codec switches")
        print(f"  closed-form MOS: {closed:.3f}   measured MOS: {result.score.mos:.3f}")
        for w in result.score.windows:
            mos_str = "outage" if w.is_outage else f"{w.mos:.3f}"
            print(f"  [{w.start_ms:7.0f}..{w.end_ms:7.0f} ms] "
                  f"measured {mos_str}  loss {w.effective_loss:.3f}  "
                  f"codec {w.codec}")
    return 0


def cmd_limits(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_kv_table
    from repro.evaluation.section5 import run_skype_batch
    from repro.measurement.tools import KingEstimator
    from repro.skype.analyzer import TraceAnalyzer
    from repro.skype.limits import detect_limits

    scenario = _build_from_args(args)
    study = run_skype_batch(scenario, session_count=args.sessions, seed=args.seed)
    analyzer = TraceAnalyzer(
        scenario.prefix_table,
        king=KingEstimator(scenario.latency, seed=args.seed, non_response_rate=0.0),
        population=scenario.population,
    )
    king = KingEstimator(scenario.latency, seed=args.seed, non_response_rate=0.0)
    report = detect_limits(
        study.analyses, study.results, analyzer,
        king=king, population=scenario.population,
    )
    print(render_kv_table("detected Skype limits:", report.summary_rows()))
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_kv_table
    from repro.evaluation.robustness import seed_study, summarize_across
    from repro.scenario import ScenarioConfig
    from repro.topology import PopulationConfig, TopologyConfig

    base = ScenarioConfig(
        topology=TopologyConfig(tier1_count=5, tier2_count=40, tier3_count=250),
        population=PopulationConfig(host_count=2000),
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    seeds = tuple(range(args.seed, args.seed + args.worlds))
    results = seed_study(base, seeds=seeds, session_count=args.sessions, latent_target=30)
    for metrics in results:
        print(metrics.row())
    print(render_kv_table("aggregate:", summarize_across(results)))
    return 0


def _print_traced_failovers(limit: int = 5) -> int:
    """Render the failover timelines captured by the active run's trace.

    No-op (returns 0) unless tracing is on and writing to disk.  Reads
    the records back from ``traces.jsonl`` rather than runtime state, so
    what is printed is exactly what a later offline analysis would see.
    """
    from repro.obs import trace_analysis as ta

    observer = obs.active()
    tracer = observer.trace if observer is not None else None
    if tracer is None or tracer.path is None:
        return 0
    tracer.flush()
    trees = ta.build_trees(obs.load_trace_file(tracer.path))
    faults = ta.fault_links(trees)
    interesting = [
        tree
        for tree in trees.values()
        if tree.root is not None
        and tree.root.name == "call"
        and (tree.root.find("media.failover") or tree.root.find("media.relay_lost"))
    ]
    if not interesting:
        return 0
    print(f"traced failover timelines ({len(interesting)} calls):")
    for tree in interesting[:limit]:
        for line in ta.render_timeline(tree, faults):
            print("  " + line)
    if len(interesting) > limit:
        print(f"  ... {len(interesting) - limit} more traced calls with failovers")
    return len(interesting)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.evaluation.chaos import run_chaos
    from repro.evaluation.report import render_kv_table
    from repro.evaluation.sessions import generate_workload
    from repro.faults import FaultScheduleConfig
    from repro.obs import trace_analysis as ta
    from repro.skype.session import run_skype_session

    scenario = _build_from_args(args)
    fault_config = FaultScheduleConfig(
        seed=args.fault_seed,
        duration_ms=args.duration_ms,
        surrogate_crash_rate_per_min=args.crash_rate,
        host_churn_rate_per_min=args.churn_rate,
    )
    run_chaos(
        scenario,
        fault_config,
        sessions=args.sessions,
        joins=args.joins,
        media_duration_ms=args.media_ms,
        seed=args.seed,
        latent_target=args.sessions,
    )
    # The Skype-like baseline runs the same workload pairs (latent ones
    # first — those are the calls where relay choice matters).
    workload = generate_workload(
        scenario, max(args.sessions, 1), seed=args.seed, latent_target=args.sessions
    )
    pairs = (workload.latent() + workload.sessions)[: args.skype_sessions]
    for index, session in enumerate(pairs):
        run_skype_session(
            scenario,
            session.caller,
            session.callee,
            duration_ms=args.skype_ms,
            session_id=index,
        )

    observer = obs.active()
    tracer = observer.trace if observer is not None else None
    if tracer is None or tracer.path is None:
        print("error: the trace command needs an active traced run", file=sys.stderr)
        return 2
    tracer.flush()
    # Everything below is derived purely from the trace file on disk —
    # never from live runtime state — so the same report reproduces
    # offline from traces.jsonl alone.
    records = obs.load_trace_file(tracer.path)
    trees = ta.build_trees(records)
    calls = ta.analyze_calls(trees)
    skypes = ta.analyze_skype_calls(trees)
    faults = ta.fault_links(trees)

    call_trees = [
        tree for tree in trees.values()
        if tree.root is not None and tree.root.name == "call"
    ]

    def interest(tree) -> int:
        return (
            len(tree.root.find("media.failover"))
            + len(tree.root.find("media.relay_lost"))
            + len(faults.get(tree.trace_id, ()))
        )

    call_trees.sort(key=lambda tree: (-interest(tree), tree.trace_id))
    for tree in call_trees[: args.timelines]:
        print()
        for line in ta.render_timeline(tree, faults):
            print(line)

    report = ta.limits_report(calls, skypes)
    print()
    print(render_kv_table("Skype limits, ASAP vs Skype-like baseline:", report.rows()))
    print(f"trace records: {len(records)} in {tracer.path}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.evaluation.chaos import run_chaos, sweep_chaos
    from repro.evaluation.report import render_kv_table
    from repro.faults import FaultScheduleConfig

    scenario = _build_from_args(args)
    fault_config = FaultScheduleConfig(
        seed=args.fault_seed,
        duration_ms=args.duration_ms,
        surrogate_crash_rate_per_min=args.crash_rate,
        host_churn_rate_per_min=args.churn_rate,
        random_as_outages=args.as_failures,
        message_loss_rate=args.loss_rate,
    )
    kwargs = dict(
        sessions=args.sessions,
        joins=args.joins,
        media_duration_ms=args.media_ms,
        seed=args.seed,
        latent_target=args.latent,
    )
    if args.sweep:
        intensities = tuple(float(x) for x in args.sweep.split(","))
        results = sweep_chaos(scenario, fault_config, intensities, **kwargs)
        for intensity, result in results:
            print(render_kv_table(f"intensity {intensity:g}:", result.summary_rows()))
        final = results[-1][1]
    else:
        final = run_chaos(scenario, fault_config, **kwargs)
        print(render_kv_table("chaos run:", final.summary_rows()))
    if args.fault_log:
        Path(args.fault_log).write_text("\n".join(final.fault_log) + "\n")
        print(f"wrote {len(final.fault_log)} fault log lines to {args.fault_log}")
    if args.json:
        Path(args.json).write_text(final.to_json() + "\n")
        print(f"wrote chaos summary to {args.json}")
    _print_traced_failovers()
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_kv_table
    from repro.evaluation.soak import SoakConfig, default_shard_outage, run_soak
    from repro.faults import ChurnWave

    scenario = _build_from_args(args)
    waves = ()
    if args.wave_fraction > 0:
        waves = tuple(
            ChurnWave(at_ms=round(at, 3), fraction=args.wave_fraction)
            for at in args.wave_at_ms
        )
    config = SoakConfig(
        seed=args.soak_seed,
        sim_minutes=args.minutes,
        shards=args.shards,
        sessions=args.sessions,
        joins=args.joins,
        media_duration_ms=args.media_ms,
        churn_rate_per_min=args.churn_rate,
        churn_waves=waves,
        rejoin_delay_ms=args.rejoin_ms,
        staleness_p95_max=args.staleness_max,
    )
    if args.kill_shard >= 0:
        config = dataclasses.replace(
            config, shard_outages=(default_shard_outage(config, args.kill_shard),)
        )
    report = run_soak(scenario, config)
    print(render_kv_table("churn soak:", report.summary_rows()))
    if args.event_log:
        Path(args.event_log).write_text("\n".join(report.log_lines()) + "\n")
        print(f"wrote {len(report.log_lines())} event log lines to {args.event_log}")
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote soak report to {args.json}")
    return 0 if report.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Render one finished run directory as the unified repro report.

    Pure artifact reader: joins run_manifest.json, telemetry.jsonl and
    traces.jsonl (plus any ``--extra-traces`` from the other side of a
    cross-process run) without starting a new observability run.
    """
    from repro.obs.report import load_run, render_report, write_flame

    try:
        artifacts = load_run(args.run_dir, extra_traces=args.extra_traces)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in render_report(artifacts, width=args.width):
        print(line)
    if args.flame_out:
        if not artifacts.traces:
            print("error: --flame-out needs trace records", file=sys.stderr)
            return 2
        path, frames = write_flame(artifacts, args.flame_out)
        print(f"wrote flamegraph document ({frames} frames) to {path}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.evaluation.figures import export_all

    scenario = _build_from_args(args)
    written = export_all(
        scenario,
        args.output,
        session_count=args.sessions,
        latent_target=args.latent,
        seed=args.seed,
    )
    for name, rows in sorted(written.items()):
        print(f"  {name}: {rows} rows")
    print(f"wrote {len(written)} figure data files to {args.output}")
    return 0


def _service_world(args: argparse.Namespace):
    from repro.service.world import ServiceWorld

    return ServiceWorld.from_scale(
        args.scale, args.seed, workers=args.workers, cache_dir=args.cache_dir
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the server side of the overlay — bootstrap + surrogate
    daemons — on real TCP sockets until interrupted."""
    import asyncio

    from repro.net.sockets import TcpTransport
    from repro.service.bootstrap import BootstrapServer
    from repro.service.surrogate import SurrogateServer

    world = _service_world(args)
    # Distinct node prefix: a traced serve+dial pair must never mint
    # colliding span/trace ids, so each side's ids carry its own tag.
    obs.tracer().set_node("s")

    async def serve() -> None:
        bootstrap = BootstrapServer(world, TcpTransport(args.host, args.port))
        await bootstrap.start()
        surrogates = []
        for cluster in world.populated_clusters():
            server = SurrogateServer(
                world, cluster, TcpTransport(args.host, 0), bootstrap.address
            )
            await server.start()
            await server.register()
            surrogates.append(server)
        print(
            f"bootstrap on {bootstrap.address}; "
            f"{len(surrogates)} surrogate daemons registered "
            f"(scale={args.scale} seed={args.seed})"
        )
        sys.stdout.flush()
        try:
            if args.duration_s is not None:
                await asyncio.sleep(args.duration_s)
            else:
                await asyncio.Event().wait()
        finally:
            for server in surrogates:
                await server.close()
            await bootstrap.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _print_dial_result(result, media_received: int) -> None:
    print(
        f"call {result.caller} -> {result.callee}: {result.outcome}"
        + (f" ({result.failure_reason})" if result.failure_reason else "")
    )
    print(f"  path: {result.path}"
          + (f" via {result.relay_ip} (cluster {result.relay_cluster})"
             if result.relay_ip else ""))
    if result.direct_rtt_ms is not None:
        print(f"  direct RTT: {result.direct_rtt_ms:.1f} ms")
    if result.path_rtt_ms is not None:
        print(f"  path RTT:   {result.path_rtt_ms:.1f} ms")
    if result.mos is not None:
        print(f"  MOS:        {result.mos:.3f}")
    print(
        f"  media: {result.media_packets} sent, {media_received} delivered; "
        f"keepalives {result.keepalives}, failovers {result.failovers}, "
        f"selection messages {result.selection_messages}"
    )
    if result.setup_ms is not None:
        print(f"setup critical path ({result.setup_ms:.1f} ms total):")
        for name, ms in result.steps:
            print(f"  {name:<14} {ms:9.1f} ms")


def cmd_dial(args: argparse.Namespace) -> int:
    """Join host agents against a running ``serve`` bootstrap and place
    one call end-to-end over TCP: join, close-set exchange, relay
    selection, media, teardown."""
    import asyncio

    from repro.core.runtime import RuntimePolicy
    from repro.errors import ServiceError
    from repro.net.faulty import ShapedTransport
    from repro.net.sockets import TcpTransport
    from repro.service.demo import _relay_pool_ips
    from repro.service.host import HostAgent

    world = _service_world(args)
    obs.tracer().set_node("d")  # distinct ids vs the serve side's "s"
    if (args.src is None) != (args.dst is None):
        print("error: --src and --dst must be given together", file=sys.stderr)
        return 2
    if args.src is not None:
        hosts = world.scenario.population.hosts
        caller_ip, callee_ip = hosts[args.src].ip, hosts[args.dst].ip
    else:
        pairs = world.latent_pairs(1)
        if not pairs:
            print("error: no latent call pair in this scenario", file=sys.stderr)
            return 2
        caller_ip, callee_ip = pairs[0]
    pair = (caller_ip, callee_ip)

    async def dial():
        agents = {}
        for ip in [caller_ip, callee_ip] + _relay_pool_ips(
            world, [pair], {caller_ip, callee_ip}
        ):
            agent = HostAgent(
                world,
                ip,
                ShapedTransport(TcpTransport()),
                args.bootstrap,
                RuntimePolicy(),
            )
            await agent.start()
            agents[ip] = agent
        # Shape the wire among the agents this process runs (the media
        # path: caller, callee, relay candidates) with the scenario's
        # ground-truth RTTs; control traffic to the remote bootstrap
        # and surrogates stays unshaped.
        for ip, agent in agents.items():
            for other_ip, other in agents.items():
                if other_ip == ip:
                    continue
                rtt = world.rtt_ms(ip, other_ip)
                if rtt is not None:
                    agent.transport.set_rtt_ms(other.address, rtt)
        try:
            for ip in sorted(agents, key=lambda a: a.value):
                if not await agents[ip].join():
                    raise ServiceError(f"agent {ip} failed to join the overlay")
            result = await agents[caller_ip].dial(
                callee_ip, media_ms=args.media_ms, media_frames=args.media
            )
            received = sum(agents[callee_ip].media_received.values())
            traces = (
                {
                    call_id: agents[callee_ip].received_trace(call_id)
                    for call_id in sorted(agents[callee_ip].frame_traces)
                }
                if args.media
                else {}
            )
        finally:
            for agent in agents.values():
                await agent.close()
        return result, received, traces

    result, received, traces = asyncio.run(dial())
    _print_dial_result(result, received)
    if args.media:
        from repro.media.score import score_trace

        for call_id, trace in traces.items():
            if not trace.frames:
                continue
            score = score_trace(trace)
            print(f"measured media (call {call_id}): "
                  f"{len(trace.frames)} frames, "
                  f"{score.late_frames} late, {score.lost_frames} lost")
            closed = f"{result.mos:.3f}" if result.mos is not None else "n/a"
            print(f"  closed-form MOS: {closed}   measured MOS: {score.mos:.3f}")
            for w in score.windows:
                mos_str = "outage" if w.is_outage else f"{w.mos:.3f}"
                print(f"  [{w.start_ms:7.0f}..{w.end_ms:7.0f} ms] "
                      f"measured {mos_str}  loss {w.effective_loss:.3f}  "
                      f"codec {w.codec}")
    return 0 if result.outcome in ("completed", "degraded") else 1


def cmd_demo(args: argparse.Namespace) -> int:
    """The whole overlay in one process: bootstrap, surrogates, host
    agents, latent calls — over loopback (deterministic) or TCP."""
    from repro.service.demo import run_demo

    result = run_demo(
        scale=args.scale,
        seed=args.seed,
        calls=args.calls,
        media_ms=args.media_ms,
        transport=args.transport,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(
        f"{result.transport} demo: {result.surrogate_count} surrogates, "
        f"{result.host_count} host agents, {len(result.calls)} calls "
        f"({result.completed} completed, {result.relayed} relayed)"
    )
    if result.transport == "loopback":
        print(
            f"  virtual time: {result.virtual_ms:.1f} ms; wire deliveries "
            f"{result.wire_deliveries}, drops {result.wire_drops}"
        )
    for index, call in enumerate(result.calls):
        received = (
            result.media_delivered[index]
            if index < len(result.media_delivered)
            else 0
        )
        print()
        _print_dial_result(call, received)
    return 0 if result.completed == len(result.calls) else 1


def cmd_conference(args: argparse.Namespace) -> int:
    """Bridge an N-way conference through the relay that satisfies all
    legs and measure per-leg media quality from received frames."""
    from repro.evaluation.conference import run_conference

    scenario = _build_from_args(args)
    burst = (
        None
        if args.no_burst
        else (args.burst_start_ms, args.burst_duration_ms, args.burst_loss)
    )
    result = run_conference(
        scenario,
        participants=args.participants,
        duration_ms=args.duration_ms,
        seed=args.seed,
        burst=burst,
    )
    if args.json:
        print(result.to_json())
        return 0
    print(f"{len(result.participants)}-way conference bridged via {result.relay} "
          f"(worst leg RTT {result.worst_leg_rtt_ms:.0f} ms)")
    for i, prefix in enumerate(result.participants):
        print(f"  participant {i}: {prefix}")
    if result.burst is not None:
        start, length, rate = result.burst
        print(f"  injected burst: {rate:.0%} loss over "
              f"[{start:.0f}..{start + length:.0f}] ms")
    for leg in result.legs:
        print(f"  leg {leg.a}-{leg.b}: RTT {leg.rtt_ms:.0f} ms, "
              f"measured MOS {leg.measured_mos:.3f} "
              f"(closed form {leg.closed_form_mos:.3f}), "
              f"{leg.codec_switches} codec switches, "
              f"concealed {leg.concealed_rate:.1%}")
    print(f"min leg MOS: {result.min_leg_mos:.3f}; "
          f"codec switches: {result.total_switches}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASAP (ICDCS 2006) reproduction command-line interface",
    )
    parser.add_argument(
        "--version", action="version", version=_version_string(),
        help="print package and wire/trace/manifest schema versions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = _subcommand(sub, "generate", cmd_generate,
                    "export scenario artifacts to a directory")
    p.add_argument("--output", required=True, help="output directory")

    p = _subcommand(sub, "section3", cmd_section3,
                    "measurement foundation (Figs. 2-3)")
    p.add_argument("--sessions", type=int, default=2000)

    _subcommand(sub, "section5", cmd_section5,
                "Skype study (Tables 1-2, Figs. 6-7)")

    p = _subcommand(sub, "section7", cmd_section7,
                    "ASAP vs baselines (Figs. 11-16, 18)")
    p.add_argument("--sessions", type=int, default=2000)
    p.add_argument("--latent", type=int, default=60)
    p.add_argument("--records", help="write per-session records CSV here")

    p = _subcommand(sub, "experiment", cmd_experiment,
                    "unified Section-7 experiment engine (streamed or "
                    "dense substrate, any tier)")
    p.add_argument("--sessions", type=int, default=2000)
    p.add_argument("--latent", type=int, default=60)
    p.add_argument("--policies", metavar="P1,P2,...",
                   help="comma-separated method roster "
                        "(default: DEDI,RAND,MIX,ASAP,OPT)")
    p.add_argument("--stream", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force the streamed (--stream) or dense "
                        "(--no-stream) substrate; default: streamed for "
                        "100k/1m, dense otherwise")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="persistent column-store directory (resumable); "
                        "default: ephemeral temp dir, removed after the run")
    p.add_argument("--chunk-columns", type=int, default=256, metavar="C",
                   help="columns per spilled chunk (default: 256)")
    p.add_argument("--bench-out", metavar="PATH",
                   help="write the BENCH_e2e.json document here")

    p = _subcommand(sub, "scalability", cmd_scalability,
                    "two-population experiment (Fig. 17)")
    p.add_argument("--sessions", type=int, default=1500)
    p.add_argument("--latent", type=int, default=40)

    p = _subcommand(sub, "call", cmd_call,
                    "run one ASAP call on the worst direct pair "
                    "(or an explicit --src/--dst host pair)")
    p.add_argument("--src", type=int, default=None, metavar="I",
                   help="caller host index into the population")
    p.add_argument("--dst", type=int, default=None, metavar="J",
                   help="callee host index into the population")
    p.add_argument("--media", action="store_true",
                   help="run real frames over the best path and print "
                        "per-window measured MOS beside the closed form")
    p.add_argument("--media-ms", type=float, default=10_000.0,
                   help="--media voice duration (default: 10000 ms)")

    p = _subcommand(sub, "figures", cmd_figures,
                    "export every figure's raw data as CSV")
    p.add_argument("--output", required=True, help="output directory")
    p.add_argument("--sessions", type=int, default=1500)
    p.add_argument("--latent", type=int, default=40)

    p = _subcommand(sub, "limits", cmd_limits,
                    "detect the four Skype limits at scale")
    p.add_argument("--sessions", type=int, default=20)

    p = _subcommand(sub, "trace", cmd_trace,
                    "traced chaos + Skype-baseline run: per-call timelines "
                    "and the L1-L4 limits report from traces.jsonl")
    p.add_argument("--output", required=True,
                   help="directory for traces.jsonl and the run manifest")
    p.add_argument("--sessions", type=int, default=8, help="ASAP calls to place")
    p.add_argument("--joins", type=int, default=10, help="hosts that join")
    p.add_argument("--skype-sessions", type=int, default=4,
                   help="Skype-like baseline sessions to trace")
    p.add_argument("--duration-ms", type=float, default=60_000.0,
                   help="fault schedule window (simulated ms)")
    p.add_argument("--media-ms", type=float, default=20_000.0,
                   help="voice duration per completed call (simulated ms)")
    p.add_argument("--skype-ms", type=float, default=120_000.0,
                   help="duration of each Skype-like session (simulated ms)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault schedule (independent of --seed)")
    p.add_argument("--crash-rate", type=float, default=4.0,
                   help="surrogate crashes per simulated minute")
    p.add_argument("--churn-rate", type=float, default=0.0,
                   help="host departures per simulated minute")
    p.add_argument("--timelines", type=int, default=3,
                   help="full per-call timelines to print")
    p.set_defaults(trace=True)

    p = _subcommand(sub, "chaos", cmd_chaos,
                    "runtime under injected faults (timeouts, retries, "
                    "relay failover)")
    p.add_argument("--sessions", type=int, default=40, help="calls to place")
    p.add_argument("--joins", type=int, default=40, help="hosts that join")
    p.add_argument("--latent", type=int, default=None, metavar="N",
                   help="prefer latent (relay-needing) sessions: keep "
                        "generating until N exist and place those first")
    p.add_argument("--duration-ms", type=float, default=60_000.0,
                   help="fault schedule window (simulated ms)")
    p.add_argument("--media-ms", type=float, default=10_000.0,
                   help="voice duration per completed call (simulated ms)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault schedule (independent of --seed)")
    p.add_argument("--crash-rate", type=float, default=2.0,
                   help="surrogate crashes per simulated minute")
    p.add_argument("--churn-rate", type=float, default=10.0,
                   help="host departures per simulated minute")
    p.add_argument("--loss-rate", type=float, default=0.0,
                   help="uniform background message-loss probability")
    p.add_argument("--as-failures", type=int, default=0,
                   help="random mid-run AS outages to inject")
    p.add_argument("--sweep", metavar="I1,I2,...",
                   help="comma-separated fault intensities to sweep "
                        "(scales the random rates; 0 = fault-free control)")
    p.add_argument("--fault-log", metavar="PATH",
                   help="write the byte-stable fault log (JSON lines) here")
    p.add_argument("--json", metavar="PATH",
                   help="write the chaos summary document (JSON) here")

    p = _subcommand(sub, "soak", cmd_soak,
                    "long-horizon churn soak over the sharded control "
                    "plane (steady-state gates; exit 1 on gate failure)")
    p.add_argument("--minutes", type=float, default=60.0,
                   help="simulated runtime in minutes (default: 60)")
    p.add_argument("--shards", type=int, default=3,
                   help="directory shards on the hash ring (default: 3)")
    p.add_argument("--sessions", type=int, default=40, help="calls to place")
    p.add_argument("--joins", type=int, default=40, help="hosts that join")
    p.add_argument("--media-ms", type=float, default=10_000.0,
                   help="voice duration per completed call (simulated ms)")
    p.add_argument("--soak-seed", type=int, default=0,
                   help="seed of the soak schedule (independent of --seed)")
    p.add_argument("--churn-rate", type=float, default=2.0,
                   help="host departures per simulated minute (each host "
                        "rejoins --rejoin-ms later)")
    p.add_argument("--rejoin-ms", type=float, default=30_000.0,
                   help="delay before a churned host rejoins (simulated ms)")
    p.add_argument("--wave-fraction", type=float, default=0.0,
                   help="churn-wave size as a fraction of all hosts "
                        "(0 = no waves)")
    p.add_argument("--wave-at-ms", type=float, nargs="*", default=[],
                   metavar="T", help="churn-wave instants (simulated ms)")
    p.add_argument("--kill-shard", type=int, default=0, metavar="I",
                   help="kill shard I at 30%% of the run, recover at 50%% "
                        "(default: shard 0; negative = no outage)")
    p.add_argument("--staleness-max", type=float, default=0.5,
                   help="p95 close-set drift the staleness gate tolerates")
    p.add_argument("--event-log", metavar="PATH",
                   help="write the byte-stable control-plane event log here")
    p.add_argument("--json", metavar="PATH",
                   help="write the soak report document (JSON) here")

    p = _subcommand(sub, "report", cmd_report,
                    "render a finished run directory: telemetry "
                    "timelines, trace profile, critical path")
    p.add_argument("--run-dir", required=True, metavar="DIR",
                   help="run directory holding run_manifest.json / "
                        "telemetry.jsonl / traces.jsonl")
    p.add_argument("--extra-traces", nargs="*", default=[], metavar="PATH",
                   help="additional traces.jsonl files to merge (e.g. the "
                        "serve side of a cross-process run)")
    p.add_argument("--flame-out", metavar="PATH",
                   help="write the flamegraph JSON export here")
    p.add_argument("--width", type=int, default=48,
                   help="sparkline width in characters (default: 48)")

    p = _subcommand(sub, "robustness", cmd_robustness,
                    "headline metrics across seeds")
    p.add_argument("--worlds", type=int, default=3)
    p.add_argument("--sessions", type=int, default=1200)

    p = _subcommand(sub, "serve", cmd_serve,
                    "run the bootstrap + surrogate daemons on TCP")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=9700,
                   help="bootstrap port (default: 9700; surrogates bind "
                        "kernel-assigned ports and register)")
    p.add_argument("--duration-s", type=float, default=None, metavar="S",
                   help="serve for S seconds then exit (default: forever)")

    p = _subcommand(sub, "dial", cmd_dial,
                    "place one call over the wire against a running serve")
    p.add_argument("--bootstrap", default="127.0.0.1:9700", metavar="ADDR",
                   help="bootstrap address (default: 127.0.0.1:9700); the "
                        "serve side must use the same --scale/--seed")
    p.add_argument("--src", type=int, default=None, metavar="I",
                   help="caller host index into the population "
                        "(default: worst latent pair)")
    p.add_argument("--dst", type=int, default=None, metavar="J",
                   help="callee host index into the population")
    p.add_argument("--media-ms", type=float, default=2_000.0,
                   help="voice duration (default: 2000 ms)")
    p.add_argument("--media", action="store_true",
                   help="send real timestamped MediaFrames instead of "
                        "abstract media packets and print per-window "
                        "measured MOS beside the closed form")

    p = _subcommand(sub, "demo", cmd_demo,
                    "whole overlay in one process (loopback or TCP)")
    p.add_argument("--transport", choices=("loopback", "tcp"),
                   default="loopback",
                   help="wire substrate (default: loopback — deterministic "
                        "virtual clock)")
    p.add_argument("--calls", type=int, default=1,
                   help="latent calls to place concurrently (default: 1)")
    p.add_argument("--media-ms", type=float, default=2_000.0,
                   help="voice duration per call (default: 2000 ms)")

    p = _subcommand(sub, "conference", cmd_conference,
                    "N-way conference: one relay must satisfy all legs; "
                    "per-leg MOS measured from real frames")
    p.add_argument("--participants", type=int, default=3,
                   help="conference size (default: 3)")
    p.add_argument("--duration-ms", type=float, default=20_000.0,
                   help="media duration (default: 20000 ms)")
    p.add_argument("--burst-start-ms", type=float, default=5_000.0,
                   help="injected loss burst start (default: 5000 ms)")
    p.add_argument("--burst-duration-ms", type=float, default=4_000.0,
                   help="injected loss burst length (default: 4000 ms)")
    p.add_argument("--burst-loss", type=float, default=0.30,
                   help="injected burst loss rate (default: 0.30)")
    p.add_argument("--no-burst", action="store_true",
                   help="run fault-free (no injected burst)")
    p.add_argument("--json", action="store_true",
                   help="print the stable JSON document instead of text")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    obs_dir = getattr(args, "obs_dir", None)
    trace = bool(getattr(args, "trace", False))
    if obs_dir is None and trace:
        # The trace subcommand keeps traces.jsonl beside its --output
        # artifacts unless an explicit --obs-dir redirects them.
        obs_dir = getattr(args, "output", None)
    if trace and obs_dir is None:
        print("error: --trace requires --obs-dir", file=sys.stderr)
        return 2
    if obs_dir is None:
        return args.func(args)
    obs.start_run(
        obs_dir=obs_dir,
        command=args.command,
        argv=list(sys.argv[1:] if argv is None else argv),
        log_level=getattr(args, "log_level", "info"),
        trace=trace,
    )
    from repro import __version__
    from repro.net.codec import CODEC_SCHEMA_VERSION

    obs.annotate(scale=getattr(args, "scale", None), seed=getattr(args, "seed", None))
    obs.annotate(package_version=__version__, codec_schema=CODEC_SCHEMA_VERSION)
    try:
        return args.func(args)
    finally:
        manifest = obs.finish_run()
        if manifest is not None:
            print(f"observability manifest: {manifest}")


if __name__ == "__main__":
    sys.exit(main())
