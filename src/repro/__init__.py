"""repro — a reproduction of "ASAP: an AS-Aware Peer-Relay Protocol for
High Quality VoIP" (Ren, Guo, Zhang; ICDCS 2006).

Quick tour of the public API:

- :func:`repro.scenario.build_scenario` / :class:`repro.scenario.ScenarioConfig`
  — build a simulated Internet (topology, BGP feed, peer population,
  latency ground truth).
- :mod:`repro.core` — the ASAP protocol: bootstraps, cluster surrogates,
  close-cluster-set construction and close-relay selection.
- :mod:`repro.baselines` — DEDI / RAND / MIX / OPT relay selection.
- :mod:`repro.skype` — the Skype-like probing simulator and trace
  analyzer behind the paper's Section 5 measurement study.
- :mod:`repro.evaluation` — workloads, metrics, and one experiment runner
  per table/figure of the paper.
"""

from repro.scenario import (
    SCALES,
    Scenario,
    ScenarioConfig,
    build_scenario,
    config_for_scale,
    default_scenario,
    evaluation_config,
    small_scenario,
    tiny_scenario,
)

__version__ = "1.2.0"

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "SCALES",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "config_for_scale",
    "default_scenario",
    "evaluation_config",
    "run_experiment",
    "small_scenario",
    "tiny_scenario",
    "__version__",
]

#: Experiment-engine names resolved lazily so ``import repro`` stays
#: light (the evaluation stack pulls in every protocol layer).
_LAZY_EVALUATION = ("Experiment", "ExperimentConfig", "run_experiment")


def __getattr__(name: str):
    if name in _LAZY_EVALUATION:
        from repro import evaluation

        return getattr(evaluation, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
