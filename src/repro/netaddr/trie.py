"""Binary trie over IPv4 prefixes with longest-prefix match.

This is the data structure behind the paper's "IP prefix to origin AS
mapping table" (Section 3.1): BGP RIB entries are inserted keyed by prefix,
and end-host IPs are resolved to their longest matching prefix to form
prefix clusters.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix

V = TypeVar("V")


class _TrieNode(Generic[V]):
    __slots__ = ("children", "prefix", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[V]"]] = [None, None]
        self.prefix: Optional[IPv4Prefix] = None
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from :class:`IPv4Prefix` to arbitrary values, with LPM lookup.

    Supports exact insert/get/delete plus :meth:`longest_match` for an
    address and :meth:`all_matches` (every covering prefix, shortest first).
    """

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        node = self._walk_exact(prefix)
        return node is not None and node.has_value

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or overwrite the value stored at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.prefix = prefix
        node.value = value
        node.has_value = True

    def get(self, prefix: IPv4Prefix, default=None):
        """Return the value stored at exactly ``prefix``, else ``default``."""
        node = self._walk_exact(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Delete the entry at ``prefix``; returns True if one existed."""
        node = self._walk_exact(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        node.prefix = None
        self._size -= 1
        return True

    def longest_match(self, address: IPv4Address) -> Optional[Tuple[IPv4Prefix, V]]:
        """Return ``(prefix, value)`` for the longest prefix covering address."""
        best: Optional[Tuple[IPv4Prefix, V]] = None
        node = self._root
        if node.has_value:
            best = (node.prefix, node.value)  # type: ignore[assignment]
        for depth in range(32):
            bit = address.bit(depth)
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[assignment]
        return best

    def all_matches(self, address: IPv4Address) -> List[Tuple[IPv4Prefix, V]]:
        """Every stored prefix covering ``address``, shortest prefix first."""
        matches: List[Tuple[IPv4Prefix, V]] = []
        node = self._root
        if node.has_value:
            matches.append((node.prefix, node.value))  # type: ignore[arg-type]
        for depth in range(32):
            bit = address.bit(depth)
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                matches.append((node.prefix, node.value))  # type: ignore[arg-type]
        return matches

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Iterate over ``(prefix, value)`` pairs in trie (DFS) order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            for child in node.children:
                if child is not None:
                    stack.append(child)

    def _walk_exact(self, prefix: IPv4Prefix) -> Optional[_TrieNode[V]]:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node
