"""IPv4 addressing substrate: addresses, prefixes, and a longest-prefix trie.

The ASAP paper's entire measurement pipeline rests on grouping end-host IPs
by their longest-matched BGP prefix.  This package provides the minimal,
dependency-free IPv4 machinery for that: value types for addresses and
prefixes plus a binary trie supporting longest-prefix match.
"""

from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix, parse_address, parse_prefix
from repro.netaddr.trie import PrefixTrie

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "PrefixTrie",
    "parse_address",
    "parse_prefix",
]
