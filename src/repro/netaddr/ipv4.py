"""IPv4 address and prefix value types.

These are deliberately small immutable types rather than wrappers around
:mod:`ipaddress` so that the hot paths (trie walks, bulk population
generation) stay allocation-light and the semantics we rely on — integer
representation, containment, canonicalization — are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError

_MAX_IPV4 = 0xFFFFFFFF


def _check_int_address(value: int) -> None:
    if not 0 <= value <= _MAX_IPV4:
        raise AddressError(f"IPv4 address integer out of range: {value!r}")


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _check_int_address(self.value)

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"expected dotted quad, got {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"non-numeric octet in {text!r}")
            octet = int(part)
            if octet > 255 or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"invalid octet {part!r} in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def octets(self) -> tuple:
        """Return the four octets, most significant first."""
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def bit(self, index: int) -> int:
        """Return bit ``index`` counted from the most significant bit (0-31)."""
        if not 0 <= index <= 31:
            raise AddressError(f"bit index out of range: {index}")
        return (self.value >> (31 - index)) & 1

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets())

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix (network address + mask length), canonicalized.

    The network integer is always masked to the prefix length, so two
    prefixes that denote the same network compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        _check_int_address(self.network)
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        masked = self.network & self.netmask_int()
        if masked != self.network:
            # dataclass is frozen; fix up via object.__setattr__ so that
            # IPv4Prefix(0x0A0000FF, 8) canonicalizes to 10.0.0.0/8.
            object.__setattr__(self, "network", masked)

    @classmethod
    def from_string(cls, text: str) -> "IPv4Prefix":
        """Parse CIDR notation, e.g. ``"10.1.0.0/16"``."""
        text = text.strip()
        if "/" not in text:
            raise AddressError(f"expected CIDR notation, got {text!r}")
        addr_part, _, len_part = text.partition("/")
        if not len_part.isdigit():
            raise AddressError(f"non-numeric prefix length in {text!r}")
        length = int(len_part)
        if length > 32:
            raise AddressError(f"prefix length out of range in {text!r}")
        address = IPv4Address.from_string(addr_part)
        return cls(address.value, length)

    def netmask_int(self) -> int:
        """Return the netmask as an unsigned 32-bit integer."""
        if self.length == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    def contains(self, address: IPv4Address) -> bool:
        """Return True if ``address`` falls inside this prefix."""
        return (address.value & self.netmask_int()) == self.network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """Return True if ``other`` is equal to or more specific than self."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask_int()) == self.network

    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def first_address(self) -> IPv4Address:
        return IPv4Address(self.network)

    def last_address(self) -> IPv4Address:
        return IPv4Address(self.network | (self.size() - 1))

    def nth_address(self, n: int) -> IPv4Address:
        """Return the n-th address inside the prefix (0-based)."""
        if not 0 <= n < self.size():
            raise AddressError(f"host index {n} out of range for {self}")
        return IPv4Address(self.network + n)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over every address in the prefix (network address first)."""
        for n in range(self.size()):
            yield IPv4Address(self.network + n)

    def subnets(self) -> tuple:
        """Split into the two prefixes one bit longer; errors at /32."""
        if self.length == 32:
            raise AddressError("cannot subnet a /32")
        child_len = self.length + 1
        half = 1 << (32 - child_len)
        return (
            IPv4Prefix(self.network, child_len),
            IPv4Prefix(self.network + half, child_len),
        )

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"


def parse_address(text: str) -> IPv4Address:
    """Module-level convenience wrapper for :meth:`IPv4Address.from_string`."""
    return IPv4Address.from_string(text)


def parse_prefix(text: str) -> IPv4Prefix:
    """Module-level convenience wrapper for :meth:`IPv4Prefix.from_string`."""
    return IPv4Prefix.from_string(text)
