"""Injected network conditions: congestion, failures, and loss rates.

The paper's explanation for why overlay beats direct routing (Fig. 4)
names two circumstances — congestion/failure on the direct path, and
multi-homed shortcuts.  The topology provides the shortcuts; this module
injects the weather:

- **congested interconnects** — a fraction of transit-transit links
  (tier-1/tier-2 interconnects) carries a large queueing penalty and a
  raised loss rate.  Policy routing is oblivious to latency, so direct
  paths happily cross congested interconnects while overlay relays whose
  policy paths exit through different uplinks route around them — this
  is what makes latent sessions relay-rescuable, as in the paper's data;
- **congested ASes** — an optional whole-AS penalty (the literal reading
  of the paper's Fig. 4), kept as an ablation knob and off by default
  because a whole congested AS traps every single-homed customer behind
  it with no overlay escape;
- **failed ASes** — removed from the routing graph entirely;
- **per-AS loss rates** — baseline small, raised near congestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.generator import Topology
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ConditionsConfig:
    """Probabilities and magnitudes of injected network trouble."""

    # Fraction of transit-transit links that are congested.
    congested_link_fraction: float = 0.03
    # One-way queueing penalty per traversal of a congested link (ms);
    # drawn lognormal with this median and sigma.
    link_penalty_median_ms: float = 110.0
    link_penalty_sigma: float = 0.6
    # Whole-AS congestion (ablation knob; see module docstring).
    congested_as_fraction: float = 0.0
    as_penalty_median_ms: float = 90.0
    as_penalty_sigma: float = 0.6
    failed_fraction: float = 0.004
    baseline_loss_rate: float = 0.002
    congested_loss_rate: float = 0.02
    # Only transit ASes can be congested/failed when True (stub trouble
    # affects just that stub's own sessions and muddies comparisons).
    transit_only: bool = True
    # Keep tier-1 cores clear of whole-AS trouble when True.
    spare_tier1: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("congested_link_fraction", "congested_as_fraction", "failed_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        for name in ("baseline_loss_rate", "congested_loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        if self.link_penalty_median_ms < 0 or self.as_penalty_median_ms < 0:
            raise ConfigurationError("congestion penalties must be non-negative")


def _link_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class NetworkConditions:
    """The realized weather of one scenario (immutable once generated)."""

    link_penalty: Dict[Tuple[int, int], float] = field(default_factory=dict)
    congestion_penalty_ms: Dict[int, float] = field(default_factory=dict)
    failed_ases: FrozenSet[int] = frozenset()
    loss_rate: Dict[int, float] = field(default_factory=dict)

    def is_congested(self, asn: int) -> bool:
        """True when the AS itself carries a whole-AS penalty."""
        return asn in self.congestion_penalty_ms

    def is_congested_link(self, a: int, b: int) -> bool:
        return _link_key(a, b) in self.link_penalty

    def is_failed(self, asn: int) -> bool:
        return asn in self.failed_ases

    def penalty_ms(self, asn: int) -> float:
        """One-way whole-AS congestion penalty (0 if clear)."""
        return self.congestion_penalty_ms.get(asn, 0.0)

    def link_penalty_ms(self, a: int, b: int) -> float:
        """One-way congestion penalty of the inter-AS link a-b (0 if clear)."""
        return self.link_penalty.get(_link_key(a, b), 0.0)

    def loss_of(self, asn: int) -> float:
        """Per-traversal packet loss probability of an AS."""
        return self.loss_rate.get(asn, 0.0)

    def congested_ases(self) -> List[int]:
        return sorted(self.congestion_penalty_ms)

    def congested_links(self) -> List[Tuple[int, int]]:
        return sorted(self.link_penalty)


def _transit_links(topology: Topology) -> List[Tuple[int, int]]:
    """All annotated links whose two endpoints are both transit ASes."""
    graph = topology.graph
    transit: Set[int] = set(topology.transit_ases())
    links: Set[Tuple[int, int]] = set()
    for a in transit:
        for b in graph.neighbors(a):
            if b in transit:
                links.add(_link_key(a, b))
    return sorted(links)


def generate_conditions(
    topology: Topology,
    config: ConditionsConfig = ConditionsConfig(),
) -> NetworkConditions:
    """Draw a deterministic set of conditions for a topology."""
    rng = derive_rng(config.seed, "conditions")

    # Congested transit interconnects.
    links = _transit_links(topology)
    n_links = int(round(config.congested_link_fraction * len(links)))
    link_penalty: Dict[Tuple[int, int], float] = {}
    if n_links and links:
        chosen = rng.choice(len(links), size=min(n_links, len(links)), replace=False)
        mu = np.log(max(config.link_penalty_median_ms, 1e-9))
        for idx in chosen:
            link_penalty[links[int(idx)]] = float(
                rng.lognormal(mean=mu, sigma=config.link_penalty_sigma)
            )

    # Whole-AS congestion (ablation) + failures.
    candidates = topology.transit_ases() if config.transit_only else topology.graph.ases()
    if config.spare_tier1:
        candidates = [a for a in candidates if topology.tier_of.get(a) != 1]
    candidates = sorted(candidates)
    n_congested = int(round(config.congested_as_fraction * len(candidates)))
    n_failed = int(round(config.failed_fraction * len(candidates)))
    troubled = (
        [
            int(a)
            for a in rng.choice(
                candidates,
                size=min(n_congested + n_failed, len(candidates)),
                replace=False,
            )
        ]
        if candidates
        else []
    )
    failed = frozenset(troubled[:n_failed])
    congested_as = troubled[n_failed:]
    penalties: Dict[int, float] = {}
    mu = np.log(max(config.as_penalty_median_ms, 1e-9))
    for asn in congested_as:
        penalties[asn] = float(rng.lognormal(mean=mu, sigma=config.as_penalty_sigma))

    # Loss rates: baseline everywhere, raised beside congestion.
    hot_ases: Set[int] = set(penalties)
    for a, b in link_penalty:
        hot_ases.add(a)
        hot_ases.add(b)
    loss: Dict[int, float] = {}
    for asn in topology.graph.ases():
        base = float(rng.uniform(0.2, 1.8)) * config.baseline_loss_rate
        if asn in hot_ases:
            base += float(rng.uniform(0.5, 1.5)) * config.congested_loss_rate
        loss[asn] = min(base, 0.5)

    return NetworkConditions(
        link_penalty=link_penalty,
        congestion_penalty_ms=penalties,
        failed_ases=failed,
        loss_rate=loss,
    )
