"""All-pairs cluster-delegate matrices: RTT, loss, and AS hop count.

This is the reproduction of the paper's measurement product (Fig. 1): a
pairwise latency benchmark between cluster delegates.  Everything in the
evaluation — session generation, relay path RTTs, quality-path counting —
is computed against these matrices, exactly as the paper's trace-driven
simulation replays its King measurements.

The computation exploits the policy-routing trees: for each destination
cluster's AS we walk every source AS's next-hop chain once with
memoization, so the full N×N matrix costs O(N·V) instead of O(N²·path).

Two interchangeable assembly methods produce bit-identical matrices:

- ``object`` — the scalar reference: python memo walks per tree and a
  per-row loop per column;
- ``flat`` (default; ``REPRO_FLAT_WORLD=0`` switches back) — the world
  exported once into contiguous arrays (:mod:`repro.worldarrays`) and
  filled with vectorized per-destination-AS broadcasts.

Destination columns are mutually independent, so assembly optionally
fans out over a fork-start process pool (``workers > 1``): columns are
grouped by destination AS (one tree resolution per AS total), chunks
are cost-balanced via :func:`repro.util.parallel.plan_chunks`, and
workers write their columns straight into fork-inherited shared-memory
arrays — no result pickling.  Output is bit-for-bit identical to the
serial path of the same method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.measurement.latency import LatencyModel
from repro.topology.clustering import Cluster, ClusterIndex
from repro.topology.population import Host
from repro.util.parallel import (
    fork_available,
    plan_chunks,
    resolve_workers,
    run_forked,
    shared_ndarray,
)
from repro.util.rng import derive_rng

UNREACHABLE = np.inf

#: Assembly statistics of the most recent parallel run (chunk plan and
#: per-chunk wall times).  Private: read it through the obs registry
#: (``obs.annotations["parallel"]`` / the manifest ``parallel`` block)
#: or :func:`last_parallel_stats`; the old module-global name
#: ``LAST_PARALLEL_STATS`` is a deprecated alias served by
#: ``__getattr__`` below.
_LAST_PARALLEL_STATS: Optional[Dict] = None

#: Every parallel assembly this process ran, in order.  Repeated
#: assemblies used to overwrite each other's stats; the history keeps
#: all of them addressable (each dict carries its ``assembly`` index).
_PARALLEL_STATS_HISTORY: List[Dict] = []


def last_parallel_stats() -> Optional[Dict]:
    """Chunk plan and per-chunk wall times of the most recent parallel
    assembly in this process (``None`` if none ran).  Runs with
    observability enabled also record the same document in the run
    manifest's ``parallel`` block."""
    return _LAST_PARALLEL_STATS


def parallel_stats_history() -> List[Dict]:
    """All parallel assemblies this process ran, oldest first.

    Unlike :func:`last_parallel_stats` (latest only), the history
    survives repeated assemblies in one process — each entry carries an
    ``assembly`` sequence number matching its telemetry tags."""
    return list(_PARALLEL_STATS_HISTORY)


def __getattr__(name: str):
    if name == "LAST_PARALLEL_STATS":
        import warnings

        warnings.warn(
            "matrix.LAST_PARALLEL_STATS is deprecated (a mutable module "
            "global that leaks across runs and forks); use "
            "matrix.last_parallel_stats() or the run manifest's "
            "'parallel' block instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _LAST_PARALLEL_STATS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class DelegateMatrices:
    """Dense all-pairs measurements between cluster delegates.

    Row/column ``i`` corresponds to ``prefixes[i]``; ``rtt_ms`` is the
    round-trip latency (inf when unreachable), ``loss`` the one-way loss
    rate, ``as_hops`` the AS-level hop count (-1 when unreachable), and
    ``sizes`` the number of online hosts per cluster.
    """

    prefixes: List[IPv4Prefix]
    index_of: Dict[IPv4Prefix, int]
    asn_of: np.ndarray        # shape (N,), int
    sizes: np.ndarray         # shape (N,), int
    rtt_ms: np.ndarray        # shape (N, N), float, inf = unreachable
    loss: np.ndarray          # shape (N, N), float in [0, 1]
    as_hops: np.ndarray       # shape (N, N), int, -1 = unreachable

    @property
    def count(self) -> int:
        return len(self.prefixes)

    def index_of_host(self, clusters: ClusterIndex, host: Host) -> int:
        """Matrix index of the cluster containing ``host``."""
        cluster = clusters.cluster_of(host.ip)
        return self.index_of[cluster.prefix]

    def estimate_host_rtt(self, clusters: ClusterIndex, a: Host, b: Host) -> float:
        """Host-to-host RTT estimated by the delegate matrix entry —
        the paper's property (1) used throughout the evaluation."""
        return float(self.rtt_ms[self.index_of_host(clusters, a), self.index_of_host(clusters, b)])

    def one_hop_rtt(self, a: int, relay: int, b: int, relay_delay_rtt_ms: float = 40.0) -> float:
        """RTT of the a→relay→b overlay path at cluster granularity."""
        return float(self.rtt_ms[a, relay] + self.rtt_ms[relay, b] + relay_delay_rtt_ms)

    def two_hop_rtt(
        self, a: int, r1: int, r2: int, b: int, relay_delay_rtt_ms: float = 40.0
    ) -> float:
        """RTT of the a→r1→r2→b overlay path at cluster granularity."""
        return float(
            self.rtt_ms[a, r1]
            + self.rtt_ms[r1, r2]
            + self.rtt_ms[r2, b]
            + 2.0 * relay_delay_rtt_ms
        )

    def one_hop_path_loss(self, a: int, relay: int, b: int) -> float:
        """One-way loss of the relayed path (independent segments)."""
        return 1.0 - (1.0 - float(self.loss[a, relay])) * (1.0 - float(self.loss[relay, b]))

    # -- world-view protocol -------------------------------------------
    #
    # The streaming engine evaluates policies against a *world view*:
    # cell reads, fancy-index gathers, and per-column-block iteration.
    # Dense matrices implement the view trivially over the stored
    # arrays; ``repro.worldarrays.virtual.VirtualMatrices`` implements
    # the same surface without ever materializing N×N.

    def rtt_cell(self, i: int, j: int) -> float:
        """One RTT cell (same float the dense array holds)."""
        return float(self.rtt_ms[i, j])

    def loss_cell(self, i: int, j: int) -> float:
        """One loss cell (same float the dense array holds)."""
        return float(self.loss[i, j])

    def gather_rtt(self, rows, cols) -> np.ndarray:
        """``rtt_ms[rows, cols]`` with numpy broadcasting semantics."""
        return self.rtt_ms[rows, cols]

    def gather_loss(self, rows, cols) -> np.ndarray:
        """``loss[rows, cols]`` with numpy broadcasting semantics."""
        return self.loss[rows, cols]

    def iter_column_blocks(self, chunk: int = 256):
        """Yield ``(cols, rtt_block, loss_block, hops_block)`` over all
        destination columns in ascending order; blocks are (N, len(cols))
        views of the dense arrays."""
        n = self.count
        for start in range(0, n, chunk):
            cols = np.arange(start, min(start + chunk, n), dtype=np.int64)
            yield cols, self.rtt_ms[:, cols], self.loss[:, cols], self.as_hops[:, cols]

    def finite_row_fractions(self) -> np.ndarray:
        """Per-row fraction of finite RTT entries (workload online test)."""
        return np.mean(np.isfinite(self.rtt_ms), axis=1)


#: Shared read-only state published for fork-start workers (see
#: :mod:`repro.util.parallel`); ``None`` outside a parallel assembly.
_ASSEMBLY_STATE: Optional[tuple] = None


def cluster_headers(cluster_list: Sequence[Cluster]):
    """Per-cluster header arrays shared by every matrix representation.

    Returns ``(prefixes, index_of, asn_of, sizes, access)`` — the
    book-keeping both :func:`compute_delegate_matrices` and the virtual
    (streamed) view build from the same cluster list, in the same order.
    """
    prefixes = [c.prefix for c in cluster_list]
    index_of = {p: i for i, p in enumerate(prefixes)}
    asn_of = np.array([c.asn for c in cluster_list], dtype=np.int64)
    sizes = np.array([len(c) for c in cluster_list], dtype=np.int64)
    delegates = [c.delegate for c in cluster_list]
    if any(d is None for d in delegates):
        raise MeasurementError("every cluster must have a delegate")
    access = np.array([d.access_delay_ms for d in delegates], dtype=float)
    return prefixes, index_of, asn_of, sizes, access


def _resolve_method(method: Optional[str]) -> str:
    """Resolve the assembly method (None → the REPRO_FLAT_WORLD default)."""
    from repro.worldarrays import flat_enabled

    if method is None:
        return "flat" if flat_enabled() else "object"
    if method not in ("flat", "object"):
        raise MeasurementError(f"unknown assembly method {method!r}")
    return method


def compute_delegate_matrices(
    model: LatencyModel,
    clusters: ClusterIndex,
    workers: Optional[int] = None,
    method: Optional[str] = None,
) -> DelegateMatrices:
    """Compute RTT / loss / hop matrices between all cluster delegates.

    ``workers`` controls the fan-out over destination clusters: ``1``
    (or ``None`` without ``$REPRO_WORKERS``) runs serially, ``<= 0``
    uses all CPUs, and any higher count chunks the destination columns
    across a fork-start process pool writing into shared memory.
    ``method`` picks ``"flat"`` (vectorized, the default) or
    ``"object"`` (the scalar reference).  Output is identical
    bit-for-bit regardless of worker count and method.
    """
    from repro import obs

    cluster_list = clusters.all_clusters()
    if not cluster_list:
        raise MeasurementError("no clusters to measure")
    n = len(cluster_list)
    obs.gauge("matrix.clusters").set(n)
    prefixes, index_of, asn_of, sizes, access = cluster_headers(cluster_list)

    use_flat = _resolve_method(method) == "flat"
    worker_count = resolve_workers(workers)
    parallel = worker_count > 1 and n > 1 and fork_available()

    if parallel:
        # Workers write their columns into these in place (fork children
        # inherit the mapping) — results never cross a pickle boundary.
        rtt = shared_ndarray((n, n), float, fill=UNREACHABLE)
        loss = shared_ndarray((n, n), float, fill=1.0)
        hops = shared_ndarray((n, n), np.int64, fill=-1)
    else:
        rtt = np.full((n, n), UNREACHABLE, dtype=float)
        loss = np.full((n, n), 1.0, dtype=float)
        hops = np.full((n, n), -1, dtype=np.int64)

    unique_ases = sorted(set(int(a) for a in asn_of))
    rows_of_as: Dict[int, List[int]] = {}
    for i, asn in enumerate(asn_of):
        rows_of_as.setdefault(int(asn), []).append(i)

    with obs.span("matrix.assemble", clusters=n, workers=worker_count):
        if parallel:
            if use_flat:
                from repro.worldarrays import FlatMatrixAssembler, WorldArrays

                assembler = FlatMatrixAssembler(
                    model, WorldArrays.from_clusters(model, cluster_list)
                )
                state = ("flat", assembler, rtt, loss, hops)
            else:
                state = (
                    "object",
                    model,
                    unique_ases,
                    rows_of_as,
                    access,
                    asn_of,
                    rtt,
                    loss,
                    hops,
                )
            chunks = _grouped_column_chunks(
                asn_of, worker_count * 4, tree_cost=float(len(model.router.graph))
            )
            global _ASSEMBLY_STATE
            _ASSEMBLY_STATE = state
            try:
                timings = run_forked(
                    _fill_shared_chunk, chunks, processes=worker_count
                )
            finally:
                _ASSEMBLY_STATE = None
            global _LAST_PARALLEL_STATS
            stats = {
                "assembly": len(_PARALLEL_STATS_HISTORY),
                "chunk_sizes": [len(c) for c in chunks],
                "chunk_seconds": [seconds for _, seconds in timings],
                "workers": worker_count,
            }
            _LAST_PARALLEL_STATS = stats
            _PARALLEL_STATS_HISTORY.append(stats)
            # The durable record: the obs registry (and hence the run
            # manifest's ``parallel`` block) rather than a module global.
            obs.annotate(parallel=stats)
            obs.gauge("matrix.parallel.workers").set(worker_count)
            timeline = obs.timeline()
            elapsed_ms = 0.0
            for index, seconds in enumerate(stats["chunk_seconds"]):
                obs.histogram("matrix.parallel.chunk_seconds").observe(seconds)
                if timeline:
                    # Wall timing, excluded from the byte-stability
                    # contract; stamped at the chunk's cumulative offset
                    # so the report renders a per-assembly timeline.
                    elapsed_ms += seconds * 1000.0
                    timeline.sample(
                        "matrix.chunk_seconds",
                        elapsed_ms,
                        seconds,
                        wall=True,
                        assembly=str(stats["assembly"]),
                        chunk=str(index),
                    )
        elif use_flat:
            from repro.worldarrays import FlatMatrixAssembler, WorldArrays

            assembler = FlatMatrixAssembler(
                model, WorldArrays.from_clusters(model, cluster_list)
            )
            assembler.fill_columns(
                list(range(n)), rtt, loss, hops, positions=list(range(n))
            )
        else:
            _fill_destinations(
                range(n), model, unique_ases, rows_of_as, access, asn_of, rtt, loss, hops
            )

    # Diagonal / same-cluster entries: intra-cluster latency only.
    for i in range(n):
        asn = int(asn_of[i])
        intra = 2.0 * model.endpoint_cost_ms(asn) + 4.0 * access[i]
        rtt[i, i] = intra
        loss[i, i] = model.conditions.loss_of(asn)
        hops[i, i] = 0

    return DelegateMatrices(
        prefixes=prefixes,
        index_of=index_of,
        asn_of=asn_of,
        sizes=sizes,
        rtt_ms=rtt,
        loss=loss,
        as_hops=hops,
    )


def _fill_destinations(
    columns: Sequence[int],
    model: LatencyModel,
    unique_ases: List[int],
    rows_of_as: Dict[int, List[int]],
    access: np.ndarray,
    asn_of: np.ndarray,
    rtt: np.ndarray,
    loss: np.ndarray,
    hops: np.ndarray,
    positions: Optional[Sequence[int]] = None,
) -> None:
    """Fill the given destination columns of the matrices (object path).

    ``positions`` are the output column positions matching ``columns``
    (defaults to enumeration order); the shared-memory workers pass the
    global indices so they write the full matrices in place.  The serial
    path and every pool worker run exactly this routine, which is what
    makes parallel assembly bit-for-bit reproducible.
    """
    from repro import obs

    obs.counter("matrix.columns").inc(len(columns))
    if positions is None:
        positions = range(len(columns))
    for col, j in zip(positions, columns):
        dest_as = int(asn_of[j])
        tree = model.routing_tree(dest_as)
        if tree is None:
            continue
        lat_to, loss_to, hops_to = _walk_tree(model, tree, unique_ases)
        for src_as in unique_ases:
            one_way = lat_to.get(src_as)
            if one_way is None:
                continue
            for i in rows_of_as[src_as]:
                rtt[i, col] = 2.0 * one_way + 2.0 * (access[i] + access[j])
                loss[i, col] = loss_to[src_as]
                hops[i, col] = hops_to[src_as]


def _grouped_column_chunks(
    asn_of: np.ndarray, chunk_count: int, tree_cost: float
) -> List[List[int]]:
    """Cost-balanced column chunks that never split a destination AS.

    Keeping an AS's columns together means each routing tree is resolved
    by exactly one worker (the old evenly-sliced chunks re-walked shared
    trees in several workers — a large part of the recorded parallel
    regression).  Per-group cost models one tree resolution plus the
    broadcast fill of the group's columns.
    """
    n = len(asn_of)
    groups: Dict[int, List[int]] = {}
    for j, asn in enumerate(asn_of):
        groups.setdefault(int(asn), []).append(j)
    ordered = [groups[asn] for asn in sorted(groups)]
    costs = [tree_cost + len(cols) * n for cols in ordered]
    plan = plan_chunks(costs, chunk_count)
    return [
        [j for group_index in chunk for j in ordered[group_index]] for chunk in plan
    ]


def _fill_shared_chunk(columns: List[int]) -> Tuple[int, float]:
    """Pool worker: fill one chunk of global columns into shared memory.

    Returns (column count, wall seconds) — the matrices themselves
    travel through the fork-inherited shared mapping, not the pickle
    channel.
    """
    state = _ASSEMBLY_STATE
    started = time.perf_counter()
    if state[0] == "flat":
        _, assembler, rtt, loss, hops = state
        assembler.fill_columns(columns, rtt, loss, hops, positions=columns)
    else:
        _, model, unique_ases, rows_of_as, access, asn_of, rtt, loss, hops = state
        _fill_destinations(
            columns,
            model,
            unique_ases,
            rows_of_as,
            access,
            asn_of,
            rtt,
            loss,
            hops,
            positions=columns,
        )
    return len(columns), time.perf_counter() - started


def _walk_tree(model: LatencyModel, tree, source_ases: List[int]):
    """Memoized walk of a routing tree: per-AS one-way latency / loss / hops.

    The memo stores *interior* path cost (links plus transit node costs,
    excluding both endpoints); endpoint processing is added per source so
    the result matches :meth:`LatencyModel.path_one_way_ms` exactly.
    """
    dest = tree.destination
    interior: Dict[int, float] = {dest: 0.0}
    survive: Dict[int, float] = {dest: 1.0 - model.conditions.loss_of(dest)}
    hops: Dict[int, int] = {dest: 0}

    def resolve(asn: int) -> bool:
        """Fill memo entries along the next-hop chain from ``asn``."""
        chain: List[int] = []
        node = asn
        while node not in interior:
            if not tree.reaches(node):
                return False
            chain.append(node)
            node = tree.next_hop[node]
        for source in reversed(chain):
            nh = tree.next_hop[source]
            transit = model.node_cost_ms(nh) if nh != dest else 0.0
            interior[source] = model.link_delay_ms(source, nh) + transit + interior[nh]
            survive[source] = (1.0 - model.conditions.loss_of(source)) * survive[nh]
            hops[source] = hops[nh] + 1
        return True

    lat_out: Dict[int, float] = {}
    loss_out: Dict[int, float] = {}
    hops_out: Dict[int, int] = {}
    dest_endpoint = model.endpoint_cost_ms(dest)
    for asn in source_ases:
        if asn in interior or resolve(asn):
            if asn == dest:
                lat_out[asn] = model.endpoint_cost_ms(asn)
            else:
                lat_out[asn] = (
                    model.endpoint_cost_ms(asn) + interior[asn] + dest_endpoint
                )
            loss_out[asn] = 1.0 - survive[asn]
            hops_out[asn] = hops[asn]
    return lat_out, loss_out, hops_out


def apply_king_noise(
    matrices: DelegateMatrices,
    seed: int = 0,
    error_sigma: float = 0.06,
    non_response_rate: float = 0.10,
) -> DelegateMatrices:
    """A King-measured view of the matrices: multiplicative error plus a
    non-response fraction (non-responses become unreachable entries).

    The paper obtained responses for ~70% of delegate pairs; analyses ran
    on the responding subset.  Experiments that want measured rather than
    ground-truth inputs wrap the matrices with this."""
    if not 0.0 <= non_response_rate < 1.0:
        raise MeasurementError("non_response_rate must be in [0, 1)")
    rng = derive_rng(seed, "king-matrix")
    n = matrices.count
    factors = rng.lognormal(mean=0.0, sigma=error_sigma, size=(n, n))
    # Symmetric non-response mask: King fails per *pair* of DNS servers.
    fail = rng.random((n, n)) < non_response_rate
    fail = np.triu(fail, k=1)
    fail = fail | fail.T
    noisy = matrices.rtt_ms * factors
    noisy[fail] = UNREACHABLE
    np.fill_diagonal(noisy, np.diag(matrices.rtt_ms))
    return DelegateMatrices(
        prefixes=list(matrices.prefixes),
        index_of=dict(matrices.index_of),
        asn_of=matrices.asn_of.copy(),
        sizes=matrices.sizes.copy(),
        rtt_ms=noisy,
        loss=matrices.loss.copy(),
        as_hops=matrices.as_hops.copy(),
    )
