"""All-pairs cluster-delegate matrices: RTT, loss, and AS hop count.

This is the reproduction of the paper's measurement product (Fig. 1): a
pairwise latency benchmark between cluster delegates.  Everything in the
evaluation — session generation, relay path RTTs, quality-path counting —
is computed against these matrices, exactly as the paper's trace-driven
simulation replays its King measurements.

The computation exploits the policy-routing trees: for each destination
cluster's AS we walk every source AS's next-hop chain once with
memoization, so the full N×N matrix costs O(N·V) instead of O(N²·path).

Destination columns are mutually independent, so assembly optionally
fans out over a fork-start process pool (``workers > 1``); the parallel
path reuses the exact per-destination routine of the serial path and is
bit-for-bit identical to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.measurement.latency import LatencyModel
from repro.topology.clustering import Cluster, ClusterIndex
from repro.topology.population import Host
from repro.util.parallel import chunked, fork_available, resolve_workers, run_forked
from repro.util.rng import derive_rng

UNREACHABLE = np.inf


@dataclass
class DelegateMatrices:
    """Dense all-pairs measurements between cluster delegates.

    Row/column ``i`` corresponds to ``prefixes[i]``; ``rtt_ms`` is the
    round-trip latency (inf when unreachable), ``loss`` the one-way loss
    rate, ``as_hops`` the AS-level hop count (-1 when unreachable), and
    ``sizes`` the number of online hosts per cluster.
    """

    prefixes: List[IPv4Prefix]
    index_of: Dict[IPv4Prefix, int]
    asn_of: np.ndarray        # shape (N,), int
    sizes: np.ndarray         # shape (N,), int
    rtt_ms: np.ndarray        # shape (N, N), float, inf = unreachable
    loss: np.ndarray          # shape (N, N), float in [0, 1]
    as_hops: np.ndarray       # shape (N, N), int, -1 = unreachable

    @property
    def count(self) -> int:
        return len(self.prefixes)

    def index_of_host(self, clusters: ClusterIndex, host: Host) -> int:
        """Matrix index of the cluster containing ``host``."""
        cluster = clusters.cluster_of(host.ip)
        return self.index_of[cluster.prefix]

    def estimate_host_rtt(self, clusters: ClusterIndex, a: Host, b: Host) -> float:
        """Host-to-host RTT estimated by the delegate matrix entry —
        the paper's property (1) used throughout the evaluation."""
        return float(self.rtt_ms[self.index_of_host(clusters, a), self.index_of_host(clusters, b)])

    def one_hop_rtt(self, a: int, relay: int, b: int, relay_delay_rtt_ms: float = 40.0) -> float:
        """RTT of the a→relay→b overlay path at cluster granularity."""
        return float(self.rtt_ms[a, relay] + self.rtt_ms[relay, b] + relay_delay_rtt_ms)

    def two_hop_rtt(
        self, a: int, r1: int, r2: int, b: int, relay_delay_rtt_ms: float = 40.0
    ) -> float:
        """RTT of the a→r1→r2→b overlay path at cluster granularity."""
        return float(
            self.rtt_ms[a, r1]
            + self.rtt_ms[r1, r2]
            + self.rtt_ms[r2, b]
            + 2.0 * relay_delay_rtt_ms
        )

    def one_hop_path_loss(self, a: int, relay: int, b: int) -> float:
        """One-way loss of the relayed path (independent segments)."""
        return 1.0 - (1.0 - float(self.loss[a, relay])) * (1.0 - float(self.loss[relay, b]))


#: Shared read-only state published for fork-start workers (see
#: :mod:`repro.util.parallel`); ``None`` outside a parallel assembly.
_ASSEMBLY_STATE: Optional[tuple] = None


def compute_delegate_matrices(
    model: LatencyModel,
    clusters: ClusterIndex,
    workers: Optional[int] = None,
) -> DelegateMatrices:
    """Compute RTT / loss / hop matrices between all cluster delegates.

    ``workers`` controls the fan-out over destination clusters: ``1``
    (or ``None`` without ``$REPRO_WORKERS``) is the serial reference
    path, ``<= 0`` uses all CPUs, and any higher count chunks the
    destination columns across a fork-start process pool.  Output is
    identical bit-for-bit regardless of the worker count.
    """
    from repro import obs

    cluster_list = clusters.all_clusters()
    if not cluster_list:
        raise MeasurementError("no clusters to measure")
    n = len(cluster_list)
    obs.gauge("matrix.clusters").set(n)
    prefixes = [c.prefix for c in cluster_list]
    index_of = {p: i for i, p in enumerate(prefixes)}
    asn_of = np.array([c.asn for c in cluster_list], dtype=np.int64)
    sizes = np.array([len(c) for c in cluster_list], dtype=np.int64)
    delegates = [c.delegate for c in cluster_list]
    if any(d is None for d in delegates):
        raise MeasurementError("every cluster must have a delegate")
    access = np.array([d.access_delay_ms for d in delegates], dtype=float)

    rtt = np.full((n, n), UNREACHABLE, dtype=float)
    loss = np.full((n, n), 1.0, dtype=float)
    hops = np.full((n, n), -1, dtype=np.int64)

    unique_ases = sorted(set(int(a) for a in asn_of))
    rows_of_as: Dict[int, List[int]] = {}
    for i, asn in enumerate(asn_of):
        rows_of_as.setdefault(int(asn), []).append(i)

    worker_count = resolve_workers(workers)
    with obs.span("matrix.assemble", clusters=n, workers=worker_count):
        if worker_count > 1 and n > 1 and fork_available():
            global _ASSEMBLY_STATE
            _ASSEMBLY_STATE = (model, unique_ases, rows_of_as, access, asn_of, n)
            try:
                # More chunks than workers smooths over uneven tree-walk
                # costs (destination ASes differ in reachable-source count).
                blocks = run_forked(
                    _assemble_columns,
                    chunked(list(range(n)), worker_count * 4),
                    processes=worker_count,
                )
            finally:
                _ASSEMBLY_STATE = None
            for columns, rtt_block, loss_block, hops_block in blocks:
                rtt[:, columns] = rtt_block
                loss[:, columns] = loss_block
                hops[:, columns] = hops_block
        else:
            _fill_destinations(
                range(n), model, unique_ases, rows_of_as, access, asn_of, rtt, loss, hops
            )

    # Diagonal / same-cluster entries: intra-cluster latency only.
    for i in range(n):
        asn = int(asn_of[i])
        intra = 2.0 * model.endpoint_cost_ms(asn) + 4.0 * access[i]
        rtt[i, i] = intra
        loss[i, i] = model.conditions.loss_of(asn)
        hops[i, i] = 0

    return DelegateMatrices(
        prefixes=prefixes,
        index_of=index_of,
        asn_of=asn_of,
        sizes=sizes,
        rtt_ms=rtt,
        loss=loss,
        as_hops=hops,
    )


def _fill_destinations(
    columns: Sequence[int],
    model: LatencyModel,
    unique_ases: List[int],
    rows_of_as: Dict[int, List[int]],
    access: np.ndarray,
    asn_of: np.ndarray,
    rtt: np.ndarray,
    loss: np.ndarray,
    hops: np.ndarray,
) -> None:
    """Fill the given destination columns of the (pre-sliced) matrices.

    Both the serial path and every pool worker run exactly this routine,
    which is what makes parallel assembly bit-for-bit reproducible.
    """
    from repro import obs

    obs.counter("matrix.columns").inc(len(columns))
    for col, j in enumerate(columns):
        dest_as = int(asn_of[j])
        tree = model.routing_tree(dest_as)
        if tree is None:
            continue
        lat_to, loss_to, hops_to = _walk_tree(model, tree, unique_ases)
        for src_as in unique_ases:
            one_way = lat_to.get(src_as)
            if one_way is None:
                continue
            for i in rows_of_as[src_as]:
                rtt[i, col] = 2.0 * one_way + 2.0 * (access[i] + access[j])
                loss[i, col] = loss_to[src_as]
                hops[i, col] = hops_to[src_as]


def _assemble_columns(
    columns: List[int],
) -> Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]:
    """Pool worker: compute one chunk of destination columns."""
    model, unique_ases, rows_of_as, access, asn_of, n = _ASSEMBLY_STATE
    width = len(columns)
    rtt = np.full((n, width), UNREACHABLE, dtype=float)
    loss = np.full((n, width), 1.0, dtype=float)
    hops = np.full((n, width), -1, dtype=np.int64)
    _fill_destinations(
        columns, model, unique_ases, rows_of_as, access, asn_of, rtt, loss, hops
    )
    return columns, rtt, loss, hops


def _walk_tree(model: LatencyModel, tree, source_ases: List[int]):
    """Memoized walk of a routing tree: per-AS one-way latency / loss / hops.

    The memo stores *interior* path cost (links plus transit node costs,
    excluding both endpoints); endpoint processing is added per source so
    the result matches :meth:`LatencyModel.path_one_way_ms` exactly.
    """
    dest = tree.destination
    interior: Dict[int, float] = {dest: 0.0}
    survive: Dict[int, float] = {dest: 1.0 - model.conditions.loss_of(dest)}
    hops: Dict[int, int] = {dest: 0}

    def resolve(asn: int) -> bool:
        """Fill memo entries along the next-hop chain from ``asn``."""
        chain: List[int] = []
        node = asn
        while node not in interior:
            if not tree.reaches(node):
                return False
            chain.append(node)
            node = tree.next_hop[node]
        for source in reversed(chain):
            nh = tree.next_hop[source]
            transit = model.node_cost_ms(nh) if nh != dest else 0.0
            interior[source] = model.link_delay_ms(source, nh) + transit + interior[nh]
            survive[source] = (1.0 - model.conditions.loss_of(source)) * survive[nh]
            hops[source] = hops[nh] + 1
        return True

    lat_out: Dict[int, float] = {}
    loss_out: Dict[int, float] = {}
    hops_out: Dict[int, int] = {}
    dest_endpoint = model.endpoint_cost_ms(dest)
    for asn in source_ases:
        if asn in interior or resolve(asn):
            if asn == dest:
                lat_out[asn] = model.endpoint_cost_ms(asn)
            else:
                lat_out[asn] = (
                    model.endpoint_cost_ms(asn) + interior[asn] + dest_endpoint
                )
            loss_out[asn] = 1.0 - survive[asn]
            hops_out[asn] = hops[asn]
    return lat_out, loss_out, hops_out


def apply_king_noise(
    matrices: DelegateMatrices,
    seed: int = 0,
    error_sigma: float = 0.06,
    non_response_rate: float = 0.10,
) -> DelegateMatrices:
    """A King-measured view of the matrices: multiplicative error plus a
    non-response fraction (non-responses become unreachable entries).

    The paper obtained responses for ~70% of delegate pairs; analyses ran
    on the responding subset.  Experiments that want measured rather than
    ground-truth inputs wrap the matrices with this."""
    if not 0.0 <= non_response_rate < 1.0:
        raise MeasurementError("non_response_rate must be in [0, 1)")
    rng = derive_rng(seed, "king-matrix")
    n = matrices.count
    factors = rng.lognormal(mean=0.0, sigma=error_sigma, size=(n, n))
    # Symmetric non-response mask: King fails per *pair* of DNS servers.
    fail = rng.random((n, n)) < non_response_rate
    fail = np.triu(fail, k=1)
    fail = fail | fail.T
    noisy = matrices.rtt_ms * factors
    noisy[fail] = UNREACHABLE
    np.fill_diagonal(noisy, np.diag(matrices.rtt_ms))
    return DelegateMatrices(
        prefixes=list(matrices.prefixes),
        index_of=dict(matrices.index_of),
        asn_of=matrices.asn_of.copy(),
        sizes=matrices.sizes.copy(),
        rtt_ms=noisy,
        loss=matrices.loss.copy(),
        as_hops=matrices.as_hops.copy(),
    )
