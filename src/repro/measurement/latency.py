"""Ground-truth latency and loss over policy-routed paths.

Direct IP routing latency between two hosts is modelled as:

    access(a) + Σ_link propagation+jitter + Σ_AS processing+congestion + access(b)

where the AS-level path is the BGP policy route (valley-free,
customer > peer > provider), so latency automatically correlates with AS
hop count (paper property 3) and inflates when policy routing detours or
crosses congested ASes (paper Fig. 4).  Failed ASes are removed from the
routing graph entirely: paths through them simply do not exist, which the
measurement tools surface as timeouts.

All per-link jitter and per-AS processing delays are *deterministic*
functions of the scenario seed and the AS pair, so the ground truth is a
fixed hidden landscape that measurement tools (King, ping) sample with
their own independent noise — exactly the paper's setup, where the true
Internet is fixed and King estimates it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.netaddr import IPv4Address
from repro.bgp.routing import PolicyRouter, RoutingTree
from repro.measurement.conditions import NetworkConditions
from repro.topology.generator import Topology
from repro.topology.population import Host, PeerPopulation

# Per-hop constants (one-way, milliseconds).
LINK_BASE_DELAY_MS = 0.4       # serialization + switching per inter-AS link
AS_PROCESSING_DELAY_MS = 0.3   # intra-AS transit cost per AS traversed
JITTER_SPREAD_MS = 2.0         # per-link deterministic "fixed jitter" scale

# The paper measures ~12 ms application-level relay delay on a 100 Mbps
# LAN and conservatively budgets 20 ms one-way / 40 ms RTT (Section 3.2).
RELAY_DELAY_ONE_WAY_MS = 20.0
RELAY_DELAY_RTT_MS = 40.0


class LatencyModel:
    """Path latency/loss oracle over one topology + conditions."""

    def __init__(
        self,
        topology: Topology,
        conditions: NetworkConditions,
        population: Optional[PeerPopulation] = None,
        seed: int = 0,
    ) -> None:
        self._topology = topology
        self._conditions = conditions
        self._population = population
        self._seed = seed
        effective = topology.graph
        if conditions.failed_ases:
            effective = topology.graph.without(conditions.failed_ases)
        self._router = PolicyRouter(effective)
        self._jitter_cache: Dict[Tuple[int, int], float] = {}

    @property
    def router(self) -> PolicyRouter:
        return self._router

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def conditions(self) -> NetworkConditions:
        return self._conditions

    # -- AS-level primitives -------------------------------------------------

    def link_delay_ms(self, a: int, b: int) -> float:
        """One-way delay of the inter-AS link a-b (order-insensitive),
        including any congestion penalty injected on that interconnect."""
        key = (min(a, b), max(a, b))
        cached = self._jitter_cache.get(key)
        if cached is None:
            # Deterministic per-link jitter from the scenario seed.
            mix = (key[0] * 1_000_003 + key[1] * 7_919 + self._seed * 104_729) % (2**32)
            jitter = float(np.random.default_rng(mix).exponential(JITTER_SPREAD_MS))
            cached = (
                self._topology.geography.propagation_delay_ms(a, b)
                + LINK_BASE_DELAY_MS
                + jitter
                + self._conditions.link_penalty_ms(a, b)
            )
            self._jitter_cache[key] = cached
        return cached

    def node_cost_ms(self, asn: int) -> float:
        """One-way cost of *transiting* an AS: processing + congestion.

        Congestion penalties model overloaded backbone interconnects, so
        they apply when an AS is crossed as transit (path interior).  An
        endpoint AS only contributes processing delay — traffic entering
        or leaving at the edge does not cross the congested core.  This
        matches the paper's Fig. 4, where the congested AS sits in the
        middle of the direct path and relays route around it.
        """
        return AS_PROCESSING_DELAY_MS + self._conditions.penalty_ms(asn)

    def endpoint_cost_ms(self, asn: int) -> float:
        """One-way cost of an AS at either end of a path (no congestion)."""
        return AS_PROCESSING_DELAY_MS

    def as_path(self, src_as: int, dst_as: int) -> Optional[Tuple[int, ...]]:
        """The direct-IP-routing AS path, or None when unreachable."""
        if src_as in self._conditions.failed_ases or dst_as in self._conditions.failed_ases:
            return None
        if src_as not in self._router.graph or dst_as not in self._router.graph:
            return None
        return self._router.as_path(src_as, dst_as)

    def path_one_way_ms(self, as_path: Sequence[int]) -> float:
        """One-way latency of an explicit AS path (no host access delays)."""
        nodes = list(as_path)
        if not nodes:
            raise MeasurementError("empty AS path")
        total = self.endpoint_cost_ms(nodes[0])
        if len(nodes) > 1:
            total += self.endpoint_cost_ms(nodes[-1])
            total += sum(self.node_cost_ms(asn) for asn in nodes[1:-1])
        for a, b in zip(nodes, nodes[1:]):
            total += self.link_delay_ms(a, b)
        return total

    def path_loss_rate(self, as_path: Sequence[int]) -> float:
        """End-to-end loss of an explicit AS path (independent per AS)."""
        survive = 1.0
        for asn in as_path:
            survive *= 1.0 - self._conditions.loss_of(asn)
        return 1.0 - survive

    # -- AS-to-AS and host-to-host RTT ----------------------------------------

    def as_one_way_ms(self, src_as: int, dst_as: int) -> Optional[float]:
        """One-way latency between two AS border routers, or None."""
        if src_as == dst_as:
            return self.endpoint_cost_ms(src_as)
        path = self.as_path(src_as, dst_as)
        if path is None:
            return None
        return self.path_one_way_ms(path)

    def as_rtt_ms(self, src_as: int, dst_as: int) -> Optional[float]:
        """Round-trip latency between two ASes (symmetric model)."""
        one_way = self.as_one_way_ms(src_as, dst_as)
        return None if one_way is None else 2.0 * one_way

    def host_rtt_ms(self, a: Host, b: Host) -> Optional[float]:
        """Direct IP routing RTT between two end hosts."""
        core = self.as_rtt_ms(a.asn, b.asn)
        if core is None:
            return None
        return core + 2.0 * (a.access_delay_ms + b.access_delay_ms)

    def host_loss_rate(self, a: Host, b: Host) -> Optional[float]:
        """One-way packet loss rate of the direct path between two hosts."""
        if a.asn == b.asn:
            return self._conditions.loss_of(a.asn)
        path = self.as_path(a.asn, b.asn)
        if path is None:
            return None
        return self.path_loss_rate(path)

    # -- relayed paths ---------------------------------------------------------

    def one_hop_relay_rtt_ms(self, a: Host, relay: Host, b: Host) -> Optional[float]:
        """RTT of the overlay path a→relay→b, including relay delay."""
        first = self.host_rtt_ms(a, relay)
        second = self.host_rtt_ms(relay, b)
        if first is None or second is None:
            return None
        return first + second + RELAY_DELAY_RTT_MS

    def two_hop_relay_rtt_ms(
        self, a: Host, relay1: Host, relay2: Host, b: Host
    ) -> Optional[float]:
        """RTT of the overlay path a→relay1→relay2→b."""
        legs = (
            self.host_rtt_ms(a, relay1),
            self.host_rtt_ms(relay1, relay2),
            self.host_rtt_ms(relay2, b),
        )
        if any(leg is None for leg in legs):
            return None
        return sum(legs) + 2.0 * RELAY_DELAY_RTT_MS

    def routing_tree(self, dst_as: int) -> Optional[RoutingTree]:
        """The policy routing tree toward an AS (None if the AS failed)."""
        if dst_as in self._conditions.failed_ases or dst_as not in self._router.graph:
            return None
        return self._router.tree(dst_as)
