"""Measurement substrate: latency/loss ground truth and measurement tools.

The paper measures pairwise delegate RTTs with King, per-path loss, and
AS paths with traceroute.  Here the same roles are played by:

- :mod:`repro.measurement.conditions` — which ASes are congested/failed
  and each AS's loss rate (the injected "weather" of a scenario);
- :mod:`repro.measurement.latency` — ground-truth path latency/loss over
  policy-routed AS paths (geography + per-link jitter + congestion);
- :mod:`repro.measurement.tools` — simulated ``ping``, ``traceroute`` and
  ``King`` (noise + non-response, like real recursive-DNS probing);
- :mod:`repro.measurement.matrix` — the all-pairs cluster-delegate RTT /
  loss / AS-hop matrices that drive every experiment.
"""

from repro.measurement.conditions import ConditionsConfig, NetworkConditions, generate_conditions
from repro.measurement.latency import LatencyModel, RELAY_DELAY_ONE_WAY_MS, RELAY_DELAY_RTT_MS
from repro.measurement.matrix import (
    DelegateMatrices,
    apply_king_noise,
    compute_delegate_matrices,
)
from repro.measurement.tools import KingEstimator, Ping, Traceroute

__all__ = [
    "ConditionsConfig",
    "DelegateMatrices",
    "KingEstimator",
    "LatencyModel",
    "NetworkConditions",
    "Ping",
    "RELAY_DELAY_ONE_WAY_MS",
    "RELAY_DELAY_RTT_MS",
    "Traceroute",
    "apply_king_noise",
    "compute_delegate_matrices",
    "generate_conditions",
]
