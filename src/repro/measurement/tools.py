"""Simulated measurement tools: ping, traceroute, and King.

Each tool samples the hidden :class:`~repro.measurement.latency.LatencyModel`
with its own error process, mirroring how the paper's pipeline never sees
ground truth directly:

- :class:`Ping` — ICMP-style RTT with small additive noise and timeouts on
  unreachable destinations;
- :class:`Traceroute` — the AS-level path of the selected policy route
  (used by the paper to detect same-AS relay probes, Limit 2);
- :class:`KingEstimator` — DNS-based RTT estimation between *arbitrary*
  hosts: multiplicative error plus a non-response fraction (the paper got
  answers for only 1,498,749 of 2,130,140 delegate pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.latency import LatencyModel
from repro.topology.population import Host
from repro.util.rng import derive_rng


@dataclass
class PingResult:
    """Outcome of one ping measurement."""

    rtt_ms: Optional[float]  # None means timeout

    @property
    def responded(self) -> bool:
        return self.rtt_ms is not None


class Ping:
    """RTT measurement directly between two hosts (both must cooperate)."""

    def __init__(self, model: LatencyModel, seed: int = 0, noise_ms: float = 1.0) -> None:
        if noise_ms < 0:
            raise MeasurementError("noise_ms must be non-negative")
        self._model = model
        self._rng = derive_rng(seed, "ping")
        self._noise_ms = noise_ms

    def measure(self, a: Host, b: Host) -> PingResult:
        """One ping exchange; timeout when no route exists."""
        truth = self._model.host_rtt_ms(a, b)
        if truth is None:
            return PingResult(rtt_ms=None)
        noisy = truth + abs(float(self._rng.normal(0.0, self._noise_ms)))
        return PingResult(rtt_ms=noisy)

    def measure_min_of(self, a: Host, b: Host, probes: int = 3) -> PingResult:
        """Min of several probes — standard practice to strip queueing noise."""
        if probes < 1:
            raise MeasurementError("probes must be >= 1")
        best: Optional[float] = None
        for _ in range(probes):
            result = self.measure(a, b)
            if result.rtt_ms is not None and (best is None or result.rtt_ms < best):
                best = result.rtt_ms
        return PingResult(rtt_ms=best)


class Traceroute:
    """AS-level traceroute between two hosts."""

    def __init__(self, model: LatencyModel) -> None:
        self._model = model

    def as_path(self, a: Host, b: Host) -> Optional[Tuple[int, ...]]:
        """The AS path packets actually take, or None if unreachable."""
        if a.asn == b.asn:
            return (a.asn,)
        return self._model.as_path(a.asn, b.asn)


class KingEstimator:
    """King-style RTT estimation between arbitrary end hosts.

    King measures the RTT between the DNS servers nearest to the two
    hosts; we model that as the true host RTT with (i) a multiplicative
    error (the DNS servers are near but not at the hosts) and (ii) a
    non-response probability per pair (firewalled / non-recursive DNS).
    Non-responses are deterministic per pair — retrying King on a
    non-cooperating pair keeps failing, as in the real measurement.
    """

    def __init__(
        self,
        model: LatencyModel,
        seed: int = 0,
        error_sigma: float = 0.06,
        non_response_rate: float = 0.10,
    ) -> None:
        if not 0.0 <= non_response_rate < 1.0:
            raise MeasurementError("non_response_rate must be in [0, 1)")
        if error_sigma < 0:
            raise MeasurementError("error_sigma must be non-negative")
        self._model = model
        self._seed = seed
        self._error_sigma = error_sigma
        self._non_response_rate = non_response_rate

    def estimate(self, a: Host, b: Host) -> Optional[float]:
        """Estimated RTT in ms, or None when the pair does not respond."""
        pair_rng = self._pair_rng(a, b)
        if pair_rng.random() < self._non_response_rate:
            return None
        truth = self._model.host_rtt_ms(a, b)
        if truth is None:
            return None
        factor = float(pair_rng.lognormal(mean=0.0, sigma=self._error_sigma))
        return truth * factor

    def estimate_many(self, pairs: List[Tuple[Host, Host]]) -> List[Optional[float]]:
        """Vector form of :meth:`estimate` for measurement campaigns."""
        return [self.estimate(a, b) for a, b in pairs]

    def _pair_rng(self, a: Host, b: Host) -> np.random.Generator:
        lo, hi = sorted((a.ip.value, b.ip.value))
        mix = (lo * 2_654_435_761 + hi * 40_503 + self._seed) % (2**32)
        return np.random.default_rng(mix)


def run_king_campaign(
    king: "KingEstimator",
    clusters,
    max_pairs: Optional[int] = None,
):
    """A King measurement campaign over cluster delegates (paper Fig. 1).

    Probes every delegate pair (optionally capped) through the estimator
    and returns ``(estimates, responded, attempted)`` where ``estimates``
    is a dict ``{(i, j): rtt_ms}`` over responding pairs, keyed by
    cluster list indices with i < j.  This is the measured counterpart
    of :func:`~repro.measurement.matrix.compute_delegate_matrices` — the
    paper attempted 2,130,140 pairs and got 1,498,749 answers.
    """
    delegates = [c.delegate for c in clusters.all_clusters()]
    estimates = {}
    attempted = 0
    for i in range(len(delegates)):
        for j in range(i + 1, len(delegates)):
            if max_pairs is not None and attempted >= max_pairs:
                return estimates, len(estimates), attempted
            attempted += 1
            value = king.estimate(delegates[i], delegates[j])
            if value is not None:
                estimates[(i, j)] = value
    return estimates, len(estimates), attempted
