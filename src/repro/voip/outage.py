"""Outage accounting for in-call faults: interruption time and MOS dip.

When a relay dies mid-call, packets stop flowing until failover restores
the path.  The perceptual cost of that window is modelled the blunt way
the E-model allows: during an outage the call is effectively at the MOS
floor (1.0 — "no meaning whatsoever"), the rest of the call sits at its
path MOS, and the call's effective score is the time-weighted mean.  The
*MOS dip* (base minus effective) is the chaos sweeps' headline
degradation metric, alongside raw interruption time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

#: MOS assigned while no media flows (E-model scale bottom).
OUTAGE_FLOOR_MOS = 1.0


@dataclass(frozen=True)
class OutageWindow:
    """One interval of a call during which no media flowed."""

    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ConfigurationError("outage window ends before it starts")

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class OutageImpact:
    """Aggregate perceptual cost of a call's outage windows."""

    base_mos: float            # MOS of the path while media flows
    effective_mos: float       # time-weighted mean including outages
    interruption_ms: float     # total outage time (after clip + merge)
    outage_fraction: float     # interruption / call duration

    @property
    def mos_dip(self) -> float:
        return self.base_mos - self.effective_mos


def merge_windows(
    windows: Sequence[OutageWindow],
) -> List[OutageWindow]:
    """Coalesce overlapping/adjacent windows into disjoint spans."""
    if not windows:
        return []
    spans: List[Tuple[float, float]] = sorted(
        (w.start_ms, w.end_ms) for w in windows
    )
    merged: List[Tuple[float, float]] = [spans[0]]
    for start, end in spans[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return [OutageWindow(start_ms=s, end_ms=e) for s, e in merged]


def account_outages(
    base_mos: float,
    duration_ms: float,
    windows: Sequence[OutageWindow],
    floor_mos: float = OUTAGE_FLOOR_MOS,
) -> OutageImpact:
    """Score a call's outage windows against its duration.

    Windows are clipped to the call (a failover detected after the
    natural end contributes nothing) and merged before weighting, so
    double-counted overlaps cannot push the outage fraction past 1.
    """
    if duration_ms <= 0:
        raise ConfigurationError("call duration must be positive")
    clipped = [
        OutageWindow(start_ms=max(0.0, w.start_ms), end_ms=min(duration_ms, w.end_ms))
        for w in windows
        if w.end_ms > 0 and w.start_ms < duration_ms
    ]
    interruption = sum(w.duration_ms for w in merge_windows(clipped))
    fraction = min(1.0, interruption / duration_ms)
    effective = base_mos * (1.0 - fraction) + floor_mos * fraction
    # A path already at the floor cannot dip below it.
    effective = min(base_mos, max(effective, min(base_mos, floor_mos)))
    return OutageImpact(
        base_mos=base_mos,
        effective_mos=effective,
        interruption_ms=interruption,
        outage_fraction=fraction,
    )
