"""VoIP quality thresholds and path predicates used across the evaluation.

"VoIP user satisfaction demands RTT latency be below 300 ms and MOS be
above 3.6" (paper Section 7.1); a path meeting the RTT requirement is a
*quality path*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.voip.emodel import EModel

#: RTT threshold for a quality path (= 2 × ITU G.114's 150 ms one-way cap).
RTT_THRESHOLD_MS = 300.0
#: MOS below this "likely causes listeners' dissatisfaction" (ITU P.800).
MOS_THRESHOLD = 3.6
#: The evaluation's fixed average path loss rate (paper §7.2, from [20]).
DEFAULT_EVAL_LOSS_RATE = 0.005


def is_quality_rtt(rtt_ms: Optional[float], threshold_ms: float = RTT_THRESHOLD_MS) -> bool:
    """True when the RTT meets the quality-path requirement."""
    return rtt_ms is not None and np.isfinite(rtt_ms) and rtt_ms < threshold_ms


def is_quality_mos(mos: float, threshold: float = MOS_THRESHOLD) -> bool:
    """True when the MOS meets the satisfaction requirement."""
    return mos > threshold


def mos_of_path(
    rtt_ms: float,
    loss_rate: float = DEFAULT_EVAL_LOSS_RATE,
    emodel: Optional[EModel] = None,
) -> float:
    """Score one path exactly as the paper's evaluation does:
    G.729A+VAD E-model on (RTT/2, loss)."""
    scorer = emodel if emodel is not None else EModel()
    return scorer.mos_from_rtt(rtt_ms, loss_rate)
