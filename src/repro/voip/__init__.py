"""VoIP quality modelling: codecs, the ITU-T E-model, and MOS.

The paper scores relay paths with the ITU E-model: fix the codec
(G.729A+VAD), feed in the path's one-way delay and packet loss rate, and
read off MOS.  Quality requirements: RTT below 300 ms (one-way 150 ms,
ITU G.114) and MOS above 3.6.
"""

from repro.voip.codecs import Codec, G711, G723_1, G729, G729A_VAD, ILBC
from repro.voip.emodel import EModel, EModelConfig
from repro.voip.outage import (
    OUTAGE_FLOOR_MOS,
    OutageImpact,
    OutageWindow,
    account_outages,
    merge_windows,
)
from repro.voip.quality import (
    MOS_THRESHOLD,
    RTT_THRESHOLD_MS,
    is_quality_mos,
    is_quality_rtt,
    mos_of_path,
)

__all__ = [
    "Codec",
    "EModel",
    "EModelConfig",
    "G711",
    "G723_1",
    "G729",
    "G729A_VAD",
    "ILBC",
    "MOS_THRESHOLD",
    "OUTAGE_FLOOR_MOS",
    "OutageImpact",
    "OutageWindow",
    "RTT_THRESHOLD_MS",
    "account_outages",
    "merge_windows",
    "is_quality_mos",
    "is_quality_rtt",
    "mos_of_path",
]
