"""Voice codec parameter table for E-model scoring.

Equipment impairment (Ie) and loss robustness (Bpl) values follow ITU-T
G.113 Appendix I; per-codec algorithmic + packetization delays are the
commonly cited deployment values.  The paper's Section 2 cites the
"MOS drops ~1 unit per 1% loss without concealment" observation for
exactly these codecs, and its evaluation fixes G.729A+VAD.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Codec:
    """E-model-relevant parameters of one voice codec."""

    name: str
    ie: float                 # equipment impairment factor (no loss)
    bpl: float                # packet-loss robustness factor
    bitrate_kbps: float
    frame_ms: float           # codec frame duration
    lookahead_ms: float       # encoder lookahead
    frames_per_packet: int = 2

    def codec_delay_ms(self) -> float:
        """One-way delay contributed by the codec itself: encoding of the
        packet's frames plus lookahead (decode cost folded into frames)."""
        return self.frame_ms * self.frames_per_packet + self.lookahead_ms

    def packet_interval_ms(self) -> float:
        """Packetization interval (one packet per this many ms of speech)."""
        return self.frame_ms * self.frames_per_packet

    def packets_per_second(self) -> float:
        return 1000.0 / self.packet_interval_ms()


G711 = Codec(
    name="G.711",
    ie=0.0,
    bpl=25.1,  # with packet loss concealment per G.113; robust to random loss
    bitrate_kbps=64.0,
    frame_ms=10.0,
    lookahead_ms=0.0,
)

G729 = Codec(
    name="G.729",
    ie=10.0,
    bpl=19.0,
    bitrate_kbps=8.0,
    frame_ms=10.0,
    lookahead_ms=5.0,
)

G729A_VAD = Codec(
    name="G.729A+VAD",
    ie=11.0,
    bpl=19.0,
    bitrate_kbps=8.0,
    frame_ms=10.0,
    lookahead_ms=5.0,
)

G723_1 = Codec(
    name="G.723.1",
    ie=15.0,
    bpl=16.1,
    bitrate_kbps=6.3,
    frame_ms=30.0,
    lookahead_ms=7.5,
    frames_per_packet=1,
)

# The media plane's loss-robust fallback.  iLBC's frame-independent
# coding buys a much higher Bpl (G.113 Appendix I additions; 30 ms
# mode): at zero loss its longer frame + lookahead make it score
# *below* G.729A+VAD (delay impairment), but past a few percent loss
# the Bpl advantage dominates and it scores above.  G.723.1 cannot
# play this role — its Bpl (16.1) is *lower* than G.729A's, so it
# degrades faster under loss, not slower.
ILBC = Codec(
    name="iLBC",
    ie=11.0,
    bpl=32.0,
    bitrate_kbps=13.33,
    frame_ms=30.0,
    lookahead_ms=10.0,
    frames_per_packet=1,
)

ALL_CODECS = (G711, G729, G729A_VAD, G723_1, ILBC)
