"""Packet-level voice stream simulation: loss, jitter, playout buffering.

The evaluation of the paper scores paths with the E-model from (RTT,
average loss).  This module goes one level deeper — synthesizing the
actual packet arrival process of a voice stream over a path and playing
it through a jitter buffer — so the path-switching and path-diversity
techniques the paper cites ([15][19][20]) can be exercised for real:
late packets become effective loss, and buffer depth trades delay
against loss exactly as in deployed VoIP stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.voip.codecs import Codec, G729A_VAD
from repro.voip.emodel import EModel, EModelConfig


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state bursty-loss channel (Gilbert–Elliott).

    The chain sits in a *good* or *bad* state per packet; each state
    drops packets with its own probability (the classic Gilbert special
    case is ``loss_good=0, loss_bad=1``).  ``p_good_to_bad`` /
    ``p_bad_to_good`` are the per-packet transition probabilities, so
    the mean burst length is ``1 / p_bad_to_good`` packets and the
    stationary loss rate follows from the state occupancies.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.p_bad_to_good <= 0.0:
            raise ConfigurationError("p_bad_to_good must be positive "
                                     "(an absorbing bad state never recovers)")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of packets spent in the bad state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom > 0 else 0.0

    @property
    def stationary_loss(self) -> float:
        """Long-run mean loss rate of the channel."""
        pi_bad = self.stationary_bad
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    @classmethod
    def from_loss_and_burst(
        cls, mean_loss: float, mean_burst: float = 4.0
    ) -> "GilbertElliottConfig":
        """Gilbert channel matching a target mean loss and burst length.

        ``mean_burst`` is the expected run of consecutive losses (in
        packets); the good state is loss-free and the bad state drops
        everything, so ``p_bad_to_good = 1/mean_burst`` and
        ``p_good_to_bad`` is solved from the stationary loss.
        """
        if not 0.0 < mean_loss < 1.0:
            raise ConfigurationError("mean_loss must be in (0, 1)")
        if mean_burst < 1.0:
            raise ConfigurationError("mean_burst must be >= 1 packet")
        r = 1.0 / mean_burst
        p = min(1.0, r * mean_loss / (1.0 - mean_loss))
        return cls(p_good_to_bad=p, p_bad_to_good=r)


def sample_gilbert_elliott(
    rng: np.random.Generator, count: int, config: GilbertElliottConfig
) -> np.ndarray:
    """Draw ``count`` per-packet loss flags from the channel.

    Deterministic for a given generator state: exactly two uniform
    draws per packet (state transition, then loss emission), consumed
    in packet order.  The chain starts in the good state.
    """
    transitions = rng.random(count)
    emissions = rng.random(count)
    lost = np.zeros(count, dtype=bool)
    bad = False
    for i in range(count):
        if bad:
            if transitions[i] < config.p_bad_to_good:
                bad = False
        else:
            if transitions[i] < config.p_good_to_bad:
                bad = True
        loss_p = config.loss_bad if bad else config.loss_good
        lost[i] = emissions[i] < loss_p
    return lost


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of a synthesized voice packet stream."""

    codec: Codec = G729A_VAD
    duration_ms: float = 10_000.0
    # One-way network jitter: exponential with this mean is added to the
    # base one-way delay of every packet.
    jitter_mean_ms: float = 6.0
    seed: int = 0
    # Bursty-loss mode: with a Gilbert–Elliott channel configured, loss
    # flags come from the two-state chain instead of i.i.d. draws (the
    # chain's own rates govern; ``loss_rate`` is ignored).  ``None`` —
    # the default — keeps the random-loss path bit-identical to
    # pre-bursty builds: same draws, same order.
    ge: Optional[GilbertElliottConfig] = None

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be positive")
        if self.jitter_mean_ms < 0:
            raise ConfigurationError("jitter_mean_ms must be non-negative")

    @property
    def packet_count(self) -> int:
        return max(1, int(self.duration_ms / self.codec.packet_interval_ms()))


@dataclass(frozen=True)
class PacketArrival:
    """One voice packet's fate on the network."""

    sequence: int
    sent_ms: float
    arrival_ms: Optional[float]  # None = lost in the network

    @property
    def lost(self) -> bool:
        return self.arrival_ms is None


def simulate_stream(
    one_way_delay_ms: float,
    loss_rate: float,
    config: StreamConfig = StreamConfig(),
    rng: Optional[np.random.Generator] = None,
) -> List[PacketArrival]:
    """Synthesize one direction of a voice stream over a fixed path."""
    if one_way_delay_ms < 0:
        raise ConfigurationError("one_way_delay_ms must be non-negative")
    if not 0.0 <= loss_rate <= 1.0:
        raise ConfigurationError("loss_rate must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng(config.seed)
    interval = config.codec.packet_interval_ms()
    count = config.packet_count
    sent = np.arange(count) * interval
    if config.ge is None:
        lost = rng.random(count) < loss_rate
    else:
        lost = sample_gilbert_elliott(rng, count, config.ge)
    jitter = rng.exponential(config.jitter_mean_ms, size=count) if config.jitter_mean_ms > 0 else np.zeros(count)
    arrivals: List[PacketArrival] = []
    for seq in range(count):
        if lost[seq]:
            arrivals.append(PacketArrival(seq, float(sent[seq]), None))
        else:
            arrivals.append(
                PacketArrival(seq, float(sent[seq]), float(sent[seq] + one_way_delay_ms + jitter[seq]))
            )
    return arrivals


def merge_diverse_arrivals(
    primary: Sequence[PacketArrival], secondary: Sequence[PacketArrival]
) -> List[PacketArrival]:
    """Path diversity [Liang/Steinbach/Girod]: each packet is sent on two
    paths; the receiver keeps the earlier surviving copy."""
    if len(primary) != len(secondary):
        raise ConfigurationError("diverse streams must carry the same packets")
    merged: List[PacketArrival] = []
    for a, b in zip(primary, secondary):
        if a.sequence != b.sequence:
            raise ConfigurationError("sequence mismatch between diverse streams")
        candidates = [p.arrival_ms for p in (a, b) if p.arrival_ms is not None]
        merged.append(
            PacketArrival(a.sequence, a.sent_ms, min(candidates) if candidates else None)
        )
    return merged


@dataclass
class PlayoutResult:
    """What came out of the jitter buffer."""

    played: int
    late: int
    network_lost: int
    total: int
    mouth_to_ear_ms: float  # network one-way + buffer depth + codec delay

    @property
    def effective_loss(self) -> float:
        """Network loss plus late-discard loss — what the listener hears."""
        if self.total == 0:
            return 0.0
        return (self.late + self.network_lost) / self.total


class PlayoutBuffer:
    """Fixed-depth playout (jitter) buffer.

    Packet ``seq`` is played at ``base_delay + depth`` after its send
    time; a packet arriving later than its play-out instant is discarded
    (late loss).  ``base_delay`` is estimated from the earliest arrival,
    as adaptive receivers do during the initial talk spurt.
    """

    def __init__(self, depth_ms: float = 40.0) -> None:
        if depth_ms < 0:
            raise ConfigurationError("depth_ms must be non-negative")
        self.depth_ms = depth_ms

    def play(self, arrivals: Sequence[PacketArrival], codec: Codec = G729A_VAD) -> PlayoutResult:
        """Play a stream through the buffer and account the outcome."""
        if not arrivals:
            raise ConfigurationError("empty stream")
        network_delays = [
            p.arrival_ms - p.sent_ms for p in arrivals if p.arrival_ms is not None
        ]
        if not network_delays:
            return PlayoutResult(
                played=0,
                late=0,
                network_lost=len(arrivals),
                total=len(arrivals),
                mouth_to_ear_ms=float("inf"),
            )
        base_delay = min(network_delays)
        deadline_offset = base_delay + self.depth_ms
        played = late = lost = 0
        for packet in arrivals:
            if packet.arrival_ms is None:
                lost += 1
            elif packet.arrival_ms - packet.sent_ms <= deadline_offset:
                played += 1
            else:
                late += 1
        return PlayoutResult(
            played=played,
            late=late,
            network_lost=lost,
            total=len(arrivals),
            mouth_to_ear_ms=deadline_offset + codec.codec_delay_ms(),
        )


class AdaptivePlayoutBuffer:
    """EWMA-adaptive playout buffer (the classic RFC-style algorithm).

    Tracks smoothed network delay ``d`` and mean deviation ``v`` over
    arrivals and sets each packet's playout deadline to ``d + factor·v``
    after its send time.  Adapts the delay/loss trade-off to the path's
    actual jitter instead of a fixed depth: tight on calm paths, deep on
    jittery ones.
    """

    def __init__(self, alpha: float = 0.998, factor: float = 4.0) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        self.alpha = alpha
        self.factor = factor

    def play(self, arrivals: Sequence[PacketArrival], codec: Codec = G729A_VAD) -> PlayoutResult:
        """Play a stream, adapting the deadline as estimates evolve."""
        if not arrivals:
            raise ConfigurationError("empty stream")
        d_hat: Optional[float] = None
        v_hat = 0.0
        played = late = lost = 0
        deadline_sum = 0.0
        deadline_count = 0
        for packet in arrivals:
            if packet.arrival_ms is None:
                lost += 1
                continue
            delay = packet.arrival_ms - packet.sent_ms
            if d_hat is None:
                d_hat = delay
            deadline = d_hat + self.factor * v_hat
            deadline_sum += deadline
            deadline_count += 1
            if delay <= deadline:
                played += 1
            else:
                late += 1
            # Update estimates from every received packet.
            v_hat = self.alpha * v_hat + (1.0 - self.alpha) * abs(delay - d_hat)
            d_hat = self.alpha * d_hat + (1.0 - self.alpha) * delay
        if deadline_count == 0:
            return PlayoutResult(
                played=0,
                late=0,
                network_lost=len(arrivals),
                total=len(arrivals),
                mouth_to_ear_ms=float("inf"),
            )
        mean_deadline = deadline_sum / deadline_count
        return PlayoutResult(
            played=played,
            late=late,
            network_lost=lost,
            total=len(arrivals),
            mouth_to_ear_ms=mean_deadline + codec.codec_delay_ms(),
        )


def score_playout(result: PlayoutResult, codec: Codec = G729A_VAD) -> float:
    """MOS of a played-out stream: E-model on (effective delay, effective
    loss).  The buffer depth is already inside ``mouth_to_ear_ms``, so
    the E-model's own jitter-buffer term is zeroed out."""
    if not np.isfinite(result.mouth_to_ear_ms):
        return 1.0
    model = EModel(EModelConfig(codec=codec, jitter_buffer_ms=0.0))
    network_equivalent = max(result.mouth_to_ear_ms - codec.codec_delay_ms(), 0.0)
    return model.mos(network_equivalent, result.effective_loss)


def apply_fec_recovery(
    arrivals: Sequence[PacketArrival],
    parity_arrivals: Sequence[PacketArrival],
    group_size: int = 4,
) -> List[PacketArrival]:
    """FEC over a diverse path [Nguyen & Zakhor]: one XOR parity packet
    per ``group_size`` voice packets travels the secondary path; a group
    missing exactly one voice packet recovers it when its parity arrived.

    ``parity_arrivals`` must hold one packet per group (the i-th parity
    covers voice packets ``[i·k, (i+1)·k)``).  A recovered packet plays
    at the later of the parity's arrival and the group's last arrival —
    reconstruction needs all surviving pieces.
    """
    if group_size < 2:
        raise ConfigurationError("group_size must be >= 2")
    groups = (len(arrivals) + group_size - 1) // group_size
    if len(parity_arrivals) < groups:
        raise ConfigurationError(
            f"need {groups} parity packets for {len(arrivals)} voice packets"
        )
    recovered: List[PacketArrival] = list(arrivals)
    for g in range(groups):
        lo, hi = g * group_size, min((g + 1) * group_size, len(arrivals))
        group = arrivals[lo:hi]
        missing = [p for p in group if p.lost]
        if len(missing) != 1:
            continue
        parity = parity_arrivals[g]
        if parity.arrival_ms is None:
            continue
        survivors = [p.arrival_ms for p in group if p.arrival_ms is not None]
        ready = max(survivors + [parity.arrival_ms])
        victim = missing[0]
        index = lo + group.index(victim)
        recovered[index] = PacketArrival(victim.sequence, victim.sent_ms, ready)
    return recovered


def make_parity_stream(
    one_way_delay_ms: float,
    loss_rate: float,
    voice_packets: int,
    group_size: int = 4,
    config: StreamConfig = StreamConfig(),
    rng: Optional[np.random.Generator] = None,
) -> List[PacketArrival]:
    """Synthesize the parity packets' journey over the secondary path.

    Parity ``g`` is sent right after its group's last voice packet
    (``(g+1)·k - 1``) and suffers the secondary path's delay/loss.
    """
    if group_size < 2:
        raise ConfigurationError("group_size must be >= 2")
    if rng is None:
        rng = np.random.default_rng(config.seed + 1)
    interval = config.codec.packet_interval_ms()
    groups = (voice_packets + group_size - 1) // group_size
    parity: List[PacketArrival] = []
    for g in range(groups):
        sent = (min((g + 1) * group_size, voice_packets) - 1) * interval
        if rng.random() < loss_rate:
            parity.append(PacketArrival(g, sent, None))
        else:
            jitter = float(rng.exponential(config.jitter_mean_ms)) if config.jitter_mean_ms > 0 else 0.0
            parity.append(PacketArrival(g, sent, sent + one_way_delay_ms + jitter))
    return parity
