"""ITU-T G.107 E-model: R-factor and MOS from delay + loss.

The transmission rating is

    R = R0 - Is - Id(d) - Ie_eff(Ppl) + A

with the standard simplifications for VoIP planning:

- ``R0 - Is`` collapsed into the default 93.2 (all non-network analogue
  impairments at their G.107 defaults);
- delay impairment ``Id = 0.024 d + 0.11 (d - 177.3) H(d - 177.3)`` where
  ``d`` is the one-way mouth-to-ear delay in ms;
- effective equipment impairment
  ``Ie_eff = Ie + (95 - Ie) * Ppl / (Ppl + Bpl)`` with codec constants
  from G.113 (Ppl in percent, random loss);
- advantage factor ``A = 0`` (fixed-network expectation).

R maps to MOS with the G.107 conversion polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.voip.codecs import Codec, G729A_VAD

#: Default R0 - Is with all G.107 defaults.
DEFAULT_BASE_R = 93.2
#: Delay knee of the Id curve (ms, one-way mouth-to-ear).
_DELAY_KNEE_MS = 177.3


@dataclass(frozen=True)
class EModelConfig:
    """Fixed (non-network) terms of the E-model computation.

    ``jitter_buffer_ms`` is the playout buffer depth added to the one-way
    network delay; ``advantage`` is G.107's expectation factor A.
    """

    codec: Codec = G729A_VAD
    base_r: float = DEFAULT_BASE_R
    jitter_buffer_ms: float = 20.0
    advantage: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_buffer_ms < 0:
            raise ConfigurationError("jitter_buffer_ms must be non-negative")
        if not 0.0 <= self.advantage <= 20.0:
            raise ConfigurationError("advantage factor must be in [0, 20]")


class EModel:
    """Scores paths: (one-way network delay, loss) → R-factor → MOS."""

    def __init__(self, config: EModelConfig = EModelConfig()) -> None:
        self._config = config

    @property
    def config(self) -> EModelConfig:
        return self._config

    def mouth_to_ear_delay_ms(self, one_way_network_ms: float) -> float:
        """Total one-way delay: network + codec + playout buffering."""
        if one_way_network_ms < 0:
            raise ConfigurationError("network delay must be non-negative")
        return (
            one_way_network_ms
            + self._config.codec.codec_delay_ms()
            + self._config.jitter_buffer_ms
        )

    def delay_impairment(self, mouth_to_ear_ms: float) -> float:
        """Id term of the E-model."""
        d = mouth_to_ear_ms
        impairment = 0.024 * d
        if d > _DELAY_KNEE_MS:
            impairment += 0.11 * (d - _DELAY_KNEE_MS)
        return impairment

    def loss_impairment(self, loss_rate: float) -> float:
        """Ie_eff term; ``loss_rate`` is a probability in [0, 1]."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1], got {loss_rate}")
        codec = self._config.codec
        ppl = loss_rate * 100.0
        return codec.ie + (95.0 - codec.ie) * ppl / (ppl + codec.bpl)

    def r_factor(self, one_way_network_ms: float, loss_rate: float) -> float:
        """Transmission rating R for a path."""
        d = self.mouth_to_ear_delay_ms(one_way_network_ms)
        return (
            self._config.base_r
            - self.delay_impairment(d)
            - self.loss_impairment(loss_rate)
            + self._config.advantage
        )

    def mos(self, one_way_network_ms: float, loss_rate: float) -> float:
        """Mean Opinion Score of a path under this codec."""
        return r_to_mos(self.r_factor(one_way_network_ms, loss_rate))

    def mos_from_rtt(self, rtt_ms: float, loss_rate: float) -> float:
        """MOS when only the RTT is known (symmetric one-way = RTT/2) —
        how the paper scores relay paths."""
        if rtt_ms < 0:
            raise ConfigurationError("rtt_ms must be non-negative")
        return self.mos(rtt_ms / 2.0, loss_rate)


def r_to_mos(r: float) -> float:
    """G.107 Annex B conversion from R-factor to MOS.

    The raw cubic dips marginally below 1.0 for tiny positive R, so the
    result is clamped into MOS's defined [1.0, 4.5] range (which also
    keeps the mapping monotone).
    """
    if r <= 0.0:
        return 1.0
    if r >= 100.0:
        return 4.5
    raw = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7.0e-6
    return min(4.5, max(1.0, raw))
