"""Voice-call runtime: path switching and path diversity over ASAP relays.

Section 6.2 of the paper: "Techniques such as path diversity ([15, 19])
and path switching [20] can be used in combination with ASAP to
transmit voice packets."  This module implements both on top of the
relay candidates select-close-relay returns:

- **path switching** [Tao et al.]: monitor the active path's quality in
  windows; when its windowed MOS falls below a threshold, switch to the
  best alternate candidate;
- **path diversity** [Liang et al.]: transmit every packet over the two
  best candidate paths and keep the earlier surviving copy.

Paths degrade over time through an on/off congestion process
(:class:`PathQualityProcess`), so a call that starts on a good relay
can sour mid-call — the scenario switching exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng
from repro.voip.codecs import Codec, G729A_VAD
from repro.voip.stream import (
    PacketArrival,
    PlayoutBuffer,
    StreamConfig,
    merge_diverse_arrivals,
    score_playout,
    simulate_stream,
)


@dataclass(frozen=True)
class PathState:
    """Quality of one candidate path during one time window."""

    one_way_delay_ms: float
    loss_rate: float


class PathQualityProcess:
    """Two-state (clear/congested) Markov process per path, per window.

    In the congested state the path gains extra one-way delay and loss.
    Transitions are sampled independently per window with the given
    probabilities, seeded deterministically per path.
    """

    def __init__(
        self,
        base_one_way_ms: float,
        base_loss: float,
        congest_probability: float = 0.05,
        recover_probability: float = 0.5,
        congestion_delay_ms: float = 120.0,
        congestion_loss: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= congest_probability <= 1.0 or not 0.0 <= recover_probability <= 1.0:
            raise ConfigurationError("transition probabilities must be in [0, 1]")
        if base_one_way_ms < 0 or congestion_delay_ms < 0:
            raise ConfigurationError("delays must be non-negative")
        self._base_delay = base_one_way_ms
        self._base_loss = min(max(base_loss, 0.0), 1.0)
        self._p_congest = congest_probability
        self._p_recover = recover_probability
        self._extra_delay = congestion_delay_ms
        self._extra_loss = congestion_loss
        self._rng = derive_rng(seed, "path-quality")
        self._congested = False

    def step(self) -> PathState:
        """Advance one window and return the path's state for it."""
        if self._congested:
            if self._rng.random() < self._p_recover:
                self._congested = False
        else:
            if self._rng.random() < self._p_congest:
                self._congested = True
        if self._congested:
            return PathState(
                one_way_delay_ms=self._base_delay + self._extra_delay,
                loss_rate=min(self._base_loss + self._extra_loss, 1.0),
            )
        return PathState(one_way_delay_ms=self._base_delay, loss_rate=self._base_loss)


@dataclass(frozen=True)
class CallConfig:
    """Knobs of the call runtime."""

    codec: Codec = G729A_VAD
    window_ms: float = 2_000.0
    windows: int = 30
    playout_depth_ms: float = 40.0
    # Path switching: switch when the active window's MOS dips below.
    switch_mos_threshold: float = 3.2
    use_switching: bool = True
    use_diversity: bool = False
    # FEC over the secondary path [Nguyen & Zakhor]: one XOR parity per
    # ``fec_group_size`` voice packets; mutually exclusive with full
    # duplication (use_diversity).
    use_fec: bool = False
    fec_group_size: int = 4
    jitter_mean_ms: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_ms <= 0 or self.windows < 1:
            raise ConfigurationError("window_ms and windows must be positive")
        if not 1.0 <= self.switch_mos_threshold <= 4.5:
            raise ConfigurationError("switch_mos_threshold must be a MOS value")
        if self.use_fec and self.use_diversity:
            raise ConfigurationError("use_fec and use_diversity are exclusive")
        if self.fec_group_size < 2:
            raise ConfigurationError("fec_group_size must be >= 2")


@dataclass
class WindowOutcome:
    """Per-window record of a running call."""

    window: int
    active_path: int
    mos: float
    switched: bool
    effective_loss: float
    mouth_to_ear_ms: float


@dataclass
class CallOutcome:
    """Full result of one simulated call."""

    windows: List[WindowOutcome] = field(default_factory=list)

    @property
    def mean_mos(self) -> float:
        return float(np.mean([w.mos for w in self.windows])) if self.windows else 1.0

    @property
    def min_mos(self) -> float:
        return float(min((w.mos for w in self.windows), default=1.0))

    @property
    def switches(self) -> int:
        return sum(1 for w in self.windows if w.switched)

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of call time above the 3.6 MOS satisfaction bound."""
        if not self.windows:
            return 0.0
        return float(np.mean([w.mos > 3.6 for w in self.windows]))


class VoiceCall:
    """One call over a ranked list of candidate paths.

    ``paths`` supplies (one-way delay ms, loss rate) per candidate, best
    first — in practice the relay paths select-close-relay returned,
    each wrapped in a :class:`PathQualityProcess` for dynamics.
    """

    def __init__(
        self,
        paths: Sequence[PathQualityProcess],
        config: CallConfig = CallConfig(),
    ) -> None:
        if not paths:
            raise ConfigurationError("a call needs at least one candidate path")
        self._paths = list(paths)
        self._config = config
        self._rng = derive_rng(config.seed, "voice-call")

    def run(self) -> CallOutcome:
        """Simulate the whole call window by window."""
        config = self._config
        outcome = CallOutcome()
        active = 0
        buffer = PlayoutBuffer(config.playout_depth_ms)
        stream_config = StreamConfig(
            codec=config.codec,
            duration_ms=config.window_ms,
            jitter_mean_ms=config.jitter_mean_ms,
            seed=config.seed,
        )
        for window in range(config.windows):
            states = [p.step() for p in self._paths]
            arrivals = self._window_arrivals(states, active, stream_config)
            played = buffer.play(arrivals, config.codec)
            mos = score_playout(played, config.codec)
            switched = False
            if (
                config.use_switching
                and mos < config.switch_mos_threshold
                and len(self._paths) > 1
            ):
                active = self._best_alternate(states, active)
                switched = True
            outcome.windows.append(
                WindowOutcome(
                    window=window,
                    active_path=active,
                    mos=mos,
                    switched=switched,
                    effective_loss=played.effective_loss,
                    mouth_to_ear_ms=played.mouth_to_ear_ms,
                )
            )
        return outcome

    def _window_arrivals(
        self,
        states: Sequence[PathState],
        active: int,
        stream_config: StreamConfig,
    ) -> List[PacketArrival]:
        primary_state = states[active]
        primary = simulate_stream(
            primary_state.one_way_delay_ms,
            primary_state.loss_rate,
            stream_config,
            rng=self._rng,
        )
        wants_secondary = self._config.use_diversity or self._config.use_fec
        if not wants_secondary or len(states) < 2:
            return primary
        backup_index = self._best_alternate(states, active)
        backup_state = states[backup_index]
        if self._config.use_diversity:
            backup = simulate_stream(
                backup_state.one_way_delay_ms,
                backup_state.loss_rate,
                stream_config,
                rng=self._rng,
            )
            return merge_diverse_arrivals(primary, backup)
        from repro.voip.stream import apply_fec_recovery, make_parity_stream

        parity = make_parity_stream(
            backup_state.one_way_delay_ms,
            backup_state.loss_rate,
            len(primary),
            group_size=self._config.fec_group_size,
            config=stream_config,
            rng=self._rng,
        )
        return apply_fec_recovery(primary, parity, self._config.fec_group_size)

    def _best_alternate(self, states: Sequence[PathState], active: int) -> int:
        """The non-active path with the best instantaneous quality."""
        best_index = active
        best_score = float("inf")
        for index, state in enumerate(states):
            if index == active:
                continue
            score = state.one_way_delay_ms + 2_000.0 * state.loss_rate
            if score < best_score:
                best_score = score
                best_index = index
        return best_index


def call_paths_from_selection(
    selection,
    matrices,
    caller_cluster: int,
    callee_cluster: int,
    max_paths: int = 4,
    seed: int = 0,
) -> List[PathQualityProcess]:
    """Wrap a RelaySelection's best one-hop candidates (plus the direct
    path) into quality processes for a :class:`VoiceCall`."""
    candidates: List[Tuple[float, float]] = []
    direct_rtt = float(matrices.rtt_ms[caller_cluster, callee_cluster])
    if np.isfinite(direct_rtt):
        candidates.append(
            (direct_rtt / 2.0, float(matrices.loss[caller_cluster, callee_cluster]))
        )
    for cand in sorted(selection.one_hop, key=lambda c: c.relay_rtt_ms)[:max_paths]:
        loss = matrices.one_hop_path_loss(caller_cluster, cand.cluster, callee_cluster)
        candidates.append((cand.relay_rtt_ms / 2.0, loss))
    candidates.sort(key=lambda c: c[0] + 2_000.0 * c[1])
    return [
        PathQualityProcess(
            base_one_way_ms=delay,
            base_loss=loss,
            seed=seed + index,
        )
        for index, (delay, loss) in enumerate(candidates[:max_paths])
    ]
