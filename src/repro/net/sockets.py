"""Real asyncio TCP transport for the ASAP service daemons.

Frames are written verbatim as produced by :func:`repro.net.codec.
encode_frame` and reassembled from the byte stream with
:class:`repro.net.codec.FrameDecoder`, so the bytes on a localhost
socket are exactly the bytes the loopback transport moves in-process.

Endpoint addresses are ``"host:port"`` strings.  Outbound connections
are pooled per destination and reused for every subsequent send or
request; responses are correlated back to their requests by the frame
header's ``request_id``.  A peer that is down surfaces as
:class:`repro.errors.TransportTimeout` (fast on connection refusal,
after ``timeout_ms`` on silence), mirroring the loopback's unreachable
semantics so retry policies behave identically on both substrates.

Each pooled connection caps its in-flight requests (``max_in_flight``)
with a bounded wait queue behind it (``max_waiters``): a full queue
rejects immediately as a :class:`TransportTimeout` (counted in
``wire.backpressure_rejected``), so a slow peer degrades into timeouts
the retry policies already handle instead of unbounded buffering.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from typing import Deque, Dict, Optional

from repro import obs
from repro.errors import FrameError, RemoteError, TransportTimeout
from repro.net.codec import (
    ERROR,
    ONEWAY,
    REQUEST,
    RESPONSE,
    ErrorFrame,
    Frame,
    FrameDecoder,
    Message,
    encode_frame,
)
from repro.net.codec import ERR_INTERNAL, ERR_UNSUPPORTED
from repro.net.transport import Handler, TraceContext, Transport

__all__ = ["TcpTransport"]

_READ_CHUNK = 65536


class _Conn:
    """One pooled outbound connection and its response-pump task."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_in_flight: int = 64,
        max_waiters: int = 128,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.task: Optional[asyncio.Task] = None
        self.max_in_flight = max_in_flight
        self.max_waiters = max_waiters
        self.in_flight = 0
        self.waiters: Deque[asyncio.Future] = deque()

    def alive(self) -> bool:
        return not self.writer.is_closing()

    # -- backpressure -------------------------------------------------------

    def try_acquire(self) -> bool:
        """Claim an in-flight slot if one is free."""
        if self.in_flight < self.max_in_flight:
            self.in_flight += 1
            return True
        return False

    def enqueue_waiter(self) -> Optional[asyncio.Future]:
        """Queue for the next freed slot; None when the queue is full."""
        if len(self.waiters) >= self.max_waiters:
            return None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.waiters.append(future)
        return future

    def release(self) -> None:
        """Free a slot — handed straight to the next live waiter (the
        in-flight count never dips, so the cap is exact under load)."""
        while self.waiters:
            waiter = self.waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
        self.in_flight = max(0, self.in_flight - 1)

    def fail_waiters(self) -> None:
        """Connection died: every queued waiter times out now."""
        while self.waiters:
            waiter = self.waiters.popleft()
            if not waiter.done():
                waiter.set_exception(TransportTimeout("connection closed"))


class TcpTransport(Transport):
    """A TCP endpoint: one listening socket plus pooled client sockets."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 64,
        max_waiters: int = 128,
    ) -> None:
        self._host = host
        self._port = port
        self._max_in_flight = max_in_flight
        self._max_waiters = max_waiters
        self._handler: Optional[Handler] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: Dict[str, _Conn] = {}
        self._pending: Dict[int, asyncio.Future] = {}
        self._request_seq = itertools.count(1)
        self._inbound_tasks: set = set()

    @property
    def local_address(self) -> str:
        return f"{self._host}:{self._port}"

    def bind(self, handler: Handler) -> None:
        self._handler = handler

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port
        )
        # Port 0 asks the kernel for a free port; advertise what we got.
        self._port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in self._conns.values():
            if conn.task is not None:
                conn.task.cancel()
            conn.fail_waiters()
            conn.writer.close()
        self._conns.clear()
        for task in list(self._inbound_tasks):
            task.cancel()
        self._inbound_tasks.clear()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(TransportTimeout("transport closed"))
        self._pending.clear()

    def now_ms(self) -> float:
        return time.monotonic() * 1000.0

    async def sleep_ms(self, ms: float) -> None:
        await asyncio.sleep(ms / 1000.0)

    async def gather(self, *coros):
        return await asyncio.gather(*coros)

    # -- outbound ----------------------------------------------------------

    async def _get_conn(self, addr: str) -> _Conn:
        conn = self._conns.get(addr)
        if conn is not None and conn.alive():
            return conn
        host, _, port = addr.rpartition(":")
        try:
            reader, writer = await asyncio.open_connection(host, int(port))
        except (OSError, ValueError) as exc:
            raise TransportTimeout(f"cannot connect to {addr}: {exc}") from exc
        conn = _Conn(reader, writer, self._max_in_flight, self._max_waiters)
        conn.task = asyncio.get_running_loop().create_task(self._pump(conn))
        self._conns[addr] = conn
        return conn

    async def _pump(self, conn: _Conn) -> None:
        """Read frames off a pooled connection until it dies."""
        try:
            while True:
                data = await conn.reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in conn.decoder.feed(data):
                    if frame.flags in (RESPONSE, ERROR):
                        self._complete(frame)
                    elif self._handler is not None:
                        self._spawn_inbound(conn.writer, "peer", frame)
        except (asyncio.CancelledError, FrameError, OSError):
            pass
        finally:
            conn.fail_waiters()
            conn.writer.close()

    def _complete(self, frame: Frame) -> None:
        future = self._pending.get(frame.request_id)
        if future is not None and not future.done():
            future.set_result(frame)

    async def send(self, addr: str, message: Message) -> None:
        obs.counter("wire.sent").inc()
        try:
            conn = await self._get_conn(addr)
            conn.writer.write(encode_frame(message, ONEWAY, 0))
            await conn.writer.drain()
        except (TransportTimeout, OSError):
            obs.counter("wire.dropped").inc()

    async def _acquire_slot(self, conn: _Conn, addr: str, timeout_ms: float) -> None:
        """Claim an in-flight slot, waiting (bounded) under backpressure."""
        if conn.try_acquire():
            return
        waiter = conn.enqueue_waiter()
        if waiter is None:
            obs.counter("wire.backpressure_rejected").inc()
            obs.counter("wire.timeouts").inc()
            obs.timeline().sample(
                "net.backpressure_rejected",
                self.now_ms(),
                obs.counter("wire.backpressure_rejected").value,
                wall=True,
            )
            raise TransportTimeout(
                f"{addr} backpressure: {conn.in_flight} in flight, "
                f"{conn.max_waiters} waiting"
            )
        try:
            await asyncio.wait_for(asyncio.shield(waiter), timeout_ms / 1000.0)
        except asyncio.TimeoutError:
            if waiter.done() and not waiter.cancelled() and waiter.exception() is None:
                conn.release()  # the slot arrived exactly as we gave up
            else:
                waiter.cancel()
            obs.counter("wire.timeouts").inc()
            raise TransportTimeout(
                f"no free slot to {addr} within {timeout_ms} ms"
            ) from None

    async def request(
        self,
        addr: str,
        message: Message,
        timeout_ms: float,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        request_id = next(self._request_seq)
        data = encode_frame(message, REQUEST, request_id, trace=trace)
        obs.counter("wire.sent").inc()
        conn = await self._get_conn(addr)
        await self._acquire_slot(conn, addr, timeout_ms)
        obs.timeline().sample(
            "net.pool_in_flight", self.now_ms(), conn.in_flight, wall=True
        )
        if conn.waiters:
            obs.timeline().sample(
                "net.pool_waiters", self.now_ms(), len(conn.waiters), wall=True
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            conn.writer.write(data)
            await conn.writer.drain()
            try:
                frame: Frame = await asyncio.wait_for(future, timeout_ms / 1000.0)
            except asyncio.TimeoutError:
                obs.counter("wire.timeouts").inc()
                raise TransportTimeout(
                    f"no response from {addr} within {timeout_ms} ms"
                ) from None
        finally:
            self._pending.pop(request_id, None)
            conn.release()
        if frame.flags == ERROR:
            assert isinstance(frame.message, ErrorFrame)
            raise RemoteError(frame.message.code, frame.message.detail)
        return frame.message

    # -- inbound -----------------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        sender = f"{peername[0]}:{peername[1]}" if peername else "?"
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if frame.flags in (RESPONSE, ERROR):
                        self._complete(frame)
                    else:
                        self._spawn_inbound(writer, sender, frame)
        except (asyncio.CancelledError, FrameError, OSError):
            pass
        finally:
            writer.close()

    def _spawn_inbound(
        self, writer: asyncio.StreamWriter, sender: str, frame: Frame
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._dispatch(writer, sender, frame)
        )
        self._inbound_tasks.add(task)
        task.add_done_callback(self._inbound_tasks.discard)

    async def _dispatch(
        self, writer: asyncio.StreamWriter, sender: str, frame: Frame
    ) -> None:
        obs.counter("wire.delivered").inc()
        response: Optional[Message] = None
        if self._handler is None:
            response = ErrorFrame(code=ERR_UNSUPPORTED, detail="no handler bound")
        else:
            try:
                response = await self._handler(sender, frame)
            except Exception as exc:  # a daemon bug must answer, not hang
                response = ErrorFrame(code=ERR_INTERNAL, detail=str(exc))
        if frame.flags != REQUEST:
            return
        if response is None:
            response = ErrorFrame(
                code=ERR_UNSUPPORTED,
                detail=f"no response for {type(frame.message).__name__}",
            )
        flags = ERROR if isinstance(response, ErrorFrame) else RESPONSE
        try:
            writer.write(encode_frame(response, flags, frame.request_id))
            await writer.drain()
        except OSError:
            pass  # requester is gone; its timeout handles the rest
