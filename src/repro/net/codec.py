"""Versioned, length-prefixed binary codec for ASAP protocol messages.

Frame layout (network byte order)::

    +-------+---------+------+-------+------------+---------+=========+
    | magic | version | type | flags | request_id | length  | payload |
    | 2 B   | 1 B     | 1 B  | 1 B   | 4 B        | 4 B     | var     |
    +-------+---------+------+-------+------------+---------+=========+

``magic`` is ``b"AS"``; ``version`` is :data:`CODEC_SCHEMA_VERSION`;
``type`` selects a registered message class; ``flags`` marks the frame
as one-way, request, response or error-response (transports use
``request_id`` to correlate the latter three); ``length`` counts payload
bytes only.

Message payloads are packed field-by-field from each message class's
``FIELDS`` declaration — a table of ``(name, kind)`` pairs over a small
set of primitive kinds (fixed-width integers, IEEE-754 doubles,
length-prefixed strings/bytes, and ``(u32, f64)`` pair lists for close
sets).  The table is the single schema source: encoding, decoding, the
round-trip property tests and the microbenchmarks all derive from it,
so a message class cannot drift from its wire form.

Strictness guarantees (the contract :mod:`tests.test_net_codec` pins):

- encoding is a pure function of the message — byte-deterministic;
- :func:`decode_frame` on truncated, trailing-garbage, bad-magic,
  wrong-version or unknown-type input raises
  :class:`repro.errors.FrameError`;
- a frame whose payload violates its message schema raises
  :class:`repro.errors.CodecError`;
- declared lengths are capped (:data:`MAX_PAYLOAD_BYTES`) so a corrupt
  length field can never cause an unbounded allocation or a hang.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Tuple

from repro.errors import CodecError, FrameError
from repro.netaddr import IPv4Address

__all__ = [
    "CODEC_SCHEMA_VERSION",
    "ERROR",
    "MAX_PAYLOAD_BYTES",
    "MESSAGE_TYPES",
    "ONEWAY",
    "REQUEST",
    "RESPONSE",
    "Bye",
    "CallAccept",
    "CallSetup",
    "CloseSetQuery",
    "CloseSetReply",
    "ErrorFrame",
    "Frame",
    "FrameDecoder",
    "Join",
    "JoinOk",
    "Keepalive",
    "KeepaliveAck",
    "Media",
    "Message",
    "NodalPublish",
    "Ping",
    "Pong",
    "RelayOk",
    "RelaySetup",
    "Resolve",
    "ResolveOk",
    "decode_frame",
    "encode_frame",
]

#: Bump when the frame layout or any message schema changes; decoders
#: reject every other version.
CODEC_SCHEMA_VERSION = 1

#: Hard cap on a declared payload length — a corrupt length field must
#: never trigger an unbounded read or allocation.
MAX_PAYLOAD_BYTES = 1 << 20

_MAGIC = b"AS"
_HEADER = struct.Struct("!2sBBBII")

# -- frame flags --------------------------------------------------------------

ONEWAY = 0    #: fire-and-forget; no response expected
REQUEST = 1   #: expects a RESPONSE (or ERROR) with the same request_id
RESPONSE = 2  #: successful answer to a REQUEST
ERROR = 3     #: error answer to a REQUEST; payload is an ErrorFrame

_FLAGS = frozenset((ONEWAY, REQUEST, RESPONSE, ERROR))

# -- primitive field kinds ----------------------------------------------------

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I32 = struct.Struct("!i")
_F64 = struct.Struct("!d")
_PAIR = struct.Struct("!Id")


def _need(data: bytes, offset: int, count: int, what: str) -> None:
    if offset + count > len(data):
        raise CodecError(f"payload truncated reading {what}")


class _Kind:
    """One primitive wire kind: pack into a buffer / unpack at an offset."""

    __slots__ = ("name", "pack", "unpack")

    def __init__(self, name, pack, unpack) -> None:
        self.name = name
        self.pack = pack        # (out: List[bytes], value) -> None
        self.unpack = unpack    # (data, offset) -> (value, new_offset)


def _fixed_kind(name: str, fmt: struct.Struct, check=None) -> _Kind:
    def pack(out: List[bytes], value) -> None:
        if check is not None:
            check(value)
        try:
            out.append(fmt.pack(value))
        except (struct.error, TypeError) as exc:
            raise CodecError(f"cannot pack {name} value {value!r}") from exc

    def unpack(data: bytes, offset: int):
        _need(data, offset, fmt.size, name)
        return fmt.unpack_from(data, offset)[0], offset + fmt.size

    return _Kind(name, pack, unpack)


def _pack_ip(out: List[bytes], value) -> None:
    if not isinstance(value, IPv4Address):
        raise CodecError(f"ip field needs an IPv4Address, got {type(value).__name__}")
    out.append(_U32.pack(value.value))


def _unpack_ip(data: bytes, offset: int):
    _need(data, offset, 4, "ip")
    return IPv4Address(_U32.unpack_from(data, offset)[0]), offset + 4


def _pack_str(out: List[bytes], value) -> None:
    if not isinstance(value, str):
        raise CodecError(f"str field needs a str, got {type(value).__name__}")
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long for the wire ({len(raw)} bytes)")
    out.append(_U16.pack(len(raw)))
    out.append(raw)


def _unpack_str(data: bytes, offset: int):
    _need(data, offset, 2, "str length")
    size = _U16.unpack_from(data, offset)[0]
    offset += 2
    _need(data, offset, size, "str body")
    try:
        return data[offset:offset + size].decode("utf-8"), offset + size
    except UnicodeDecodeError as exc:
        raise CodecError("string field is not valid UTF-8") from exc


def _pack_bytes(out: List[bytes], value) -> None:
    if not isinstance(value, (bytes, bytearray)):
        raise CodecError(f"bytes field needs bytes, got {type(value).__name__}")
    if len(value) > MAX_PAYLOAD_BYTES:
        raise CodecError(f"bytes field too long ({len(value)} bytes)")
    out.append(_U32.pack(len(value)))
    out.append(bytes(value))


def _unpack_bytes(data: bytes, offset: int):
    _need(data, offset, 4, "bytes length")
    size = _U32.unpack_from(data, offset)[0]
    offset += 4
    if size > MAX_PAYLOAD_BYTES:
        raise CodecError(f"bytes field declares {size} bytes (cap {MAX_PAYLOAD_BYTES})")
    _need(data, offset, size, "bytes body")
    return data[offset:offset + size], offset + size


def _pack_pairs(out: List[bytes], value) -> None:
    try:
        pairs = [(int(c), float(r)) for c, r in value]
    except (TypeError, ValueError) as exc:
        raise CodecError("pairs field needs an iterable of (int, float)") from exc
    out.append(_U32.pack(len(pairs)))
    for cluster, rtt in pairs:
        if cluster < 0 or cluster > 0xFFFFFFFF:
            raise CodecError(f"pair cluster {cluster} out of u32 range")
        out.append(_PAIR.pack(cluster, rtt))


def _unpack_pairs(data: bytes, offset: int):
    _need(data, offset, 4, "pairs count")
    count = _U32.unpack_from(data, offset)[0]
    offset += 4
    if count * _PAIR.size > MAX_PAYLOAD_BYTES:
        raise CodecError(f"pairs field declares {count} entries")
    _need(data, offset, count * _PAIR.size, "pairs body")
    pairs = []
    for _ in range(count):
        cluster, rtt = _PAIR.unpack_from(data, offset)
        pairs.append((cluster, rtt))
        offset += _PAIR.size
    return tuple(pairs), offset


def _check_unsigned(bits: int):
    top = (1 << bits) - 1

    def check(value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"u{bits} field needs an int, got {type(value).__name__}")
        if not 0 <= value <= top:
            raise CodecError(f"u{bits} value {value} out of range")

    return check


def _check_i32(value) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise CodecError(f"i32 field needs an int, got {type(value).__name__}")
    if not -(1 << 31) <= value < (1 << 31):
        raise CodecError(f"i32 value {value} out of range")


def _check_f64(value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise CodecError(f"f64 field needs a number, got {type(value).__name__}")


KINDS: Dict[str, _Kind] = {
    "u8": _fixed_kind("u8", _U8, _check_unsigned(8)),
    "u16": _fixed_kind("u16", _U16, _check_unsigned(16)),
    "u32": _fixed_kind("u32", _U32, _check_unsigned(32)),
    "u64": _fixed_kind("u64", _U64, _check_unsigned(64)),
    "i32": _fixed_kind("i32", _I32, _check_i32),
    "f64": _fixed_kind("f64", _F64, _check_f64),
    "ip": _Kind("ip", _pack_ip, _unpack_ip),
    "str": _Kind("str", _pack_str, _unpack_str),
    "bytes": _Kind("bytes", _pack_bytes, _unpack_bytes),
    "pairs": _Kind("pairs", _pack_pairs, _unpack_pairs),
}

# -- message classes ----------------------------------------------------------

#: wire type byte -> message class (filled by ``_register``).
MESSAGE_TYPES: Dict[int, type] = {}


class Message:
    """Base for wire messages; subclasses declare ``TYPE`` and ``FIELDS``."""

    TYPE: int = -1
    FIELDS: Tuple[Tuple[str, str], ...] = ()

    def pack_payload(self) -> bytes:
        out: List[bytes] = []
        for name, kind in self.FIELDS:
            KINDS[kind].pack(out, getattr(self, name))
        return b"".join(out)

    @classmethod
    def unpack_payload(cls, data: bytes) -> "Message":
        offset = 0
        values = {}
        for name, kind in cls.FIELDS:
            values[name], offset = KINDS[kind].unpack(data, offset)
        if offset != len(data):
            raise CodecError(
                f"{cls.__name__} payload has {len(data) - offset} trailing bytes"
            )
        return cls(**values)


def _register(cls):
    """Class decorator: enter a message into the wire-type registry."""
    if cls.TYPE in MESSAGE_TYPES:
        raise ValueError(f"duplicate wire type {cls.TYPE:#x}")
    declared = tuple(f.name for f in dataclass_fields(cls))
    schema = tuple(name for name, _ in cls.FIELDS)
    if declared != schema:
        raise ValueError(
            f"{cls.__name__}: dataclass fields {declared} != wire schema {schema}"
        )
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


#: Join roles on the wire.
ROLE_HOST = 0
ROLE_SURROGATE = 1


@_register
@dataclass(frozen=True)
class Join(Message):
    """Bootstrap registration (§6.1): a node enters the overlay.

    ``wire_addr`` is the node's advertised transport address (the
    bootstrap doubles as the overlay's directory); surrogates join with
    ``role=ROLE_SURROGATE`` and the cluster they serve, hosts with
    ``role=ROLE_HOST`` and ``cluster=-1`` (the bootstrap assigns one).
    """

    TYPE = 0x01
    FIELDS = (
        ("ip", "ip"),
        ("role", "u8"),
        ("cluster", "i32"),
        ("wire_addr", "str"),
    )

    ip: IPv4Address
    role: int
    cluster: int
    wire_addr: str


@_register
@dataclass(frozen=True)
class JoinOk(Message):
    """Bootstrap's answer: assigned cluster and its serving surrogate."""

    TYPE = 0x02
    FIELDS = (
        ("cluster", "i32"),
        ("surrogate_ip", "ip"),
        ("surrogate_addr", "str"),
    )

    cluster: int
    surrogate_ip: IPv4Address
    surrogate_addr: str


@_register
@dataclass(frozen=True)
class Resolve(Message):
    """Directory lookup: which wire address serves this overlay IP?"""

    TYPE = 0x03
    FIELDS = (("ip", "ip"),)

    ip: IPv4Address


@_register
@dataclass(frozen=True)
class ResolveOk(Message):
    TYPE = 0x04
    FIELDS = (("ip", "ip"), ("found", "u8"), ("addr", "str"))

    ip: IPv4Address
    found: int
    addr: str


@_register
@dataclass(frozen=True)
class Ping(Message):
    """Direct-path probe (Fig. 8 step 1)."""

    TYPE = 0x05
    FIELDS = (("token", "u32"),)

    token: int


@_register
@dataclass(frozen=True)
class Pong(Message):
    TYPE = 0x06
    FIELDS = (("token", "u32"),)

    token: int


@_register
@dataclass(frozen=True)
class CloseSetQuery(Message):
    """Close-cluster-set request — to a surrogate (own leg) or to the
    callee, which relays it to *its* surrogate (peer leg, Fig. 8)."""

    TYPE = 0x07
    FIELDS = (("cluster", "i32"), ("requester_ip", "ip"))

    cluster: int          # -1 = "the cluster you serve / belong to"
    requester_ip: IPv4Address


@_register
@dataclass(frozen=True)
class CloseSetReply(Message):
    """A close cluster set on the wire: (cluster index, RTT ms) pairs."""

    TYPE = 0x08
    FIELDS = (("owner", "i32"), ("entries", "pairs"))

    owner: int
    entries: Tuple[Tuple[int, float], ...]


@_register
@dataclass(frozen=True)
class NodalPublish(Message):
    """Nodal-information publish to the cluster surrogate (§6.1)."""

    TYPE = 0x09
    FIELDS = (
        ("ip", "ip"),
        ("bandwidth_kbps", "f64"),
        ("uptime_hours", "f64"),
        ("cpu_score", "f64"),
    )

    ip: IPv4Address
    bandwidth_kbps: float
    uptime_hours: float
    cpu_score: float


@_register
@dataclass(frozen=True)
class CallSetup(Message):
    """Caller → callee: a call is starting on the given path."""

    TYPE = 0x0A
    FIELDS = (("call_id", "u64"), ("caller_ip", "ip"), ("callee_ip", "ip"))

    call_id: int
    caller_ip: IPv4Address
    callee_ip: IPv4Address


@_register
@dataclass(frozen=True)
class CallAccept(Message):
    TYPE = 0x0B
    FIELDS = (("call_id", "u64"), ("accept", "u8"))

    call_id: int
    accept: int


@_register
@dataclass(frozen=True)
class RelaySetup(Message):
    """Caller → chosen relay host: carry this call's media."""

    TYPE = 0x0C
    FIELDS = (("call_id", "u64"), ("caller_ip", "ip"), ("callee_ip", "ip"))

    call_id: int
    caller_ip: IPv4Address
    callee_ip: IPv4Address


@_register
@dataclass(frozen=True)
class RelayOk(Message):
    TYPE = 0x0D
    FIELDS = (("call_id", "u64"),)

    call_id: int


@_register
@dataclass(frozen=True)
class Media(Message):
    """One media packet; relays forward it toward the callee."""

    TYPE = 0x0E
    FIELDS = (("call_id", "u64"), ("seq", "u32"), ("payload", "bytes"))

    call_id: int
    seq: int
    payload: bytes


@_register
@dataclass(frozen=True)
class Keepalive(Message):
    """In-call liveness probe to the relay (drives §6 backup failover)."""

    TYPE = 0x0F
    FIELDS = (("call_id", "u64"), ("seq", "u32"))

    call_id: int
    seq: int


@_register
@dataclass(frozen=True)
class KeepaliveAck(Message):
    TYPE = 0x10
    FIELDS = (("call_id", "u64"), ("seq", "u32"))

    call_id: int
    seq: int


@_register
@dataclass(frozen=True)
class Bye(Message):
    """Call teardown to the callee and any relay."""

    TYPE = 0x11
    FIELDS = (("call_id", "u64"), ("reason", "str"))

    call_id: int
    reason: str


@_register
@dataclass(frozen=True)
class ErrorFrame(Message):
    """Error response payload (flags=ERROR frames carry exactly this)."""

    TYPE = 0x12
    FIELDS = (("code", "u16"), ("detail", "str"))

    code: int
    detail: str


#: Error codes carried by :class:`ErrorFrame`.
ERR_UNSUPPORTED = 1   #: receiver has no handler for the message type
ERR_INTERNAL = 2      #: handler raised
ERR_NOT_SERVING = 3   #: role cannot satisfy the request (e.g. not joined)


# -- frame encode / decode ----------------------------------------------------


@dataclass(frozen=True)
class Frame:
    """A decoded wire frame: the message plus its envelope."""

    message: Message
    flags: int = ONEWAY
    request_id: int = 0


def encode_frame(message: Message, flags: int = ONEWAY, request_id: int = 0) -> bytes:
    """Encode one message into its full wire frame (deterministic)."""
    if type(message).TYPE not in MESSAGE_TYPES:
        raise CodecError(f"unregistered message type {type(message).__name__}")
    if flags not in _FLAGS:
        raise CodecError(f"invalid frame flags {flags!r}")
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise CodecError(f"request_id {request_id} out of u32 range")
    payload = message.pack_payload()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise CodecError(f"payload too large ({len(payload)} bytes)")
    header = _HEADER.pack(
        _MAGIC, CODEC_SCHEMA_VERSION, type(message).TYPE, flags,
        request_id, len(payload),
    )
    return header + payload


def _decode_header(data: bytes, offset: int = 0) -> Tuple[int, int, int, int]:
    """Validate a header at ``offset``; returns (type, flags, req_id, length).

    Raises :class:`FrameError` on anything but a well-formed current-
    version header (including a header shorter than the fixed size).
    """
    if len(data) - offset < _HEADER.size:
        raise FrameError(
            f"truncated frame: {len(data) - offset} bytes, "
            f"header needs {_HEADER.size}"
        )
    magic, version, msg_type, flags, request_id, length = _HEADER.unpack_from(
        data, offset
    )
    if magic != _MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if version != CODEC_SCHEMA_VERSION:
        raise FrameError(
            f"unsupported codec schema {version} (expected {CODEC_SCHEMA_VERSION})"
        )
    if msg_type not in MESSAGE_TYPES:
        raise FrameError(f"unknown message type {msg_type:#x}")
    if flags not in _FLAGS:
        raise FrameError(f"unknown frame flags {flags:#x}")
    if length > MAX_PAYLOAD_BYTES:
        raise FrameError(f"declared payload {length} exceeds cap {MAX_PAYLOAD_BYTES}")
    return msg_type, flags, request_id, length


def decode_frame(data: bytes) -> Frame:
    """Strictly decode exactly one frame from ``data``.

    The buffer must hold one complete frame and nothing else: truncation
    and trailing garbage both raise :class:`FrameError`; payload-schema
    violations raise :class:`CodecError`.
    """
    msg_type, flags, request_id, length = _decode_header(data)
    body_end = _HEADER.size + length
    if len(data) < body_end:
        raise FrameError(
            f"truncated frame: payload declares {length} bytes, "
            f"{len(data) - _HEADER.size} present"
        )
    if len(data) > body_end:
        raise FrameError(f"{len(data) - body_end} trailing bytes after frame")
    message = MESSAGE_TYPES[msg_type].unpack_payload(data[_HEADER.size:body_end])
    return Frame(message=message, flags=flags, request_id=request_id)


class FrameDecoder:
    """Incremental frame reassembly for stream transports.

    Feed arbitrary byte chunks; complete frames come back in order.  A
    partial frame is buffered until its remainder arrives (that is the
    one place "truncated" is not an error — the stream may simply not
    have delivered the rest yet); corrupt headers and payloads raise
    immediately, poisoning the decoder (a stream that desynchronized
    cannot be trusted again).
    """

    __slots__ = ("_buffer", "_poisoned")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Add bytes; return every frame completed by them."""
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier corrupt frame")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            view = bytes(self._buffer)
            try:
                _, _, _, length = _decode_header(view)
            except FrameError:
                self._poisoned = True
                raise
            end = _HEADER.size + length
            if len(view) < end:
                break
            try:
                frames.append(decode_frame(view[:end]))
            except (FrameError, CodecError):
                self._poisoned = True
                raise
            del self._buffer[:end]
        return frames
