"""Versioned, length-prefixed binary codec for ASAP protocol messages.

Frame layout (network byte order)::

    +-------+---------+------+-------+------------+---------+=======+=========+
    | magic | version | type | flags | request_id | length  | trace | payload |
    | 2 B   | 1 B     | 1 B  | 1 B   | 4 B        | 4 B     | var   | var     |
    +-------+---------+------+-------+------------+---------+=======+=========+

``magic`` is ``b"AS"``; ``version`` is :data:`CODEC_SCHEMA_VERSION`;
``type`` selects a registered message class; ``flags`` marks the frame
as one-way, request, response or error-response (transports use
``request_id`` to correlate the latter three); ``length`` counts payload
bytes only.

The optional ``trace`` segment exists only when the :data:`TRACE_FLAG`
bit is set in ``flags``: one ``u8`` total-extension length, then a
versioned trace context (``u8`` extension version, ``u8``-prefixed
trace-id string, ``u8``-prefixed parent-span-id string).  It carries the
sender's causal-trace context across process boundaries so a
cross-process ``serve`` + ``dial`` run yields one connected trace tree;
frames without the bit are byte-identical to the pre-extension wire
format, so old captures decode unchanged.

Message payloads are packed field-by-field from each message class's
``FIELDS`` declaration — a table of ``(name, kind)`` pairs over a small
set of primitive kinds (fixed-width integers, IEEE-754 doubles,
length-prefixed strings/bytes, and ``(u32, f64)`` pair lists for close
sets).  The table is the single schema source: encoding, decoding, the
round-trip property tests and the microbenchmarks all derive from it,
so a message class cannot drift from its wire form.

Strictness guarantees (the contract :mod:`tests.test_net_codec` pins):

- encoding is a pure function of the message — byte-deterministic;
- :func:`decode_frame` on truncated, trailing-garbage, bad-magic,
  wrong-version or unknown-type input raises
  :class:`repro.errors.FrameError`;
- a frame whose payload violates its message schema raises
  :class:`repro.errors.CodecError`;
- declared lengths are capped (:data:`MAX_PAYLOAD_BYTES`) so a corrupt
  length field can never cause an unbounded allocation or a hang.
"""

from __future__ import annotations

import operator
import struct
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from repro.errors import CodecError, FrameError
from repro.netaddr import IPv4Address

__all__ = [
    "CODEC_SCHEMA_VERSION",
    "ERROR",
    "MAX_PAYLOAD_BYTES",
    "MESSAGE_TYPES",
    "ONEWAY",
    "REQUEST",
    "RESPONSE",
    "Bye",
    "CallAccept",
    "CallSetup",
    "CloseSetQuery",
    "CloseSetReply",
    "ErrorFrame",
    "Frame",
    "FrameDecoder",
    "Join",
    "JoinOk",
    "Keepalive",
    "KeepaliveAck",
    "Leave",
    "Media",
    "MediaFrame",
    "Message",
    "NodalPublish",
    "Ping",
    "Pong",
    "RelayOk",
    "RelaySetup",
    "Resolve",
    "ResolveOk",
    "TRACE_EXT_VERSION",
    "TRACE_FLAG",
    "decode_frame",
    "encode_frame",
]

#: Bump when the frame layout or any message schema changes; decoders
#: reject every other version.
CODEC_SCHEMA_VERSION = 1

#: Hard cap on a declared payload length — a corrupt length field must
#: never trigger an unbounded read or allocation.
MAX_PAYLOAD_BYTES = 1 << 20

_MAGIC = b"AS"
_HEADER = struct.Struct("!2sBBBII")

# -- frame flags --------------------------------------------------------------

ONEWAY = 0    #: fire-and-forget; no response expected
REQUEST = 1   #: expects a RESPONSE (or ERROR) with the same request_id
RESPONSE = 2  #: successful answer to a REQUEST
ERROR = 3     #: error answer to a REQUEST; payload is an ErrorFrame

#: High bit of the flags byte: a trace-context extension segment follows
#: the fixed header (see the module docstring).  Orthogonal to the base
#: flag value, which stays one of the four above.
TRACE_FLAG = 0x80

#: Version byte leading the trace-context extension; decoders reject
#: every other value (the extension is independently versioned so it can
#: evolve without a full codec-schema bump).
TRACE_EXT_VERSION = 1

_FLAGS = frozenset((ONEWAY, REQUEST, RESPONSE, ERROR))

# -- primitive field kinds ----------------------------------------------------

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I32 = struct.Struct("!i")
_F64 = struct.Struct("!d")
_PAIR = struct.Struct("!Id")


def _need(data: bytes, offset: int, count: int, what: str) -> None:
    if offset + count > len(data):
        raise CodecError(f"payload truncated reading {what}")


class _Kind:
    """One primitive wire kind: pack into a buffer / unpack at an offset."""

    __slots__ = ("name", "pack", "unpack")

    def __init__(self, name, pack, unpack) -> None:
        self.name = name
        self.pack = pack        # (out: List[bytes], value) -> None
        self.unpack = unpack    # (data, offset) -> (value, new_offset)


def _fixed_kind(name: str, fmt: struct.Struct, check=None) -> _Kind:
    def pack(out: List[bytes], value) -> None:
        if check is not None:
            check(value)
        try:
            out.append(fmt.pack(value))
        except (struct.error, TypeError) as exc:
            raise CodecError(f"cannot pack {name} value {value!r}") from exc

    def unpack(data: bytes, offset: int):
        _need(data, offset, fmt.size, name)
        return fmt.unpack_from(data, offset)[0], offset + fmt.size

    return _Kind(name, pack, unpack)


def _check_ip(value) -> None:
    if not isinstance(value, IPv4Address):
        raise CodecError(f"ip field needs an IPv4Address, got {type(value).__name__}")


def _pack_ip(out: List[bytes], value) -> None:
    _check_ip(value)
    out.append(_U32.pack(value.value))


def _unpack_ip(data: bytes, offset: int):
    _need(data, offset, 4, "ip")
    return IPv4Address(_U32.unpack_from(data, offset)[0]), offset + 4


def _pack_str(out: List[bytes], value) -> None:
    if not isinstance(value, str):
        raise CodecError(f"str field needs a str, got {type(value).__name__}")
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long for the wire ({len(raw)} bytes)")
    out.append(_U16.pack(len(raw)))
    out.append(raw)


def _unpack_str(data: bytes, offset: int):
    _need(data, offset, 2, "str length")
    size = _U16.unpack_from(data, offset)[0]
    offset += 2
    _need(data, offset, size, "str body")
    try:
        return bytes(data[offset:offset + size]).decode("utf-8"), offset + size
    except UnicodeDecodeError as exc:
        raise CodecError("string field is not valid UTF-8") from exc


def _pack_bytes(out: List[bytes], value) -> None:
    if not isinstance(value, (bytes, bytearray)):
        raise CodecError(f"bytes field needs bytes, got {type(value).__name__}")
    if len(value) > MAX_PAYLOAD_BYTES:
        raise CodecError(f"bytes field too long ({len(value)} bytes)")
    out.append(_U32.pack(len(value)))
    out.append(bytes(value))


def _unpack_bytes(data: bytes, offset: int):
    _need(data, offset, 4, "bytes length")
    size = _U32.unpack_from(data, offset)[0]
    offset += 4
    if size > MAX_PAYLOAD_BYTES:
        raise CodecError(f"bytes field declares {size} bytes (cap {MAX_PAYLOAD_BYTES})")
    _need(data, offset, size, "bytes body")
    return bytes(data[offset:offset + size]), offset + size


def _pack_pairs(out: List[bytes], value) -> None:
    try:
        pairs = [(int(c), float(r)) for c, r in value]
    except (TypeError, ValueError) as exc:
        raise CodecError("pairs field needs an iterable of (int, float)") from exc
    out.append(_U32.pack(len(pairs)))
    for cluster, rtt in pairs:
        if cluster < 0 or cluster > 0xFFFFFFFF:
            raise CodecError(f"pair cluster {cluster} out of u32 range")
        out.append(_PAIR.pack(cluster, rtt))


def _unpack_pairs(data: bytes, offset: int):
    _need(data, offset, 4, "pairs count")
    count = _U32.unpack_from(data, offset)[0]
    offset += 4
    if count * _PAIR.size > MAX_PAYLOAD_BYTES:
        raise CodecError(f"pairs field declares {count} entries")
    _need(data, offset, count * _PAIR.size, "pairs body")
    end = offset + count * _PAIR.size
    return tuple(_PAIR.iter_unpack(bytes(data[offset:end]))), end


def _check_unsigned(bits: int):
    top = (1 << bits) - 1

    def check(value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"u{bits} field needs an int, got {type(value).__name__}")
        if not 0 <= value <= top:
            raise CodecError(f"u{bits} value {value} out of range")

    return check


def _check_i32(value) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise CodecError(f"i32 field needs an int, got {type(value).__name__}")
    if not -(1 << 31) <= value < (1 << 31):
        raise CodecError(f"i32 value {value} out of range")


def _check_f64(value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise CodecError(f"f64 field needs a number, got {type(value).__name__}")


_CHECK_U8 = _check_unsigned(8)
_CHECK_U16 = _check_unsigned(16)
_CHECK_U32 = _check_unsigned(32)
_CHECK_U64 = _check_unsigned(64)

KINDS: Dict[str, _Kind] = {
    "u8": _fixed_kind("u8", _U8, _CHECK_U8),
    "u16": _fixed_kind("u16", _U16, _CHECK_U16),
    "u32": _fixed_kind("u32", _U32, _CHECK_U32),
    "u64": _fixed_kind("u64", _U64, _CHECK_U64),
    "i32": _fixed_kind("i32", _I32, _check_i32),
    "f64": _fixed_kind("f64", _F64, _check_f64),
    "ip": _Kind("ip", _pack_ip, _unpack_ip),
    "str": _Kind("str", _pack_str, _unpack_str),
    "bytes": _Kind("bytes", _pack_bytes, _unpack_bytes),
    "pairs": _Kind("pairs", _pack_pairs, _unpack_pairs),
}

# -- compiled per-message segment plans ---------------------------------------

#: Fixed-width kinds foldable into one combined struct per run, with
#: their format characters and value checks.  ``ip`` packs as a u32 of
#: the address value.
_FIXED_SEGMENT_KINDS = {
    "u8": ("B", _CHECK_U8),
    "u16": ("H", _CHECK_U16),
    "u32": ("I", _CHECK_U32),
    "u64": ("Q", _CHECK_U64),
    "i32": ("i", _check_i32),
    "f64": ("d", _check_f64),
    "ip": ("I", _check_ip),
}


def _compile_segments(fields: Tuple[Tuple[str, str], ...]):
    """Compile a FIELDS table into a segment plan.

    Consecutive fixed-width fields collapse into one precompiled
    ``struct.Struct`` — one pack/unpack call instead of one per field —
    while variable-length fields keep their per-kind codecs.  Segments
    are ``("fixed", struct, names, checks, ip_positions)`` (parallel
    tuples, with ``ip_positions`` indexing the IPv4 members needing
    value conversion) or ``("var", name, kind_codec)`` holding the
    :class:`_Kind` object itself — everything the hot path touches is
    resolved at compile time, not per call.
    """
    segments = []
    run: List[Tuple[str, str]] = []

    def flush() -> None:
        if not run:
            return
        fmt = struct.Struct("!" + "".join(_FIXED_SEGMENT_KINDS[kind][0] for _, kind in run))
        names = tuple(name for name, _ in run)
        checks = tuple(_FIXED_SEGMENT_KINDS[kind][1] for _, kind in run)
        ip_positions = tuple(
            index for index, (_, kind) in enumerate(run) if kind == "ip"
        )
        segments.append(("fixed", fmt, names, checks, ip_positions))
        run.clear()

    for name, kind in fields:
        if kind not in KINDS:
            raise ValueError(f"unknown wire kind {kind!r} for field {name!r}")
        if kind in _FIXED_SEGMENT_KINDS:
            run.append((name, kind))
        else:
            flush()
            segments.append(("var", name, KINDS[kind]))
    flush()
    return tuple(segments)


def _compile_pack(segments):
    """Compile a segment plan into a specialized ``pack_payload``.

    Each segment becomes a closure with its struct, checks, and field
    getters already bound; the common single-fixed-segment messages
    (Ping, Keepalive, CallSetup, ...) collapse to a single check+pack
    call with no intermediate list at all.
    """

    def fixed_step(fmt, names, checks, ip_positions):
        pack = fmt.pack

        if len(names) == 1:
            name, check = names[0], checks[0]
            if ip_positions:

                def step(message) -> bytes:
                    value = getattr(message, name)
                    check(value)
                    return pack(value.value)

            else:

                def step(message) -> bytes:
                    value = getattr(message, name)
                    check(value)
                    return pack(value)

            return step

        getter = operator.attrgetter(*names)

        if ip_positions:
            # A second getter reaches straight through to the packed
            # ``.value`` ints; the checks above guarantee it resolves.
            wire_getter = operator.attrgetter(
                *(
                    f"{name}.value" if position in ip_positions else name
                    for position, name in enumerate(names)
                )
            )

            def step(message) -> bytes:
                for check, value in zip(checks, getter(message)):
                    check(value)
                return pack(*wire_getter(message))

        else:

            def step(message) -> bytes:
                values = getter(message)
                for check, value in zip(checks, values):
                    check(value)
                return pack(*values)

        return step

    steps = []
    for segment in segments:
        if segment[0] == "fixed":
            steps.append(fixed_step(*segment[1:]))
        else:
            _, name, kind = segment
            kind_pack = kind.pack

            def step(message, name=name, kind_pack=kind_pack) -> bytes:
                out: List[bytes] = []
                kind_pack(out, getattr(message, name))
                return b"".join(out)

            steps.append(step)

    if len(steps) == 1:
        return steps[0]
    if len(steps) == 2:
        first, second = steps

        def pack_payload(self) -> bytes:
            return first(self) + second(self)

        return pack_payload

    def pack_payload(self) -> bytes:
        return b"".join([step(self) for step in steps])

    return pack_payload


def _compile_unpack(segments, cls):
    """Compile a segment plan into a specialized ``unpack_payload``.

    ``_register`` verifies the wire schema matches the dataclass field
    order, so decoded values feed the constructor positionally — no
    kwargs dict on the hot path.  The all-fixed messages (Ping, Media
    envelope-free frames, ...) collapse to one exact-length check and
    one combined struct unpack.
    """
    if len(segments) == 1 and segments[0][0] == "fixed":
        _, fmt, names, checks, ip_positions = segments[0]
        size = fmt.size
        unpack = fmt.unpack
        label = cls.__name__

        if ip_positions:

            def unpack_payload(data) -> "Message":
                if len(data) != size:
                    raise CodecError(
                        f"{label} payload is {len(data)} bytes, expected {size}"
                    )
                values = list(unpack(data))
                for position in ip_positions:
                    values[position] = IPv4Address(values[position])
                return cls(*values)

        else:

            def unpack_payload(data) -> "Message":
                if len(data) != size:
                    raise CodecError(
                        f"{label} payload is {len(data)} bytes, expected {size}"
                    )
                return cls(*unpack(data))

        return staticmethod(unpack_payload)

    plan = segments
    label = cls.__name__

    def unpack_payload(data) -> "Message":
        offset = 0
        values: List = []
        for segment in plan:
            if segment[0] == "fixed":
                _, fmt, _names, _checks, ip_positions = segment
                _need(data, offset, fmt.size, f"{label} fixed fields")
                unpacked = fmt.unpack_from(data, offset)
                if ip_positions:
                    unpacked = list(unpacked)
                    for position in ip_positions:
                        unpacked[position] = IPv4Address(unpacked[position])
                values.extend(unpacked)
                offset += fmt.size
            else:
                value, offset = segment[2].unpack(data, offset)
                values.append(value)
        if offset != len(data):
            raise CodecError(
                f"{label} payload has {len(data) - offset} trailing bytes"
            )
        return cls(*values)

    return staticmethod(unpack_payload)

# -- message classes ----------------------------------------------------------

#: wire type byte -> message class (filled by ``_register``).
MESSAGE_TYPES: Dict[int, type] = {}


class Message:
    """Base for wire messages; subclasses declare ``TYPE`` and ``FIELDS``.

    The payload hot path runs over the class's compiled segment plan
    (:func:`_compile_segments`): every run of fixed-width fields is one
    combined struct call.  Per-field value checks still run before each
    combined pack, so the error contract of the per-kind reference path
    is preserved exactly.
    """

    TYPE: int = -1
    FIELDS: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def _segments(cls):
        """The compiled segment plan (built once per class, cached)."""
        plan = cls.__dict__.get("_SEGMENT_PLAN")
        if plan is None:
            plan = _compile_segments(cls.FIELDS)
            cls._SEGMENT_PLAN = plan
        return plan

    def pack_payload(self) -> bytes:
        # Registered classes get a specialized override compiled by
        # ``_register``; this generic fallback serves unregistered ones.
        return _compile_pack(self._segments())(self)

    @classmethod
    def unpack_payload(cls, data) -> "Message":
        """Decode a payload (``bytes`` or ``memoryview`` — zero-copy)."""
        try:
            plan = cls._SEGMENT_PLAN
        except AttributeError:
            plan = cls._segments()
        offset = 0
        values = {}
        for segment in plan:
            if segment[0] == "fixed":
                _, fmt, names, checks, ip_positions = segment
                _need(data, offset, fmt.size, f"{cls.__name__} fixed fields")
                unpacked = fmt.unpack_from(data, offset)
                for name, value in zip(names, unpacked):
                    values[name] = value
                for position in ip_positions:
                    values[names[position]] = IPv4Address(unpacked[position])
                offset += fmt.size
            else:
                _, name, kind = segment
                values[name], offset = kind.unpack(data, offset)
        if offset != len(data):
            raise CodecError(
                f"{cls.__name__} payload has {len(data) - offset} trailing bytes"
            )
        return cls(**values)


def _register(cls):
    """Class decorator: enter a message into the wire-type registry."""
    if cls.TYPE in MESSAGE_TYPES:
        raise ValueError(f"duplicate wire type {cls.TYPE:#x}")
    declared = tuple(f.name for f in dataclass_fields(cls))
    schema = tuple(name for name, _ in cls.FIELDS)
    if declared != schema:
        raise ValueError(
            f"{cls.__name__}: dataclass fields {declared} != wire schema {schema}"
        )
    cls._SEGMENT_PLAN = _compile_segments(cls.FIELDS)
    cls.pack_payload = _compile_pack(cls._SEGMENT_PLAN)
    cls.unpack_payload = _compile_unpack(cls._SEGMENT_PLAN, cls)
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


#: Join roles on the wire.
ROLE_HOST = 0
ROLE_SURROGATE = 1


@_register
@dataclass(frozen=True)
class Join(Message):
    """Bootstrap registration (§6.1): a node enters the overlay.

    ``wire_addr`` is the node's advertised transport address (the
    bootstrap doubles as the overlay's directory); surrogates join with
    ``role=ROLE_SURROGATE`` and the cluster they serve, hosts with
    ``role=ROLE_HOST`` and ``cluster=-1`` (the bootstrap assigns one).
    """

    TYPE = 0x01
    FIELDS = (
        ("ip", "ip"),
        ("role", "u8"),
        ("cluster", "i32"),
        ("wire_addr", "str"),
    )

    ip: IPv4Address
    role: int
    cluster: int
    wire_addr: str


@_register
@dataclass(frozen=True)
class JoinOk(Message):
    """Bootstrap's answer: assigned cluster and its serving surrogate."""

    TYPE = 0x02
    FIELDS = (
        ("cluster", "i32"),
        ("surrogate_ip", "ip"),
        ("surrogate_addr", "str"),
    )

    cluster: int
    surrogate_ip: IPv4Address
    surrogate_addr: str


@_register
@dataclass(frozen=True)
class Resolve(Message):
    """Directory lookup: which wire address serves this overlay IP?"""

    TYPE = 0x03
    FIELDS = (("ip", "ip"),)

    ip: IPv4Address


@_register
@dataclass(frozen=True)
class ResolveOk(Message):
    TYPE = 0x04
    FIELDS = (("ip", "ip"), ("found", "u8"), ("addr", "str"))

    ip: IPv4Address
    found: int
    addr: str


@_register
@dataclass(frozen=True)
class Ping(Message):
    """Direct-path probe (Fig. 8 step 1)."""

    TYPE = 0x05
    FIELDS = (("token", "u32"),)

    token: int


@_register
@dataclass(frozen=True)
class Pong(Message):
    TYPE = 0x06
    FIELDS = (("token", "u32"),)

    token: int


@_register
@dataclass(frozen=True)
class CloseSetQuery(Message):
    """Close-cluster-set request — to a surrogate (own leg) or to the
    callee, which relays it to *its* surrogate (peer leg, Fig. 8)."""

    TYPE = 0x07
    FIELDS = (("cluster", "i32"), ("requester_ip", "ip"))

    cluster: int          # -1 = "the cluster you serve / belong to"
    requester_ip: IPv4Address


@_register
@dataclass(frozen=True)
class CloseSetReply(Message):
    """A close cluster set on the wire: (cluster index, RTT ms) pairs."""

    TYPE = 0x08
    FIELDS = (("owner", "i32"), ("entries", "pairs"))

    owner: int
    entries: Tuple[Tuple[int, float], ...]


@_register
@dataclass(frozen=True)
class NodalPublish(Message):
    """Nodal-information publish to the cluster surrogate (§6.1)."""

    TYPE = 0x09
    FIELDS = (
        ("ip", "ip"),
        ("bandwidth_kbps", "f64"),
        ("uptime_hours", "f64"),
        ("cpu_score", "f64"),
    )

    ip: IPv4Address
    bandwidth_kbps: float
    uptime_hours: float
    cpu_score: float


@_register
@dataclass(frozen=True)
class CallSetup(Message):
    """Caller → callee: a call is starting on the given path."""

    TYPE = 0x0A
    FIELDS = (("call_id", "u64"), ("caller_ip", "ip"), ("callee_ip", "ip"))

    call_id: int
    caller_ip: IPv4Address
    callee_ip: IPv4Address


@_register
@dataclass(frozen=True)
class CallAccept(Message):
    TYPE = 0x0B
    FIELDS = (("call_id", "u64"), ("accept", "u8"))

    call_id: int
    accept: int


@_register
@dataclass(frozen=True)
class RelaySetup(Message):
    """Caller → chosen relay host: carry this call's media."""

    TYPE = 0x0C
    FIELDS = (("call_id", "u64"), ("caller_ip", "ip"), ("callee_ip", "ip"))

    call_id: int
    caller_ip: IPv4Address
    callee_ip: IPv4Address


@_register
@dataclass(frozen=True)
class RelayOk(Message):
    TYPE = 0x0D
    FIELDS = (("call_id", "u64"),)

    call_id: int


@_register
@dataclass(frozen=True)
class Media(Message):
    """One media packet; relays forward it toward the callee."""

    TYPE = 0x0E
    FIELDS = (("call_id", "u64"), ("seq", "u32"), ("payload", "bytes"))

    call_id: int
    seq: int
    payload: bytes


@_register
@dataclass(frozen=True)
class MediaFrame(Message):
    """One timestamped codec frame of real media (the `repro.media` plane).

    Unlike the abstract :class:`Media` packet, a frame carries its send
    timestamp (sim-time ms) and the wire id of the codec that produced
    it, so the receiver can reconstruct a playout-scoreable trace."""

    TYPE = 0x14
    FIELDS = (
        ("call_id", "u64"),
        ("seq", "u32"),
        ("timestamp_ms", "f64"),
        ("codec", "u8"),
        ("payload", "bytes"),
    )

    call_id: int
    seq: int
    timestamp_ms: float
    codec: int
    payload: bytes


@_register
@dataclass(frozen=True)
class Keepalive(Message):
    """In-call liveness probe to the relay (drives §6 backup failover)."""

    TYPE = 0x0F
    FIELDS = (("call_id", "u64"), ("seq", "u32"))

    call_id: int
    seq: int


@_register
@dataclass(frozen=True)
class KeepaliveAck(Message):
    TYPE = 0x10
    FIELDS = (("call_id", "u64"), ("seq", "u32"))

    call_id: int
    seq: int


@_register
@dataclass(frozen=True)
class Bye(Message):
    """Call teardown to the callee and any relay."""

    TYPE = 0x11
    FIELDS = (("call_id", "u64"), ("reason", "str"))

    call_id: int
    reason: str


@_register
@dataclass(frozen=True)
class Leave(Message):
    """Bootstrap deregistration (oneway): a node exits the overlay.

    Best-effort — a crashed node never sends one, so the directory's
    TTL sweep remains the authoritative garbage collector."""

    TYPE = 0x13
    FIELDS = (("ip", "ip"),)

    ip: IPv4Address


@_register
@dataclass(frozen=True)
class ErrorFrame(Message):
    """Error response payload (flags=ERROR frames carry exactly this)."""

    TYPE = 0x12
    FIELDS = (("code", "u16"), ("detail", "str"))

    code: int
    detail: str


#: Error codes carried by :class:`ErrorFrame`.
ERR_UNSUPPORTED = 1   #: receiver has no handler for the message type
ERR_INTERNAL = 2      #: handler raised
ERR_NOT_SERVING = 3   #: role cannot satisfy the request (e.g. not joined)


# -- frame encode / decode ----------------------------------------------------


@dataclass(frozen=True)
class Frame:
    """A decoded wire frame: the message plus its envelope.

    ``trace_id``/``parent_span`` carry the sender's causal-trace context
    when the frame had a trace extension; ``None`` otherwise.
    """

    message: Message
    flags: int = ONEWAY
    request_id: int = 0
    trace_id: "Optional[str]" = None
    parent_span: "Optional[str]" = None


def _encode_trace_ext(trace) -> bytes:
    """Pack a ``(trace_id, parent_span_id)`` context into its segment."""
    trace_id, parent_span = trace
    if not isinstance(trace_id, str) or not trace_id:
        raise CodecError("trace context needs a non-empty trace id string")
    tid = trace_id.encode("utf-8")
    sid = (parent_span or "").encode("utf-8")
    if len(tid) > 0xFF or len(sid) > 0xFF:
        raise CodecError("trace context ids too long for the wire")
    ext = bytes((TRACE_EXT_VERSION, len(tid))) + tid + bytes((len(sid),)) + sid
    if len(ext) > 0xFF:
        raise CodecError(f"trace extension too long ({len(ext)} bytes)")
    return bytes((len(ext),)) + ext


def _parse_trace_ext(ext: bytes) -> Tuple[str, "Optional[str]"]:
    """Unpack a complete extension body (version + two prefixed strings)."""
    if len(ext) < 2:
        raise FrameError(f"trace extension truncated ({len(ext)} bytes)")
    version = ext[0]
    if version != TRACE_EXT_VERSION:
        raise FrameError(f"unsupported trace extension version {version}")
    tid_len = ext[1]
    pos = 2
    if pos + tid_len + 1 > len(ext):
        raise FrameError("trace extension truncated inside trace id")
    if not tid_len:
        raise FrameError("trace extension has an empty trace id")
    try:
        trace_id = bytes(ext[pos:pos + tid_len]).decode("utf-8")
        pos += tid_len
        sid_len = ext[pos]
        pos += 1
        if pos + sid_len != len(ext):
            raise FrameError("trace extension length mismatch")
        parent_span = (
            bytes(ext[pos:pos + sid_len]).decode("utf-8") if sid_len else None
        )
    except UnicodeDecodeError as exc:
        raise FrameError("trace extension ids are not valid UTF-8") from exc
    return trace_id, parent_span


def encode_frame(
    message: Message,
    flags: int = ONEWAY,
    request_id: int = 0,
    trace: "Optional[Tuple[str, Optional[str]]]" = None,
) -> bytes:
    """Encode one message into its full wire frame (deterministic).

    ``trace`` optionally attaches a ``(trace_id, parent_span_id)``
    causal context; the frame then carries the :data:`TRACE_FLAG` bit
    and the versioned trace segment.  Without it the bytes are identical
    to the pre-extension wire format.
    """
    if type(message).TYPE not in MESSAGE_TYPES:
        raise CodecError(f"unregistered message type {type(message).__name__}")
    if flags not in _FLAGS:
        raise CodecError(f"invalid frame flags {flags!r}")
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise CodecError(f"request_id {request_id} out of u32 range")
    payload = message.pack_payload()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise CodecError(f"payload too large ({len(payload)} bytes)")
    if trace is None:
        header = _HEADER.pack(
            _MAGIC, CODEC_SCHEMA_VERSION, type(message).TYPE, flags,
            request_id, len(payload),
        )
        return header + payload
    header = _HEADER.pack(
        _MAGIC, CODEC_SCHEMA_VERSION, type(message).TYPE, flags | TRACE_FLAG,
        request_id, len(payload),
    )
    return header + _encode_trace_ext(trace) + payload


def _decode_header(data: bytes, offset: int = 0) -> Tuple[int, int, int, int, bool]:
    """Validate a header at ``offset``.

    Returns ``(type, base_flags, req_id, payload_length, has_trace)``;
    ``has_trace`` means a trace extension segment follows the fixed
    header (its length byte is *not* included in ``payload_length``).
    Raises :class:`FrameError` on anything but a well-formed current-
    version header (including a header shorter than the fixed size).
    """
    if len(data) - offset < _HEADER.size:
        raise FrameError(
            f"truncated frame: {len(data) - offset} bytes, "
            f"header needs {_HEADER.size}"
        )
    magic, version, msg_type, flags, request_id, length = _HEADER.unpack_from(
        data, offset
    )
    if magic != _MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if version != CODEC_SCHEMA_VERSION:
        raise FrameError(
            f"unsupported codec schema {version} (expected {CODEC_SCHEMA_VERSION})"
        )
    if msg_type not in MESSAGE_TYPES:
        raise FrameError(f"unknown message type {msg_type:#x}")
    has_trace = bool(flags & TRACE_FLAG)
    base_flags = flags & ~TRACE_FLAG
    if base_flags not in _FLAGS:
        raise FrameError(f"unknown frame flags {flags:#x}")
    if length > MAX_PAYLOAD_BYTES:
        raise FrameError(f"declared payload {length} exceeds cap {MAX_PAYLOAD_BYTES}")
    return msg_type, base_flags, request_id, length, has_trace


def decode_frame(data: bytes) -> Frame:
    """Strictly decode exactly one frame from ``data``.

    The buffer must hold one complete frame and nothing else: truncation
    and trailing garbage both raise :class:`FrameError`; payload-schema
    violations raise :class:`CodecError`.
    """
    msg_type, flags, request_id, length, has_trace = _decode_header(data)
    body_start = _HEADER.size
    trace_id = parent_span = None
    if has_trace:
        if len(data) < _HEADER.size + 1:
            raise FrameError("truncated frame: trace extension length missing")
        ext_len = data[_HEADER.size]
        body_start = _HEADER.size + 1 + ext_len
        if len(data) < body_start:
            raise FrameError(
                f"truncated frame: trace extension declares {ext_len} bytes"
            )
        trace_id, parent_span = _parse_trace_ext(
            data[_HEADER.size + 1:body_start]
        )
    body_end = body_start + length
    if len(data) < body_end:
        raise FrameError(
            f"truncated frame: payload declares {length} bytes, "
            f"{len(data) - body_start} present"
        )
    if len(data) > body_end:
        raise FrameError(f"{len(data) - body_end} trailing bytes after frame")
    # One-shot decode: a plain bytes slice beats a memoryview here (the
    # view's create/release overhead outweighs the single small copy);
    # the streaming FrameDecoder is where views pay off.
    message = MESSAGE_TYPES[msg_type].unpack_payload(data[body_start:body_end])
    return Frame(
        message=message, flags=flags, request_id=request_id,
        trace_id=trace_id, parent_span=parent_span,
    )


class FrameDecoder:
    """Incremental frame reassembly for stream transports.

    Feed arbitrary byte chunks; complete frames come back in order.  A
    partial frame is buffered until its remainder arrives (that is the
    one place "truncated" is not an error — the stream may simply not
    have delivered the rest yet); corrupt headers and payloads raise
    immediately, poisoning the decoder (a stream that desynchronized
    cannot be trusted again).
    """

    __slots__ = ("_buffer", "_poisoned")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Add bytes; return every frame completed by them.

        The loop decodes straight out of a ``memoryview`` over the
        buffer — no per-frame copy of the pending bytes; consumed frames
        are trimmed once at the end (views are released first, since a
        ``bytearray`` cannot shrink while exports exist).
        """
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier corrupt frame")
        self._buffer.extend(data)
        frames: List[Frame] = []
        buffer = self._buffer
        consumed = 0
        view = memoryview(buffer)
        try:
            while len(buffer) - consumed >= _HEADER.size:
                try:
                    msg_type, flags, request_id, length, has_trace = _decode_header(
                        view, consumed
                    )
                except FrameError:
                    self._poisoned = True
                    raise
                body_start = consumed + _HEADER.size
                trace_id = parent_span = None
                if has_trace:
                    if len(buffer) < body_start + 1:
                        break  # the extension length byte is still in flight
                    ext_len = buffer[body_start]
                    body_start += 1 + ext_len
                end = body_start + length
                if len(buffer) < end:
                    break
                if has_trace:
                    ext = view[consumed + _HEADER.size + 1:body_start]
                    try:
                        trace_id, parent_span = _parse_trace_ext(ext)
                    except FrameError:
                        self._poisoned = True
                        raise
                    finally:
                        ext.release()
                payload = view[body_start:end]
                try:
                    message = MESSAGE_TYPES[msg_type].unpack_payload(payload)
                except (FrameError, CodecError):
                    self._poisoned = True
                    raise
                finally:
                    payload.release()
                frames.append(
                    Frame(
                        message=message, flags=flags, request_id=request_id,
                        trace_id=trace_id, parent_span=parent_span,
                    )
                )
                consumed = end
        finally:
            view.release()
            if consumed:
                del buffer[:consumed]
        return frames
