"""``repro.net`` — the wire layer: binary codec and pluggable transports.

Everything the simulated runtime exchanges as in-memory callbacks exists
here as real bytes on a wire:

- :mod:`repro.net.codec` — a versioned, length-prefixed binary encoding
  of every ASAP protocol message (JOIN, CLOSE_SET_QUERY/REPLY, CALL_SETUP,
  RELAY_SETUP, MEDIA, KEEPALIVE, error frames, …) with strict validation:
  truncated or corrupt frames raise :class:`repro.errors.FrameError` /
  :class:`repro.errors.CodecError`, never hang;
- :mod:`repro.net.transport` — the message-transport interface service
  daemons are written against;
- :mod:`repro.net.loopback` — an in-process transport that drives the
  same codec deterministically under a virtual clock (byte-identical
  runs, CI-friendly);
- :mod:`repro.net.sockets` — real asyncio TCP on localhost or anywhere;
- :mod:`repro.net.faulty` — a seeded drop/latency-injecting wrapper
  around any transport (the fault-injection story of :mod:`repro.faults`
  extended to the wire).
"""

from repro.net.codec import (
    CODEC_SCHEMA_VERSION,
    ERROR,
    MESSAGE_TYPES,
    ONEWAY,
    REQUEST,
    RESPONSE,
    Bye,
    CallAccept,
    CallSetup,
    CloseSetQuery,
    CloseSetReply,
    ErrorFrame,
    Frame,
    FrameDecoder,
    Join,
    JoinOk,
    Keepalive,
    KeepaliveAck,
    Leave,
    Media,
    MediaFrame,
    NodalPublish,
    Ping,
    Pong,
    RelayOk,
    RelaySetup,
    Resolve,
    ResolveOk,
    decode_frame,
    encode_frame,
)
from repro.net.faulty import FaultyTransport, ShapedTransport
from repro.net.loopback import LoopbackHub, LoopbackTransport
from repro.net.sockets import TcpTransport
from repro.net.transport import Transport

__all__ = [
    "CODEC_SCHEMA_VERSION",
    "ERROR",
    "MESSAGE_TYPES",
    "ONEWAY",
    "REQUEST",
    "RESPONSE",
    "Bye",
    "CallAccept",
    "CallSetup",
    "CloseSetQuery",
    "CloseSetReply",
    "ErrorFrame",
    "FaultyTransport",
    "Frame",
    "FrameDecoder",
    "Join",
    "JoinOk",
    "Keepalive",
    "KeepaliveAck",
    "Leave",
    "LoopbackHub",
    "LoopbackTransport",
    "Media",
    "MediaFrame",
    "NodalPublish",
    "Ping",
    "Pong",
    "RelayOk",
    "RelaySetup",
    "Resolve",
    "ResolveOk",
    "ShapedTransport",
    "TcpTransport",
    "Transport",
    "decode_frame",
    "encode_frame",
]
