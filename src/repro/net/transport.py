"""The message-transport interface service daemons are written against.

A transport moves :class:`repro.net.codec.Message` objects between
addressed endpoints, always through the wire codec (every delivery is an
encode → bytes → decode round trip, whichever transport carries the
bytes).  Two implementations ship:

- :class:`repro.net.loopback.LoopbackTransport` — in-process, virtual
  clock, deterministic (same program + same seed → byte-identical runs);
- :class:`repro.net.sockets.TcpTransport` — real asyncio TCP sockets.

plus :class:`repro.net.faulty.FaultyTransport`, a seeded drop/latency
wrapper around either.

Handlers are async callables ``handler(sender_addr, frame) -> Message |
None``; for ``REQUEST`` frames the returned message is sent back as the
response (``None`` or a raised error becomes an ``ERROR`` frame).  Time
always comes from :meth:`Transport.now_ms` — the loopback's virtual
clock or the socket transport's monotonic clock — never from
``time.time()``, so instrumented daemons are clock-agnostic.
"""

from __future__ import annotations

import abc
from typing import Awaitable, Callable, Optional, Tuple

from repro.net.codec import Frame, Message

#: A causal-trace context attached to an outbound request:
#: ``(trace_id, parent_span_id)`` — see the codec's trace extension.
TraceContext = Tuple[str, Optional[str]]

__all__ = ["Handler", "TraceContext", "Transport"]

#: An endpoint's inbound dispatch: (sender address, frame) -> response.
Handler = Callable[[str, Frame], Awaitable[Optional[Message]]]


class Transport(abc.ABC):
    """One endpoint on a message-moving substrate."""

    @property
    @abc.abstractmethod
    def local_address(self) -> str:
        """The address peers reach this endpoint at."""

    @abc.abstractmethod
    def bind(self, handler: Handler) -> None:
        """Attach the inbound handler (before :meth:`start`)."""

    @abc.abstractmethod
    async def start(self) -> None:
        """Begin accepting inbound messages."""

    @abc.abstractmethod
    async def close(self) -> None:
        """Stop the endpoint and release its resources."""

    @abc.abstractmethod
    async def send(self, addr: str, message: Message) -> None:
        """Fire-and-forget delivery (silently lost on a dead peer)."""

    @abc.abstractmethod
    async def request(
        self,
        addr: str,
        message: Message,
        timeout_ms: float,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        """Round-trip exchange; the response message, or raises.

        :class:`repro.errors.TransportTimeout` when no response lands
        within ``timeout_ms``; :class:`repro.errors.RemoteError` when the
        peer answered with an error frame.  ``trace`` optionally rides
        the request frame as the codec's trace extension, so the peer's
        handler spans join the caller's trace.
        """

    @abc.abstractmethod
    def now_ms(self) -> float:
        """This transport's clock (virtual or monotonic), in ms."""

    @abc.abstractmethod
    async def sleep_ms(self, ms: float) -> None:
        """Sleep on this transport's clock."""

    @abc.abstractmethod
    async def gather(self, *coros):
        """Run coroutines concurrently under this transport's scheduler.

        Service code must use this instead of ``asyncio.gather`` so the
        loopback's virtual clock can account for every waiter; on the
        socket transport it is plain ``asyncio.gather``.
        """
