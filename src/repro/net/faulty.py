"""Wire-level transport wrappers: fault injection and latency shaping.

:class:`FaultyTransport` wraps any :class:`repro.net.transport.Transport`
and, from a seeded RNG, drops or delays outbound messages before they
reach the inner transport.  It extends the :mod:`repro.faults`
philosophy — deterministic, seed-reproducible failure schedules — down
to the byte-moving layer: the same seed produces the same drop pattern
on the loopback's virtual clock or on real sockets.

A dropped *request* behaves exactly like a silent peer: the wrapper
sleeps out the caller's timeout on the inner transport's clock and
raises :class:`repro.errors.TransportTimeout`, so retry/backoff policies
exercise their real code path.

:class:`ShapedTransport` injects per-destination latency so real
localhost sockets exhibit the scenario's RTTs: without it every
localhost ping measures ~0 ms, the direct path always beats the latency
threshold, and the relay machinery never runs.  (The loopback transport
does not need it — its hub models latency natively under virtual time.)
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.errors import TransportTimeout
from repro.net.codec import Message
from repro.net.transport import Handler, TraceContext, Transport

__all__ = ["FaultyTransport", "ShapedTransport"]


class FaultyTransport(Transport):
    """Drop/delay wrapper around another transport.

    ``drop_rate`` is the probability an outbound send or request is
    lost; ``extra_latency_ms`` (+ uniform ``jitter_ms``) delays every
    surviving outbound message before it enters the inner transport.
    Inbound traffic is untouched — wrap both ends to impair both
    directions.
    """

    def __init__(
        self,
        inner: Transport,
        seed: int = 0,
        drop_rate: float = 0.0,
        extra_latency_ms: float = 0.0,
        jitter_ms: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self._inner = inner
        self._rng = random.Random(seed)
        self._drop_rate = drop_rate
        self._extra_latency_ms = extra_latency_ms
        self._jitter_ms = jitter_ms
        self.dropped = 0

    @property
    def inner(self) -> Transport:
        return self._inner

    @property
    def local_address(self) -> str:
        return self._inner.local_address

    def bind(self, handler: Handler) -> None:
        self._inner.bind(handler)

    async def start(self) -> None:
        await self._inner.start()

    async def close(self) -> None:
        await self._inner.close()

    def now_ms(self) -> float:
        return self._inner.now_ms()

    async def sleep_ms(self, ms: float) -> None:
        await self._inner.sleep_ms(ms)

    async def gather(self, *coros):
        return await self._inner.gather(*coros)

    def _drops(self) -> bool:
        return self._drop_rate > 0.0 and self._rng.random() < self._drop_rate

    async def _delay(self) -> None:
        delay = self._extra_latency_ms
        if self._jitter_ms > 0.0:
            delay += self._rng.uniform(0.0, self._jitter_ms)
        if delay > 0.0:
            await self._inner.sleep_ms(delay)

    async def send(self, addr: str, message: Message) -> None:
        if self._drops():
            self.dropped += 1
            return
        await self._delay()
        await self._inner.send(addr, message)

    async def request(
        self,
        addr: str,
        message: Message,
        timeout_ms: float,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        if self._drops():
            self.dropped += 1
            await self._inner.sleep_ms(timeout_ms)
            raise TransportTimeout(
                f"request to {addr} dropped by fault injection "
                f"(timeout {timeout_ms} ms)"
            )
        await self._delay()
        return await self._inner.request(addr, message, timeout_ms, trace=trace)


class ShapedTransport(Transport):
    """Per-destination latency injection for real sockets.

    Each *request* to a registered destination is held back by that
    destination's RTT before entering the inner transport, so the round
    trip observed by the caller matches the scenario's ground truth.
    One-way sends and unregistered destinations pass through unshaped
    (directory and control traffic stays fast; only measured paths need
    realism).
    """

    def __init__(
        self,
        inner: Transport,
        rtt_ms_of: Optional[Callable[[str], Optional[float]]] = None,
    ) -> None:
        self._inner = inner
        self._rtt_ms_of = rtt_ms_of
        self._rtt_table: Dict[str, float] = {}

    @property
    def inner(self) -> Transport:
        return self._inner

    def set_rtt_ms(self, addr: str, rtt_ms: float) -> None:
        """Register the RTT to one destination address."""
        self._rtt_table[addr] = rtt_ms

    def _rtt(self, addr: str) -> Optional[float]:
        if addr in self._rtt_table:
            return self._rtt_table[addr]
        if self._rtt_ms_of is not None:
            return self._rtt_ms_of(addr)
        return None

    @property
    def local_address(self) -> str:
        return self._inner.local_address

    def bind(self, handler: Handler) -> None:
        self._inner.bind(handler)

    async def start(self) -> None:
        await self._inner.start()

    async def close(self) -> None:
        await self._inner.close()

    def now_ms(self) -> float:
        return self._inner.now_ms()

    async def sleep_ms(self, ms: float) -> None:
        await self._inner.sleep_ms(ms)

    async def gather(self, *coros):
        return await self._inner.gather(*coros)

    async def send(self, addr: str, message: Message) -> None:
        await self._inner.send(addr, message)

    async def request(
        self,
        addr: str,
        message: Message,
        timeout_ms: float,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        rtt = self._rtt(addr)
        if rtt is not None and rtt > 0.0:
            await self._inner.sleep_ms(rtt)
        return await self._inner.request(addr, message, timeout_ms, trace=trace)
