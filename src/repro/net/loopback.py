"""In-process loopback transport: the wire stack under a virtual clock.

The loopback carries exactly the same bytes as the socket transport —
every delivery is ``encode_frame`` → bytes → ``decode_frame`` — but
moves them through a deterministic discrete-event scheduler instead of
an operating-system socket:

- **virtual time.**  :class:`LoopbackHub` owns a simulated clock (like
  :class:`repro.sim.engine.Simulator`); deliveries take the configured
  one-way latency, timeouts fire at exact virtual instants, and
  ``sleep_ms`` parks on the virtual clock.  A 20-second call completes
  in milliseconds of wall time.
- **determinism.**  Events execute in (time, insertion order); parked
  coroutines resume through asyncio's FIFO ready queue; no wall clock,
  PID or unseeded randomness is ever consulted.  Two runs of the same
  program therefore interleave identically — the service-layer CI diffs
  ``traces.jsonl`` bytes across same-seed demo runs to hold this.

The dispatcher advances virtual time only when every accounted coroutine
is *parked* (awaiting a loopback future) — the classic conservative
discrete-event rule.  Service code running over the loopback must
therefore only suspend through transport primitives (``request``,
``sleep_ms``, ``gather``); a bare ``asyncio.sleep`` would deadlock the
virtual clock, exactly like calling ``time.sleep`` inside a simulator
event.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import RemoteError, ServiceError, TransportTimeout
from repro.net.codec import (
    ERROR,
    ONEWAY,
    REQUEST,
    RESPONSE,
    ErrorFrame,
    Frame,
    Message,
    decode_frame,
    encode_frame,
)
from repro.net.codec import ERR_INTERNAL, ERR_UNSUPPORTED
from repro.net.transport import Handler, TraceContext, Transport

__all__ = ["LoopbackHub", "LoopbackTransport"]

#: One-way delay used when the hub has no latency function configured.
DEFAULT_RTT_MS = 2.0


class LoopbackHub:
    """Shared virtual wire all :class:`LoopbackTransport` endpoints ride.

    ``latency_ms_fn(src_addr, dst_addr)`` supplies the round-trip time
    between two endpoint addresses (``None`` = unreachable, the message
    drops); without one every pair is :data:`DEFAULT_RTT_MS` apart.
    """

    def __init__(
        self,
        latency_ms_fn: Optional[Callable[[str, str], Optional[float]]] = None,
    ) -> None:
        self._latency_ms_fn = latency_ms_fn
        self._endpoints: Dict[str, "LoopbackTransport"] = {}
        self._now_ms = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._busy = 0
        self._idle: Optional[asyncio.Event] = None
        self.deliveries = 0
        self.drops = 0

    # -- clock -------------------------------------------------------------

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def rtt_ms(self, src: str, dst: str) -> Optional[float]:
        """Round-trip time between two addresses (None = no route)."""
        if self._latency_ms_fn is None:
            return DEFAULT_RTT_MS
        return self._latency_ms_fn(src, dst)

    # -- endpoint registry --------------------------------------------------

    def register(self, transport: "LoopbackTransport") -> None:
        if transport.local_address in self._endpoints:
            raise ServiceError(
                f"loopback address {transport.local_address!r} already bound"
            )
        self._endpoints[transport.local_address] = transport

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    # -- scheduling core ----------------------------------------------------
    #
    # Accounting invariant: ``_busy`` counts coroutine contexts that are
    # runnable or running.  Spawned tasks are +1 for their lifetime; a
    # ``_park`` (await on a hub future) is -1 and the matching ``_unpark``
    # +1, so a parked task nets zero.  The dispatcher advances virtual
    # time only at ``_busy == 0`` — when nothing can possibly run until
    # a scheduled event fires.

    def _at(self, delay_ms: float, action: Callable[[], None]) -> None:
        heapq.heappush(
            self._heap, (self._now_ms + max(delay_ms, 0.0), next(self._seq), action)
        )

    def _spawn(self, coro: Awaitable) -> asyncio.Task:
        self._busy += 1
        if self._idle is not None:
            self._idle.clear()

        async def runner():
            try:
                return await coro
            finally:
                self._busy -= 1
                if self._busy == 0 and self._idle is not None:
                    self._idle.set()

        return asyncio.get_running_loop().create_task(runner())

    async def _park(self, future: asyncio.Future):
        self._busy -= 1
        if self._busy == 0 and self._idle is not None:
            self._idle.set()
        return await future

    def _unpark(self, future: asyncio.Future, result=None, exc=None) -> None:
        if future.done():
            return
        self._busy += 1
        if self._idle is not None:
            self._idle.clear()
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    async def sleep_ms(self, ms: float) -> None:
        """Park the calling coroutine for ``ms`` of virtual time."""
        future = asyncio.get_running_loop().create_future()
        self._at(ms, lambda: self._unpark(future))
        await self._park(future)

    async def gather(self, *coros: Awaitable) -> list:
        """Run coroutines concurrently under hub accounting.

        The loopback equivalent of ``asyncio.gather`` — plain gather
        would hide the parent's wait from the scheduler and stall the
        virtual clock.  All branches run to completion; the first
        exception (by argument order) is re-raised afterwards.
        """
        if not coros:
            return []
        results: list = [None] * len(coros)
        errors: list = [None] * len(coros)
        remaining = len(coros)
        future = asyncio.get_running_loop().create_future()

        async def runner(index: int, coro: Awaitable) -> None:
            nonlocal remaining
            try:
                results[index] = await coro
            except Exception as exc:  # re-raised below, in argument order
                errors[index] = exc
            finally:
                remaining -= 1
                if remaining == 0:
                    self._unpark(future)

        for index, coro in enumerate(coros):
            self._spawn(runner(index, coro))
        await self._park(future)
        for exc in errors:
            if exc is not None:
                raise exc
        return results

    async def run(self, main: Awaitable):
        """Drive ``main`` (and everything it spawns) to completion.

        The conservative dispatch loop: wait until every accounted
        coroutine is parked, then fire the next scheduled event and
        advance the virtual clock to it.  Returns ``main``'s result; the
        remaining event heap (stale request timeouts) is drained so the
        final virtual time is a pure function of the schedule.
        """
        self._idle = asyncio.Event()
        if self._busy == 0:
            self._idle.set()
        main_task = self._spawn(main)
        while True:
            await self._idle.wait()
            if not self._heap:
                if not main_task.done():
                    raise ServiceError(
                        "loopback deadlock: coroutines parked with no "
                        "scheduled events"
                    )
                break
            time_ms, _, action = heapq.heappop(self._heap)
            self._now_ms = time_ms
            action()
        return main_task.result()


class LoopbackTransport(Transport):
    """One endpoint on a :class:`LoopbackHub`."""

    def __init__(self, hub: LoopbackHub, address: str) -> None:
        self._hub = hub
        self._address = address
        self._handler: Optional[Handler] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._request_seq = itertools.count(1)
        self._started = False

    @property
    def local_address(self) -> str:
        return self._address

    @property
    def hub(self) -> LoopbackHub:
        return self._hub

    def bind(self, handler: Handler) -> None:
        self._handler = handler

    async def start(self) -> None:
        if not self._started:
            self._hub.register(self)
            self._started = True

    async def close(self) -> None:
        if self._started:
            self._hub.unregister(self._address)
            self._started = False
        for future in self._pending.values():
            self._hub._unpark(future, exc=TransportTimeout("transport closed"))
        self._pending.clear()

    def now_ms(self) -> float:
        return self._hub.now_ms

    async def sleep_ms(self, ms: float) -> None:
        await self._hub.sleep_ms(ms)

    async def gather(self, *coros):
        return await self._hub.gather(*coros)

    # -- delivery ----------------------------------------------------------

    def _schedule_inbound(self, dst: str, data: bytes, rtt: float) -> bool:
        """Schedule ``data`` to arrive at ``dst`` half an RTT from now."""
        dest = self._hub._endpoints.get(dst)
        if dest is None:
            self._hub.drops += 1
            obs.counter("wire.dropped").inc()
            return False
        self._hub._at(
            rtt / 2.0,
            lambda: self._hub._spawn(dest._handle_inbound(self._address, data, rtt)),
        )
        return True

    async def send(self, addr: str, message: Message) -> None:
        data = encode_frame(message, ONEWAY, 0)
        obs.counter("wire.sent").inc()
        rtt = self._hub.rtt_ms(self._address, addr)
        if rtt is None:
            self._hub.drops += 1
            obs.counter("wire.dropped").inc()
            return
        self._schedule_inbound(addr, data, rtt)

    async def request(
        self,
        addr: str,
        message: Message,
        timeout_ms: float,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        request_id = next(self._request_seq)
        data = encode_frame(message, REQUEST, request_id, trace=trace)
        obs.counter("wire.sent").inc()
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        rtt = self._hub.rtt_ms(self._address, addr)
        delivered = False
        if rtt is not None:
            delivered = self._schedule_inbound(addr, data, rtt)
        else:
            self._hub.drops += 1
            obs.counter("wire.dropped").inc()
        if not delivered:
            pass  # the timeout below is the only way the wait ends
        self._hub._at(timeout_ms, lambda: self._fire_timeout(request_id, timeout_ms))
        try:
            frame: Frame = await self._hub._park(future)
        finally:
            self._pending.pop(request_id, None)
        if frame.flags == ERROR:
            assert isinstance(frame.message, ErrorFrame)
            raise RemoteError(frame.message.code, frame.message.detail)
        return frame.message

    def _fire_timeout(self, request_id: int, timeout_ms: float) -> None:
        future = self._pending.get(request_id)
        if future is not None and not future.done():
            obs.counter("wire.timeouts").inc()
            # Deterministic: stamped with virtual time, so same-seed
            # loopback runs keep telemetry.jsonl byte-identical.
            obs.timeline().sample(
                "net.wire_timeouts",
                self._hub.now_ms,
                obs.counter("wire.timeouts").value,
            )
            self._hub._unpark(
                future,
                exc=TransportTimeout(
                    f"no response from request {request_id} within {timeout_ms} ms"
                ),
            )

    def _complete(self, request_id: int, data: bytes) -> None:
        """A response frame arrived for one of our requests."""
        future = self._pending.get(request_id)
        if future is None or future.done():
            return  # raced its own timeout; drop the late response
        self._hub._unpark(future, decode_frame(data))

    async def _handle_inbound(self, sender: str, data: bytes, rtt: float) -> None:
        """Decode, dispatch, and (for requests) schedule the response."""
        frame = decode_frame(data)
        self._hub.deliveries += 1
        obs.counter("wire.delivered").inc()
        if frame.flags in (RESPONSE, ERROR):
            self._complete(frame.request_id, data)
            return
        response: Optional[Message] = None
        if self._handler is None:
            response = ErrorFrame(code=ERR_UNSUPPORTED, detail="no handler bound")
        else:
            try:
                response = await self._handler(sender, frame)
            except Exception as exc:  # a daemon bug must answer, not hang
                response = ErrorFrame(code=ERR_INTERNAL, detail=str(exc))
        if frame.flags != REQUEST:
            return
        if response is None:
            response = ErrorFrame(
                code=ERR_UNSUPPORTED,
                detail=f"no response for {type(frame.message).__name__}",
            )
        flags = ERROR if isinstance(response, ErrorFrame) else RESPONSE
        out = encode_frame(response, flags, frame.request_id)
        origin = self._hub._endpoints.get(sender)
        if origin is not None:
            self._hub._at(
                rtt / 2.0, lambda: origin._complete(frame.request_id, out)
            )
