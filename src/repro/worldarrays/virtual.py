"""A delegate-matrix *view* that never materializes N×N.

:class:`VirtualMatrices` exposes the same read surface as dense
:class:`~repro.measurement.matrix.DelegateMatrices` — header arrays,
cell reads, broadcast gathers, column-block iteration, the workload's
finite-row fractions — but computes everything column-at-a-time from a
:class:`~repro.worldarrays.matrixfill.FlatMatrixAssembler` over
:class:`~repro.worldarrays.arrays.WorldArrays`, with an optional
:class:`~repro.storage.columns.ColumnStore` spilling computed blocks to
disk.

Bit-identical contract: every value this view returns is the float (or
int) the dense assembly would have stored in the same cell —

- off-diagonal cells come from the same per-destination-AS broadcast
  fill the flat dense path runs (IEEE elementwise ops are
  value-identical to their scalar forms);
- diagonal cells come from per-cluster vectors computed with the dense
  path's own scalar loop (``2.0 * endpoint + 4.0 * access``);
- spilled chunks round-trip bit-exactly through ``.npy`` files.

Memory discipline at the 100k tier (V ≈ 8.6k ASes, N = 100k clusters):

- the assembler's one-way memo is an LRU (``memo_limit``), so resolved
  trees never accumulate past a few hundred × ~25·V bytes;
- the policy router's own tree cache (4096 entries ≈ 0.9 MB each at
  that V) is flushed every ``router_flush_interval`` fresh resolutions;
- once a sweep has spilled every chunk, *all* reads route through the
  memory-mapped store — random row/cell reads fault pages, not arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.measurement.latency import LatencyModel
from repro.measurement.matrix import UNREACHABLE, cluster_headers
from repro.storage.columns import ColumnStore
from repro.worldarrays.arrays import WorldArrays
from repro.worldarrays.matrixfill import FlatMatrixAssembler

__all__ = ["VirtualMatrices"]


class VirtualMatrices:
    """Streamed, column-chunked view of the delegate matrices."""

    def __init__(
        self,
        model: LatencyModel,
        cluster_list,
        *,
        chunk_columns: int = 256,
        store: Optional[ColumnStore] = None,
        memo_limit: Optional[int] = 256,
        router_flush_interval: int = 64,
    ) -> None:
        if store is not None and store.chunk != chunk_columns:
            raise ValueError(
                f"store chunk width {store.chunk} != chunk_columns {chunk_columns}"
            )
        self._model = model
        self._chunk = int(chunk_columns)
        self._store = store
        self._router_flush_interval = int(router_flush_interval)
        self._fresh_resolutions = 0

        (
            self.prefixes,
            self.index_of,
            self.asn_of,
            self.sizes,
            self._access,
        ) = cluster_headers(cluster_list)
        self._world = WorldArrays.from_clusters(model, cluster_list)
        self._assembler = FlatMatrixAssembler(model, self._world, memo_limit=memo_limit)

        n = len(self.prefixes)
        if store is not None and (store.n != n):
            raise ValueError(f"store is for n={store.n}, world has n={n}")

        # Diagonal vectors, computed with the dense path's scalar loop so
        # every diagonal read is bit-identical to the materialized matrix.
        diag_rtt = np.empty(n, dtype=float)
        diag_loss = np.empty(n, dtype=float)
        for i in range(n):
            asn = int(self.asn_of[i])
            diag_rtt[i] = 2.0 * model.endpoint_cost_ms(asn) + 4.0 * self._access[i]
            diag_loss[i] = model.conditions.loss_of(asn)
        self._diag_rtt = diag_rtt
        self._diag_loss = diag_loss

        self._mmap_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._finite_fractions: Optional[np.ndarray] = None

    # -- headers -------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.prefixes)

    @property
    def world(self) -> WorldArrays:
        return self._world

    @property
    def store(self) -> Optional[ColumnStore]:
        return self._store

    @property
    def chunk_columns(self) -> int:
        return self._chunk

    # -- block computation ---------------------------------------------

    def _compute_block(self, cols: np.ndarray):
        """Assemble one column block exactly as the dense fill would."""
        n = self.count
        rtt = np.full((n, len(cols)), UNREACHABLE, dtype=float)
        loss = np.full((n, len(cols)), 1.0, dtype=float)
        hops = np.full((n, len(cols)), -1, dtype=np.int64)
        self._note_resolutions(cols)
        self._assembler.fill_columns(
            cols, rtt, loss, hops, positions=np.arange(len(cols), dtype=np.int64)
        )
        # Diagonal overrides, after the fill (dense-path order).
        for pos, j in enumerate(cols):
            j = int(j)
            rtt[j, pos] = self._diag_rtt[j]
            loss[j, pos] = self._diag_loss[j]
            hops[j, pos] = 0
        return rtt, loss, hops

    def _note_resolutions(self, cols: np.ndarray) -> None:
        """Bound the policy router's tree LRU: count the destination ASes
        this block will freshly resolve and flush the router cache every
        ``router_flush_interval`` of them (each cached tree is ~0.2 MB
        per thousand ASes; the default LRU keeps 4096)."""
        fresh = 0
        for as_idx in np.unique(self._world.cluster_as_idx[cols]):
            if not self._assembler.memoized(int(self._world.as_ids[as_idx])):
                fresh += 1
        self._fresh_resolutions += fresh
        if self._fresh_resolutions >= self._router_flush_interval:
            self._model.router.invalidate()
            self._fresh_resolutions = 0

    def _store_ready(self) -> bool:
        return self._store is not None and self._store.complete()

    def _chunk_arrays(self, start: int):
        """Memory-mapped arrays of one stored chunk (cached handles)."""
        if start not in self._mmap_cache:
            self._mmap_cache[start] = self._store.load(start)
        return self._mmap_cache[start]

    # -- view protocol -------------------------------------------------

    def iter_column_blocks(
        self, chunk: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(cols, rtt, loss, hops)`` over every destination
        column, in order, at the view's chunk width (``chunk`` is
        accepted for dense-signature compatibility and ignored — store
        geometry is fixed at construction).  Blocks are loaded from the
        spill store when present, computed (and spilled) otherwise.
        """
        from repro import obs

        n = self.count
        for start in range(0, n, self._chunk):
            cols = np.arange(start, min(start + self._chunk, n), dtype=np.int64)
            if self._store is not None:
                if self._store.has(start):
                    obs.counter("columns.chunks.hit").inc()
                    rtt, loss, hops = self._chunk_arrays(start)
                else:
                    obs.counter("columns.chunks.miss").inc()
                    rtt, loss, hops = self._compute_block(cols)
                    self._store.save(start, rtt, loss, hops)
                    rtt, loss, hops = self._chunk_arrays(start)
            else:
                rtt, loss, hops = self._compute_block(cols)
            yield cols, rtt, loss, hops

    def ensure_spilled(self) -> None:
        """Run one full sweep so every chunk is on disk (no-op without a
        store or when already complete); subsequent random reads then
        fault mmap pages instead of resolving trees."""
        if self._store is None or self._store.complete():
            return
        for _ in self.iter_column_blocks():
            pass

    def rtt_cell(self, i: int, j: int) -> float:
        i, j = int(i), int(j)
        if i == j:
            return float(self._diag_rtt[i])
        if self._store_ready():
            start = (j // self._chunk) * self._chunk
            rtt, _, _ = self._chunk_arrays(start)
            return float(rtt[i, j - start])
        resolved = self._resolve_dest(j)
        if resolved is None:
            return float(UNREACHABLE)
        one_way, _, _, reach = resolved
        src_as = int(self._world.cluster_as_idx[i])
        if not reach[src_as]:
            return float(UNREACHABLE)
        return float(
            2.0 * one_way[src_as] + 2.0 * (self._access[i] + self._access[j])
        )

    def loss_cell(self, i: int, j: int) -> float:
        i, j = int(i), int(j)
        if i == j:
            return float(self._diag_loss[i])
        if self._store_ready():
            start = (j // self._chunk) * self._chunk
            _, loss, _ = self._chunk_arrays(start)
            return float(loss[i, j - start])
        resolved = self._resolve_dest(j)
        if resolved is None:
            return 1.0
        _, loss_to, _, reach = resolved
        src_as = int(self._world.cluster_as_idx[i])
        if not reach[src_as]:
            return 1.0
        return float(loss_to[src_as])

    def _resolve_dest(self, j: int):
        """One-way arrays toward column ``j``'s destination AS."""
        cols = np.array([j], dtype=np.int64)
        self._note_resolutions(cols)
        dest_as = int(self.asn_of[j])
        return self._assembler.resolve(dest_as)

    def gather_rtt(self, rows, cols) -> np.ndarray:
        return self._gather(rows, cols, which="rtt")

    def gather_loss(self, rows, cols) -> np.ndarray:
        return self._gather(rows, cols, which="loss")

    def _gather(self, rows, cols, which: str) -> np.ndarray:
        """``matrix[rows, cols]`` with numpy broadcasting, matrix-free."""
        rows_b, cols_b = np.broadcast_arrays(
            np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
        )
        shape = rows_b.shape
        i_flat = rows_b.reshape(-1)
        j_flat = cols_b.reshape(-1)
        out = np.empty(len(i_flat), dtype=float)

        if self._store_ready():
            chunk_of = (j_flat // self._chunk) * self._chunk
            for start in np.unique(chunk_of):
                sel = chunk_of == start
                rtt, loss, _ = self._chunk_arrays(int(start))
                block = rtt if which == "rtt" else loss
                out[sel] = block[i_flat[sel], j_flat[sel] - int(start)]
            return out.reshape(shape)

        default = UNREACHABLE if which == "rtt" else 1.0
        out.fill(default)
        dest_as_idx = self._world.cluster_as_idx[j_flat]
        for as_idx in np.unique(dest_as_idx):
            sel = np.nonzero(dest_as_idx == as_idx)[0]
            self._note_resolutions(j_flat[sel][:1])
            resolved = self._assembler.resolve(int(self._world.as_ids[as_idx]))
            if resolved is None:
                continue
            one_way, loss_to, _, reach = resolved
            src_as = self._world.cluster_as_idx[i_flat[sel]]
            ok = sel[reach[src_as]]
            if len(ok) == 0:
                continue
            s_as = self._world.cluster_as_idx[i_flat[ok]]
            if which == "rtt":
                out[ok] = 2.0 * one_way[s_as] + 2.0 * (
                    self._access[i_flat[ok]] + self._access[j_flat[ok]]
                )
            else:
                out[ok] = loss_to[s_as]
        diag = i_flat == j_flat
        if diag.any():
            source = self._diag_rtt if which == "rtt" else self._diag_loss
            out[diag] = source[i_flat[diag]]
        return out.reshape(shape)

    def finite_row_fractions(self) -> np.ndarray:
        """Per-row fraction of finite RTT entries, exactly equal to the
        dense ``np.mean(np.isfinite(rtt_ms), axis=1)`` (integer counts
        divided by N)."""
        if self._finite_fractions is None:
            counts = np.zeros(self.count, dtype=np.int64)
            for _, rtt, _, _ in self.iter_column_blocks():
                counts += np.isfinite(rtt).sum(axis=1)
            self._finite_fractions = counts / self.count
        return self._finite_fractions
