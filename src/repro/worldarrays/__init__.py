"""Flat, int-indexed world representation for the substrate hot paths.

The object world (:class:`~repro.topology.clustering.ClusterIndex`,
:class:`~repro.bgp.asgraph.ASGraph`, per-pair python walks) is the
*reference* implementation everywhere; this package exports the same
world once into contiguous numpy arrays and rewrites the two hottest
computations against them:

- :mod:`repro.worldarrays.matrixfill` — delegate-matrix assembly as
  vectorized per-destination column fills (the memoized next-hop chain
  walk becomes a level-ordered array scan, the per-row python loop a
  single gather);
- :mod:`repro.worldarrays.closesets` — ``construct-close-cluster-set``
  as a vectorized valley-free BFS over int frontiers, with a batch API
  that builds the sets of many source clusters in one sweep.

Both are guarded by parity tests: for identical seeds they produce
**bit-identical** results to the object-path reference (same matrices,
same close sets, same ``traces.jsonl``).  The flat path is the default;
set ``REPRO_FLAT_WORLD=0`` to force the object reference everywhere.
"""

from __future__ import annotations

import os

from repro.worldarrays.arrays import GraphCSR, WorldArrays, csr_gather
from repro.worldarrays.closesets import FlatCloseSetBuilder
from repro.worldarrays.matrixfill import FlatMatrixAssembler
from repro.worldarrays.virtual import VirtualMatrices

__all__ = [
    "FLAT_WORLD_ENV",
    "FlatCloseSetBuilder",
    "FlatMatrixAssembler",
    "GraphCSR",
    "VirtualMatrices",
    "WorldArrays",
    "csr_gather",
    "flat_enabled",
]

#: Environment switch for the flat-array substrate (default on; the
#: object path remains the reference and is selected with ``0``).
FLAT_WORLD_ENV = "REPRO_FLAT_WORLD"


def flat_enabled() -> bool:
    """Whether the flat-array hot paths are enabled (default: yes)."""
    return os.environ.get(FLAT_WORLD_ENV, "1").strip() not in ("0", "no", "off")
