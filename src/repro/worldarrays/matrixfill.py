"""Vectorized delegate-matrix assembly over :class:`WorldArrays`.

The object reference (``repro.measurement.matrix._fill_destinations``)
walks each destination's routing tree with a python memo and then runs a
python loop over source rows per column.  This module computes the same
numbers as array passes:

- the memoized next-hop chain walk becomes an iterative *resolution
  sweep*: each round vectorizes over every AS whose next hop is already
  resolved, so the whole tree costs O(depth) numpy calls;
- the per-row fill becomes one broadcast assignment per destination AS,
  covering every (source row × destination column) cell of that AS at
  once.

Bit-identical guarantee: every arithmetic step reproduces the scalar
reference's operation order on the same float inputs —
``(link + transit) + interior`` for path cost, ``(1 - loss) * survive``
for loss, ``2*one_way + 2*(access_i + access_j)`` for RTT — and IEEE 754
elementwise ops are value-identical to their scalar counterparts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.measurement.latency import LatencyModel
from repro.worldarrays.arrays import WorldArrays

_UNREACHABLE = np.inf


class FlatMatrixAssembler:
    """Fills destination columns of the delegate matrices from flat arrays.

    One-way results are memoized per destination AS, so columns sharing
    an AS cost one tree resolution total (the object path re-walks the
    memo per column).  Instances are safe to fork: workers inherit the
    arrays copy-on-write and only append to their private memo.

    ``memo_limit`` bounds the memo to an LRU of that many destination
    ASes (each entry holds four V-length arrays ≈ 25·V bytes); the
    streaming view sets it so 100k-tier worlds never accumulate the full
    per-AS table.  Unbounded (the batch-assembly default) when ``None``.
    """

    def __init__(
        self,
        model: LatencyModel,
        world: WorldArrays,
        memo_limit: Optional[int] = None,
    ) -> None:
        self._model = model
        self._world = world
        self._memo_limit = memo_limit
        # dest ASN -> (one_way, loss, hops, reach) over the AS universe,
        # or None when the destination is unreachable (failed / unknown).
        self._oneway: "OrderedDict[int, Optional[Tuple]]" = OrderedDict()

    def memoized(self, dest_as: int) -> bool:
        """Whether ``dest_as``'s tree is currently resolved in the memo."""
        return dest_as in self._oneway

    def resolve(self, dest_as: int) -> Optional[Tuple]:
        """Resolved ``(one_way, loss, hops, reach)`` arrays toward one
        destination AS (memoized), or ``None`` when unreachable."""
        return self._one_way(dest_as)

    @property
    def world(self) -> WorldArrays:
        return self._world

    def fill_columns(
        self,
        columns: Sequence[int],
        rtt: np.ndarray,
        loss: np.ndarray,
        hops: np.ndarray,
        positions: Optional[Sequence[int]] = None,
    ) -> None:
        """Fill the given destination columns (grouped by destination AS).

        ``columns`` are global cluster indices; ``positions`` are the
        matching column positions in the output arrays (defaults to the
        enumeration order, matching the object worker's block layout).
        """
        from repro import obs

        obs.counter("matrix.columns").inc(len(columns))
        world = self._world
        columns = np.asarray(columns, dtype=np.int64)
        if positions is None:
            positions = np.arange(len(columns), dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)

        dest_as_idx = world.cluster_as_idx[columns]
        for as_idx in np.unique(dest_as_idx):
            member = dest_as_idx == as_idx
            self._fill_as_group(
                int(as_idx), columns[member], positions[member], rtt, loss, hops
            )

    def _fill_as_group(
        self,
        dest_as_idx: int,
        columns: np.ndarray,
        positions: np.ndarray,
        rtt: np.ndarray,
        loss: np.ndarray,
        hops: np.ndarray,
    ) -> None:
        world = self._world
        resolved = self._one_way(int(world.as_ids[dest_as_idx]))
        if resolved is None:
            return  # destination unreachable: columns stay at their fill values
        one_way, loss_to, hops_to, reach = resolved

        rows = np.nonzero(reach[world.cluster_as_idx])[0]
        if len(rows) == 0:
            return
        row_as = world.cluster_as_idx[rows]
        ow_rows = one_way[row_as]
        access_rows = world.access_ms[rows]
        access_cols = world.access_ms[columns]
        # Same op order as the scalar reference:
        #   rtt = 2.0 * one_way + 2.0 * (access[i] + access[j])
        rtt[np.ix_(rows, positions)] = 2.0 * ow_rows[:, None] + 2.0 * (
            access_rows[:, None] + access_cols[None, :]
        )
        loss[np.ix_(rows, positions)] = np.broadcast_to(
            loss_to[row_as][:, None], (len(rows), len(positions))
        )
        hops[np.ix_(rows, positions)] = np.broadcast_to(
            hops_to[row_as][:, None], (len(rows), len(positions))
        )

    def _one_way(self, dest_as: int) -> Optional[Tuple]:
        """(one_way, loss, hops, reach) arrays toward one destination AS."""
        if dest_as in self._oneway:
            if self._memo_limit is not None:
                self._oneway.move_to_end(dest_as)
            return self._oneway[dest_as]
        tree = self._model.routing_tree(dest_as)
        result = None if tree is None else self._resolve_tree(tree)
        self._oneway[dest_as] = result
        if self._memo_limit is not None:
            while len(self._oneway) > self._memo_limit:
                self._oneway.popitem(last=False)
        return result

    def _resolve_tree(self, tree) -> Tuple:
        """Vectorized equivalent of the reference memo walk.

        Rounds of resolution: a source resolves once its next hop has;
        each round handles every ready source in one set of array ops
        with the reference's exact expression order.
        """
        world = self._world
        count = world.as_count
        as_ids = world.as_ids
        dest_idx = world.as_index_of[tree.destination]

        src = np.fromiter(tree.next_hop.keys(), dtype=np.int64, count=len(tree.next_hop))
        nh = np.fromiter(tree.next_hop.values(), dtype=np.int64, count=len(tree.next_hop))
        src_idx = np.searchsorted(as_ids, src)
        nh_idx = np.searchsorted(as_ids, nh)
        edge = world.edge_cost_of(src_idx, nh_idx)
        transit = np.where(nh_idx == dest_idx, 0.0, world.node_cost[nh_idx])

        interior = np.zeros(count, dtype=float)
        survive = np.zeros(count, dtype=float)
        hops = np.zeros(count, dtype=np.int64)
        resolved = np.zeros(count, dtype=bool)
        resolved[dest_idx] = True
        survive[dest_idx] = 1.0 - world.loss_of[dest_idx]

        pending = np.ones(len(src_idx), dtype=bool)
        while pending.any():
            ready = pending & resolved[nh_idx]
            if not ready.any():
                break  # remaining sources chain through ASes outside the tree
            s = src_idx[ready]
            h = nh_idx[ready]
            # reference: interior[src] = link + transit + interior[nh]
            interior[s] = (edge[ready] + transit[ready]) + interior[h]
            # reference: survive[src] = (1 - loss(src)) * survive[nh]
            survive[s] = (1.0 - world.loss_of[s]) * survive[h]
            hops[s] = hops[h] + 1
            resolved[s] = True
            pending[ready] = False

        reach = resolved.copy()
        # reference: one_way = endpoint(src) + interior[src] + endpoint(dest)
        # (the destination itself only pays its own endpoint cost).
        dest_endpoint = world.endpoint_cost[dest_idx]
        one_way = (world.endpoint_cost + interior) + dest_endpoint
        one_way[dest_idx] = world.endpoint_cost[dest_idx]
        loss_to = 1.0 - survive
        return one_way, loss_to, hops, reach
