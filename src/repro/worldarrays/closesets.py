"""Vectorized ``construct-close-cluster-set()`` over :class:`GraphCSR`.

The reference (:func:`repro.core.close_cluster.construct_close_cluster_set`)
runs a level-synchronous valley-free BFS with python sets; this builder
runs the same levels as boolean masks over the CSR step tables:

- the frontier is a pair of (UP, DOWN) phase masks; one level is four
  ragged CSR gathers (providers, peers, customers, siblings) instead of
  per-AS python iteration;
- probing a newly discovered AS is one vectorized threshold pass over
  the matrix rows of its clusters.

It reproduces the reference *exactly*: same entries (cluster, rtt,
loss, depth), same ``probe_messages`` / ``probes_by_as`` /
``ases_visited`` accounting, and the same observability emission
(counters, histograms, and the ``close_set.build`` trace span), so
``traces.jsonl`` is byte-identical whichever path built the set.

The batch API (:meth:`FlatCloseSetBuilder.build_many`) shares one CSR
export and the probe arrays across every source cluster — the per-world
setup cost is paid once per sweep instead of once per surrogate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.bgp.asgraph import ASGraph
from repro.core.close_cluster import (
    CloseClusterEntry,
    CloseClusterSet,
    emit_build_observability,
)
from repro.core.config import ASAPConfig
from repro.worldarrays.arrays import GraphCSR, csr_gather


class FlatCloseSetBuilder:
    """Builds close cluster sets from flat arrays (bit-identical).

    ``clusters_by_as`` maps ASN → ascending matrix indices of online
    clusters (the same table :meth:`ASAPSystem.clusters_in_as` serves);
    ``world`` is the matrix view the surrogate probes read — dense
    :class:`~repro.measurement.matrix.DelegateMatrices` or the streamed
    :class:`~repro.worldarrays.virtual.VirtualMatrices` (the gathers
    return the same floats either way).
    """

    def __init__(
        self,
        graph: ASGraph,
        world,
        clusters_by_as: Dict[int, List[int]],
        config: Optional[ASAPConfig] = None,
    ) -> None:
        self._config = config if config is not None else ASAPConfig()
        self._csr = GraphCSR.from_asgraph(graph)
        self._world = world
        # Clusters per graph node, ascending (ASes outside the graph are
        # unreachable by the BFS and need no rows).
        self._rows_of: List[np.ndarray] = [
            np.array(sorted(clusters_by_as.get(int(asn), ())), dtype=np.int64)
            for asn in self._csr.as_ids
        ]

    def build(
        self, own_cluster: int, own_as: int, meta_out: Optional[dict] = None
    ) -> CloseClusterSet:
        """The close cluster set of one source cluster.

        ``meta_out`` mirrors the reference builder's hook: it receives
        ``{asn: (depth, expands)}`` for every visited AS, identical to
        what :func:`construct_close_cluster_set` records.
        """
        config = self._config
        csr = self._csr
        result = CloseClusterSet(owner=own_cluster)
        own_idx = csr.index_of.get(own_as)
        if own_idx is None:
            # Matches the reference: an AS unknown to the inferred graph
            # yields an empty set with no emission.
            return result

        # Level 0: own cluster plus co-located clusters.
        self._probe_as(result, own_cluster, own_idx, depth=0)
        result.ases_visited = 1
        if meta_out is not None:
            meta_out[own_as] = (0, True)

        count = csr.count
        up = np.zeros(count, dtype=bool)
        down = np.zeros(count, dtype=bool)
        expands = np.zeros(count, dtype=bool)
        seen = np.zeros(count, dtype=bool)
        up[own_idx] = True
        expands[own_idx] = True
        seen[own_idx] = True

        for depth in range(1, config.k_hops + 1):
            new_up, new_down = self._level(up, down, expands)
            if not new_up.any() and not new_down.any():
                break
            up |= new_up
            down |= new_down
            fresh = (new_up | new_down) & ~seen
            seen |= fresh
            for as_idx in np.nonzero(fresh)[0]:
                result.ases_visited += 1
                expands[as_idx] = self._probe_as(result, own_cluster, int(as_idx), depth)
                if meta_out is not None:
                    meta_out[int(csr.as_ids[as_idx])] = (depth, bool(expands[as_idx]))

        emit_build_observability(result, own_as)
        return result

    def build_many(self, sources: Iterable[tuple]) -> Dict[int, CloseClusterSet]:
        """Close sets for many ``(own_cluster, own_as)`` sources in one sweep."""
        return {
            own_cluster: self.build(own_cluster, own_as)
            for own_cluster, own_as in sources
        }

    # -- internals ---------------------------------------------------------

    def _level(self, up: np.ndarray, down: np.ndarray, expands: np.ndarray):
        """One valley-free BFS level: new (UP, DOWN) states from the frontier.

        Expansion rights are a property of the AS (its probe verdict),
        mirroring the level-synchronous reference.
        """
        csr = self._csr
        count = csr.count
        new_up = np.zeros(count, dtype=bool)
        new_down = np.zeros(count, dtype=bool)
        active_up = np.nonzero(up & expands)[0]
        active_down = np.nonzero(down & expands)[0]
        if not self._config.valley_free:
            # Unconstrained BFS: every neighbor, phase preserved.
            new_up[csr_gather(csr.neighbors_indptr, csr.neighbors_indices, active_up)] = True
            new_down[
                csr_gather(csr.neighbors_indptr, csr.neighbors_indices, active_down)
            ] = True
        else:
            # UP frontier climbs providers (UP) and crosses peers (DOWN).
            new_up[csr_gather(csr.providers_indptr, csr.providers_indices, active_up)] = True
            new_down[csr_gather(csr.peers_indptr, csr.peers_indices, active_up)] = True
            # Both phases descend customers (DOWN) and keep phase on siblings.
            both = np.union1d(active_up, active_down)
            new_down[csr_gather(csr.customers_indptr, csr.customers_indices, both)] = True
            new_up[csr_gather(csr.siblings_indptr, csr.siblings_indices, active_up)] = True
            new_down[
                csr_gather(csr.siblings_indptr, csr.siblings_indices, active_down)
            ] = True
        new_up &= ~up
        new_down &= ~down
        return new_up, new_down

    def _probe_as(
        self, result: CloseClusterSet, own_cluster: int, as_idx: int, depth: int
    ) -> bool:
        """Probe every cluster of one AS; returns expansion rights.

        Accounting is identical to the reference ``_probe``/``_visit_as``
        pair: 2 messages per probed cluster, attributed to this AS; the
        own cluster joins with a zero-cost entry and is never probed.
        """
        rows = self._rows_of[as_idx]
        if len(rows) == 0:
            return True  # transit AS: nothing to probe, expansion free
        asn = int(self._csr.as_ids[as_idx])
        if depth == 0:
            if np.any(rows == own_cluster):
                result.entries[own_cluster] = CloseClusterEntry(own_cluster, 0.0, 0.0, 0)
            probed = rows[rows != own_cluster]
        else:
            probed = rows
        if len(probed) == 0:
            return depth == 0  # lone own cluster: reference expands own AS anyway
        result.probe_messages += 2 * len(probed)
        result.probes_by_as[asn] = result.probes_by_as.get(asn, 0) + 2 * len(probed)
        rtt = self._world.gather_rtt(own_cluster, probed)
        lost = self._world.gather_loss(own_cluster, probed)
        answered = np.isfinite(rtt)
        passed = (
            answered
            & (rtt < self._config.lat_threshold_ms)
            & (lost < self._config.loss_threshold)
        )
        for row, rtt_ms, loss_rate in zip(
            probed[passed], rtt[passed], lost[passed]
        ):
            result.entries[int(row)] = CloseClusterEntry(
                int(row), float(rtt_ms), float(loss_rate), depth
            )
        if depth == 0:
            return True  # the reference always expands through the own AS
        return bool(passed.any())
