"""Contiguous array exports of the object world.

Two export products live here:

- :class:`GraphCSR` — the annotated AS graph's valley-free step tables
  (providers / customers / peers / siblings) in CSR form over a dense
  int index, for the vectorized close-set BFS;
- :class:`WorldArrays` — the cluster book-keeping (cluster→AS index,
  access delays, sizes, clusters-grouped-by-AS) plus the latency model's
  per-AS costs and per-link edge costs as flat arrays, for the
  vectorized matrix fill.

Both are pure *exports*: every number is produced by the same object
code (``LatencyModel.link_delay_ms``, ``NetworkConditions.loss_of``, …)
that the reference paths call, which is the first half of the
bit-identical guarantee — the flat paths then combine those numbers with
the exact same IEEE operation order as the scalar reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bgp.asgraph import ASGraph
from repro.errors import MeasurementError
from repro.measurement.latency import LatencyModel


def csr_gather(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenate the CSR adjacency lists of ``rows`` (vectorized).

    Equivalent to ``np.concatenate([indices[indptr[r]:indptr[r+1]] for r
    in rows])`` without the python loop: the classic repeat/cumsum ragged
    gather.
    """
    if len(rows) == 0:
        return indices[:0]
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    starts = indptr[rows]
    exclusive = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.repeat(starts - exclusive, counts) + np.arange(total)
    return indices[positions]


def _bucket_csr(count: int, lists: Dict[int, np.ndarray]) -> tuple:
    """Pack per-row neighbor arrays into (indptr, indices)."""
    counts = np.zeros(count, dtype=np.int64)
    for row, neighbors in lists.items():
        counts[row] = len(neighbors)
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for row, neighbors in lists.items():
        indices[indptr[row] : indptr[row + 1]] = neighbors
    return indptr, indices


@dataclass
class GraphCSR:
    """Valley-free step tables of an :class:`ASGraph` in CSR form.

    Node ``i`` is ``as_ids[i]`` (ascending ASN order); each relationship
    bucket's neighbor lists are sorted, so every traversal over this
    structure is order-independent by construction.
    """

    as_ids: np.ndarray          # (V,) int64, sorted ASNs
    index_of: Dict[int, int]
    providers_indptr: np.ndarray
    providers_indices: np.ndarray
    customers_indptr: np.ndarray
    customers_indices: np.ndarray
    peers_indptr: np.ndarray
    peers_indices: np.ndarray
    siblings_indptr: np.ndarray
    siblings_indices: np.ndarray
    neighbors_indptr: np.ndarray
    neighbors_indices: np.ndarray

    @property
    def count(self) -> int:
        return len(self.as_ids)

    @classmethod
    def from_asgraph(cls, graph: ASGraph) -> "GraphCSR":
        as_ids = np.array(graph.ases(), dtype=np.int64)
        index_of = {int(asn): i for i, asn in enumerate(as_ids)}
        count = len(as_ids)

        def bucket(getter) -> tuple:
            lists = {}
            for asn, row in index_of.items():
                members = getter(asn)
                if members:
                    lists[row] = np.array(
                        sorted(index_of[m] for m in members), dtype=np.int64
                    )
            return _bucket_csr(count, lists)

        providers = bucket(graph.providers)
        customers = bucket(graph.customers)
        peers = bucket(graph.peers)
        siblings = bucket(graph.siblings)
        neighbors = bucket(graph.neighbors)
        return cls(
            as_ids=as_ids,
            index_of=index_of,
            providers_indptr=providers[0],
            providers_indices=providers[1],
            customers_indptr=customers[0],
            customers_indices=customers[1],
            peers_indptr=peers[0],
            peers_indices=peers[1],
            siblings_indptr=siblings[0],
            siblings_indices=siblings[1],
            neighbors_indptr=neighbors[0],
            neighbors_indices=neighbors[1],
        )


@dataclass
class WorldArrays:
    """The measured world in flat int-indexed form.

    The AS universe is the union of the latency model's *effective*
    routing graph (failed ASes already removed) and every cluster's ASN;
    ``as_ids`` is that universe sorted ascending and all ``*_idx``
    fields index into it.  Per-link edge costs are the model's own
    ``link_delay_ms`` values keyed by ``src_idx * V + dst_idx`` (both
    directions), so a flat gather reads exactly the float the scalar
    path would.
    """

    as_ids: np.ndarray           # (V,) int64, sorted universe ASNs
    as_index_of: Dict[int, int]
    loss_of: np.ndarray          # (V,) float — conditions.loss_of per AS
    node_cost: np.ndarray        # (V,) float — model.node_cost_ms per AS
    endpoint_cost: np.ndarray    # (V,) float — model.endpoint_cost_ms per AS
    edge_keys: np.ndarray        # (2E,) int64 sorted, key = u * V + v
    edge_cost: np.ndarray        # (2E,) float aligned with edge_keys
    cluster_as_idx: np.ndarray   # (N,) int64 — universe index of each cluster's AS
    access_ms: np.ndarray        # (N,) float — delegate access delay
    sizes: np.ndarray            # (N,) int64 — online hosts per cluster
    rows_indptr: np.ndarray      # (V+1,) CSR: cluster rows grouped by AS index
    rows_indices: np.ndarray     # (N,) ascending within each AS

    @property
    def as_count(self) -> int:
        return len(self.as_ids)

    @property
    def cluster_count(self) -> int:
        return len(self.cluster_as_idx)

    def edge_cost_of(self, src_idx: np.ndarray, dst_idx: np.ndarray) -> np.ndarray:
        """Edge costs for aligned (src, dst) index pairs (must exist)."""
        keys = src_idx * np.int64(self.as_count) + dst_idx
        positions = np.searchsorted(self.edge_keys, keys)
        if np.any(positions >= len(self.edge_keys)) or np.any(
            self.edge_keys[positions] != keys
        ):
            raise MeasurementError("routing tree crossed an edge missing from the graph")
        return self.edge_cost[positions]

    def rows_of_as_idx(self, as_idx: int) -> np.ndarray:
        """Matrix rows of the clusters hosted by universe AS ``as_idx``."""
        return self.rows_indices[self.rows_indptr[as_idx] : self.rows_indptr[as_idx + 1]]

    @classmethod
    def from_clusters(cls, model: LatencyModel, cluster_list: Sequence) -> "WorldArrays":
        """Export from a list of :class:`~repro.topology.clustering.Cluster`."""
        asns = np.array([c.asn for c in cluster_list], dtype=np.int64)
        delegates = [c.delegate for c in cluster_list]
        if any(d is None for d in delegates):
            raise MeasurementError("every cluster must have a delegate")
        access = np.array([d.access_delay_ms for d in delegates], dtype=float)
        sizes = np.array([len(c) for c in cluster_list], dtype=np.int64)
        return cls.from_arrays(model, asns, access, sizes)

    @classmethod
    def from_arrays(
        cls,
        model: LatencyModel,
        cluster_asns: np.ndarray,
        access_ms: np.ndarray,
        sizes: np.ndarray,
    ) -> "WorldArrays":
        """Export from raw cluster arrays (used by the scale benchmark)."""
        graph = model.router.graph
        universe = sorted(set(graph.ases()) | set(int(a) for a in cluster_asns))
        as_ids = np.array(universe, dtype=np.int64)
        as_index_of = {int(asn): i for i, asn in enumerate(as_ids)}
        count = len(as_ids)

        loss_of = np.array(
            [model.conditions.loss_of(int(a)) for a in as_ids], dtype=float
        )
        node_cost = np.array([model.node_cost_ms(int(a)) for a in as_ids], dtype=float)
        endpoint_cost = np.array(
            [model.endpoint_cost_ms(int(a)) for a in as_ids], dtype=float
        )

        # Per-link costs: the model's own (cached, seed-deterministic)
        # link_delay_ms per undirected edge, stored for both directions.
        keys: List[int] = []
        costs: List[float] = []
        for a in graph.ases():
            ia = as_index_of[a]
            for b in graph.neighbors(a):
                if b <= a:
                    continue
                ib = as_index_of[b]
                cost = model.link_delay_ms(a, b)
                keys.append(ia * count + ib)
                costs.append(cost)
                keys.append(ib * count + ia)
                costs.append(cost)
        edge_keys = np.array(keys, dtype=np.int64)
        edge_cost = np.array(costs, dtype=float)
        order = np.argsort(edge_keys)
        edge_keys = edge_keys[order]
        edge_cost = edge_cost[order]

        cluster_as_idx = np.array(
            [as_index_of[int(a)] for a in cluster_asns], dtype=np.int64
        )
        rows_lists: Dict[int, List[int]] = {}
        for row, as_idx in enumerate(cluster_as_idx):
            rows_lists.setdefault(int(as_idx), []).append(row)
        rows_indptr, rows_indices = _bucket_csr(
            count, {k: np.array(v, dtype=np.int64) for k, v in rows_lists.items()}
        )
        return cls(
            as_ids=as_ids,
            as_index_of=as_index_of,
            loss_of=loss_of,
            node_cost=node_cost,
            endpoint_cost=endpoint_cost,
            edge_keys=edge_keys,
            edge_cost=edge_cost,
            cluster_as_idx=cluster_as_idx,
            access_ms=np.asarray(access_ms, dtype=float),
            sizes=np.asarray(sizes, dtype=np.int64),
            rows_indptr=rows_indptr,
            rows_indices=rows_indices,
        )
