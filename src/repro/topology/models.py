"""Alternative AS-topology families for robustness studies.

The main generator (:mod:`repro.topology.generator`) builds a tiered
Internet.  To show the reproduction's conclusions are not an artifact
of that particular family, this module builds two classical families
with the same output contract (annotated graph + geography + tiers):

- **Barabási–Albert** — flat preferential attachment; provider/customer
  direction assigned old→new (earlier, higher-degree nodes provide for
  later arrivals), plus a peered top clique so the graph has a
  transit-free core;
- **Waxman** — random geometric: edge probability decays with distance;
  direction assigned by degree at annotation time.

Both produce valid Gao-Rexford worlds (every non-core AS has a
provider), so the entire pipeline — BGP feed, inference, policy
routing, ASAP — runs on them unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.bgp.asgraph import ASGraph
from repro.topology.generator import Topology, TopologyConfig
from repro.topology.geography import Geography
from repro.util.rng import derive_rng


def generate_barabasi_albert(
    as_count: int = 450,
    attachment: int = 2,
    core_size: int = 6,
    seed: int = 0,
) -> Topology:
    """Flat preferential-attachment topology with a peered core."""
    if as_count < core_size + 2:
        raise TopologyError("as_count too small for the requested core")
    if attachment < 1:
        raise TopologyError("attachment must be >= 1")
    rng = derive_rng(seed, "ba-topology")
    graph = ASGraph()
    geography = Geography()
    tier_of: Dict[int, int] = {}

    core = list(range(1, core_size + 1))
    for i, asn in enumerate(core):
        graph.add_as(asn)
        tier_of[asn] = 1
        x = (i + 0.5) * geography.width_km / core_size
        geography.place(asn, x, float(rng.uniform(0.3, 0.7)) * geography.height_km)
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_peer(a, b)

    # Repeated-node list drives preferential attachment.
    attachment_pool: List[int] = list(core) * 2
    for asn in range(core_size + 1, as_count + 1):
        graph.add_as(asn)
        providers: Set[int] = set()
        attempts = 0
        while len(providers) < min(attachment, asn - 1) and attempts < 50:
            attempts += 1
            provider = int(attachment_pool[int(rng.integers(0, len(attachment_pool)))])
            if provider != asn and graph.relationship(provider, asn) is None:
                graph.add_provider_customer(provider, asn)
                providers.add(provider)
        if not providers:
            fallback = core[int(rng.integers(0, len(core)))]
            graph.add_provider_customer(fallback, asn)
            providers.add(fallback)
        anchor = min(providers)
        geography.place_near(asn, anchor, rng, 1500.0)
        attachment_pool.extend(providers)
        attachment_pool.append(asn)
        tier_of[asn] = 3 if len(graph.customers(asn)) == 0 else 2

    # Tier labels: any AS that ends up with customers is transit.
    for asn in graph.ases():
        if tier_of.get(asn) == 1:
            continue
        tier_of[asn] = 2 if graph.customers(asn) else 3

    topology = Topology(
        config=TopologyConfig(
            tier1_count=core_size,
            tier2_count=max(1, sum(1 for t in tier_of.values() if t == 2)),
            tier3_count=max(1, sum(1 for t in tier_of.values() if t == 3)),
            seed=seed,
        ),
        graph=graph,
        geography=geography,
        tier_of=tier_of,
    )
    topology.validate()
    return topology


def generate_waxman(
    as_count: int = 450,
    alpha: float = 0.08,
    beta_km: float = 3500.0,
    core_size: int = 6,
    seed: int = 0,
) -> Topology:
    """Random-geometric (Waxman) topology, degree-annotated.

    Edge (a, b) exists with probability ``alpha * exp(-d(a,b)/beta_km)``;
    the higher-degree endpoint becomes the provider.  A peered core of
    the highest-degree nodes guarantees a transit-free top, and every
    component is stitched to the core so the world is connected.
    """
    if as_count < core_size + 2:
        raise TopologyError("as_count too small for the requested core")
    rng = derive_rng(seed, "waxman-topology")
    geography = Geography()
    positions: Dict[int, Tuple[float, float]] = {}
    for asn in range(1, as_count + 1):
        geography.place_random(asn, rng)
        positions[asn] = geography.coords[asn]

    # Sample undirected edges.
    edges: List[Tuple[int, int]] = []
    degree: Dict[int, int] = {asn: 0 for asn in range(1, as_count + 1)}
    for a in range(1, as_count + 1):
        for b in range(a + 1, as_count + 1):
            d = geography.distance_km(a, b)
            if rng.random() < alpha * np.exp(-d / beta_km):
                edges.append((a, b))
                degree[a] += 1
                degree[b] += 1

    core = sorted(degree, key=lambda a: (-degree[a], a))[:core_size]
    core_set = set(core)

    graph = ASGraph()
    for asn in range(1, as_count + 1):
        graph.add_as(asn)
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_peer(a, b)
    for a, b in edges:
        if graph.relationship(a, b) is not None:
            continue
        # Higher degree provides; ties break toward the lower ASN.
        provider, customer = (a, b) if (degree[a], -a) >= (degree[b], -b) else (b, a)
        if customer in core_set and provider not in core_set:
            provider, customer = customer, provider
        graph.add_provider_customer(provider, customer)

    # Stitch parentless non-core nodes (and disconnected components) to
    # the nearest core member so validate() holds.
    for asn in range(1, as_count + 1):
        if asn in core_set:
            continue
        if not graph.providers(asn):
            nearest = min(core, key=lambda c: geography.distance_km(asn, c))
            if graph.relationship(nearest, asn) is None:
                graph.add_provider_customer(nearest, asn)

    tier_of = {
        asn: 1 if asn in core_set else (2 if graph.customers(asn) else 3)
        for asn in range(1, as_count + 1)
    }
    topology = Topology(
        config=TopologyConfig(
            tier1_count=core_size,
            tier2_count=max(1, sum(1 for t in tier_of.values() if t == 2)),
            tier3_count=max(1, sum(1 for t in tier_of.values() if t == 3)),
            seed=seed,
        ),
        graph=graph,
        geography=geography,
        tier_of=tier_of,
    )
    topology.validate()
    return topology
