"""Synthetic Internet topology generation.

The paper's substrate is the 2005-09-26 RouteViews/RIPE/CERNET snapshot
(20,955 ASes / 56,907 links) plus 269k crawled Gnutella peer IPs.  Neither
is shippable here, so this package generates Internet-*like* inputs with
the structural properties the paper's results depend on:

- a tiered, heavy-tailed AS topology with provider-customer, peer-peer and
  sibling annotations, including multi-homed stubs (Fig. 4's shortcut case);
- geographic AS placement so link latency correlates with distance and AS
  hop count correlates with path latency (paper property 3);
- per-AS prefix allocations announced through a synthetic BGP feed; and
- a heavy-tailed peer population (90% of prefix clusters hold ≤ 100 online
  hosts — Section 6.3).

Everything downstream (RIB parsing, Gao inference, clustering, routing)
consumes these inputs through the same code paths real data would take.
"""

from repro.topology.generator import TopologyConfig, Topology, generate_topology
from repro.topology.geography import Geography
from repro.topology.prefixes import PrefixAllocator, PrefixAllocation, allocate_prefixes
from repro.topology.population import (
    Host,
    NodalInfo,
    PeerPopulation,
    PopulationConfig,
    generate_population,
)
from repro.topology.clustering import Cluster, ClusterIndex, build_clusters
from repro.topology.bgpfeed import generate_rib_entries, generate_update_stream
from repro.topology.models import generate_barabasi_albert, generate_waxman
from repro.topology.prefixes import allocate_prefixes_hierarchical
from repro.topology.validation import validate_latency, validate_topology

__all__ = [
    "Cluster",
    "ClusterIndex",
    "Geography",
    "Host",
    "NodalInfo",
    "PeerPopulation",
    "PopulationConfig",
    "PrefixAllocation",
    "PrefixAllocator",
    "Topology",
    "TopologyConfig",
    "allocate_prefixes",
    "allocate_prefixes_hierarchical",
    "build_clusters",
    "generate_barabasi_albert",
    "generate_population",
    "generate_rib_entries",
    "generate_topology",
    "generate_update_stream",
    "generate_waxman",
    "validate_latency",
    "validate_topology",
]
