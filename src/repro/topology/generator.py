"""Tiered Internet-like AS topology generator.

Produces an annotated :class:`~repro.bgp.asgraph.ASGraph` with three tiers:

- **tier 1** — a small clique-ish core of transit-free ASes, mutually
  peered, scattered globally;
- **tier 2** — regional transit providers, each buying transit from one
  or more tier-1/tier-2 ASes (preferential attachment → heavy-tailed
  degrees) and peering laterally with geographically close tier-2s;
- **tier 3** — stub/edge ASes (the ones that host end users), each with
  one provider, or several when multi-homed (paper Fig. 4 relies on
  multi-homed stubs acting as shortcuts).

A small fraction of sibling edges models organizations running several
ASNs.  Determinism: the same ``seed`` always yields the same topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.bgp.asgraph import ASGraph
from repro.topology.geography import Geography
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class TopologyConfig:
    """Structural knobs of the generated AS-level Internet."""

    tier1_count: int = 8
    tier2_count: int = 60
    tier3_count: int = 400
    # Probability that a tier-3 stub is multi-homed (2+ providers).
    multihoming_probability: float = 0.35
    # Maximum providers for a multi-homed stub.
    max_stub_providers: int = 3
    # Mean number of lateral peer edges per tier-2 AS.  Dense regional
    # peering keeps AS paths short (real Internet averages ~4 AS hops),
    # which the paper's k = 4 close-cluster search depends on.
    tier2_peering_degree: float = 4.0
    # Probability that a tier-3 stub buys transit directly from a tier-1
    # (large enterprises/content networks do).
    tier3_direct_tier1_probability: float = 0.15
    # Probability a tier-2 AS buys transit from a second provider.
    tier2_multihoming_probability: float = 0.5
    # Fraction of ASes that get a sibling companion AS.
    sibling_fraction: float = 0.01
    # Geographic spread of tier-2 around their first provider and of
    # tier-3 around theirs, in km.
    tier2_spread_km: float = 2000.0
    tier3_spread_km: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tier1_count < 2:
            raise ConfigurationError("tier1_count must be >= 2")
        if self.tier2_count < 1 or self.tier3_count < 1:
            raise ConfigurationError("tier2_count and tier3_count must be >= 1")
        if not 0.0 <= self.multihoming_probability <= 1.0:
            raise ConfigurationError("multihoming_probability must be in [0, 1]")
        if not 0.0 <= self.tier2_multihoming_probability <= 1.0:
            raise ConfigurationError("tier2_multihoming_probability must be in [0, 1]")
        if not 0.0 <= self.sibling_fraction <= 1.0:
            raise ConfigurationError("sibling_fraction must be in [0, 1]")
        if self.max_stub_providers < 2:
            raise ConfigurationError("max_stub_providers must be >= 2")

    @property
    def total_ases(self) -> int:
        return self.tier1_count + self.tier2_count + self.tier3_count


@dataclass
class Topology:
    """A generated AS-level Internet: annotated graph + geography + tiers."""

    config: TopologyConfig
    graph: ASGraph
    geography: Geography
    tier_of: Dict[int, int] = field(default_factory=dict)

    def stub_ases(self) -> List[int]:
        """Tier-3 ASes — where end hosts live."""
        return sorted(a for a, t in self.tier_of.items() if t == 3)

    def transit_ases(self) -> List[int]:
        """Tier-1 and tier-2 ASes."""
        return sorted(a for a, t in self.tier_of.items() if t in (1, 2))

    def validate(self) -> None:
        """Check structural invariants; raises TopologyError on violation.

        Every non-tier-1 AS must have at least one provider (so default
        routes exist), and every AS must have coordinates.
        """
        for asn, tier in self.tier_of.items():
            if asn not in self.geography:
                raise TopologyError(f"AS {asn} has no coordinates")
            if tier != 1 and not self.graph.providers(asn) and not self.graph.siblings(asn):
                raise TopologyError(f"non-tier-1 AS {asn} has no provider")


def generate_topology(config: TopologyConfig = TopologyConfig()) -> Topology:
    """Generate a deterministic annotated topology from ``config``."""
    rng = derive_rng(config.seed, "topology")
    graph = ASGraph()
    geography = Geography()
    tier_of: Dict[int, int] = {}
    next_asn = 1

    # --- tier 1: global core, full peer mesh -------------------------------
    tier1: List[int] = []
    for i in range(config.tier1_count):
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        tier_of[asn] = 1
        # Spread the core evenly in x with random latitude, so the map has
        # distinct "continents" of customer cones.
        x = (i + 0.5) * geography.width_km / config.tier1_count
        y = float(rng.uniform(0.2, 0.8)) * geography.height_km
        geography.place(asn, x, y)
        tier1.append(asn)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_peer(a, b)

    # --- tier 2: regional transit, preferential attachment -----------------
    tier2: List[int] = []
    for _ in range(config.tier2_count):
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        tier_of[asn] = 2
        primary = _preferential_pick(rng, graph, tier1 + tier2)
        graph.add_provider_customer(primary, asn)
        geography.place_near(asn, primary, rng, config.tier2_spread_km)
        if rng.random() < config.tier2_multihoming_probability:
            candidates = [a for a in tier1 + tier2 if a not in (asn, primary)]
            secondary = _geo_preferential_pick(rng, graph, geography, asn, candidates)
            if secondary is not None and graph.relationship(secondary, asn) is None:
                graph.add_provider_customer(secondary, asn)
        tier2.append(asn)

    # Lateral tier-2 peering, biased toward geographic proximity.
    _add_tier2_peering(rng, graph, geography, tier2, config.tier2_peering_degree)

    # --- tier 3: stubs ------------------------------------------------------
    tier3: List[int] = []
    for _ in range(config.tier3_count):
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        tier_of[asn] = 3
        primary = _preferential_pick(rng, graph, tier2)
        graph.add_provider_customer(primary, asn)
        geography.place_near(asn, primary, rng, config.tier3_spread_km)
        if rng.random() < config.multihoming_probability:
            extra = int(rng.integers(1, config.max_stub_providers))
            pool = [a for a in tier2 if a != primary and graph.relationship(a, asn) is None]
            for _ in range(extra):
                provider = _geo_preferential_pick(rng, graph, geography, asn, pool)
                if provider is None:
                    break
                graph.add_provider_customer(provider, asn)
                pool.remove(provider)
        if rng.random() < config.tier3_direct_tier1_probability:
            t1 = _geo_preferential_pick(
                rng, graph, geography, asn,
                [a for a in tier1 if graph.relationship(a, asn) is None],
            )
            if t1 is not None:
                graph.add_provider_customer(t1, asn)
        tier3.append(asn)

    # --- sibling companions --------------------------------------------------
    all_ases = tier1 + tier2 + tier3
    sibling_count = int(round(config.sibling_fraction * len(all_ases)))
    for owner in rng.choice(all_ases, size=sibling_count, replace=False) if sibling_count else []:
        owner = int(owner)
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        tier_of[asn] = tier_of[owner]
        graph.add_sibling(owner, asn)
        geography.place_near(asn, owner, rng, 200.0)
        # A sibling still needs transit of its own when its twin is a stub.
        if tier_of[owner] == 3:
            provider = _preferential_pick(rng, graph, tier2)
            if graph.relationship(provider, asn) is None:
                graph.add_provider_customer(provider, asn)

    topology = Topology(config=config, graph=graph, geography=geography, tier_of=tier_of)
    topology.validate()
    return topology


def _preferential_pick(
    rng: np.random.Generator, graph: ASGraph, candidates: List[int]
) -> int:
    """Pick one candidate with probability proportional to degree + 1."""
    if not candidates:
        raise TopologyError("no candidate providers available")
    weights = np.array([graph.degree(a) + 1.0 for a in candidates])
    weights /= weights.sum()
    return int(rng.choice(candidates, p=weights))


def _geo_preferential_pick(
    rng: np.random.Generator,
    graph: ASGraph,
    geography: Geography,
    buyer: int,
    candidates: List[int],
    locality_km: float = 2500.0,
) -> Optional[int]:
    """Pick a provider weighted by degree *and* geographic proximity.

    Transit is bought regionally in practice; without the proximity term
    multi-homed ASes end up with antipodal providers and policy paths
    zigzag across the map, inflating every RTT.
    """
    if not candidates:
        return None
    weights = np.array(
        [
            (graph.degree(a) + 1.0)
            * np.exp(-geography.distance_km(buyer, a) / locality_km)
            for a in candidates
        ]
    )
    total = weights.sum()
    if total <= 0:
        return int(rng.choice(candidates))
    return int(rng.choice(candidates, p=weights / total))


def _add_tier2_peering(
    rng: np.random.Generator,
    graph: ASGraph,
    geography: Geography,
    tier2: List[int],
    mean_degree: float,
) -> None:
    """Add lateral tier-2 peer edges preferring geographically close pairs."""
    if len(tier2) < 2 or mean_degree <= 0:
        return
    target_edges = int(round(mean_degree * len(tier2) / 2.0))
    attempts = 0
    added = 0
    while added < target_edges and attempts < target_edges * 20:
        attempts += 1
        a, b = (int(x) for x in rng.choice(tier2, size=2, replace=False))
        if graph.relationship(a, b) is not None:
            continue
        # Accept with probability decaying in distance → regional IXPs.
        dist = geography.distance_km(a, b)
        accept = float(np.exp(-dist / 4000.0))
        if rng.random() < accept:
            graph.add_peer(a, b)
            added += 1
