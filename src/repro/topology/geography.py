"""Geographic placement of ASes and distance→propagation-delay conversion.

ASes live on a cylinder: x wraps around (longitude-like, circumference
``width_km``), y is clamped (latitude-like, height ``height_km``).  Tier-1
ASes scatter globally; lower tiers are placed near a provider, which makes
customer cones geographically coherent the way real regional ISPs are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import TopologyError

# Speed of light in fiber is ~200,000 km/s → 0.005 ms per km one-way.
MS_PER_KM = 0.005
# Extra router-level stretch over the inter-AS geodesic.  Kept at 1.0:
# policy routing already walks link-by-link through intermediate ASes, so
# the AS-level zigzag supplies the real-world path stretch by itself.
PATH_STRETCH = 1.0


@dataclass
class Geography:
    """AS coordinates on a (wrapping-x, clamped-y) plane, in kilometres."""

    width_km: float = 20000.0
    height_km: float = 7000.0
    coords: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def place(self, asn: int, x: float, y: float) -> None:
        """Place an AS at (x, y); x wraps, y clamps to the map."""
        self.coords[asn] = (x % self.width_km, min(max(y, 0.0), self.height_km))

    def place_near(
        self,
        asn: int,
        anchor: int,
        rng: np.random.Generator,
        spread_km: float,
    ) -> None:
        """Place an AS within a Gaussian cloud around an existing AS."""
        if anchor not in self.coords:
            raise TopologyError(f"anchor AS {anchor} has no coordinates")
        ax, ay = self.coords[anchor]
        self.place(
            asn,
            ax + float(rng.normal(0.0, spread_km)),
            ay + float(rng.normal(0.0, spread_km)),
        )

    def place_random(self, asn: int, rng: np.random.Generator) -> None:
        """Place an AS uniformly at random on the map."""
        self.place(
            asn,
            float(rng.uniform(0.0, self.width_km)),
            float(rng.uniform(0.0, self.height_km)),
        )

    def distance_km(self, a: int, b: int) -> float:
        """Shortest distance between two ASes, accounting for x wraparound."""
        if a not in self.coords or b not in self.coords:
            raise TopologyError(f"AS without coordinates in pair ({a}, {b})")
        ax, ay = self.coords[a]
        bx, by = self.coords[b]
        dx = abs(ax - bx)
        dx = min(dx, self.width_km - dx)
        dy = ay - by
        return math.hypot(dx, dy)

    def propagation_delay_ms(self, a: int, b: int) -> float:
        """One-way propagation delay of a direct link between two ASes."""
        return self.distance_km(a, b) * MS_PER_KM * PATH_STRETCH

    def __contains__(self, asn: int) -> bool:
        return asn in self.coords

    def __len__(self) -> int:
        return len(self.coords)
