"""Synthetic BGP feed: RIB snapshots + update streams for a topology.

This plays the role of RouteViews/RIPE RIS in the paper's pipeline.  A
set of vantage-point ASes (the collector's BGP peers) each export their
selected policy route for every announced prefix; the result is a RIB
snapshot in our dump format that the *parsing* side of the library
(:mod:`repro.bgp.rib`) ingests — the generator and the consumer only meet
through the serialized text, exactly like real collectors and analysis
pipelines do.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.netaddr import IPv4Address
from repro.bgp.rib import RIBEntry
from repro.bgp.routing import PolicyRouter
from repro.bgp.updates import BGPUpdate
from repro.topology.generator import Topology
from repro.topology.prefixes import PrefixAllocation
from repro.util.rng import derive_rng

# The paper's snapshot moment: 2005-09-26 00:00:00 US Eastern ≈ this epoch.
DEFAULT_SNAPSHOT_TS = 1127707200


def pick_vantage_ases(topology: Topology, count: int, seed: int = 0) -> List[int]:
    """Choose vantage ASes: a mix of the best-connected transit ASes.

    Real collectors peer with large transit networks, so vantages are
    drawn from the top of the degree distribution.
    """
    transit = topology.transit_ases()
    if not transit:
        raise TopologyError("topology has no transit ASes for vantage points")
    ranked = sorted(transit, key=lambda a: (-topology.graph.degree(a), a))
    top = ranked[: max(count * 3, count)]
    rng = derive_rng(seed, "vantages")
    if count >= len(top):
        return top
    picked = rng.choice(top, size=count, replace=False)
    return sorted(int(a) for a in picked)


def _vantage_peer_ip(allocation: PrefixAllocation, asn: int) -> IPv4Address:
    """A stable collector-facing IP for a vantage AS (first host of its
    first prefix)."""
    prefixes = allocation.prefixes_of.get(asn)
    if not prefixes:
        raise TopologyError(f"vantage AS {asn} owns no prefix")
    return prefixes[0].nth_address(1)


def generate_rib_entries(
    topology: Topology,
    allocation: PrefixAllocation,
    router: Optional[PolicyRouter] = None,
    vantage_count: int = 10,
    timestamp: int = DEFAULT_SNAPSHOT_TS,
    seed: int = 0,
) -> List[RIBEntry]:
    """Export every vantage AS's selected route for every prefix."""
    if router is None:
        router = PolicyRouter(topology.graph)
    vantages = pick_vantage_ases(topology, vantage_count, seed=seed)
    entries: List[RIBEntry] = []
    for origin_as, prefixes in sorted(allocation.prefixes_of.items()):
        tree = router.tree(origin_as)
        for vantage in vantages:
            path = tree.path_from(vantage)
            if path is None:
                continue
            peer_ip = _vantage_peer_ip(allocation, vantage)
            for prefix in prefixes:
                entries.append(
                    RIBEntry(
                        timestamp=timestamp,
                        peer=peer_ip,
                        prefix=prefix,
                        as_path=tuple(path),
                        origin="IGP",
                    )
                )
    if not entries:
        raise TopologyError("no RIB entries generated — topology disconnected?")
    return entries


def generate_update_stream(
    topology: Topology,
    allocation: PrefixAllocation,
    router: Optional[PolicyRouter] = None,
    churn_fraction: float = 0.02,
    vantage_count: int = 10,
    base_timestamp: int = DEFAULT_SNAPSHOT_TS,
    seed: int = 0,
) -> List[BGPUpdate]:
    """A plausible update stream: withdraw/re-announce churn on a random
    subset of prefixes, interleaved in time after the snapshot."""
    if not 0.0 <= churn_fraction <= 1.0:
        raise TopologyError("churn_fraction must be in [0, 1]")
    if router is None:
        router = PolicyRouter(topology.graph)
    rng = derive_rng(seed, "bgp-updates")
    vantages = pick_vantage_ases(topology, vantage_count, seed=seed)
    updates: List[BGPUpdate] = []
    ts = base_timestamp
    for origin_as, prefixes in sorted(allocation.prefixes_of.items()):
        for prefix in prefixes:
            if rng.random() >= churn_fraction:
                continue
            vantage = int(rng.choice(vantages))
            path = router.tree(origin_as).path_from(vantage)
            if path is None:
                continue
            peer_ip = _vantage_peer_ip(allocation, vantage)
            ts += int(rng.integers(1, 30))
            updates.append(
                BGPUpdate(
                    kind="WITHDRAW", timestamp=ts, peer=peer_ip, prefix=prefix
                )
            )
            ts += int(rng.integers(1, 30))
            updates.append(
                BGPUpdate(
                    kind="ANNOUNCE",
                    timestamp=ts,
                    peer=peer_ip,
                    prefix=prefix,
                    as_path=tuple(path),
                    origin="IGP",
                )
            )
    return updates
