"""IP clustering at the prefix level, with cluster delegates (§3.1).

The paper groups collected IPs by their longest-matched BGP prefix
(following Krishnamurthy & Wang's network-aware clustering) and picks one
random IP per cluster as its *delegate* for pairwise RTT measurements.
This module reproduces exactly that step, driven by a real
:class:`~repro.bgp.prefix_table.PrefixOriginTable` built from parsed RIB
data rather than by generator-internal knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.bgp.prefix_table import PrefixOriginTable
from repro.topology.population import Host, PeerPopulation
from repro.util.rng import derive_rng


@dataclass
class Cluster:
    """All online hosts sharing one longest-matched announced prefix."""

    prefix: IPv4Prefix
    asn: int
    hosts: List[Host] = field(default_factory=list)
    delegate: Optional[Host] = None

    def __len__(self) -> int:
        return len(self.hosts)

    def member_ips(self) -> List[IPv4Address]:
        return [h.ip for h in self.hosts]

    def most_capable_host(self) -> Host:
        """Highest capability score — ASAP's surrogate pick."""
        if not self.hosts:
            raise TopologyError(f"cluster {self.prefix} is empty")
        return max(self.hosts, key=lambda h: (h.info.capability(), h.ip))


@dataclass
class ClusterIndex:
    """Cluster lookup structures used throughout measurement + protocol."""

    clusters: Dict[IPv4Prefix, Cluster] = field(default_factory=dict)
    _cluster_of_ip: Dict[IPv4Address, Cluster] = field(default_factory=dict)
    unmatched: List[Host] = field(default_factory=list)

    def cluster_of(self, ip: IPv4Address) -> Cluster:
        try:
            return self._cluster_of_ip[ip]
        except KeyError:
            raise TopologyError(f"IP {ip} is not in any cluster") from None

    def __contains__(self, ip: IPv4Address) -> bool:
        return ip in self._cluster_of_ip

    def __len__(self) -> int:
        return len(self.clusters)

    def all_clusters(self) -> List[Cluster]:
        return [self.clusters[p] for p in sorted(self.clusters)]

    def delegates(self) -> List[Host]:
        return [c.delegate for c in self.all_clusters() if c.delegate is not None]

    def clusters_in_as(self, asn: int) -> List[Cluster]:
        return [c for c in self.all_clusters() if c.asn == asn]

    def occupancy_distribution(self) -> List[int]:
        """Cluster sizes, descending — §6.3's '90% hold ≤100 hosts' check."""
        return sorted((len(c) for c in self.all_clusters()), reverse=True)


def build_clusters(
    population: PeerPopulation,
    prefix_table: PrefixOriginTable,
    seed: int = 0,
) -> ClusterIndex:
    """Group hosts by longest-matched announced prefix and pick delegates.

    Hosts whose IP matches no announced prefix are recorded in
    ``index.unmatched`` (the real crawl had such IPs too: only 103,625 of
    269,413 addresses matched a prefix).
    """
    rng = derive_rng(seed, "clustering")
    index = ClusterIndex()
    for host in population.hosts:
        match = prefix_table.lookup(host.ip)
        if match is None:
            index.unmatched.append(host)
            continue
        prefix, origin_as = match
        cluster = index.clusters.get(prefix)
        if cluster is None:
            cluster = Cluster(prefix=prefix, asn=origin_as)
            index.clusters[prefix] = cluster
        cluster.hosts.append(host)
        index._cluster_of_ip[host.ip] = cluster
    for cluster in index.all_clusters():
        pick = int(rng.integers(0, len(cluster.hosts)))
        cluster.delegate = cluster.hosts[pick]
    return index
