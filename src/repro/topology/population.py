"""Peer population synthesis — the stand-in for the Gnutella IP crawl.

The paper crawled 269,413 Gnutella peer IPs; we synthesize an online peer
population directly inside the generated prefixes.  Two properties of the
real crawl are preserved because downstream results depend on them:

- heavy-tailed cluster occupancy: ~90% of prefix clusters hold no more
  than 100 online hosts, with a few clusters near 1,000 (Section 6.3);
- heterogeneous host capability (bandwidth, uptime, CPU) — ASAP elects
  the most capable host of each cluster as its surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.netaddr import IPv4Address, IPv4Prefix
from repro.topology.generator import Topology
from repro.topology.prefixes import PrefixAllocation
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class NodalInfo:
    """Capability record an end host publishes to its surrogate (§6.1)."""

    bandwidth_kbps: float
    uptime_hours: float
    cpu_score: float

    def capability(self) -> float:
        """Scalar surrogate-election score; higher is more capable."""
        return (
            0.5 * np.log1p(self.bandwidth_kbps)
            + 0.3 * np.log1p(self.uptime_hours)
            + 0.2 * np.log1p(self.cpu_score)
        )


@dataclass(frozen=True)
class Host:
    """One online VoIP end host."""

    ip: IPv4Address
    asn: int
    prefix: IPv4Prefix
    access_delay_ms: float  # one-way last-mile delay to the AS border
    info: NodalInfo


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for the synthetic peer population."""

    host_count: int = 3000
    # Zipf-ish skew of hosts across clusters; higher → heavier tail.
    occupancy_skew: float = 1.2
    # Fraction of stub prefixes that contain any online peers at all.
    populated_prefix_fraction: float = 0.7
    access_delay_range_ms: tuple = (1.0, 15.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.host_count < 2:
            raise ConfigurationError("host_count must be >= 2")
        if not 0.0 < self.populated_prefix_fraction <= 1.0:
            raise ConfigurationError("populated_prefix_fraction must be in (0, 1]")
        if self.occupancy_skew <= 0:
            raise ConfigurationError("occupancy_skew must be positive")
        lo, hi = self.access_delay_range_ms
        if lo < 0 or hi < lo:
            raise ConfigurationError("invalid access_delay_range_ms")


@dataclass
class PeerPopulation:
    """The full set of online hosts, indexable by IP."""

    hosts: List[Host] = field(default_factory=list)
    _by_ip: Dict[IPv4Address, Host] = field(default_factory=dict)

    def add(self, host: Host) -> None:
        if host.ip in self._by_ip:
            raise TopologyError(f"duplicate host IP {host.ip}")
        self.hosts.append(host)
        self._by_ip[host.ip] = host

    def by_ip(self, ip: IPv4Address) -> Host:
        try:
            return self._by_ip[ip]
        except KeyError:
            raise TopologyError(f"unknown host IP {ip}") from None

    def __contains__(self, ip: IPv4Address) -> bool:
        return ip in self._by_ip

    def __len__(self) -> int:
        return len(self.hosts)

    def ips(self) -> List[IPv4Address]:
        return [h.ip for h in self.hosts]

    def hosts_in_prefix(self, prefix: IPv4Prefix) -> List[Host]:
        return [h for h in self.hosts if h.prefix == prefix]

    def hosts_in_as(self, asn: int) -> List[Host]:
        return [h for h in self.hosts if h.asn == asn]


def generate_population(
    topology: Topology,
    allocation: PrefixAllocation,
    config: PopulationConfig = PopulationConfig(),
) -> PeerPopulation:
    """Sample a peer population into the stub prefixes of a topology."""
    rng = derive_rng(config.seed, "population")
    stub_prefixes: List[tuple] = []
    for asn in topology.stub_ases():
        for prefix in allocation.prefixes_of.get(asn, []):
            stub_prefixes.append((asn, prefix))
    if not stub_prefixes:
        raise TopologyError("topology has no stub prefixes to populate")

    populated_count = max(1, int(round(config.populated_prefix_fraction * len(stub_prefixes))))
    chosen_idx = rng.choice(len(stub_prefixes), size=populated_count, replace=False)
    chosen = [stub_prefixes[int(i)] for i in chosen_idx]

    # Heavy-tailed occupancy: weights ~ 1/rank^skew over a random ordering.
    ranks = np.arange(1, len(chosen) + 1, dtype=float)
    weights = 1.0 / np.power(ranks, config.occupancy_skew)
    weights /= weights.sum()
    counts = rng.multinomial(config.host_count, weights)

    population = PeerPopulation()
    lo_delay, hi_delay = config.access_delay_range_ms
    for (asn, prefix), count in zip(chosen, counts):
        # Cap occupancy by usable prefix size (skip network address).
        usable = prefix.size() - 1
        count = int(min(count, usable))
        if count <= 0:
            continue
        offsets = rng.choice(usable, size=count, replace=False) + 1
        for offset in offsets:
            ip = prefix.nth_address(int(offset))
            info = NodalInfo(
                bandwidth_kbps=float(rng.lognormal(mean=6.5, sigma=1.0)),
                uptime_hours=float(rng.exponential(scale=24.0)),
                cpu_score=float(rng.uniform(0.5, 10.0)),
            )
            population.add(
                Host(
                    ip=ip,
                    asn=asn,
                    prefix=prefix,
                    access_delay_ms=float(rng.uniform(lo_delay, hi_delay)),
                    info=info,
                )
            )
    if len(population) < 2:
        raise TopologyError("population generation produced fewer than 2 hosts")
    return population
