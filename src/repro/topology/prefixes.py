"""Prefix allocation: carve address space into per-AS announced prefixes.

Each AS gets one or more disjoint prefixes (like real allocations, an AS
"can have multiple IP prefixes" — paper Section 6.1).  The allocator hands
out consecutive blocks from a configurable super-block so allocations are
disjoint by construction, which tests verify as an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.netaddr import IPv4Prefix
from repro.topology.generator import Topology
from repro.util.rng import derive_rng


@dataclass
class PrefixAllocation:
    """The result of allocating prefixes to every AS of a topology."""

    prefixes_of: Dict[int, List[IPv4Prefix]] = field(default_factory=dict)

    def origin_of(self, prefix: IPv4Prefix) -> Optional[int]:
        for asn, prefixes in self.prefixes_of.items():
            if prefix in prefixes:
                return asn
        return None

    def all_prefixes(self) -> List[IPv4Prefix]:
        out: List[IPv4Prefix] = []
        for prefixes in self.prefixes_of.values():
            out.extend(prefixes)
        return sorted(out)

    def __len__(self) -> int:
        return sum(len(p) for p in self.prefixes_of.values())


class PrefixAllocator:
    """Sequentially carves disjoint prefixes out of one super-block."""

    def __init__(self, super_block: IPv4Prefix = IPv4Prefix.from_string("10.0.0.0/8")) -> None:
        self._super = super_block
        self._cursor = super_block.network
        self._limit = super_block.network + super_block.size()

    def allocate(self, length: int) -> IPv4Prefix:
        """Allocate the next free prefix of the given length."""
        if length < self._super.length or length > 32:
            raise TopologyError(f"cannot allocate /{length} from {self._super}")
        size = 1 << (32 - length)
        # Align the cursor up to the block size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._limit:
            raise TopologyError(f"address space of {self._super} exhausted")
        self._cursor = aligned + size
        return IPv4Prefix(aligned, length)

    def remaining_addresses(self) -> int:
        return self._limit - self._cursor


def allocate_prefixes(
    topology: Topology,
    seed: int = 0,
    min_prefixes_per_stub: int = 1,
    max_prefixes_per_stub: int = 3,
    stub_prefix_lengths: tuple = (20, 21, 22, 23, 24),
    transit_prefix_length: int = 19,
) -> PrefixAllocation:
    """Allocate prefixes for every AS: stubs get 1-3 small blocks, transit
    ASes get one larger block (their infrastructure space)."""
    if min_prefixes_per_stub < 1 or max_prefixes_per_stub < min_prefixes_per_stub:
        raise TopologyError("invalid stub prefix count bounds")
    rng = derive_rng(seed, "prefixes")
    allocator = PrefixAllocator()
    allocation = PrefixAllocation()
    for asn in topology.transit_ases():
        allocation.prefixes_of[asn] = [allocator.allocate(transit_prefix_length)]
    for asn in topology.stub_ases():
        count = int(rng.integers(min_prefixes_per_stub, max_prefixes_per_stub + 1))
        blocks = [
            allocator.allocate(int(rng.choice(stub_prefix_lengths)))
            for _ in range(count)
        ]
        allocation.prefixes_of[asn] = blocks
    # Sibling ASes created by the generator are in tier_of but may be in
    # neither list if they are stubs relying on their twin; give each a /24.
    for asn in topology.graph.ases():
        if asn not in allocation.prefixes_of:
            allocation.prefixes_of[asn] = [allocator.allocate(24)]
    return allocation


def allocate_prefixes_hierarchical(
    topology: Topology,
    seed: int = 0,
    provider_block_length: int = 15,
    stub_prefix_lengths: tuple = (20, 21, 22, 23, 24),
    min_prefixes_per_stub: int = 1,
    max_prefixes_per_stub: int = 3,
) -> PrefixAllocation:
    """Provider-aggregatable allocation: stubs get PA space carved from
    their primary provider's block.

    Real address space is mostly provider-assigned: a transit AS
    announces a large covering aggregate while its customers announce
    more-specifics inside it.  Under this allocation the BGP table
    contains overlapping prefixes and longest-prefix match genuinely
    selects between an aggregate and its more-specifics — the situation
    the paper's prefix clustering (and our trie) exists for.

    Tier-1/tier-2 ASes receive one large block each (``/13`` default)
    and announce it whole; each tier-3 stub carves its prefixes from
    its lowest-numbered provider's block (falling back to independent
    ("PI") space when the provider block is exhausted).
    """
    if min_prefixes_per_stub < 1 or max_prefixes_per_stub < min_prefixes_per_stub:
        raise TopologyError("invalid stub prefix count bounds")
    rng = derive_rng(seed, "prefixes-hierarchical")
    # Large blocks need more room than 10/8: use a /4 super-block.
    allocator = PrefixAllocator(IPv4Prefix.from_string("16.0.0.0/4"))
    allocation = PrefixAllocation()

    # Providers get big blocks, announced as-is, with a private cursor
    # for customer carving.
    block_of: Dict[int, IPv4Prefix] = {}
    cursor_of: Dict[int, int] = {}
    for asn in topology.transit_ases():
        block = allocator.allocate(provider_block_length)
        allocation.prefixes_of[asn] = [block]
        block_of[asn] = block
        # Skip the head of the block: the provider's own infrastructure.
        cursor_of[asn] = block.network + 256

    def carve(provider: int, length: int) -> Optional[IPv4Prefix]:
        block = block_of.get(provider)
        if block is None:
            return None
        size = 1 << (32 - length)
        aligned = (cursor_of[provider] + size - 1) & ~(size - 1)
        if aligned + size > block.network + block.size():
            return None
        cursor_of[provider] = aligned + size
        return IPv4Prefix(aligned, length)

    for asn in topology.stub_ases():
        providers = sorted(topology.graph.providers(asn))
        primary = providers[0] if providers else None
        count = int(rng.integers(min_prefixes_per_stub, max_prefixes_per_stub + 1))
        blocks: List[IPv4Prefix] = []
        for _ in range(count):
            length = int(rng.choice(stub_prefix_lengths))
            prefix = carve(primary, length) if primary is not None else None
            if prefix is None:
                prefix = allocator.allocate(length)  # PI fallback
            blocks.append(prefix)
        allocation.prefixes_of[asn] = blocks

    for asn in topology.graph.ases():
        if asn not in allocation.prefixes_of:
            allocation.prefixes_of[asn] = [allocator.allocate(24)]
    return allocation
