"""Substrate realism validation: is the generated Internet Internet-like?

The substitution argument in DESIGN.md §2 rests on the generated
topology preserving specific statistical properties of the real
Internet.  This module measures them, tests assert them, and the
microbench report prints them:

- heavy-tailed AS degree distribution (power-law-ish tail);
- short AS paths (real 2005 Internet: mean ≈ 3.7, our target ≤ ~6);
- positive AS-hop ↔ latency correlation (paper property 3);
- a substantial multi-homed stub fraction (paper Fig. 4's shortcut);
- every selected policy route valley-free (Gao-Rexford consistency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.bgp.asgraph import ASGraph
from repro.bgp.routing import PolicyRouter
from repro.errors import TopologyError
from repro.topology.generator import Topology
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class TopologyReport:
    """Measured structural properties of a topology."""

    as_count: int
    edge_count: int
    max_degree: int
    median_degree: float
    degree_tail_ratio: float       # p99 / median degree — tail heaviness
    multihomed_stub_fraction: float
    mean_policy_path_hops: float
    p90_policy_path_hops: float
    valley_free_rate: float        # of sampled selected routes
    reachable_rate: float          # of sampled pairs

    def rows(self) -> List[Tuple[str, object]]:
        return [
            ("ASes", self.as_count),
            ("edges", self.edge_count),
            ("max degree", self.max_degree),
            ("median degree", self.median_degree),
            ("degree tail ratio (p99/median)", self.degree_tail_ratio),
            ("multi-homed stub fraction", self.multihomed_stub_fraction),
            ("mean policy path hops", self.mean_policy_path_hops),
            ("p90 policy path hops", self.p90_policy_path_hops),
            ("valley-free rate of selected routes", self.valley_free_rate),
            ("reachable pair rate", self.reachable_rate),
        ]


def validate_topology(
    topology: Topology,
    sample_pairs: int = 400,
    seed: int = 0,
    router: Optional[PolicyRouter] = None,
) -> TopologyReport:
    """Measure the report over a random sample of stub pairs."""
    graph = topology.graph
    ases = graph.ases()
    if len(ases) < 3:
        raise TopologyError("topology too small to validate")
    degrees = np.array([graph.degree(a) for a in ases], dtype=float)
    stubs = topology.stub_ases()
    multihomed = sum(1 for a in stubs if len(graph.providers(a)) >= 2)

    if router is None:
        router = PolicyRouter(graph)
    rng = derive_rng(seed, "topology-validation")
    hops: List[int] = []
    valley_free = 0
    reachable = 0
    sampled = 0
    for _ in range(sample_pairs):
        a, b = (int(x) for x in rng.choice(stubs, size=2, replace=False))
        sampled += 1
        path = router.as_path(a, b)
        if path is None:
            continue
        reachable += 1
        hops.append(len(path) - 1)
        if graph.is_valley_free(path):
            valley_free += 1

    return TopologyReport(
        as_count=len(ases),
        edge_count=graph.edge_count(),
        max_degree=int(degrees.max()),
        median_degree=float(np.median(degrees)),
        degree_tail_ratio=float(np.percentile(degrees, 99) / max(np.median(degrees), 1.0)),
        multihomed_stub_fraction=multihomed / max(len(stubs), 1),
        mean_policy_path_hops=float(np.mean(hops)) if hops else float("nan"),
        p90_policy_path_hops=float(np.percentile(hops, 90)) if hops else float("nan"),
        valley_free_rate=valley_free / reachable if reachable else 0.0,
        reachable_rate=reachable / sampled if sampled else 0.0,
    )


@dataclass(frozen=True)
class LatencyRealismReport:
    """Latency-substrate properties the paper's results rest on."""

    hop_latency_correlation: float   # Pearson r over finite pairs
    median_rtt_ms: float
    latent_fraction_300ms: float
    policy_detour_fraction: float    # selected hops > shortest valley-free

    def rows(self) -> List[Tuple[str, object]]:
        return [
            ("AS-hop / RTT correlation", self.hop_latency_correlation),
            ("median delegate RTT (ms)", self.median_rtt_ms),
            ("latent pair fraction (>300 ms)", self.latent_fraction_300ms),
            ("policy detour fraction", self.policy_detour_fraction),
        ]


def validate_latency(scenario, sample_pairs: int = 300, seed: int = 0) -> LatencyRealismReport:
    """Measure latency-substrate realism on a built scenario."""
    matrices = scenario.matrices
    finite = np.isfinite(matrices.rtt_ms) & (matrices.as_hops > 0)
    hops = matrices.as_hops[finite].astype(float)
    rtts = matrices.rtt_ms[finite]
    correlation = float(np.corrcoef(hops, rtts)[0, 1]) if hops.size > 2 else 0.0

    rng = derive_rng(seed, "latency-validation")
    graph = scenario.topology.graph
    detours = 0
    checked = 0
    n = matrices.count
    for _ in range(sample_pairs):
        i, j = (int(x) for x in rng.integers(0, n, size=2))
        if i == j or matrices.as_hops[i, j] <= 0:
            continue
        src, dst = int(matrices.asn_of[i]), int(matrices.asn_of[j])
        if src == dst:
            continue
        shortest = graph.valley_free_distance(src, dst, max_hops=12)
        if shortest is None:
            continue
        checked += 1
        if matrices.as_hops[i, j] > shortest:
            detours += 1

    all_finite = matrices.rtt_ms[np.isfinite(matrices.rtt_ms)]
    return LatencyRealismReport(
        hop_latency_correlation=correlation,
        median_rtt_ms=float(np.median(all_finite)),
        latent_fraction_300ms=float(np.mean(all_finite > 300.0)),
        policy_detour_fraction=detours / checked if checked else 0.0,
    )
