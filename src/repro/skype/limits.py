"""Structured detection of the paper's four Skype limits.

Section 5 reads limits off the traces by hand; this module turns the
same criteria into an API over :class:`~repro.skype.analyzer.SessionAnalysis`
results, so experiments can ask "which sessions exhibit Limit N?" and
get an auditable answer.

- **Limit 1** — suboptimal major path: the session's major relay path
  is above the RTT requirement although a better probed path existed.
- **Limit 2** — same-AS probes: more than one relay probed inside one AS.
- **Limit 3** — long stabilization: the majors took longer than a bound
  to become constant (relay bounce).
- **Limit 4** — probing overhead: more nodes probed than a bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.measurement.latency import RELAY_DELAY_RTT_MS
from repro.measurement.tools import KingEstimator
from repro.netaddr import IPv4Address
from repro.skype.analyzer import SessionAnalysis, TraceAnalyzer
from repro.skype.session import SkypeSessionResult
from repro.topology.population import PeerPopulation
from repro.voip.quality import RTT_THRESHOLD_MS


@dataclass(frozen=True)
class LimitThresholds:
    """What counts as exhibiting each limit."""

    rtt_requirement_ms: float = RTT_THRESHOLD_MS
    long_stabilization_ms: float = 5_000.0
    heavy_probing_nodes: int = 20


@dataclass
class Limit1Finding:
    """A session whose major path is slow while a faster probe existed."""

    session_id: int
    major_path_rtt_ms: float
    best_probed_rtt_ms: float

    @property
    def wasted_ms(self) -> float:
        return self.major_path_rtt_ms - self.best_probed_rtt_ms


@dataclass
class LimitReport:
    """Which sessions exhibit which limits."""

    limit1: List[Limit1Finding] = field(default_factory=list)
    limit2: Dict[int, Dict[int, List[IPv4Address]]] = field(default_factory=dict)
    limit3: Dict[int, float] = field(default_factory=dict)   # session → stab ms
    limit4: Dict[int, int] = field(default_factory=dict)     # session → probes

    def sessions_with_any_limit(self) -> List[int]:
        ids = {f.session_id for f in self.limit1}
        ids |= set(self.limit2) | set(self.limit3) | set(self.limit4)
        return sorted(ids)

    def summary_rows(self) -> List[Tuple[str, object]]:
        return [
            ("Limit 1 (suboptimal major) sessions", len(self.limit1)),
            ("Limit 2 (same-AS probes) sessions", len(self.limit2)),
            ("Limit 3 (long stabilization) sessions", len(self.limit3)),
            ("Limit 4 (heavy probing) sessions", len(self.limit4)),
            ("sessions with any limit", len(self.sessions_with_any_limit())),
        ]


def detect_limits(
    analyses: Sequence[SessionAnalysis],
    results: Sequence[SkypeSessionResult],
    analyzer: TraceAnalyzer,
    king: Optional[KingEstimator] = None,
    population: Optional[PeerPopulation] = None,
    thresholds: LimitThresholds = LimitThresholds(),
) -> LimitReport:
    """Run all four detectors over a batch of analyzed sessions.

    Limit 1 needs King + the population registry to score probed paths
    (exactly the paper's method); without them, it is skipped.
    """
    report = LimitReport()
    for analysis, result in zip(analyses, results):
        # Limit 2: same-AS probe groups (already computed by analysis).
        if analysis.same_as_probes:
            report.limit2[analysis.session_id] = dict(analysis.same_as_probes)
        # Limit 3: stabilization beyond the bound.
        if analysis.stabilization_ms > thresholds.long_stabilization_ms:
            report.limit3[analysis.session_id] = analysis.stabilization_ms
        # Limit 4: heavy probing.
        if analysis.total_probed > thresholds.heavy_probing_nodes:
            report.limit4[analysis.session_id] = analysis.total_probed
        # Limit 1: slow major despite a faster probed path.
        if king is not None and population is not None:
            finding = _detect_limit1(
                analysis, result, analyzer, king, population, thresholds
            )
            if finding is not None:
                report.limit1.append(finding)
    return report


def _detect_limit1(
    analysis: SessionAnalysis,
    result: SkypeSessionResult,
    analyzer: TraceAnalyzer,
    king: KingEstimator,
    population: PeerPopulation,
    thresholds: LimitThresholds,
) -> Optional[Limit1Finding]:
    trace = result.trace
    forward = analysis.forward
    # Major path RTT: direct (ping) or via the major relay (King legs).
    try:
        caller = population.by_ip(trace.caller)
        callee = population.by_ip(trace.callee)
    except Exception:
        return None
    if forward.major_carrier is None:
        major_rtt = king.estimate(caller, callee)
    elif forward.major_carrier in population:
        relay = population.by_ip(forward.major_carrier)
        leg1 = king.estimate(caller, relay)
        leg2 = king.estimate(relay, callee)
        major_rtt = (
            leg1 + leg2 + RELAY_DELAY_RTT_MS
            if leg1 is not None and leg2 is not None
            else None
        )
    else:
        major_rtt = None
    if major_rtt is None or major_rtt <= thresholds.rtt_requirement_ms:
        return None

    series = analyzer.relay_time_series(trace, trace.caller, trace.callee)
    estimates = [e for _, _, e in series if e is not None]
    if not estimates:
        return None
    best = min(estimates)
    if best < major_rtt:
        return Limit1Finding(
            session_id=analysis.session_id,
            major_path_rtt_ms=major_rtt,
            best_probed_rtt_ms=best,
        )
    return None
