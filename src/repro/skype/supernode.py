"""Supernode overlay and the Skype-like relay probing policy.

What we know about 2005-era Skype (from [Baset & Schulzrinne] and the
paper's own observations) and encode here:

- a subset of well-provisioned peers act as *supernodes*; relay
  candidates come from the overlay with no AS-topology awareness;
- a session probes candidate relays in batches, keeps the best path
  found so far, and *switches* to a newly probed path whenever it beats
  the current one — producing relay bounce while probing continues;
- probing keeps going (new batches) until the current path is good
  enough or a probe budget runs out, after which a low-rate background
  probe trickle continues (the paper's Fig. 7(c): 3-6 nodes probed after
  stabilization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.population import Host, PeerPopulation


@dataclass(frozen=True)
class SkypeConfig:
    """Knobs of the Skype-like policy (times in milliseconds)."""

    # Fraction of the population (by capability rank) acting as supernodes.
    supernode_fraction: float = 0.15
    # Candidates fetched from the overlay per probe batch.
    batch_size: int = 8
    # Pause between probe batches while still searching.
    batch_interval_ms: float = 10_000.0
    # A new path must beat the current one by this margin to switch.
    switch_margin: float = 0.05
    # Stop batch-probing once the current path RTT is below this.
    target_rtt_ms: float = 300.0
    # Hard cap on probed candidates per direction (the paper's worst
    # session probed 59 nodes across both directions).
    max_probes: int = 32
    # Background probing after search stops: interval and budget.
    background_interval_ms: float = 60_000.0
    max_background_probes: int = 4
    # Voice packet synthesis for traces.
    voice_packet_interval_ms: float = 60.0
    voice_payload_bytes: int = 160
    probe_payload_bytes: int = 48
    # Bias of candidate discovery toward popular supernodes: weight of a
    # supernode ∝ capability^popularity_bias.  Higher bias concentrates
    # probes on few well-known nodes (→ same-AS duplicates, Limit 2).
    popularity_bias: float = 3.0
    # Multiplicative (lognormal sigma) error of a single probe's RTT
    # measurement.  Switching decisions ride on one noisy probe each, so
    # a suboptimal path can be kept over a better one the client
    # believes is slower — the mechanism behind the paper's Limit 1
    # ("probed relay paths with lower RTTs but did not use them").
    probe_noise_sigma: float = 0.15
    # Mean exponential lifetime of a relay node once it starts carrying
    # voice (None = relays never die).  Supernodes are end-user machines
    # that quit mid-call; a dying carrier forces a fallback to the
    # direct path and a fresh probing round — "the network condition
    # still changes dynamically after the stabilization time" (§5).
    relay_mean_lifetime_ms: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.supernode_fraction <= 1.0:
            raise ConfigurationError("supernode_fraction must be in (0, 1]")
        if self.batch_size < 1 or self.max_probes < 1:
            raise ConfigurationError("batch_size and max_probes must be >= 1")
        if self.switch_margin < 0:
            raise ConfigurationError("switch_margin must be >= 0")
        if self.probe_noise_sigma < 0:
            raise ConfigurationError("probe_noise_sigma must be >= 0")
        if self.relay_mean_lifetime_ms is not None and self.relay_mean_lifetime_ms <= 0:
            raise ConfigurationError("relay_mean_lifetime_ms must be positive or None")
        if min(
            self.batch_interval_ms,
            self.background_interval_ms,
            self.voice_packet_interval_ms,
        ) <= 0:
            raise ConfigurationError("intervals must be positive")


class SupernodeOverlay:
    """The set of supernodes and AS-unaware candidate discovery."""

    def __init__(
        self, population: PeerPopulation, config: Optional[SkypeConfig] = None
    ) -> None:
        self._config = config = config if config is not None else SkypeConfig()
        ranked = sorted(
            population.hosts, key=lambda h: (-h.info.capability(), h.ip)
        )
        count = max(1, int(round(config.supernode_fraction * len(ranked))))
        self._supernodes: List[Host] = ranked[:count]
        capabilities = np.array([h.info.capability() for h in self._supernodes])
        weights = np.power(np.maximum(capabilities, 1e-9), config.popularity_bias)
        self._weights = weights / weights.sum()

    @property
    def supernodes(self) -> List[Host]:
        return list(self._supernodes)

    def __len__(self) -> int:
        return len(self._supernodes)

    def discover(
        self,
        rng: np.random.Generator,
        count: int,
        exclude: Optional[set] = None,
    ) -> List[Host]:
        """Fetch up to ``count`` relay candidates from the overlay.

        Draws are popularity-weighted and AS-unaware; already-probed
        nodes (``exclude``, a set of IPs) are filtered out, mirroring a
        client asking the overlay for "more" candidates.
        """
        exclude = exclude or set()
        picked: List[Host] = []
        seen = set(exclude)
        # Draw with rejection; bounded attempts keep this deterministic
        # and cheap even when most of the overlay is excluded.
        for _ in range(count * 20):
            if len(picked) >= count:
                break
            idx = int(rng.choice(len(self._supernodes), p=self._weights))
            host = self._supernodes[idx]
            if host.ip in seen:
                continue
            seen.add(host.ip)
            picked.append(host)
        return picked
