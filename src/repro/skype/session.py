"""DES runner for one Skype-like calling session.

Each direction (caller→callee, callee→caller) runs an independent
probe/switch state machine — the paper observed *asymmetric sessions*
whose two directions use different major paths.  Control-plane events
(probe batches, switches) are event-driven; voice packets are
synthesized from carrier intervals at the configured packet rate and
recorded into a :class:`~repro.sim.trace.SessionTrace` exactly as a
capture at the two end hosts would see them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs.trace import NULL_TRACE_SPAN
from repro.errors import MeasurementError
from repro.measurement.latency import LatencyModel
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.sim.engine import Simulator
from repro.sim.trace import PacketRecord, SessionTrace
from repro.skype.supernode import SkypeConfig, SupernodeOverlay
from repro.topology.population import Host
from repro.util.rng import derive_rng

VOICE_PORT = 31337
PROBE_PORT = 33033


@dataclass
class _CarrierInterval:
    """A stretch of time during which one path carried the voice stream."""

    start_ms: float
    end_ms: Optional[float]
    relay_ip: Optional[IPv4Address]  # None = direct path


@dataclass
class SkypeSessionResult:
    """Trace plus simulator-side ground truth (tests only; the analyzer
    must work from the trace alone)."""

    trace: SessionTrace
    direct_rtt_ms: Optional[float]
    forward_intervals: List[_CarrierInterval]
    backward_intervals: List[_CarrierInterval]
    forward_probes: List[Tuple[float, IPv4Address]]
    backward_probes: List[Tuple[float, IPv4Address]]

    def forward_major(self) -> Optional[IPv4Address]:
        """Ground-truth final carrier of the forward direction."""
        return self.forward_intervals[-1].relay_ip if self.forward_intervals else None

    def backward_major(self) -> Optional[IPv4Address]:
        return self.backward_intervals[-1].relay_ip if self.backward_intervals else None


class _DirectionMachine:
    """Probe/switch state machine for one traffic direction."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        overlay: SupernodeOverlay,
        latency: LatencyModel,
        config: SkypeConfig,
        rng: np.random.Generator,
        trace=NULL_TRACE_SPAN,
    ) -> None:
        self._sim = sim
        self._src = src
        self._dst = dst
        self._overlay = overlay
        self._latency = latency
        self._config = config
        self._rng = rng
        self._trace = trace
        self.probes: List[Tuple[float, IPv4Address]] = []
        self.intervals: List[_CarrierInterval] = []
        self._probed_ips: set = set()
        self._background_sent = 0

        direct = latency.host_rtt_ms(src, dst)
        self._current_rtt = direct if direct is not None else float("inf")
        # The *true* path RTT of the current carrier — never consulted by
        # the protocol (decisions ride the noisy measurements, Limit 1's
        # mechanism); the trace layer reports it for the L1 gap.
        self._current_true_rtt = self._current_rtt
        self.intervals.append(_CarrierInterval(0.0, None, None))
        # Skype always tests relay candidates at start-up, even when the
        # direct path is eventually kept.
        sim.schedule(0.0, self._probe_batch)

    # -- probing -------------------------------------------------------------

    def _relay_path_rtt(self, relay: Host) -> Optional[float]:
        return self._latency.one_hop_relay_rtt_ms(self._src, relay, self._dst)

    def _probe_batch(self) -> None:
        exclude = self._probed_ips | {self._src.ip, self._dst.ip}
        batch = self._overlay.discover(self._rng, self._config.batch_size, exclude)
        for relay in batch:
            if len(self.probes) >= self._config.max_probes:
                break
            self._launch_probe(relay)
        if (
            self._current_rtt > self._config.target_rtt_ms
            and len(self.probes) < self._config.max_probes
        ):
            self._sim.schedule(self._config.batch_interval_ms, self._probe_batch)
        else:
            self._sim.schedule(self._config.background_interval_ms, self._background_probe)

    def _background_probe(self) -> None:
        if self._background_sent >= self._config.max_background_probes:
            return
        self._background_sent += 1
        exclude = self._probed_ips | {self._src.ip, self._dst.ip}
        for relay in self._overlay.discover(self._rng, 1, exclude):
            self._launch_probe(relay)
        self._sim.schedule(self._config.background_interval_ms, self._background_probe)

    def _launch_probe(self, relay: Host) -> None:
        self._probed_ips.add(relay.ip)
        self.probes.append((self._sim.now_ms, relay.ip))
        rtt = self._relay_path_rtt(relay)
        if rtt is None:
            self._trace.point(
                "skype.probe",
                self._sim.now_ms,
                relay=str(relay.ip),
                relay_as=relay.asn,
                path_rtt_ms=None,
                measured_rtt_ms=None,
            )
            return  # probe lost — relay unreachable
        # One probe = one noisy RTT sample; the client decides on the
        # measured value (Limit 1's mechanism), but the answer arrives
        # one true relay-path round trip later.
        if self._config.probe_noise_sigma > 0:
            measured = rtt * float(
                self._rng.lognormal(0.0, self._config.probe_noise_sigma)
            )
        else:
            measured = rtt
        self._trace.point(
            "skype.probe",
            self._sim.now_ms,
            relay=str(relay.ip),
            relay_as=relay.asn,
            path_rtt_ms=round(rtt, 3),
            measured_rtt_ms=round(measured, 3),
        )
        self._sim.schedule(rtt, lambda: self._probe_result(relay, measured, rtt))

    def _probe_result(
        self, relay: Host, measured_rtt: float, true_rtt: float
    ) -> None:
        if measured_rtt < self._current_rtt * (1.0 - self._config.switch_margin):
            self._switch_to(relay, measured_rtt, true_rtt)

    def _switch_to(self, relay: Host, rtt: float, true_rtt: float) -> None:
        now = self._sim.now_ms
        self.intervals[-1].end_ms = now
        self.intervals.append(_CarrierInterval(now, None, relay.ip))
        self._current_rtt = rtt
        self._current_true_rtt = true_rtt
        self._trace.point(
            "skype.switch",
            now,
            relay=str(relay.ip),
            measured_rtt_ms=round(rtt, 3),
            path_rtt_ms=round(true_rtt, 3),
        )
        if self._config.relay_mean_lifetime_ms is not None:
            lifetime = float(
                self._rng.exponential(self._config.relay_mean_lifetime_ms)
            )
            self._sim.schedule(lifetime, lambda: self._relay_died(relay.ip))

    def _relay_died(self, relay_ip: IPv4Address) -> None:
        """The carrying relay quit mid-call: fall back to the direct
        path and immediately start a fresh probing round."""
        if self.intervals[-1].relay_ip != relay_ip:
            return  # already switched away; nothing to do
        now = self._sim.now_ms
        self.intervals[-1].end_ms = now
        self.intervals.append(_CarrierInterval(now, None, None))
        direct = self._latency.host_rtt_ms(self._src, self._dst)
        self._current_rtt = direct if direct is not None else float("inf")
        self._current_true_rtt = self._current_rtt
        self._probed_ips.add(relay_ip)  # never re-probe the dead relay
        self._trace.point("skype.relay_died", now, relay=str(relay_ip))
        self._sim.schedule(0.0, self._probe_batch)

    def finish(self, end_ms: float) -> None:
        self.intervals[-1].end_ms = end_ms
        final = self.intervals[-1]
        true_rtt = self._current_true_rtt
        self._trace.end(
            end_ms,
            final_relay=str(final.relay_ip) if final.relay_ip is not None else None,
            final_rtt_ms=round(true_rtt, 3) if np.isfinite(true_rtt) else None,
            bounces=len(self.intervals) - 1,
            stabilized_ms=round(final.start_ms, 3),
            probes=len(self.probes),
        )


def run_skype_session(
    scenario: Scenario,
    caller_ip: IPv4Address,
    callee_ip: IPv4Address,
    overlay: Optional[SupernodeOverlay] = None,
    config: Optional[SkypeConfig] = None,
    duration_ms: float = 400_000.0,
    session_id: int = 0,
) -> SkypeSessionResult:
    """Simulate one Skype-like session and capture its packet trace."""
    if config is None:
        config = SkypeConfig()
    population = scenario.population
    caller = population.by_ip(caller_ip)
    callee = population.by_ip(callee_ip)
    if overlay is None:
        overlay = SupernodeOverlay(population, config)

    sim = Simulator()
    tracer = obs.tracer()
    root = NULL_TRACE_SPAN
    if tracer:
        tracer.clock = lambda: sim.now_ms
        direct = scenario.latency.host_rtt_ms(caller, callee)
        root = tracer.begin(
            "skype.call",
            0.0,
            session_id=session_id,
            caller=str(caller_ip),
            callee=str(callee_ip),
            caller_as=caller.asn,
            callee_as=callee.asn,
            direct_rtt_ms=round(direct, 3) if direct is not None else None,
        )
    rng_fwd = derive_rng(config.seed, "skype-fwd", str(session_id))
    rng_bwd = derive_rng(config.seed, "skype-bwd", str(session_id))
    forward = _DirectionMachine(
        sim, caller, callee, overlay, scenario.latency, config, rng_fwd,
        trace=root.child("skype.direction", 0.0, direction="fwd"),
    )
    backward = _DirectionMachine(
        sim, callee, caller, overlay, scenario.latency, config, rng_bwd,
        trace=root.child("skype.direction", 0.0, direction="bwd"),
    )
    sim.run(until_ms=duration_ms)
    forward.finish(duration_ms)
    backward.finish(duration_ms)
    root.end(duration_ms, probes=len(forward.probes) + len(backward.probes))

    trace = SessionTrace(session_id=session_id, caller=caller_ip, callee=callee_ip)
    _synthesize_voice(trace, forward, caller, callee, config, at_caller=True)
    _synthesize_voice(trace, backward, callee, caller, config, at_caller=False)
    _record_probes(trace, forward, caller, config, at_caller=True)
    _record_probes(trace, backward, callee, config, at_caller=False)

    return SkypeSessionResult(
        trace=trace,
        direct_rtt_ms=scenario.latency.host_rtt_ms(caller, callee),
        forward_intervals=forward.intervals,
        backward_intervals=backward.intervals,
        forward_probes=forward.probes,
        backward_probes=backward.probes,
    )


def _synthesize_voice(
    trace: SessionTrace,
    machine: _DirectionMachine,
    src: Host,
    dst: Host,
    config: SkypeConfig,
    at_caller: bool,
) -> None:
    """Expand carrier intervals into voice packet records at the sender."""
    step = config.voice_packet_interval_ms
    for interval in machine.intervals:
        end = interval.end_ms
        if end is None:
            raise MeasurementError("unfinished carrier interval")
        t = interval.start_ms
        first_hop = interval.relay_ip if interval.relay_ip is not None else dst.ip
        while t < end:
            packet = PacketRecord(
                time_ms=t,
                src_ip=src.ip,
                src_port=VOICE_PORT,
                dst_ip=first_hop,
                dst_port=VOICE_PORT,
                size_bytes=config.voice_payload_bytes,
                kind="voice",
            )
            if at_caller:
                trace.record_at_caller(packet)
            else:
                trace.record_at_callee(packet)
            t += step


def _record_probes(
    trace: SessionTrace,
    machine: _DirectionMachine,
    src: Host,
    config: SkypeConfig,
    at_caller: bool,
) -> None:
    for time_ms, relay_ip in machine.probes:
        packet = PacketRecord(
            time_ms=time_ms,
            src_ip=src.ip,
            src_port=PROBE_PORT,
            dst_ip=relay_ip,
            dst_port=PROBE_PORT,
            size_bytes=config.probe_payload_bytes,
            kind="probe",
        )
        if at_caller:
            trace.record_at_caller(packet)
        else:
            trace.record_at_callee(packet)
