"""Trace analyzer — the simulated counterpart of the paper's pcap study.

Works strictly from :class:`~repro.sim.trace.SessionTrace` packet records
plus the public data sources the paper also used: the BGP prefix→AS
table (to spot same-AS probes, Limit 2) and King estimates (to score
probed relay paths, Limit 1).  It never touches simulator internals.

Definitions follow Section 5:

- **major relay / major path** — the node carrying the dominant share of
  a direction's voice packets after start-up ("more than 90%" in the
  paper's sessions);
- **stabilization time** — "the duration from session start to the time
  when major relay nodes are constantly used";
- **relay bounce** — carrier switches before stabilization;
- **asymmetric session** — forward and backward majors differ.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.prefix_table import PrefixOriginTable
from repro.measurement.latency import RELAY_DELAY_RTT_MS
from repro.measurement.tools import KingEstimator
from repro.netaddr import IPv4Address
from repro.sim.trace import PacketRecord, SessionTrace
from repro.topology.population import PeerPopulation

#: Packets at least this large are treated as voice by the analyzer
#: (probes are small control datagrams) — a size heuristic, as used on
#: real captures of an encrypted protocol.
VOICE_SIZE_THRESHOLD = 100


@dataclass
class DirectionAnalysis:
    """What the analyzer concludes about one traffic direction."""

    sender: IPv4Address
    receiver: IPv4Address
    major_carrier: Optional[IPv4Address]     # None = direct path
    major_share: float
    stabilization_ms: float
    relay_switches: int
    probed_nodes: List[IPv4Address]
    probed_after_stabilization: List[IPv4Address]
    voice_packets: int

    @property
    def uses_relay(self) -> bool:
        return self.major_carrier is not None

    @property
    def total_probed(self) -> int:
        return len(self.probed_nodes)


@dataclass
class SessionAnalysis:
    """Full analysis of one captured session."""

    session_id: int
    forward: DirectionAnalysis
    backward: DirectionAnalysis
    same_as_probes: Dict[int, List[IPv4Address]] = field(default_factory=dict)

    @property
    def asymmetric(self) -> bool:
        """Different major paths in the two directions (paper §5.1)."""
        return self.forward.major_carrier != self.backward.major_carrier

    @property
    def stabilization_ms(self) -> float:
        """Session stabilization = the slower of the two directions."""
        return max(self.forward.stabilization_ms, self.backward.stabilization_ms)

    @property
    def total_probed(self) -> int:
        """Distinct relay nodes probed by either endpoint."""
        return len(set(self.forward.probed_nodes) | set(self.backward.probed_nodes))


class TraceAnalyzer:
    """Analyzes session traces with public BGP data and King estimates."""

    def __init__(
        self,
        prefix_table: PrefixOriginTable,
        king: Optional[KingEstimator] = None,
        population: Optional[PeerPopulation] = None,
    ) -> None:
        self._prefix_table = prefix_table
        self._king = king
        self._population = population

    # -- per-direction analysis --------------------------------------------

    def analyze_direction(
        self, trace: SessionTrace, sender: IPv4Address, receiver: IPv4Address
    ) -> DirectionAnalysis:
        packets = trace.packets_sent_by(sender)
        voice = [p for p in packets if p.size_bytes >= VOICE_SIZE_THRESHOLD]
        probes = [p for p in packets if p.size_bytes < VOICE_SIZE_THRESHOLD]

        carriers = [p.dst_ip for p in voice]
        counts = Counter(carriers)
        if counts:
            major_ip, major_count = counts.most_common(1)[0]
            major_share = major_count / len(carriers)
        else:
            major_ip, major_share = receiver, 0.0
        major_carrier = None if major_ip == receiver else major_ip

        stabilization = _stabilization_time(voice, major_ip)
        switches = _carrier_switches(voice)

        probed = _distinct_ordered(p.dst_ip for p in probes if p.dst_ip != receiver)
        probed_after = _distinct_ordered(
            p.dst_ip
            for p in probes
            if p.dst_ip != receiver and p.time_ms > stabilization
        )
        return DirectionAnalysis(
            sender=sender,
            receiver=receiver,
            major_carrier=major_carrier,
            major_share=major_share,
            stabilization_ms=stabilization,
            relay_switches=switches,
            probed_nodes=probed,
            probed_after_stabilization=probed_after,
            voice_packets=len(voice),
        )

    def analyze(self, trace: SessionTrace) -> SessionAnalysis:
        forward = self.analyze_direction(trace, trace.caller, trace.callee)
        backward = self.analyze_direction(trace, trace.callee, trace.caller)
        return SessionAnalysis(
            session_id=trace.session_id,
            forward=forward,
            backward=backward,
            same_as_probes=self._same_as_groups(
                forward.probed_nodes + backward.probed_nodes
            ),
        )

    # -- limit 2: same-AS probes --------------------------------------------

    def _same_as_groups(self, probed: List[IPv4Address]) -> Dict[int, List[IPv4Address]]:
        """ASes in which more than one distinct relay node was probed."""
        by_as: Dict[int, List[IPv4Address]] = defaultdict(list)
        for ip in _distinct_ordered(probed):
            asn = self._prefix_table.origin_of(ip)
            if asn is not None:
                by_as[asn].append(ip)
        return {asn: ips for asn, ips in by_as.items() if len(ips) > 1}

    # -- limit 1: probed relay path RTT estimates (Fig. 6) --------------------

    def relay_time_series(
        self, trace: SessionTrace, sender: IPv4Address, receiver: IPv4Address
    ) -> List[Tuple[float, IPv4Address, Optional[float]]]:
        """(probe time, relay IP, estimated relay-path RTT) per probe.

        Estimation follows the paper's method exactly: King the two legs
        and add the 40 ms relay delay.  Requires a King estimator and
        the IP→host registry (None entries mean King got no answer).
        """
        if self._king is None or self._population is None:
            raise ValueError("relay_time_series needs a KingEstimator and population")
        try:
            src = self._population.by_ip(sender)
            dst = self._population.by_ip(receiver)
        except Exception:
            return []
        series: List[Tuple[float, IPv4Address, Optional[float]]] = []
        packets = trace.packets_sent_by(sender)
        for p in packets:
            if p.size_bytes >= VOICE_SIZE_THRESHOLD or p.dst_ip == receiver:
                continue
            estimate: Optional[float] = None
            if p.dst_ip in self._population:
                relay = self._population.by_ip(p.dst_ip)
                leg1 = self._king.estimate(src, relay)
                leg2 = self._king.estimate(relay, dst)
                if leg1 is not None and leg2 is not None:
                    estimate = leg1 + leg2 + RELAY_DELAY_RTT_MS
            series.append((p.time_ms, p.dst_ip, estimate))
        return series


def _stabilization_time(voice: List[PacketRecord], major_ip: IPv4Address) -> float:
    """First time after which every voice packet goes to the major carrier."""
    if not voice:
        return 0.0
    ordered = sorted(voice, key=lambda p: p.time_ms)
    last_other: Optional[float] = None
    for p in ordered:
        if p.dst_ip != major_ip:
            last_other = p.time_ms
    if last_other is None:
        return 0.0
    for p in ordered:
        if p.time_ms > last_other and p.dst_ip == major_ip:
            return p.time_ms
    return ordered[-1].time_ms


def _carrier_switches(voice: List[PacketRecord]) -> int:
    """Number of times the voice carrier changed (relay bounce count)."""
    ordered = sorted(voice, key=lambda p: p.time_ms)
    switches = 0
    previous: Optional[IPv4Address] = None
    for p in ordered:
        if previous is not None and p.dst_ip != previous:
            switches += 1
        previous = p.dst_ip
    return switches


def _distinct_ordered(ips) -> List[IPv4Address]:
    seen = set()
    out: List[IPv4Address] = []
    for ip in ips:
        if ip not in seen:
            seen.add(ip)
            out.append(ip)
    return out
