"""Skype measurement study (paper Section 5), reproduced in simulation.

The paper captures 14 real Skype sessions and exposes four limits of
Skype's relay selection.  Those limits are behavioural consequences of a
policy — AS-unaware probing of random supernodes with greedy switching —
so this package implements that policy over the same latency substrate
ASAP runs on:

- :mod:`repro.skype.supernode` — the supernode overlay and the
  per-direction probe/switch state machine;
- :mod:`repro.skype.session` — DES session runner emitting pcap-style
  :class:`~repro.sim.trace.SessionTrace` records at both endpoints;
- :mod:`repro.skype.analyzer` — the trace analyzer: major paths,
  asymmetric sessions, stabilization time (Limit 3), probe counts
  (Limit 4), same-AS probes (Limit 2) and relay path RTT estimates
  (Limit 1).
"""

from repro.skype.supernode import SkypeConfig, SupernodeOverlay
from repro.skype.session import SkypeSessionResult, run_skype_session
from repro.skype.analyzer import (
    DirectionAnalysis,
    SessionAnalysis,
    TraceAnalyzer,
)
from repro.skype.limits import LimitReport, LimitThresholds, detect_limits

__all__ = [
    "DirectionAnalysis",
    "LimitReport",
    "LimitThresholds",
    "SessionAnalysis",
    "SkypeConfig",
    "SkypeSessionResult",
    "SupernodeOverlay",
    "TraceAnalyzer",
    "detect_limits",
    "run_skype_session",
]
