"""The surrogate daemon: close-cluster-set service for one cluster.

A surrogate (§6.2) maintains its cluster's close cluster set and serves
it to members and callers.  The daemon reuses the simulator's
:class:`repro.core.surrogate.Surrogate` state (via the world's
``ASAPSystem``) for set construction — the wire layer changes how the
set *travels*, not how it is *built* — and serializes it as
``(cluster, rtt)`` pairs, exactly the fields select-close-relay
consumes.  Nodal-information publishes (§6.1) land in the same election
state the simulator uses.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.errors import ServiceError
from repro.net.codec import (
    ERR_NOT_SERVING,
    ROLE_SURROGATE,
    CloseSetQuery,
    CloseSetReply,
    ErrorFrame,
    Join,
    JoinOk,
    Message,
    NodalPublish,
    Ping,
    Pong,
)
from repro.net.transport import Transport
from repro.service.node import ServiceNode
from repro.service.world import ServiceWorld
from repro.topology.population import NodalInfo

__all__ = ["SurrogateServer", "close_set_to_pairs", "pairs_to_close_set"]


def close_set_to_pairs(close_set) -> list:
    """Wire form of a close cluster set: sorted (cluster, rtt) pairs."""
    return [
        (cluster, close_set.entries[cluster].rtt_ms)
        for cluster in sorted(close_set.entries)
    ]


def pairs_to_close_set(owner: int, pairs) -> "CloseClusterSet":
    """Rebuild a usable close set from its wire pairs.

    Only membership and RTT travel (all select-close-relay needs);
    loss and hop depth are measurement-side detail that stays with the
    owning surrogate.
    """
    from repro.core.close_cluster import CloseClusterEntry, CloseClusterSet

    return CloseClusterSet(
        owner=owner,
        entries={
            cluster: CloseClusterEntry(
                cluster=cluster, rtt_ms=rtt, loss=0.0, as_hops=0
            )
            for cluster, rtt in pairs
        },
    )


class SurrogateServer(ServiceNode):
    """Serves one cluster's close set over the wire."""

    def __init__(
        self,
        world: ServiceWorld,
        cluster: int,
        transport: Transport,
        bootstrap_addr: str,
    ) -> None:
        super().__init__(transport, name=f"surrogate-{cluster}")
        self._world = world
        self.cluster = cluster
        self.ip = world.surrogate_ip(cluster)
        self._bootstrap_addr = bootstrap_addr
        self.queries_served = 0
        self.publishes = 0
        self.handle(CloseSetQuery, self._on_close_set_query)
        self.handle(NodalPublish, self._on_nodal_publish)
        self.handle(Ping, self._on_ping)

    async def register(self, timeout_ms: float = 2_000.0) -> JoinOk:
        """Announce this daemon to the bootstrap as its cluster's server."""
        reply = await self.transport.request(
            self._bootstrap_addr,
            Join(
                ip=self.ip,
                role=ROLE_SURROGATE,
                cluster=self.cluster,
                wire_addr=self.address,
            ),
            timeout_ms=timeout_ms,
        )
        if not isinstance(reply, JoinOk):
            raise ServiceError(f"surrogate join answered with {reply!r}")
        return reply

    async def _on_close_set_query(
        self, sender: str, message: CloseSetQuery
    ) -> Message:
        wanted = message.cluster if message.cluster >= 0 else self.cluster
        if wanted != self.cluster:
            return ErrorFrame(
                code=ERR_NOT_SERVING,
                detail=f"surrogate serves cluster {self.cluster}, not {wanted}",
            )
        close_set = self._world.close_set(self.cluster)
        self.queries_served += 1
        obs.counter("service.close_set_queries").inc()
        return CloseSetReply(
            owner=self.cluster, entries=close_set_to_pairs(close_set)
        )

    async def _on_nodal_publish(
        self, sender: str, message: NodalPublish
    ) -> Optional[Message]:
        surrogate = self._world.system.surrogate(self.cluster)
        surrogate.accept_nodal_info(
            message.ip,
            NodalInfo(
                bandwidth_kbps=message.bandwidth_kbps,
                uptime_hours=message.uptime_hours,
                cpu_score=message.cpu_score,
            ),
        )
        self.publishes += 1
        obs.counter("service.nodal_publishes").inc()
        return None  # oneway: no response expected

    async def _on_ping(self, sender: str, message: Ping) -> Message:
        return Pong(token=message.token)
