"""The host-agent daemon: an ASAP end host on the wire.

One :class:`HostAgent` is one end host.  Passively it answers pings,
forwards close-set queries to its surrogate (the peer leg of the
close-set exchange), relays media for calls that picked it, and acks
keepalives.  Actively, :meth:`dial` runs the paper's call-setup
pipeline (Fig. 8) over real frames:

1. ping the callee — direct path good enough? (§6.4)
2. close-set exchange — own surrogate + callee's, concurrently (§6.4)
3. select-close-relay — locally, from the fetched sets (Fig. 10),
   fetching two-hop candidate sets over the wire when OS is thin
4. relay establishment — resolve candidates through the bootstrap
   directory, RELAY_SETUP the first live one
5. media — paced MEDIA frames through the relay, keepalive-guarded,
   with failover to the next candidate when the relay dies (§6.5)

Timeouts, retry budgets and backoff come from the simulator's
:class:`repro.core.runtime.RuntimePolicy`, and every stage emits the
simulator's trace-span vocabulary (``setup.ping``, ``setup.close_set``
with ``leg=own/peer``, ``setup.two_hop``, ``setup.relay_pick``,
``setup.done``, ``media``), so service traces and simulated traces
analyze identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.control.sharding import BootstrapRouter
from repro.core.close_cluster import CloseClusterSet
from repro.core.relay_selection import (
    RelaySelection,
    ranked_relay_clusters,
    select_close_relay,
)
from repro.core.runtime import RuntimePolicy
from repro.errors import RemoteError, ServiceError, TransportError, TransportTimeout
from repro.net.codec import (
    ROLE_HOST,
    Bye,
    CallAccept,
    CallSetup,
    CloseSetQuery,
    CloseSetReply,
    Join,
    JoinOk,
    Keepalive,
    KeepaliveAck,
    Leave,
    Media,
    MediaFrame,
    Message,
    NodalPublish,
    Ping,
    Pong,
    RelayOk,
    RelaySetup,
    Resolve,
    ResolveOk,
)
from repro.net.transport import Transport
from repro.netaddr import IPv4Address
from repro.service.node import ServiceNode
from repro.service.surrogate import pairs_to_close_set
from repro.service.world import ServiceWorld
from repro.voip.quality import mos_of_path

__all__ = ["DialResult", "HostAgent"]

#: Voice-frame pacing of the media loop (coarser than real 20 ms G.729
#: framing to keep packet counts CI-friendly; quality scoring uses the
#: path RTT, not the pacing).
MEDIA_PACKET_INTERVAL_MS = 200.0
_MEDIA_PAYLOAD = bytes(20)  # one compressed voice frame's worth

#: Relay-candidate hosts resolved per cluster before moving on.
_RELAY_TRIES_PER_CLUSTER = 4


@dataclass
class DialResult:
    """Everything one :meth:`HostAgent.dial` produced."""

    caller: IPv4Address
    callee: IPv4Address
    outcome: str = "pending"  # completed | degraded | failed
    failure_reason: Optional[str] = None
    path: Optional[str] = None  # direct | relay
    relay_ip: Optional[IPv4Address] = None
    relay_cluster: Optional[int] = None
    direct_rtt_ms: Optional[float] = None
    path_rtt_ms: Optional[float] = None
    setup_ms: Optional[float] = None
    selection_messages: int = 0
    media_packets: int = 0
    keepalives: int = 0
    failovers: int = 0
    mos: Optional[float] = None
    #: setup critical path: (stage, milliseconds), in execution order.
    steps: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome in ("completed", "degraded")


class _RelayState:
    """Forwarding entry a relay keeps per call."""

    def __init__(self, caller_ip: IPv4Address, callee_ip: IPv4Address, callee_addr: str):
        self.caller_ip = caller_ip
        self.callee_ip = callee_ip
        self.callee_addr = callee_addr
        self.forwarded = 0


class HostAgent(ServiceNode):
    """An end host: joins the overlay, places and relays calls."""

    def __init__(
        self,
        world: ServiceWorld,
        ip: IPv4Address,
        transport: Transport,
        bootstrap_addr: Union[str, BootstrapRouter],
        policy: Optional[RuntimePolicy] = None,
    ) -> None:
        super().__init__(transport, name=f"host-{ip}")
        self._world = world
        self.ip = ip
        self.host = world.host(ip)
        # A plain address is the degenerate single-shard control plane;
        # the router generalizes every bootstrap exchange to a sharded
        # one without changing the single-shard message sequence.
        self._router = (
            bootstrap_addr
            if isinstance(bootstrap_addr, BootstrapRouter)
            else BootstrapRouter.single(bootstrap_addr)
        )
        self._bootstrap_addr = self._router.owner_addr(ip)
        self._joined_addr: Optional[str] = None
        self._policy = policy if policy is not None else RuntimePolicy()
        self.cluster: Optional[int] = None
        self.surrogate_ip: Optional[IPv4Address] = None
        self.surrogate_addr: Optional[str] = None
        self.joined = False
        self._call_seq = itertools.count(1)
        self._ping_seq = itertools.count(1)
        self._relaying: Dict[int, _RelayState] = {}
        #: call_id -> media frames received as the callee.
        self.media_received: Dict[int, int] = {}
        #: call_id -> raw MediaFrame receipts as the callee:
        #: (seq, sender timestamp_ms, arrival now_ms, codec wire id).
        self.frame_traces: Dict[int, List[Tuple[int, float, float, int]]] = {}
        self.relayed_calls = 0
        self._relay_addr: Optional[str] = None
        self._last_selection: Optional[RelaySelection] = None
        self.handle(Ping, self._on_ping)
        self.handle(CloseSetQuery, self._on_close_set_query)
        self.handle(CallSetup, self._on_call_setup)
        self.handle(RelaySetup, self._on_relay_setup)
        self.handle(Media, self._on_media)
        self.handle(MediaFrame, self._on_media_frame)
        self.handle(Keepalive, self._on_keepalive)
        self.handle(Bye, self._on_bye)

    @property
    def policy(self) -> RuntimePolicy:
        return self._policy

    # -- inbound -----------------------------------------------------------

    async def _on_ping(self, sender: str, message: Ping) -> Message:
        return Pong(token=message.token)

    async def _on_close_set_query(self, sender: str, message: CloseSetQuery) -> Message:
        """The peer leg (§6.4): a caller asks us for *our* close set —
        we fetch it from our surrogate and relay the answer back."""
        if self.surrogate_addr is None:
            raise ServiceError(f"host {self.ip} has not joined")
        return await self.transport.request(
            self.surrogate_addr,
            CloseSetQuery(cluster=-1, requester_ip=self.ip),
            timeout_ms=self._policy.close_set_timeout_ms,
        )

    async def _on_call_setup(self, sender: str, message: CallSetup) -> Message:
        self.media_received.setdefault(message.call_id, 0)
        return CallAccept(call_id=message.call_id, accept=1)

    async def _on_relay_setup(self, sender: str, message: RelaySetup) -> Message:
        """Accept relay duty: resolve the callee and start forwarding."""
        callee_addr = await self._resolve(message.callee_ip)
        if callee_addr is None:
            raise ServiceError(f"relay cannot resolve callee {message.callee_ip}")
        self._relaying[message.call_id] = _RelayState(
            message.caller_ip, message.callee_ip, callee_addr
        )
        self.relayed_calls += 1
        obs.counter("service.relays_accepted").inc()
        return RelayOk(call_id=message.call_id)

    async def _on_media(self, sender: str, message: Media) -> None:
        state = self._relaying.get(message.call_id)
        if state is not None:
            state.forwarded += 1
            obs.counter("service.media_forwarded").inc()
            await self.transport.send(state.callee_addr, message)
            return None
        if message.call_id in self.media_received:
            self.media_received[message.call_id] += 1
        return None

    async def _on_media_frame(self, sender: str, message: MediaFrame) -> None:
        """Real codec frames (the `repro.media` plane): relays forward,
        the callee records a scoreable receipt per frame."""
        state = self._relaying.get(message.call_id)
        if state is not None:
            state.forwarded += 1
            obs.counter("service.media_forwarded").inc()
            await self.transport.send(state.callee_addr, message)
            return None
        if message.call_id in self.media_received:
            self.media_received[message.call_id] += 1
            self.frame_traces.setdefault(message.call_id, []).append(
                (message.seq, message.timestamp_ms, self.now_ms(), message.codec)
            )
        return None

    def received_trace(self, call_id: int, expected_frames: Optional[int] = None):
        """The callee's :class:`repro.media.frames.ReceivedTrace` for a
        call dialed with ``media_frames=True`` (gaps become losses)."""
        from repro.media.frames import trace_from_wire

        return trace_from_wire(
            call_id, self.frame_traces.get(call_id, []), expected_frames
        )

    async def _on_keepalive(self, sender: str, message: Keepalive) -> Message:
        return KeepaliveAck(call_id=message.call_id, seq=message.seq)

    async def _on_bye(self, sender: str, message: Bye) -> None:
        self._relaying.pop(message.call_id, None)
        return None

    # -- plumbing ----------------------------------------------------------

    async def _request(
        self,
        parent,
        addr: str,
        message: Message,
        timeout_ms: float,
        category: str,
        dst_as: Optional[int] = None,
    ) -> Message:
        """One traced round trip: a ``net.request`` child span covers
        the exchange, exactly like the simulator's network layer."""
        start = self.now_ms()
        net = parent.child(
            "net.request", start, category=category, src_as=self.host.asn, dst_as=dst_as
        )
        # Ride the span's identity on the request frame (codec trace
        # extension) so the peer's handler span joins this trace even
        # across a real process boundary.
        trace = (net.trace_id, net.span_id) if net else None
        try:
            reply = await self.transport.request(addr, message, timeout_ms, trace=trace)
        except TransportTimeout:
            obs.counter("net.timeouts").inc()
            net.end(self.now_ms(), outcome="timeout", dropped="timeout")
            raise
        except RemoteError as exc:
            net.end(self.now_ms(), outcome="error", code=exc.code)
            raise
        net.end(
            self.now_ms(), outcome="response", rtt_ms=round(self.now_ms() - start, 3)
        )
        return reply

    async def _resolve(self, ip: IPv4Address) -> Optional[str]:
        """Directory lookup; None when no running agent registered it.

        Walks the target's shard preference chain: a host that joined
        through a failover shard (its owner was down) is registered
        there, so the lookup must look past a dead or empty owner."""
        for addr in self._router.addrs_for(ip):
            try:
                reply = await self.transport.request(
                    addr,
                    Resolve(ip=ip),
                    timeout_ms=self._policy.ping_timeout_ms,
                )
            except TransportError:
                continue
            if isinstance(reply, ResolveOk) and reply.found:
                return reply.addr
        return None

    # -- join (§6.1) -------------------------------------------------------

    async def join(self) -> bool:
        """Register with the bootstrap; learn cluster + surrogate."""
        tracer = obs.tracer()
        tracer.clock = self.now_ms
        span = tracer.begin("join", self.now_ms(), ip=str(self.ip), asn=self.host.asn)
        message = Join(ip=self.ip, role=ROLE_HOST, cluster=-1, wire_addr=self.address)
        # Retries rotate through the shard preference chain: attempt 0
        # hits the owner, later attempts its ring successors (with one
        # shard every attempt lands on the same server, as before).
        addrs = self._router.addrs_for(self.ip)
        for attempt in range(self._policy.max_join_attempts):
            bootstrap_addr = addrs[attempt % len(addrs)]
            try:
                reply = await self._request(
                    span,
                    bootstrap_addr,
                    message,
                    self._policy.join_timeout_ms,
                    category="join-request",
                )
            except TransportTimeout:
                obs.counter("service.join_retries").inc()
                span.point("join.retry", self.now_ms(), attempt=attempt + 1)
                if attempt + 1 >= self._policy.max_join_attempts:
                    span.end(self.now_ms(), outcome="failed", reason="join-timeout")
                    return False
                await self.transport.sleep_ms(self._policy.backoff_ms(attempt))
                continue
            except RemoteError as exc:
                span.end(self.now_ms(), outcome="failed", reason=exc.detail)
                return False
            if not isinstance(reply, JoinOk):
                span.end(self.now_ms(), outcome="failed", reason="bad-join-reply")
                return False
            self.cluster = reply.cluster
            self.surrogate_ip = reply.surrogate_ip
            self.surrogate_addr = reply.surrogate_addr
            self.joined = True
            self._joined_addr = bootstrap_addr
            info = self.host.info
            await self.transport.send(
                self.surrogate_addr,
                NodalPublish(
                    ip=self.ip,
                    bandwidth_kbps=info.bandwidth_kbps,
                    uptime_hours=float(info.uptime_hours),
                    cpu_score=info.cpu_score,
                ),
            )
            obs.counter("service.hosts_joined").inc()
            span.end(self.now_ms(), outcome="completed")
            return True
        return False

    async def leave(self) -> None:
        """Deregister (best-effort, oneway) from the shard we joined
        through — crashed hosts never send this; the TTL sweep is the
        directory's real garbage collector."""
        if not self.joined:
            return
        addr = self._joined_addr or self._bootstrap_addr
        await self.transport.send(addr, Leave(ip=self.ip))
        obs.counter("service.hosts_left").inc()
        self.joined = False
        self._joined_addr = None

    # -- call setup + media (§6.4, §6.5) -----------------------------------

    async def dial(
        self,
        callee_ip: IPv4Address,
        media_ms: Optional[float] = None,
        media_frames: bool = False,
    ) -> DialResult:
        """Place one call; the full pipeline described in the module doc."""
        if not self.joined:
            raise ServiceError(f"host {self.ip} must join before dialing")
        policy = self._policy
        config = self._world.config
        result = DialResult(caller=self.ip, callee=callee_ip)
        callee_host = self._world.host(callee_ip)
        call_id = (self.ip.value << 16) | next(self._call_seq)

        tracer = obs.tracer()
        tracer.clock = self.now_ms
        started = self.now_ms()
        span = tracer.begin(
            "call",
            started,
            caller=str(self.ip),
            callee=str(callee_ip),
            caller_as=self.host.asn,
            callee_as=callee_host.asn,
        )
        obs.counter("service.calls").inc()

        callee_addr = await self._resolve(callee_ip)
        if callee_addr is None:
            return self._dial_failed(result, span, "callee-unreachable")

        # 1. ping: is the direct path good enough?
        ping_rtt = await self._ping_callee(span, callee_addr, callee_host, result)
        if ping_rtt is None:
            return self._dial_failed(result, span, "ping-timeout")
        result.direct_rtt_ms = round(ping_rtt, 3)
        relay_needed = not ping_rtt < config.lat_threshold_ms

        if not relay_needed:
            select = span.child("setup.select", self.now_ms())
            select.end(
                self.now_ms(),
                relay_needed=False,
                direct_rtt_ms=result.direct_rtt_ms,
                one_hop=0,
                two_hop=0,
                messages=0,
            )
            result.path = "direct"
            result.path_rtt_ms = result.direct_rtt_ms
            self._setup_done(result, span, started, "completed", None)
        else:
            await self._setup_relay(
                result, span, started, callee_ip, callee_addr, callee_host, call_id
            )
        if result.outcome == "failed":
            return result

        # Call admission: the callee acknowledges before media flows.
        try:
            accept = await self._request(
                span,
                callee_addr,
                CallSetup(call_id=call_id, caller_ip=self.ip, callee_ip=callee_ip),
                policy.ping_timeout_ms,
                category="call-setup",
                dst_as=callee_host.asn,
            )
        except TransportError:
            accept = None
        if not isinstance(accept, CallAccept) or not accept.accept:
            return self._dial_failed(result, span, "call-rejected")

        if media_ms is not None:
            await self._run_media(
                result, span, callee_addr, call_id, media_ms, media_frames
            )
        result.mos = round(mos_of_path(result.path_rtt_ms), 3) if result.path_rtt_ms is not None else None
        span.end(self.now_ms(), outcome=result.outcome)
        return result

    def _dial_failed(self, result: DialResult, span, reason: str) -> DialResult:
        result.outcome = "failed"
        result.failure_reason = reason
        obs.counter("service.calls_failed").inc()
        obs.event(
            "call.failed",
            level="debug",
            caller=str(result.caller),
            callee=str(result.callee),
            reason=reason,
        )
        span.end(self.now_ms(), outcome="failed", reason=reason)
        return result

    def _setup_done(
        self,
        result: DialResult,
        span,
        started: float,
        outcome: str,
        reason: Optional[str],
    ) -> None:
        result.outcome = outcome
        result.failure_reason = reason
        result.setup_ms = round(self.now_ms() - started, 3)
        obs.counter("service.call_setups").inc()
        if outcome == "degraded":
            obs.counter("service.call_setups_degraded").inc()
        obs.histogram("service.call_setup_ms").observe(result.setup_ms)
        span.point(
            "setup.done",
            self.now_ms(),
            outcome=outcome,
            reason=reason,
            setup_ms=result.setup_ms,
            path=result.path,
            relay=str(result.relay_ip) if result.relay_ip is not None else None,
        )

    async def _ping_callee(
        self, span, callee_addr: str, callee_host, result: DialResult
    ) -> Optional[float]:
        policy = self._policy
        for attempt in range(policy.max_ping_attempts):
            ping = span.child("setup.ping", self.now_ms(), attempt=attempt + 1)
            start = self.now_ms()
            try:
                await self._request(
                    ping,
                    callee_addr,
                    Ping(token=next(self._ping_seq)),
                    policy.ping_timeout_ms,
                    category="ping",
                    dst_as=callee_host.asn,
                )
            except TransportError:
                ping.end(self.now_ms(), outcome="timeout")
                obs.counter("service.ping_retries").inc()
                if attempt + 1 >= policy.max_ping_attempts:
                    return None
                await self.transport.sleep_ms(policy.backoff_ms(attempt))
                continue
            rtt = self.now_ms() - start
            ping.end(self.now_ms(), outcome="ok", rtt_ms=round(rtt, 3))
            result.steps.append(("ping", round(rtt, 3)))
            return rtt
        return None

    async def _fetch_close_set(
        self,
        span,
        leg: str,
        addr: str,
        surrogate_ip: IPv4Address,
        query: CloseSetQuery,
        timeout_ms: float,
    ) -> Optional[CloseClusterSet]:
        """One close-set leg with the policy's bounded retries."""
        policy = self._policy
        for attempt in range(policy.max_close_set_attempts):
            leg_span = span.child(
                "setup.close_set",
                self.now_ms(),
                leg=leg,
                attempt=attempt + 1,
                surrogate=str(surrogate_ip),
            )
            start = self.now_ms()
            try:
                reply = await self._request(
                    leg_span, addr, query, timeout_ms, category="close-set-request"
                )
            except TransportError:
                leg_span.end(self.now_ms(), outcome="timeout")
                obs.counter("service.close_set_retries").inc()
                continue
            if not isinstance(reply, CloseSetReply):
                leg_span.end(self.now_ms(), outcome="timeout")
                continue
            elapsed = round(self.now_ms() - start, 3)
            leg_span.end(self.now_ms(), outcome="ok", rtt_ms=elapsed)
            return pairs_to_close_set(reply.owner, reply.entries)
        return None

    async def _setup_relay(
        self,
        result: DialResult,
        span,
        started: float,
        callee_ip: IPv4Address,
        callee_addr: str,
        callee_host,
        call_id: int,
    ) -> None:
        """Close-set exchange, selection, and relay establishment."""
        policy = self._policy
        world = self._world
        if self.surrogate_addr is None or self.cluster is None:
            self._setup_done(result, span, started, "degraded", "close-set-unavailable")
            result.path = "direct"
            result.path_rtt_ms = result.direct_rtt_ms
            return

        # 2. the two close-set legs, concurrently (own surrogate; callee
        # forwards to its own — the peer leg's longer path).
        peer_surrogate = world.surrogate_ip(world.cluster_of_ip(callee_ip))
        own_start = self.now_ms()
        s1, s2 = await self.transport.gather(
            self._fetch_close_set(
                span,
                "own",
                self.surrogate_addr,
                self.surrogate_ip,
                CloseSetQuery(cluster=-1, requester_ip=self.ip),
                policy.close_set_timeout_ms,
            ),
            self._fetch_close_set(
                span,
                "peer",
                callee_addr,
                peer_surrogate,
                CloseSetQuery(cluster=-1, requester_ip=self.ip),
                policy.close_set_timeout_ms,
            ),
        )
        result.steps.append(("close_set", round(self.now_ms() - own_start, 3)))
        if s1 is None or s2 is None:
            self._setup_done(result, span, started, "degraded", "close-set-unavailable")
            result.path = "direct"
            result.path_rtt_ms = result.direct_rtt_ms
            return

        # 3. select-close-relay from the fetched sets.  A first pass with
        # empty two-hop answers reveals which candidate clusters the
        # algorithm wants expanded; those close sets are then fetched
        # over the wire and a second pass computes the real selection.
        empty = CloseClusterSet(owner=-1)
        preview = select_close_relay(
            s1, s2, world.cluster_size, lambda idx: empty, config=world.config
        )
        fetched: Dict[int, CloseClusterSet] = {}
        if preview.two_hop_queries > 0:
            first_hops = [c.cluster for c in preview.one_hop]
            if world.config.max_two_hop_queries is not None:
                first_hops = first_hops[: world.config.max_two_hop_queries]
            two_hop_start = self.now_ms()
            await self.transport.gather(
                *[
                    self._fetch_two_hop(span, cluster, fetched)
                    for cluster in first_hops
                ]
            )
            result.steps.append(
                ("two_hop", round(self.now_ms() - two_hop_start, 3))
            )
        selection = select_close_relay(
            s1,
            s2,
            world.cluster_size,
            lambda idx: fetched.get(idx, empty),
            config=world.config,
        )
        result.selection_messages = selection.messages
        self._last_selection = selection
        select = span.child("setup.select", self.now_ms())
        select.end(
            self.now_ms(),
            relay_needed=True,
            direct_rtt_ms=result.direct_rtt_ms,
            one_hop=len(selection.one_hop),
            two_hop=len(selection.two_hop),
            messages=selection.messages,
        )

        # 4. establish the best live relay.
        relay = await self._establish_relay(
            span, selection, callee_ip, call_id, result
        )
        best = selection.best_rtt_ms()
        span.point(
            "setup.relay_pick",
            self.now_ms(),
            relay=str(result.relay_ip) if result.relay_ip is not None else None,
            cluster=result.relay_cluster,
            chosen_rtt_ms=result.path_rtt_ms if relay else None,
            best_candidate_rtt_ms=round(best, 3) if best is not None else None,
            direct_rtt_ms=result.direct_rtt_ms,
        )
        if relay:
            result.path = "relay"
            self._setup_done(result, span, started, "completed", None)
        else:
            had = bool(selection.one_hop or selection.two_hop)
            result.path = "direct"
            result.path_rtt_ms = result.direct_rtt_ms
            self._setup_done(
                result,
                span,
                started,
                "degraded",
                "relay-offline" if had else "no-relay-candidates",
            )

    async def _fetch_two_hop(
        self, span, cluster: int, fetched: Dict[int, CloseClusterSet]
    ) -> None:
        """One two-hop expansion: the candidate cluster surrogate's set."""
        world = self._world
        surrogate_ip = world.surrogate_ip(cluster)
        addr = await self._resolve(surrogate_ip)
        if addr is None:
            return
        query = span.child(
            "setup.two_hop", self.now_ms(), cluster=cluster, surrogate=str(surrogate_ip)
        )
        start = self.now_ms()
        try:
            reply = await self._request(
                query,
                addr,
                CloseSetQuery(cluster=cluster, requester_ip=self.ip),
                self._policy.two_hop_timeout_ms,
                category="close-set-request",
            )
        except TransportError:
            query.end(self.now_ms(), outcome="timeout")
            return
        if isinstance(reply, CloseSetReply):
            fetched[cluster] = pairs_to_close_set(reply.owner, reply.entries)
            query.end(
                self.now_ms(), outcome="ok", rtt_ms=round(self.now_ms() - start, 3)
            )
        else:
            query.end(self.now_ms(), outcome="timeout")

    async def _establish_relay(
        self,
        span,
        selection: RelaySelection,
        callee_ip: IPv4Address,
        call_id: int,
        result: DialResult,
        exclude: Optional[set] = None,
    ) -> bool:
        """RELAY_SETUP the first live candidate, best cluster first.

        Candidates are resolved through the bootstrap directory, so
        only IPs with a running agent are attempted — the wire analogue
        of the simulator's online check.
        """
        exclude = set(exclude or ())
        exclude |= {self.ip, callee_ip}
        setup_start = self.now_ms()
        for rtt, cluster in ranked_relay_clusters(selection):
            tried = 0
            for host in self._world.hosts_in_cluster(cluster):
                if host.ip in exclude or tried >= _RELAY_TRIES_PER_CLUSTER:
                    continue
                addr = await self._resolve(host.ip)
                if addr is None:
                    continue
                tried += 1
                try:
                    reply = await self._request(
                        span,
                        addr,
                        RelaySetup(
                            call_id=call_id, caller_ip=self.ip, callee_ip=callee_ip
                        ),
                        self._policy.ping_timeout_ms,
                        category="relay-setup",
                        dst_as=host.asn,
                    )
                except TransportError:
                    continue
                if isinstance(reply, RelayOk):
                    result.relay_ip = host.ip
                    result.relay_cluster = cluster
                    result.path_rtt_ms = round(rtt, 3)
                    result.steps.append(
                        ("relay_setup", round(self.now_ms() - setup_start, 3))
                    )
                    self._relay_addr = addr
                    return True
        return False

    async def _run_media(
        self,
        result: DialResult,
        span,
        callee_addr: str,
        call_id: int,
        media_ms: float,
        media_frames: bool = False,
    ) -> None:
        """5. paced media with keepalive-guarded relay failover.

        ``media_frames`` swaps the abstract :class:`Media` packets for
        real timestamped :class:`MediaFrame` messages at the codec's
        actual packetization interval, so the callee accumulates a
        scoreable received-frame trace."""
        policy = self._policy
        relay_addr = self._relay_addr if result.path == "relay" else None
        target = relay_addr if relay_addr is not None else callee_addr
        if media_frames:
            from repro.media.frames import CODEC_WIRE_IDS
            from repro.voip.codecs import G729A_VAD

            interval_ms = G729A_VAD.packet_interval_ms()
            codec_id = CODEC_WIRE_IDS[G729A_VAD.name]
        else:
            interval_ms = MEDIA_PACKET_INTERVAL_MS
            codec_id = 0
        media = span.child(
            "media",
            self.now_ms(),
            path=result.path,
            relay=str(result.relay_ip) if result.relay_ip is not None else None,
            cluster=result.relay_cluster,
        )
        obs.counter("service.media_sessions").inc()
        ends_at = self.now_ms() + media_ms
        next_keepalive = self.now_ms() + policy.keepalive_interval_ms
        seq = 0
        ka_seq = 0
        dead: set = set()
        while self.now_ms() < ends_at:
            if media_frames:
                await self.transport.send(
                    target,
                    MediaFrame(
                        call_id=call_id,
                        seq=seq,
                        timestamp_ms=self.now_ms(),
                        codec=codec_id,
                        payload=_MEDIA_PAYLOAD,
                    ),
                )
            else:
                await self.transport.send(
                    target, Media(call_id=call_id, seq=seq, payload=_MEDIA_PAYLOAD)
                )
            seq += 1
            if relay_addr is not None and self.now_ms() >= next_keepalive:
                ka_seq += 1
                result.keepalives += 1
                try:
                    await self._request(
                        media,
                        relay_addr,
                        Keepalive(call_id=call_id, seq=ka_seq),
                        policy.keepalive_timeout_ms,
                        category="keepalive",
                    )
                except TransportError:
                    obs.counter("service.keepalive_timeouts").inc()
                    media.point(
                        "media.relay_lost",
                        self.now_ms(),
                        relay=str(result.relay_ip),
                    )
                    dead.add(result.relay_ip)
                    relay_addr, target = await self._failover(
                        result, media, callee_addr, call_id, dead
                    )
                next_keepalive = self.now_ms() + policy.keepalive_interval_ms
            await self.transport.sleep_ms(interval_ms)
        result.media_packets = seq
        media.end(self.now_ms(), outcome="completed", packets=seq)
        if relay_addr is not None:
            await self.transport.send(relay_addr, Bye(call_id=call_id, reason="done"))
        await self.transport.send(callee_addr, Bye(call_id=call_id, reason="done"))

    async def _failover(
        self, result: DialResult, media, callee_addr: str, call_id: int, dead: set
    ) -> Tuple[Optional[str], str]:
        """Re-establish on the next candidate, or degrade to direct."""
        result.failovers += 1
        obs.counter("service.failovers").inc()
        # Reuse the established selection ranking via a fresh attempt.
        probe = DialResult(caller=self.ip, callee=result.callee)
        selection = self._last_selection
        ok = False
        if selection is not None:
            ok = await self._establish_relay(
                media, selection, result.callee, call_id, probe, exclude=dead
            )
        if ok:
            media.point(
                "media.failover",
                self.now_ms(),
                old_relay=str(result.relay_ip),
                new_relay=str(probe.relay_ip),
            )
            result.relay_ip = probe.relay_ip
            result.relay_cluster = probe.relay_cluster
            result.path_rtt_ms = probe.path_rtt_ms
            return self._relay_addr, self._relay_addr
        media.point("media.degraded", self.now_ms(), reason="no-relay-candidates")
        result.path = "direct"
        result.path_rtt_ms = result.direct_rtt_ms
        return None, callee_addr
